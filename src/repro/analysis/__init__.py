"""Analysis utilities over elaborated designs: depth/fan-out statistics,
critical paths, cones, equivalence checking, differential fuzzing, and
DOT export."""

from .equiv import EquivalenceReport, Mismatch, exhaustive_equivalent, random_equivalent
from .fuzzgen import (
    DifferentialResult,
    FuzzProgram,
    differential_check,
    generate_program,
    shrink,
)
from .graphdot import to_dot, write_dot
from .netstats import (
    cone_of_influence,
    critical_path,
    fanout,
    logic_depth,
    logic_levels,
    max_fanout,
    register_paths,
    summary,
)

__all__ = [
    "DifferentialResult",
    "EquivalenceReport",
    "FuzzProgram",
    "Mismatch",
    "cone_of_influence",
    "critical_path",
    "differential_check",
    "exhaustive_equivalent",
    "fanout",
    "generate_program",
    "shrink",
    "logic_depth",
    "logic_levels",
    "max_fanout",
    "random_equivalent",
    "register_paths",
    "summary",
    "to_dot",
    "write_dot",
]
