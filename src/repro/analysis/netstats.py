"""Netlist analysis: logic depth, critical paths, fan-out, cones.

These are the queries a user of an early-80s silicon compiler front-end
would ask of the semantics graph: how deep is the combinational logic
between registers (the clock-period proxy in the unit-delay model), what
is the critical path, which inputs feed a given signal.
"""

from __future__ import annotations

from collections import defaultdict

from ..core.checker import dependency_graph, topological_order
from ..core.netlist import Net, Netlist
from ..timing.graph import propagate_levels


def logic_levels(netlist: Netlist) -> dict[int, int]:
    """Unit-delay level per canonical net id: sources (inputs, register
    outputs, constants) are level 0; every edge adds one.  Delegates to
    the shared timing-engine propagation (:mod:`repro.timing.graph`) —
    one levelization implementation for netstats, lint and STA."""
    order = topological_order(netlist)
    deps = dependency_graph(netlist)
    return propagate_levels(order, deps)


def logic_depth(netlist: Netlist) -> int:
    """The maximum unit-delay level -- the combinational critical depth."""
    levels = logic_levels(netlist)
    return max(levels.values(), default=0)


def critical_path(netlist: Netlist) -> list[str]:
    """Net names along one deepest combinational path, source first."""
    levels = logic_levels(netlist)
    if not levels:
        return []
    deps = dependency_graph(netlist)
    node = max(levels, key=lambda nid: levels[nid])
    path = [node]
    while levels[node] > 0:
        node = max(deps.get(node, ()), key=lambda p: levels[p])
        path.append(node)
    path.reverse()
    return [netlist.nets[nid].name for nid in path]


def fanout(netlist: Netlist) -> dict[int, int]:
    """Consumers per canonical net id (gate inputs + connection sources
    + guards + register data inputs)."""
    find = netlist.find
    counts: dict[int, int] = defaultdict(int)
    for gate in netlist.gates:
        for inp in gate.inputs:
            counts[find(inp).id] += 1
    for conn in netlist.conns:
        counts[find(conn.src).id] += 1
        if conn.cond is not None:
            counts[find(conn.cond).id] += 1
    for cc in netlist.const_conns:
        if cc.cond is not None:
            counts[find(cc.cond).id] += 1
    for reg in netlist.regs:
        counts[find(reg.d).id] += 1
    return dict(counts)


def max_fanout(netlist: Netlist) -> tuple[str, int]:
    """(net name, consumer count) of the most loaded net."""
    counts = fanout(netlist)
    if not counts:
        return ("", 0)
    nid = max(counts, key=lambda k: counts[k])
    return (netlist.nets[nid].name, counts[nid])


def cone_of_influence(netlist: Netlist, net: Net) -> set[str]:
    """Names of all nets the given net transitively depends on
    (combinationally; REG outputs terminate the cone)."""
    deps = dependency_graph(netlist)
    find = netlist.find
    start = find(net).id
    seen = {start}
    stack = [start]
    while stack:
        nid = stack.pop()
        for p in deps.get(nid, ()):
            if p not in seen:
                seen.add(p)
                stack.append(p)
    seen.discard(start)
    return {netlist.nets[nid].name for nid in seen}


def register_paths(netlist: Netlist) -> dict[str, int]:
    """For each register, the combinational depth feeding its data pin
    (the per-register clock-period requirement in unit delays)."""
    levels = logic_levels(netlist)
    find = netlist.find
    return {
        reg.name or f"$reg{reg.id}": levels.get(find(reg.d).id, 0)
        for reg in netlist.regs
    }


def summary(netlist: Netlist) -> dict[str, object]:
    """A one-call report used by the CLI and the benchmarks."""
    name, fo = max_fanout(netlist)
    return {
        **netlist.stats(),
        "logic_depth": logic_depth(netlist),
        "max_fanout_net": name,
        "max_fanout": fo,
    }
