"""Random Zeus program generation for differential fuzzing.

The fuzz suite's single most valuable property is *differential*: the
dataflow engine is the semantics oracle (it executes the paper's firing
rules directly), and every other engine -- levelized scalar, batched
bit-parallel -- must agree with it observation for observation.  This
module owns the three pieces every fuzz consumer shares:

* :func:`generate_program` -- random programs well beyond pure
  combinational DAGs: multiplex (tri-state) nets with guarded and
  deliberately conflictable drivers, REG pipelines with guarded loads,
  and ``FOR``/``WHEN`` meta-programmed replication through a
  parameterized subcomponent;
* :func:`differential_check` -- run one program on all four engines
  and compare per-cycle outputs, final register state, and recorded
  violations (per lane on the batched engine);
* :func:`shrink` -- statement-level delta debugging: greedily drop
  statements while the failure predicate keeps failing, so a nightly
  fuzz catch is reported as a minimal reproducing program.

``tests/test_fuzz.py`` drives the fast deterministic slice;
``scripts/fuzz_nightly.py`` runs the long seeded budget and uploads
shrunken failures as CI artifacts.

The legacy pure-DAG helpers (:func:`build_dag`, :func:`render_zeus`,
:func:`eval_dag`) live here too so the tests and the nightly runner
share one implementation.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field, replace
from typing import Callable, Sequence

OPS = ["AND", "OR", "NAND", "NOR", "XOR"]

#: Engines compared by :func:`differential_check`.  Dataflow is the
#: oracle; "auto" resolves to levelized whenever the program can be
#: scheduled (every generated program is acyclic, so it always can).
#: "codegen" is the exec-compiled bit-parallel engine of
#: :mod:`repro.core.codegen`, checked lane-by-lane like batched.
ENGINES_UNDER_TEST = ("auto", "batched", "codegen")


# -- legacy pure-DAG generator (kept for the fast fuzz slice) -------------


def build_dag(rng, n_inputs, n_nodes):
    """Nodes are (op, operand indices); operand < current index refers to
    a previous node, operand < n_inputs to an input."""
    nodes = []
    for i in range(n_nodes):
        op = rng.choice(OPS + ["NOT"])
        pool = n_inputs + i
        if op == "NOT":
            args = [rng.randrange(pool)]
        else:
            args = [rng.randrange(pool) for _ in range(rng.choice([2, 2, 3]))]
        nodes.append((op, args))
    return nodes


def render_zeus(n_inputs, nodes):
    ins = ", ".join(f"i{k}" for k in range(n_inputs))
    lines = []
    for i, (op, args) in enumerate(nodes):
        def name(j):
            return f"i{j}" if j < n_inputs else f"s{j - n_inputs}"

        if op == "NOT":
            expr = f"NOT {name(args[0])}"
        else:
            expr = f"{op}({', '.join(name(a) for a in args)})"
        lines.append(f"    s{i} := {expr};")
    body = "\n".join(lines)
    sigs = ", ".join(f"s{i}" for i in range(len(nodes)))
    return f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean) IS
SIGNAL {sigs}: boolean;
BEGIN
{body}
    y := s{len(nodes) - 1}
END;
SIGNAL u: t;
"""


def eval_dag(n_inputs, nodes, inputs):
    values = list(inputs)
    for op, args in nodes:
        vals = [values[a] for a in args]
        if op == "NOT":
            out = 1 - vals[0]
        elif op == "AND":
            out = int(all(vals))
        elif op == "OR":
            out = int(any(vals))
        elif op == "NAND":
            out = 1 - int(all(vals))
        elif op == "NOR":
            out = 1 - int(any(vals))
        else:  # XOR
            out = sum(vals) % 2
        values.append(out)
    return values[-1]


# -- the extended generator ----------------------------------------------

_META_TEMPLATE = """\
TYPE chain(n, variant) = COMPONENT (IN a: ARRAY [1..n] OF boolean;
                               OUT y: boolean) IS
SIGNAL h: ARRAY [1..n] OF boolean;
BEGIN
    h[1] := a[1];
    FOR i := 2 TO n DO
        WHEN variant = 1 THEN h[i] := {op1}(h[i-1], a[i])
        OTHERWISE h[i] := {op2}(h[i-1], a[i])
        END;
    END;
    y := h[n]
END;

"""


@dataclass
class FuzzProgram:
    """One generated program, held as droppable statement lines so the
    shrinker can delta-debug it."""

    seed: int
    n_inputs: int
    decls: list[str] = field(default_factory=list)
    stmts: list[str] = field(default_factory=list)
    #: extra component definitions ahead of the top type (meta-programmed
    #: replication); "" when the program has none.
    prelude: str = ""

    @property
    def text(self) -> str:
        ins = ", ".join(f"i{k}" for k in range(self.n_inputs))
        sig_lines = "".join(f"SIGNAL {d};\n" for d in self.decls)
        stmts = self.stmts or ["y0 := i0"]
        body = ";\n    ".join(stmts)
        return (
            f"{self.prelude}"
            f"TYPE t = COMPONENT (IN {ins}: boolean; "
            f"OUT y0, y1: boolean) IS\n"
            f"{sig_lines}"
            f"BEGIN\n    {body}\nEND;\nSIGNAL u: t;\n"
        )

    def inputs(self) -> list[str]:
        return [f"i{k}" for k in range(self.n_inputs)]

    def __str__(self) -> str:
        return self.text


def generate_program(
    seed: int,
    *,
    allow_mux: bool = True,
    allow_regs: bool = True,
    allow_meta: bool = True,
) -> FuzzProgram:
    """A random program over the full statement repertoire.

    The statement mix is deliberately conflict-capable: multiplex nets
    get up to three guarded drivers whose guards are *not* mutually
    exclusive, so runs must use lenient mode and compare the recorded
    violations across engines too.
    """
    rng = random.Random(seed)
    n_inputs = rng.randint(2, 5)
    prog = FuzzProgram(seed=seed, n_inputs=n_inputs)
    # Operand pools: ``bools`` may guard an IF; ``operands`` may feed a
    # gate (multiplex nets amplify implicitly at gate inputs).
    bools = [f"i{k}" for k in range(n_inputs)]
    operands = list(bools)

    n_regs = rng.randint(0, 2) if allow_regs else 0
    for r in range(n_regs):
        prog.decls.append(f"r{r}: REG")
        bools.append(f"r{r}.out")
        operands.append(f"r{r}.out")

    if allow_meta and rng.random() < 0.5:
        width = rng.randint(2, 4)
        variant = rng.randint(1, 2)
        prog.prelude = _META_TEMPLATE.format(
            op1=rng.choice(OPS), op2=rng.choice(OPS)
        )
        prog.decls.append(f"ch: chain({width}, {variant})")
        for j in range(1, width + 1):
            prog.stmts.append(f"ch.a[{j}] := {rng.choice(operands)}")
        bools.append("ch.y")
        operands.append("ch.y")

    mux_names = []
    if allow_mux:
        for m in range(rng.randint(0, 2)):
            name = f"z{m}"
            prog.decls.append(f"{name}: multiplex")
            for _ in range(rng.randint(1, 3)):
                guard = rng.choice(bools)
                src = rng.choice([rng.choice(operands), "0", "1"])
                prog.stmts.append(f"IF {guard} THEN {name} := {src} END")
            mux_names.append(name)
            operands.append(name)  # readable through the amplifier

    for w in range(rng.randint(2, 8)):
        op = rng.choice(OPS + ["NOT"])
        if op == "NOT":
            expr = f"NOT {rng.choice(operands)}"
        else:
            n_args = rng.choice([2, 2, 3])
            expr = f"{op}({', '.join(rng.choice(operands) for _ in range(n_args))})"
        prog.decls.append(f"s{w}: boolean")
        prog.stmts.append(f"s{w} := {expr}")
        bools.append(f"s{w}")
        operands.append(f"s{w}")

    for r in range(n_regs):
        src = rng.choice(operands)
        if rng.random() < 0.5:
            # Guarded load: NOINFL when the guard is off keeps the value.
            prog.stmts.append(f"IF {rng.choice(bools)} THEN r{r}.in := {src} END")
        else:
            prog.stmts.append(f"r{r}.in := {src}")

    prog.stmts.append(f"y0 := {rng.choice(bools)}")
    prog.stmts.append(f"y1 := NOT {rng.choice(bools)}")
    return prog


def random_vectors(rng: random.Random, inputs: Sequence[str], n: int) -> list[dict]:
    """*n* random input vectors (one poke value per input each)."""
    return [
        {name: rng.randint(0, 1) for name in inputs}
        for _ in range(n)
    ]


# -- the differential oracle ---------------------------------------------


@dataclass
class DifferentialResult:
    ok: bool
    detail: str = ""

    def __bool__(self) -> bool:
        return self.ok


def _scalar_observations(circuit, engine, vector, outs, cycles, seed):
    sim = circuit.simulator(engine=engine, strict=False, seed=seed)
    for name, value in vector.items():
        sim.poke(name, value)
    rows = []
    for _ in range(cycles):
        sim.step()
        rows.append(
            tuple(tuple(str(v) for v in sim.peek(p)) for p in outs)
        )
    regs = {k: str(v) for k, v in sim.registers().items()}
    viols = sorted((v.cycle, v.net) for v in sim.violations)
    return rows, regs, viols


def _batched_observations(circuit, vectors, outs, cycles, engine="batched"):
    sim = circuit.simulator(
        engine=engine, lanes=len(vectors), strict=False, seed=0
    )
    for name in vectors[0]:
        sim.poke_lanes(name, [vec[name] for vec in vectors])
    per_lane_rows: list[list] = [[] for _ in vectors]
    for _ in range(cycles):
        sim.step()
        snap = {p: sim.peek_lanes(p) for p in outs}
        for k in range(len(vectors)):
            per_lane_rows[k].append(
                tuple(tuple(str(v) for v in snap[p][k]) for p in outs)
            )
    regs = [
        {name: str(v) for name, v in sim.registers(lane=k).items()}
        for k in range(len(vectors))
    ]
    viols = [
        sorted(
            (v.cycle, v.net) for v in sim.violations if v.lane == k
        )
        for k in range(len(vectors))
    ]
    return per_lane_rows, regs, viols, sim


def differential_check(
    text: str,
    *,
    cycles: int = 4,
    n_vectors: int = 8,
    seed: int = 0,
    vectors: list[dict] | None = None,
    name: str = "fuzz",
    roundtrip: bool = True,
) -> DifferentialResult:
    """Run one program on dataflow (oracle), levelized ("auto"),
    batched and codegen, over *n_vectors* random constant stimuli held
    for *cycles* cycles each, comparing per-cycle OUT-pin values, final
    register state, and (cycle, net) violation sets.

    The batched run packs every vector into one simulator (lane k =
    vector k, seed ``0 + k``); the scalar runs use seed ``k`` so the
    per-lane rng contract lines up.  Returns a falsy result carrying a
    human-readable mismatch description on the first disagreement.

    With *roundtrip* (the default) a fifth leg exports the design to
    structural Verilog, imports it back
    (:mod:`repro.analysis.roundtrip`), and co-simulates the
    round-tripped circuit against the original with the same vectors;
    the engines legs anchor the original to the dataflow oracle, so the
    chain pins the round-trip to the oracle too.
    """
    import repro

    try:
        circuit = repro.compile_text(text, name=name, strict=False)
    except Exception as exc:  # compile trouble is not a differential bug
        return DifferentialResult(True, f"uncomparable (no compile): {exc}")
    outs = sorted(
        p.name for p in circuit.netlist.ports if p.mode == "OUT"
    )
    if vectors is None:
        rng = random.Random(seed)
        ins = sorted(
            {p.name for p in circuit.netlist.ports if p.mode == "IN"}
        )
        vectors = random_vectors(rng, ins, n_vectors)

    oracle = [
        _scalar_observations(circuit, "dataflow", vec, outs, cycles, seed=k)
        for k, vec in enumerate(vectors)
    ]
    for engine in ("auto",):
        for k, vec in enumerate(vectors):
            got = _scalar_observations(circuit, engine, vec, outs, cycles, seed=k)
            if got != oracle[k]:
                return DifferentialResult(
                    False,
                    f"{engine} vs dataflow: vector {k} {vec}: "
                    f"{_diff_detail(oracle[k], got, outs)}",
                )
    for engine in ("batched", "codegen"):
        rows, regs, viols, _ = _batched_observations(
            circuit, vectors, outs, cycles, engine=engine
        )
        for k, vec in enumerate(vectors):
            got = (rows[k], regs[k], viols[k])
            if got != oracle[k]:
                return DifferentialResult(
                    False,
                    f"{engine} lane {k} vs dataflow: vector {vec}: "
                    f"{_diff_detail(oracle[k], got, outs)}",
                )
    if roundtrip:
        from .roundtrip import Logic, cosimulate, round_trip

        rt_vectors = [
            {pname: [Logic(v)] for pname, v in vec.items()}
            for vec in vectors
        ]
        try:
            rt = round_trip(circuit.design)
        except Exception as exc:
            return DifferentialResult(
                False, f"round-trip export/import failed: {exc}")
        got = cosimulate(rt, cycles=cycles, seed=seed, vectors=rt_vectors)
        if not got.ok:
            return got
    return DifferentialResult(True)


def _diff_detail(expected, got, outs) -> str:
    e_rows, e_regs, e_viols = expected
    g_rows, g_regs, g_viols = got
    for cycle, (er, gr) in enumerate(zip(e_rows, g_rows)):
        if er != gr:
            for pin, ep, gp in zip(outs, er, gr):
                if ep != gp:
                    return (
                        f"cycle {cycle} pin {pin}: "
                        f"oracle {list(ep)} got {list(gp)}"
                    )
    if e_regs != g_regs:
        return f"registers: oracle {e_regs} got {g_regs}"
    if e_viols != g_viols:
        return f"violations: oracle {e_viols} got {g_viols}"
    return "mismatch (unlocated)"


# -- the shrinker --------------------------------------------------------


def default_failure_predicate(
    *, cycles: int = 4, n_vectors: int = 8, seed: int = 0
) -> Callable[[FuzzProgram], bool]:
    """A predicate for :func:`shrink`: True when the program still
    fails the differential check (compile errors count as not failing,
    so shrinking never wanders off into invalid programs)."""

    def failing(prog: FuzzProgram) -> bool:
        try:
            return not differential_check(
                prog.text, cycles=cycles, n_vectors=n_vectors, seed=seed
            ).ok
        except Exception:
            return False

    return failing


def shrink(
    program: FuzzProgram, failing: Callable[[FuzzProgram], bool]
) -> FuzzProgram:
    """Statement-level delta debugging: greedily drop statements (last
    first, so consumers go before producers) while *failing* stays true;
    repeat to a fixpoint.  The result still fails and is usually a
    handful of lines."""
    stmts = list(program.stmts)
    changed = True
    while changed:
        changed = False
        for i in range(len(stmts) - 1, -1, -1):
            trial = replace(program, stmts=stmts[:i] + stmts[i + 1:])
            if failing(trial):
                stmts = trial.stmts
                changed = True
    return replace(program, stmts=stmts)
