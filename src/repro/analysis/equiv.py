"""Circuit equivalence checking by co-simulation.

The paper presents several pairs of "equivalent" formulations
(rippleCarry4 vs. rippleCarry(4), the iterative vs. recursive binary
tree).  This module checks such claims mechanically:

* :func:`exhaustive_equivalent` -- all input combinations, feasible up to
  ~20 total input bits;
* :func:`random_equivalent` -- sampled vectors for wider interfaces;

Both compare every OUT pin, treating UNDEF/NOINFL as ordinary values
(the circuits must agree on X-propagation too).  Sequential circuits are
compared over a bounded number of cycles per vector.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field

from .. import Circuit


@dataclass
class Mismatch:
    vector: dict[str, int]
    cycle: int
    pin: str
    left: list[str]
    right: list[str]

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}, inputs {self.vector}: {self.pin} "
            f"differs ({self.left} vs {self.right})"
        )


@dataclass
class EquivalenceReport:
    equivalent: bool
    vectors_checked: int
    mismatches: list[Mismatch] = field(default_factory=list)
    #: The RNG seed for sampled runs (None for exhaustive runs), so any
    #: mismatch can be reproduced by re-running with the same seed.
    seed: int | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _interfaces(a: Circuit, b: Circuit) -> tuple[list[tuple[str, int]], list[str]]:
    ins_a = {p.name: len(p.nets) for p in a.netlist.ports if p.mode == "IN"}
    ins_b = {p.name: len(p.nets) for p in b.netlist.ports if p.mode == "IN"}
    outs_a = {p.name for p in a.netlist.ports if p.mode == "OUT"}
    outs_b = {p.name for p in b.netlist.ports if p.mode == "OUT"}
    if ins_a != ins_b:
        raise ValueError(f"input interfaces differ: {ins_a} vs {ins_b}")
    if outs_a != outs_b:
        raise ValueError(f"output interfaces differ: {outs_a} vs {outs_b}")
    return sorted(ins_a.items()), sorted(outs_a)


def _compare_vector(a_sim, b_sim, vector, outs, cycles):
    for sim in (a_sim, b_sim):
        for name, value in vector.items():
            sim.poke(name, value)
    for cycle in range(cycles):
        a_sim.step()
        b_sim.step()
        for pin in outs:
            left = [str(v) for v in a_sim.peek(pin)]
            right = [str(v) for v in b_sim.peek(pin)]
            if left != right:
                return Mismatch(dict(vector), cycle, pin, left, right)
    return None


def exhaustive_equivalent(
    a: Circuit, b: Circuit, *, cycles: int = 1, max_bits: int = 20
) -> EquivalenceReport:
    """Compare over every input combination (refuses above *max_bits*)."""
    inputs, outs = _interfaces(a, b)
    total_bits = sum(w for _, w in inputs)
    if total_bits > max_bits:
        raise ValueError(
            f"{total_bits} input bits is too many for exhaustive comparison"
        )
    a_sim, b_sim = a.simulator(), b.simulator()
    report = EquivalenceReport(True, 0)
    for bits in itertools.product(*[range(1 << w) for _, w in inputs]):
        vector = {name: value for (name, _), value in zip(inputs, bits)}
        mismatch = _compare_vector(a_sim, b_sim, vector, outs, cycles)
        report.vectors_checked += 1
        if mismatch is not None:
            report.equivalent = False
            report.mismatches.append(mismatch)
            if len(report.mismatches) >= 5:
                return report
    return report


def random_equivalent(
    a: Circuit, b: Circuit, *, trials: int = 100, cycles: int = 1, seed: int = 0
) -> EquivalenceReport:
    """Compare over random vectors (fresh simulators per run so register
    state stays aligned)."""
    inputs, outs = _interfaces(a, b)
    rng = random.Random(seed)
    a_sim, b_sim = a.simulator(), b.simulator()
    report = EquivalenceReport(True, 0, seed=seed)
    for _ in range(trials):
        vector = {name: rng.randrange(1 << w) for name, w in inputs}
        mismatch = _compare_vector(a_sim, b_sim, vector, outs, cycles)
        report.vectors_checked += 1
        if mismatch is not None:
            report.equivalent = False
            report.mismatches.append(mismatch)
            if len(report.mismatches) >= 5:
                return report
    return report
