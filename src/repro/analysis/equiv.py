"""Circuit equivalence checking by co-simulation.

The paper presents several pairs of "equivalent" formulations
(rippleCarry4 vs. rippleCarry(4), the iterative vs. recursive binary
tree).  This module checks such claims mechanically:

* :func:`exhaustive_equivalent` -- all input combinations, feasible up to
  ~20 total input bits;
* :func:`random_equivalent` -- sampled vectors for wider interfaces;

Both compare every OUT pin, treating UNDEF/NOINFL as ordinary values
(the circuits must agree on X-propagation too).  Sequential circuits are
compared over a bounded number of cycles per vector.

By default both functions drive the batched bit-parallel engine
(:mod:`repro.core.batched`): vectors are packed into lanes, up to
:data:`BATCH_LANES` at a time, and every lane of a chunk evaluates in
one schedule pass.  Each lane is an *independent* run (registers start
UNDEF per vector); the scalar engines -- selected with
``engine="levelized"``/``"dataflow"``/``"auto"`` -- instead reuse one
simulator pair, so register state carries across vectors.  For the
combinational circuits equivalence checking is meant for, the two modes
agree; for sequential pairs the batched per-vector-fresh-state semantics
is the better-defined comparison.
"""

from __future__ import annotations

import itertools
import random
from dataclasses import dataclass, field
from typing import Iterator

from .. import Circuit

#: Maximum stimulus lanes per batched chunk.  256 lanes keeps the plane
#: ints word-sized enough that CPython big-int ops stay cheap while
#: amortizing the schedule pass over many vectors.
BATCH_LANES = 256


@dataclass
class Mismatch:
    vector: dict[str, int]
    cycle: int
    pin: str
    left: list[str]
    right: list[str]

    def __str__(self) -> str:
        return (
            f"cycle {self.cycle}, inputs {self.vector}: {self.pin} "
            f"differs ({self.left} vs {self.right})"
        )


@dataclass
class EquivalenceReport:
    equivalent: bool
    vectors_checked: int
    mismatches: list[Mismatch] = field(default_factory=list)
    #: The RNG seed for sampled runs (None for exhaustive runs), so any
    #: mismatch can be reproduced by re-running with the same seed.
    seed: int | None = None
    #: The engine that ran the comparison ("batched" by default).
    engine: str = "auto"
    #: Lanes per chunk on the batched engine (None on scalar engines).
    lanes: int | None = None

    def __bool__(self) -> bool:
        return self.equivalent


def _interfaces(a: Circuit, b: Circuit) -> tuple[list[tuple[str, int]], list[str]]:
    ins_a = {p.name: len(p.nets) for p in a.netlist.ports if p.mode == "IN"}
    ins_b = {p.name: len(p.nets) for p in b.netlist.ports if p.mode == "IN"}
    outs_a = {p.name for p in a.netlist.ports if p.mode == "OUT"}
    outs_b = {p.name for p in b.netlist.ports if p.mode == "OUT"}
    if ins_a != ins_b:
        raise ValueError(f"input interfaces differ: {ins_a} vs {ins_b}")
    if outs_a != outs_b:
        raise ValueError(f"output interfaces differ: {outs_a} vs {outs_b}")
    return sorted(ins_a.items()), sorted(outs_a)


def _compare_vector(a_sim, b_sim, vector, outs, cycles):
    for sim in (a_sim, b_sim):
        for name, value in vector.items():
            sim.poke(name, value)
    for cycle in range(cycles):
        a_sim.step()
        b_sim.step()
        for pin in outs:
            left = [str(v) for v in a_sim.peek(pin)]
            right = [str(v) for v in b_sim.peek(pin)]
            if left != right:
                return Mismatch(dict(vector), cycle, pin, left, right)
    return None


def _run_scalar(a, b, vectors, outs, cycles, report, engine):
    a_sim = a.simulator(engine=engine)
    b_sim = b.simulator(engine=engine)
    for vector in vectors:
        mismatch = _compare_vector(a_sim, b_sim, vector, outs, cycles)
        report.vectors_checked += 1
        if mismatch is not None:
            report.equivalent = False
            report.mismatches.append(mismatch)
            if len(report.mismatches) >= 5:
                return


def _pin_planes_equal(a_sim, b_sim, pin) -> bool:
    """Fast batched comparison: exactly equal bitplanes on every bit of
    *pin* mean no lane can mismatch (the slow per-lane path is only
    taken for pins whose planes differ somewhere)."""
    for na, nb in zip(a_sim.nets_of(pin), b_sim.nets_of(pin)):
        ia = a_sim._idx(na)
        ib = b_sim._idx(nb)
        if (
            a_sim._bvals0[ia] != b_sim._bvals0[ib]
            or a_sim._bvals1[ia] != b_sim._bvals1[ib]
        ):
            return False
    return True


def _run_batched(
    a: Circuit,
    b: Circuit,
    vectors: Iterator[dict[str, int]],
    outs: list[str],
    cycles: int,
    report: EquivalenceReport,
) -> None:
    """Drive *vectors* through both circuits in lane chunks.

    One simulator pair is built for the first chunk and reused (via
    ``reset_state``) for every following chunk; a short final chunk pads
    with copies of its last vector and only the real lanes are checked.
    Mismatches are reported in vector order -- each vector's *first*
    differing (cycle, pin), capped at 5 overall, exactly like the
    scalar path.
    """
    a_sim = b_sim = None
    while True:
        chunk = list(itertools.islice(vectors, BATCH_LANES))
        if not chunk:
            return
        if a_sim is None:
            lanes = len(chunk)
            a_sim = a.simulator(engine="batched", lanes=lanes)
            b_sim = b.simulator(engine="batched", lanes=lanes)
            report.lanes = lanes
        else:
            a_sim.reset_state()
            b_sim.reset_state()
        n_used = len(chunk)
        padded = chunk + [chunk[-1]] * (a_sim.lanes - n_used)
        for sim in (a_sim, b_sim):
            for name in padded[0]:
                sim.poke_lanes(name, [vec[name] for vec in padded])
        found: dict[int, Mismatch] = {}
        for cycle in range(cycles):
            a_sim.step()
            b_sim.step()
            for pin in outs:
                if _pin_planes_equal(a_sim, b_sim, pin):
                    continue
                la = a_sim.peek_lanes(pin)
                lb = b_sim.peek_lanes(pin)
                for k in range(n_used):
                    if k in found:
                        continue
                    left = [str(v) for v in la[k]]
                    right = [str(v) for v in lb[k]]
                    if left != right:
                        found[k] = Mismatch(
                            dict(chunk[k]), cycle, pin, left, right
                        )
        report.vectors_checked += n_used
        for k in sorted(found):
            report.equivalent = False
            report.mismatches.append(found[k])
            if len(report.mismatches) >= 5:
                return


def _dispatch(a, b, vectors, outs, cycles, report, engine):
    if engine == "batched":
        _run_batched(a, b, iter(vectors), outs, cycles, report)
    else:
        _run_scalar(a, b, vectors, outs, cycles, report, engine)


def exhaustive_equivalent(
    a: Circuit,
    b: Circuit,
    *,
    cycles: int = 1,
    max_bits: int = 20,
    engine: str = "batched",
) -> EquivalenceReport:
    """Compare over every input combination (refuses above *max_bits*).

    ``engine="batched"`` (default) sweeps the vectors in bit-parallel
    lane chunks; any scalar engine name runs the legacy one-vector-at-a-
    time loop."""
    inputs, outs = _interfaces(a, b)
    total_bits = sum(w for _, w in inputs)
    if total_bits > max_bits:
        raise ValueError(
            f"{total_bits} input bits is too many for exhaustive comparison"
        )
    report = EquivalenceReport(True, 0, engine=engine)
    vectors = (
        {name: value for (name, _), value in zip(inputs, bits)}
        for bits in itertools.product(*[range(1 << w) for _, w in inputs])
    )
    _dispatch(a, b, vectors, outs, cycles, report, engine)
    return report


def random_equivalent(
    a: Circuit,
    b: Circuit,
    *,
    trials: int = 100,
    cycles: int = 1,
    seed: int = 0,
    engine: str = "batched",
) -> EquivalenceReport:
    """Compare over random vectors (reproducible from *seed*)."""
    inputs, outs = _interfaces(a, b)
    rng = random.Random(seed)
    report = EquivalenceReport(True, 0, seed=seed, engine=engine)
    vectors = (
        {name: rng.randrange(1 << w) for name, w in inputs}
        for _ in range(trials)
    )
    _dispatch(a, b, vectors, outs, cycles, report, engine)
    return report
