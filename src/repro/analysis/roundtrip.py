"""Round-trip differential harness for the Verilog interchange.

The correctness story of :mod:`repro.interchange` is test-first: a
design exported to structural Verilog and imported back must be
*observationally identical* to the original, not merely isomorphic.
This module owns that check:

* :func:`round_trip` -- emit a design to Verilog, parse it back, and
  return all four artifacts (text, manifest, imported design);
* :func:`cosimulate` -- drive the original and the round-tripped
  circuit lane-by-lane through the batched engine with the same
  stimulus (random vectors with occasional UNDEF bits for four-valued
  coverage) and compare, per cycle and per lane: every OUT/INOUT port
  bit, the final register state (translated through the manifest's
  register map), and the recorded ``(cycle, net)`` violation sets
  (translated through the manifest's name map);
* :func:`check_program` / :func:`check_corpus` -- the drivers the
  tests, the fuzzer's fifth leg, and the CI smoke job share.

Unpoked inputs exercise the special-input rule on both sides: RSET and
CLK survive mangling verbatim, so an imported design defaults them to
ZERO exactly like the original.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from ..core.values import Logic
from ..interchange import emit_verilog, name_map, read_verilog
from .fuzzgen import DifferentialResult

#: Probability that a stimulus bit is UNDEF rather than 0/1 -- keeps
#: the four-valued planes honest without drowning the logic in x.
UNDEF_RATE = 1 / 16


@dataclass
class RoundTrip:
    """One export/import cycle: everything both sides of the
    differential need."""

    design: object  # the original Design
    verilog: str
    manifest: dict
    imported: object  # the re-read Design


def round_trip(design, *, module_name: str | None = None) -> RoundTrip:
    """Emit *design* to structural Verilog and read it back."""
    text, manifest = emit_verilog(design, module_name=module_name)
    imported = read_verilog(text, name=f"{design.name}.v")
    return RoundTrip(design, text, manifest, imported)


def _stimulus(netlist, rng, n_vectors):
    """Per IN port: one per-bit Logic list per vector."""
    vectors = []
    for _ in range(n_vectors):
        vec = {}
        for port in netlist.ports:
            if port.mode != "IN":
                continue
            vec[port.name] = [
                Logic.UNDEF if rng.random() < UNDEF_RATE
                else Logic(rng.randint(0, 1))
                for _ in port.nets
            ]
        vectors.append(vec)
    return vectors


def _lane_observations(sim, watch, n_lanes, cycles):
    """rows[k][cycle] = per-watched-signal per-bit strings; plus final
    registers and violation sets per lane.  *watch* maps an observation
    key to the signal path (original side) or the list of per-bit
    paths (imported side)."""
    rows = [[] for _ in range(n_lanes)]
    for _ in range(cycles):
        sim.step()
        snap = {}
        for key, paths in watch.items():
            if isinstance(paths, str):
                snap[key] = sim.peek_lanes(paths)
            else:
                per_bit = [sim.peek_lanes(p) for p in paths]
                snap[key] = [
                    [bits[k][0] for bits in per_bit]
                    for k in range(n_lanes)
                ]
        for k in range(n_lanes):
            rows[k].append(
                tuple(
                    tuple(str(v) for v in snap[key][k])
                    for key in watch
                )
            )
    regs = [
        {name: str(v) for name, v in sim.registers(lane=k).items()}
        for k in range(n_lanes)
    ]
    viols = [
        sorted((v.cycle, v.net) for v in sim.violations if v.lane == k)
        for k in range(n_lanes)
    ]
    return rows, regs, viols


def cosimulate(
    rt: RoundTrip,
    *,
    cycles: int = 4,
    n_vectors: int = 8,
    seed: int = 0,
    vectors: list[dict] | None = None,
) -> DifferentialResult:
    """Drive both sides of *rt* with identical stimulus and compare
    every observation.  Returns a falsy result with a located mismatch
    description on the first disagreement."""
    from repro import Simulator

    netlist = rt.design.netlist
    nm = name_map(rt.manifest)
    port_bits = {
        p["name"]: p["bits"] for p in rt.manifest["ports"]
    }
    if vectors is None:
        vectors = _stimulus(netlist, random.Random(seed), n_vectors)
    n_lanes = max(1, len(vectors))

    watch_orig = {
        p.name: p.name
        for p in netlist.ports
        if p.mode in ("OUT", "INOUT")
    }
    watch_imp = {
        p.name: port_bits[p.name]
        for p in netlist.ports
        if p.mode in ("OUT", "INOUT")
    }

    sim_o = Simulator(
        rt.design, engine="batched", lanes=n_lanes, strict=False, seed=seed
    )
    sim_i = Simulator(
        rt.imported, engine="batched", lanes=n_lanes, strict=False, seed=seed
    )
    for pname in (vectors[0] if vectors else {}):
        sim_o.poke_lanes(pname, [vec[pname] for vec in vectors])
        for j, bit_name in enumerate(port_bits[pname]):
            sim_i.poke_lanes(
                bit_name, [[vec[pname][j]] for vec in vectors]
            )

    rows_o, regs_o, viols_o = _lane_observations(
        sim_o, watch_orig, n_lanes, cycles)
    rows_i, regs_i, viols_i = _lane_observations(
        sim_i, watch_imp, n_lanes, cycles)

    reg_map = rt.manifest["regs"]
    for k in range(n_lanes):
        for cycle, (ro, ri) in enumerate(zip(rows_o[k], rows_i[k])):
            if ro != ri:
                for pname, po, pi in zip(watch_orig, ro, ri):
                    if po != pi:
                        return DifferentialResult(
                            False,
                            f"round-trip lane {k} cycle {cycle} port "
                            f"{pname}: original {list(po)} "
                            f"imported {list(pi)}",
                        )
        mapped_regs = {reg_map[key]: v for key, v in regs_o[k].items()}
        if mapped_regs != regs_i[k]:
            return DifferentialResult(
                False,
                f"round-trip lane {k} registers: original "
                f"{mapped_regs} imported {regs_i[k]}",
            )
        mapped_viols = sorted(
            (cycle, nm[net]) for cycle, net in viols_o[k]
        )
        if mapped_viols != viols_i[k]:
            return DifferentialResult(
                False,
                f"round-trip lane {k} violations: original "
                f"{mapped_viols} imported {viols_i[k]}",
            )
    return DifferentialResult(True)


def check_program(
    text: str,
    *,
    name: str = "design",
    cycles: int = 4,
    n_vectors: int = 8,
    seed: int = 0,
) -> DifferentialResult:
    """Compile a Zeus program, round-trip it, and co-simulate."""
    import repro

    circuit = repro.compile_text(text, name=name, strict=False)
    rt = round_trip(circuit.design)
    return cosimulate(
        rt, cycles=cycles, n_vectors=n_vectors, seed=seed)


def stdlib_corpus() -> list[tuple[str, str]]:
    """Every stdlib program, paper examples and extras alike."""
    from repro.stdlib import ALL_PROGRAMS, EXTRA_PROGRAMS

    corpus = list(ALL_PROGRAMS.items())
    corpus += [(n, t) for n, t in EXTRA_PROGRAMS.items()
               if n not in ALL_PROGRAMS]
    return corpus


def check_corpus(
    *, cycles: int = 4, n_vectors: int = 8, seed: int = 0
) -> list[tuple[str, DifferentialResult]]:
    """Round-trip the whole stdlib corpus; one result per program."""
    return [
        (name, check_program(
            text, name=name, cycles=cycles, n_vectors=n_vectors, seed=seed))
        for name, text in stdlib_corpus()
    ]
