"""Graphviz (DOT) export of the semantics graph.

Renders the section-8 picture: signal nodes (ellipses), predefined
component nodes (boxes), registers (double octagons, the cycle
breakers), guarded edges dashed and labelled with their condition.
"""

from __future__ import annotations

from ..core.netlist import Netlist


def _quote(name: str) -> str:
    return '"' + name.replace('"', r"\"") + '"'


def to_dot(netlist: Netlist, *, include_synthetic: bool = True) -> str:
    """Serialise the semantics graph as a DOT digraph.

    ``include_synthetic=False`` hides the elaborator's helper nets
    (names starting with ``$``), which makes small examples readable.
    """
    find = netlist.find
    lines = [
        f"digraph {_quote(netlist.name)} {{",
        "  rankdir=LR;",
        "  node [fontsize=10];",
    ]

    def visible(name: str) -> bool:
        return include_synthetic or not name.split(".")[-1].startswith("$")

    emitted: set[int] = set()

    def net_node(net) -> str:
        canon = find(net)
        if canon.id not in emitted:
            emitted.add(canon.id)
            shape = "ellipse"
            style = ""
            if canon.is_input:
                style = ' style=filled fillcolor="#dff3df"'
            elif canon.is_output:
                style = ' style=filled fillcolor="#dfe4f3"'
            if canon.kind != "boolean":
                shape = "hexagon"  # multiplex (tri-state) signals
            lines.append(
                f"  n{canon.id} [label={_quote(canon.name)} shape={shape}{style}];"
            )
        return f"n{canon.id}"

    for gate in netlist.gates:
        gid = f"g{gate.id}"
        lines.append(f"  {gid} [label={_quote(gate.op)} shape=box];")
        for inp in gate.inputs:
            if visible(find(inp).name):
                lines.append(f"  {net_node(inp)} -> {gid};")
        if visible(find(gate.output).name):
            lines.append(f"  {gid} -> {net_node(gate.output)};")

    for i, reg in enumerate(netlist.regs):
        rid = f"r{i}"
        label = reg.name or f"REG{i}"
        lines.append(f"  {rid} [label={_quote(label)} shape=doubleoctagon];")
        lines.append(f"  {net_node(reg.d)} -> {rid} [style=bold];")
        lines.append(f"  {rid} -> {net_node(reg.q)} [style=bold];")

    for conn in netlist.unique_conns():
        src, dst = net_node(conn.src), net_node(conn.dst)
        if conn.cond is None:
            lines.append(f"  {src} -> {dst};")
        else:
            guard = find(conn.cond).name
            lines.append(
                f"  {src} -> {dst} [style=dashed label={_quote(guard)} fontsize=8];"
            )

    for cc in netlist.unique_const_conns():
        cid = f"c_{cc.dst.id}_{int(cc.value)}"
        lines.append(f"  {cid} [label={_quote(str(cc.value))} shape=plaintext];")
        style = "" if cc.cond is None else " [style=dashed]"
        lines.append(f"  {cid} -> {net_node(cc.dst)}{style};")

    lines.append("}")
    return "\n".join(lines) + "\n"


def write_dot(netlist: Netlist, path: str, **kwargs) -> None:
    with open(path, "w", encoding="utf-8") as f:
        f.write(to_dot(netlist, **kwargs))
