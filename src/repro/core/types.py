"""Elaborated Zeus types (paper section 3.2 and the rules of 4.7).

Type *expressions* in the AST are templates -- they may mention type
parameters and constant expressions.  This module defines the fully
elaborated type values the rest of the compiler works with:

* :class:`BasicV` -- ``boolean``, ``multiplex`` or ``virtual``;
* :class:`ArrayV` -- an array with resolved integer bounds;
* :class:`ComponentV` -- a component/record type with elaborated
  parameter list; carries the defining AST and closure environment so
  instantiation can elaborate the body.

The central derived notion is the sequence of **basic substructures** of a
type ("the types of z and e have the same number of basic components" is
the universal compatibility rule of section 4.7): :meth:`TypeV.leaves`
enumerates them in natural order together with their dotted path and the
parameter mode inherited from the enclosing parameter declarations.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..lang import ast
from ..lang.errors import TypeError_
from ..lang.source import NO_SPAN, Span

if TYPE_CHECKING:
    from .symbols import Env


BOOLEAN = "boolean"
MULTIPLEX = "multiplex"
VIRTUAL = "virtual"


@dataclass(frozen=True)
class Leaf:
    """One basic substructure of a type: its dotted path (for messages),
    its basic kind, and its effective parameter mode."""

    path: str
    kind: str  # BOOLEAN or MULTIPLEX
    mode: ast.Mode


class TypeV:
    """Base class of elaborated type values."""

    @property
    def width(self) -> int:
        """Number of basic substructures."""
        raise NotImplementedError

    def leaves(self, prefix: str = "", mode: ast.Mode = ast.Mode.INOUT) -> Iterator[Leaf]:
        """All basic substructures in natural order."""
        raise NotImplementedError

    def describe(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:
        return self.describe()


@dataclass(frozen=True)
class BasicV(TypeV):
    kind: str  # BOOLEAN, MULTIPLEX or VIRTUAL

    @property
    def width(self) -> int:
        return 1

    def leaves(self, prefix: str = "", mode: ast.Mode = ast.Mode.INOUT) -> Iterator[Leaf]:
        yield Leaf(prefix or "<signal>", self.kind, mode)

    def describe(self) -> str:
        return self.kind


BOOLEAN_T = BasicV(BOOLEAN)
MULTIPLEX_T = BasicV(MULTIPLEX)
VIRTUAL_T = BasicV(VIRTUAL)


@dataclass(frozen=True)
class ArrayV(TypeV):
    lo: int
    hi: int
    element: TypeV

    def __post_init__(self) -> None:
        if self.hi < self.lo - 1:  # empty arrays (hi == lo-1) are tolerated
            raise TypeError_(f"array bounds [{self.lo}..{self.hi}] are decreasing")

    @property
    def length(self) -> int:
        return self.hi - self.lo + 1

    @property
    def width(self) -> int:
        return self.length * self.element.width

    def leaves(self, prefix: str = "", mode: ast.Mode = ast.Mode.INOUT) -> Iterator[Leaf]:
        for i in range(self.lo, self.hi + 1):
            yield from self.element.leaves(f"{prefix}[{i}]", mode)

    def describe(self) -> str:
        return f"ARRAY[{self.lo}..{self.hi}] OF {self.element.describe()}"


@dataclass(frozen=True)
class ParamV:
    """One elaborated formal parameter (a pin or pin group)."""

    name: str
    mode: ast.Mode
    type: TypeV

    def leaves(self, prefix: str = "") -> Iterator[Leaf]:
        path = f"{prefix}.{self.name}" if prefix else self.name
        yield from self.type.leaves(path, self.mode)


@dataclass(frozen=True)
class ComponentV(TypeV):
    """An elaborated component type.

    ``name`` is the declared type name ("" for anonymous types),
    ``params`` the elaborated interface.  For component types *with* a
    body, ``decl_ast`` and ``closure`` carry what instantiation needs to
    elaborate the internals; record types (no body) have ``decl_ast`` with
    ``body is None``.  ``result`` is the value type of function component
    types.  ``type_args`` are the actual numeric parameters this value was
    elaborated with (used for recursion diagnostics and display).
    """

    name: str
    params: tuple[ParamV, ...]
    result: TypeV | None = None
    decl_ast: ast.ComponentType | None = field(default=None, compare=False)
    closure: "Env | None" = field(default=None, compare=False, repr=False)
    type_args: tuple[int, ...] = ()
    span: Span = field(default=NO_SPAN, compare=False)

    @property
    def has_body(self) -> bool:
        return self.decl_ast is not None and self.decl_ast.body is not None

    @property
    def is_function(self) -> bool:
        return self.result is not None

    @property
    def is_record(self) -> bool:
        return not self.has_body and not self.is_function

    @property
    def width(self) -> int:
        """Interface width: total basic substructures over all pins."""
        return sum(p.type.width for p in self.params)

    def leaves(self, prefix: str = "", mode: ast.Mode = ast.Mode.INOUT) -> Iterator[Leaf]:
        for p in self.params:
            path = f"{prefix}.{p.name}" if prefix else p.name
            # Mode inheritance (section 3.2): an explicit IN/OUT on the
            # inner declaration wins; INOUT inherits the outer mode.
            inner = p.mode if p.mode is not ast.Mode.INOUT else mode
            yield from p.type.leaves(path, inner)

    def param(self, name: str) -> ParamV:
        for p in self.params:
            if p.name == name:
                return p
        raise TypeError_(f"component {self.describe()} has no pin {name!r}")

    def param_index(self, name: str) -> int:
        for i, p in enumerate(self.params):
            if p.name == name:
                return i
        raise TypeError_(f"component {self.describe()} has no pin {name!r}")

    def describe(self) -> str:
        args = ""
        if self.type_args:
            args = "(" + ", ".join(str(a) for a in self.type_args) + ")"
        name = self.name or "COMPONENT"
        return f"{name}{args}"


def same_shape(a: TypeV, b: TypeV) -> bool:
    """The universal compatibility test of section 4.7: equal number of
    basic substructures (their kinds are checked per assignment rule)."""
    return a.width == b.width


def leaf_kinds(t: TypeV) -> list[str]:
    return [leaf.kind for leaf in t.leaves()]
