"""The four-valued Zeus signal domain (paper sections 3.3 and 8).

Signals take values in {0, 1, UNDEF, NOINFL}:

* ``ZERO``/``ONE`` -- the defined logic levels;
* ``UNDEF`` -- undefined (an X); produced by gates whose inputs do not
  determine the output, by reading an unwritten register, and by the
  multi-driver runtime check;
* ``NOINFL`` -- "no influence": the disconnected / high-impedance state,
  legal only on signals of type *multiplex* (the paper's name for
  tri-state).

This module also implements the short-circuiting gate rules of section 8
("the AND node fires 0 as soon as one entering edge is 0") and the
bus-resolution rule ("NOINFL is overruled by any other value; two or more
(0,1,UNDEF) assignments give UNDEF and an error").
"""

from __future__ import annotations

from enum import IntEnum
from typing import Iterable, Sequence


class Logic(IntEnum):
    """One Zeus signal value."""

    ZERO = 0
    ONE = 1
    UNDEF = 2
    NOINFL = 3

    def __str__(self) -> str:
        return _NAMES[self]

    @property
    def is_defined(self) -> bool:
        """True for the strict logic levels 0 and 1."""
        return self in (Logic.ZERO, Logic.ONE)

    @property
    def is_driving(self) -> bool:
        """True for every value except the high-impedance NOINFL."""
        return self is not Logic.NOINFL

    def to_boolean(self) -> "Logic":
        """Convert a multiplex value to the boolean domain.

        The paper specifies the conversion multiplex -> boolean is done by
        implicitly generated hardware (an amplifier); a floating input reads
        as UNDEF (``x := NOINFL`` is replaced by ``x := UNDEF``).
        """
        return Logic.UNDEF if self is Logic.NOINFL else self

    @classmethod
    def from_bit(cls, bit: int) -> "Logic":
        if bit == 0:
            return cls.ZERO
        if bit == 1:
            return cls.ONE
        raise ValueError(f"not a bit: {bit!r}")

    @classmethod
    def from_name(cls, name: str) -> "Logic":
        try:
            return _BY_NAME[name]
        except KeyError:
            raise ValueError(f"not a Zeus signal value: {name!r}") from None


_NAMES = {
    Logic.ZERO: "0",
    Logic.ONE: "1",
    Logic.UNDEF: "UNDEF",
    Logic.NOINFL: "NOINFL",
}

_BY_NAME = {
    "0": Logic.ZERO,
    "1": Logic.ONE,
    "UNDEF": Logic.UNDEF,
    "NOINFL": Logic.NOINFL,
}

ZERO = Logic.ZERO
ONE = Logic.ONE
UNDEF = Logic.UNDEF
NOINFL = Logic.NOINFL


class MultipleDriverError(Exception):
    """More than one (0,1,UNDEF) assignment reached one signal in a cycle.

    This is the runtime half of the "burning transistors" protection; the
    simulator converts it into a
    :class:`~repro.lang.errors.SimulationError` with a source location.
    """

    def __init__(self, values: Sequence[Logic]):
        super().__init__(
            "signal driven by multiple values in one cycle: "
            + ", ".join(str(v) for v in values)
        )
        self.values = list(values)


def resolve(contributions: Iterable[Logic], *, strict: bool = True) -> Logic:
    """Resolve the simultaneous contributions to one (multiplex) signal.

    * all NOINFL -> NOINFL;
    * exactly one driving value -> that value;
    * two or more driving values -> UNDEF, and -- when *strict* -- a
      :class:`MultipleDriverError` (the section-8 rule: "if x is assigned
      several times 0, 1 or UNDEF at runtime then x has value UNDEF and an
      error message is given").
    """
    driving = [v for v in contributions if v is not Logic.NOINFL]
    if not driving:
        return Logic.NOINFL
    if len(driving) == 1:
        return driving[0]
    if strict:
        raise MultipleDriverError(driving)
    return Logic.UNDEF


# ---------------------------------------------------------------------------
# Predefined function components (section 8 firing rules).
#
# Each n-ary gate has two layers of behaviour:
#   * `partial` semantics used during firing: given the values known so
#     far (None for unknown), return the output if it is already
#     determined, else None;
#   * strict full evaluation once all inputs are known.
# The simulator feeds only *boolean-converted* values to gates: a NOINFL
# arriving at a gate input has been amplified to UNDEF beforehand.
# ---------------------------------------------------------------------------


def and_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    """AND: fires 0 as soon as one input is 0; 1 iff all are 1."""
    if any(v is Logic.ZERO for v in inputs):
        return Logic.ZERO
    if any(v is None for v in inputs):
        return None
    if all(v is Logic.ONE for v in inputs):
        return Logic.ONE
    return Logic.UNDEF


def or_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    """OR: fires 1 as soon as one input is 1; 0 iff all are 0."""
    if any(v is Logic.ONE for v in inputs):
        return Logic.ONE
    if any(v is None for v in inputs):
        return None
    if all(v is Logic.ZERO for v in inputs):
        return Logic.ZERO
    return Logic.UNDEF


def nand_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    out = and_gate(inputs)
    return None if out is None else not_gate(out)


def nor_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    out = or_gate(inputs)
    return None if out is None else not_gate(out)


def xor_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    """XOR: needs all inputs defined (section 8); no short-circuit."""
    if any(v is None for v in inputs):
        return None
    if all(v is not None and v.is_defined for v in inputs):
        ones = sum(1 for v in inputs if v is Logic.ONE)
        return Logic.ONE if ones % 2 == 1 else Logic.ZERO
    return Logic.UNDEF


def equal_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    """EQUAL on one bit position: 1 iff all defined and equal.

    Fires ZERO as soon as two defined, differing values are present —
    the comparison is settled no matter what the remaining (unfired or
    undefined) inputs turn out to be (section-8 firing rules).
    """
    first: Logic | None = None
    unknown = undef = False
    for v in inputs:
        if v is None:
            unknown = True
        elif not v.is_defined:
            undef = True
        elif first is None:
            first = v
        elif v is not first:
            return Logic.ZERO
    if unknown:
        return None
    return Logic.UNDEF if undef else Logic.ONE


def not_gate(value: Logic | None) -> Logic | None:
    if value is None:
        return None
    if value is Logic.ZERO:
        return Logic.ONE
    if value is Logic.ONE:
        return Logic.ZERO
    return Logic.UNDEF


def equal_bus_gate(inputs: Sequence[Logic | None]) -> Logic | None:
    """EQUAL as instantiated in a netlist: ``EQUAL(a, b)`` where the
    input list is the concatenation of the two operand buses (first
    half vs. second half, positionally paired).

    A single position with two defined, differing values settles the
    comparison to ZERO no matter what the other (possibly unfired or
    undefined) positions hold — the section-8 firing rule.  This is the
    one table both the simulator and the formal solver evaluate EQUAL
    through, so they cannot drift apart (:mod:`repro.formal.solver`
    cross-checks every op against these functions).
    """
    half = len(inputs) // 2
    unknown = undef = False
    for x, y in zip(inputs[:half], inputs[half:]):
        if x is None or y is None:
            unknown = True
        elif x.is_defined and y.is_defined:
            if x is not y:
                return Logic.ZERO
        else:
            undef = True
    if unknown:
        return None
    return Logic.UNDEF if undef else Logic.ONE


#: Gate evaluators keyed by the predefined component name.  Every entry
#: maps a sequence of per-bit input values (None = not yet fired) to an
#: output value or None (cannot fire yet).
GATE_FUNCTIONS = {
    "AND": and_gate,
    "OR": or_gate,
    "NAND": nand_gate,
    "NOR": nor_gate,
    "XOR": xor_gate,
    "EQUAL": equal_gate,
    "NOT": lambda inputs: not_gate(inputs[0]),
}

#: Gate evaluators as wired by the elaborator: identical to
#: :data:`GATE_FUNCTIONS` except EQUAL, which a netlist instantiates as
#: one comparator over two concatenated operand buses rather than one
#: per-position comparator.  The simulator and the formal solver both
#: evaluate through this table (the single-source-of-truth for gate
#: semantics); RANDOM is the one op not here because it has no function
#: semantics.
NETLIST_GATE_FUNCTIONS = dict(GATE_FUNCTIONS)
NETLIST_GATE_FUNCTIONS["EQUAL"] = equal_bus_gate


def bits_of(value: int, width: int) -> list[Logic]:
    """``BIN(value, width)``: number to bits, index 1 = least significant.

    The paper's examples (``ten = BIN(10,5)`` added to 5-bit scores with a
    ripple adder whose stage 1 consumes bit 1 and carries upward) fix the
    convention: element 1 of the resulting ARRAY[1..width] is the LSB.
    """
    if width < 0:
        raise ValueError("BIN width must be non-negative")
    if value < 0:
        raise ValueError("BIN value must be non-negative")
    if value >= 1 << width:
        raise ValueError(f"BIN({value}, {width}): value does not fit")
    return [Logic.from_bit((value >> i) & 1) for i in range(width)]


def num_of(bits: Sequence[Logic]) -> int | None:
    """``NUM(signal)``: bits to number; None when any bit is not defined."""
    total = 0
    for i, bit in enumerate(bits):
        if not bit.is_defined:
            return None
        if bit is Logic.ONE:
            total |= 1 << i
    return total
