"""The levelized fast-path simulation engine.

The semantics graph of a *checked* design is acyclic once REGs cut the
cycles (paper section 8: "we disallow feedback loops which do not lead
through registers").  On such a graph the dataflow firing machinery of
:mod:`repro.core.simulator` -- a worklist, per-net watch dictionaries and
six scratch arrays reallocated every cycle -- is pure overhead: every net
class fires exactly once per cycle, in any topological order of the
REG-cut graph.

This module compiles the simulator's indexed netlist view into a
:class:`Schedule`: a flat, static evaluation order computed once at
:class:`~repro.core.simulator.Simulator` construction.  A cycle is then
one pass over that schedule -- no queue, no watch lists, no per-cycle
allocation.  The approach is the classic levelized compiled-code
simulation move (Hardcaml's cyclesim makes the same bet).

Equivalence contract
--------------------

:func:`execute` must be observationally identical to one
``Simulator.evaluate()`` dataflow pass: same ``values`` (and hence the
same peeks and register latching), the same violations, and the same
``random.Random`` consumption order for RANDOM gates (the dataflow
engine fires input-less gates in gate-index order at the start of the
pass; the schedule preserves exactly that order).  Anything the schedule
cannot prove it can reproduce -- a combinational cycle, or an alias
class with more than one producer (e.g. a gate output ``==``-merged with
a driven signal), where the dataflow engine's outcome depends on firing
order -- raises :class:`ScheduleError` at build time and the simulator
falls back to the dataflow engine.  ``tests/test_engines.py`` checks the
contract differentially over the stdlib programs and the fuzz corpus.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from .values import GATE_FUNCTIONS, Logic

if TYPE_CHECKING:
    from .simulator import Simulator

# Opcodes of the flat schedule.  Class-producing ops (COPY/CONST/CLASS)
# consult the poke table at runtime -- a poke on a driven class counts as
# one extra driver, exactly as in the dataflow engine.
OPC_COPY = 0    # (OPC_COPY, dst, src): single unconditional connection
OPC_AND = 1     # (OPC_AND, ins, out)
OPC_CLASS = 2   # (OPC_CLASS, dst, ((cond|-1, src|-1, const|None), ...))
OPC_NOT = 3     # (OPC_NOT, in, out)
OPC_EQUAL = 4   # (OPC_EQUAL, ((a_i, b_i), ...), out)
OPC_OR = 5      # (OPC_OR, ins, out)
OPC_CONST = 6   # (OPC_CONST, dst, const): single unconditional constant
OPC_XOR = 7     # (OPC_XOR, ins, out)
OPC_NAND = 8    # (OPC_NAND, ins, out)
OPC_NOR = 9     # (OPC_NOR, ins, out)
OPC_RANDOM = 10  # (OPC_RANDOM, out): source op, consumes the sim rng
OPC_SET = 11    # (OPC_SET, out, value): source op, precomputed constant

_NARY_CODES = {"AND": OPC_AND, "OR": OPC_OR, "NAND": OPC_NAND,
               "NOR": OPC_NOR, "XOR": OPC_XOR}


class ScheduleError(Exception):
    """The semantics graph cannot be compiled to a static schedule
    (combinational cycle, or an order-dependent alias class)."""


class Schedule:
    """A static evaluation schedule for one elaborated design.

    Immutable after :func:`build_schedule`; one instance is shared by
    every cycle of the owning simulator.
    """

    __slots__ = (
        "n",
        "none_row",
        "free_nets",
        "input_defaults",
        "reg_pairs",
        "source_ops",
        "ops",
        "n_gates",
        "n_drivers",
        "gate_ids",
    )

    def __init__(self) -> None:
        self.n = 0
        #: template row for resetting the value array (one slot per class).
        self.none_row: list[None] = []
        #: classes that fire NOINFL at cycle start (no driver of any kind).
        self.free_nets: list[int] = []
        #: ``(class, default)`` for driverless primary inputs; a poke
        #: overrides the default at runtime.
        self.input_defaults: list[tuple[int, Logic]] = []
        #: ``(reg_index, q_class)`` pairs fired from register state.
        self.reg_pairs: list[tuple[int, int]] = []
        #: input-less gates in gate-index order (RANDOM rng-order fidelity).
        self.source_ops: list[tuple] = []
        #: the topologically ordered body: one op per gate / driven class.
        self.ops: list[tuple] = []
        self.n_gates = 0
        self.n_drivers = 0
        self.gate_ids: list[int] = []

    def describe(self) -> str:
        return (
            f"levelized schedule: {self.n} classes, "
            f"{len(self.ops)} scheduled ops, {len(self.source_ops)} source "
            f"gates, {len(self.free_nets)} free nets"
        )


def build_schedule(sim: "Simulator") -> Schedule:
    """Compile *sim*'s indexed netlist view into a :class:`Schedule`.

    Raises :class:`ScheduleError` when the REG-cut graph has a
    combinational cycle or when an alias class has more than one
    producer (the only situations where dataflow firing order matters).
    """
    n = len(sim._canon_ids)
    display = sim._display
    drivers = sim._drivers
    drivers_of = sim._drivers_of
    gates = sim._gates
    gate_in = sim._gate_in
    gate_out = sim._gate_out

    # -- every class must have exactly one producer --------------------
    producer: list[str | None] = [None] * n

    def claim(i: int, kind: str) -> None:
        if producer[i] is not None:
            raise ScheduleError(
                f"net {display[i]!r} has two producers ({producer[i]} and "
                f"{kind}); the firing order would decide its value"
            )
        producer[i] = kind

    for i in sim._free:
        claim(i, "free default")
    for i in range(n):
        if sim._is_input[i] and not drivers_of[i]:
            claim(i, "input default")
    for ri, qi in enumerate(sim._reg_q):
        claim(qi, "register output")
    for gi, out in enumerate(gate_out):
        claim(out, "gate output")
    for ci in range(n):
        if drivers_of[ci]:
            claim(ci, "connection drivers")
    for i in range(n):
        if producer[i] is None:  # pragma: no cover - defensive
            raise ScheduleError(f"net {display[i]!r} has no producer")

    # -- dependency nodes: gates with inputs, and driven classes -------
    node_of: list[int | None] = [None] * n
    nodes: list[tuple[str, int]] = []
    for gi, ins in enumerate(gate_in):
        if ins:
            node_of[gate_out[gi]] = len(nodes)
            nodes.append(("gate", gi))
    for ci in range(n):
        if drivers_of[ci]:
            node_of[ci] = len(nodes)
            nodes.append(("class", ci))

    total = len(nodes)
    indegree = [0] * total
    out_edges: list[list[int]] = [[] for _ in range(total)]

    def add_edge(src_class: int, node: int) -> None:
        p = node_of[src_class]
        if p is not None:
            out_edges[p].append(node)
            indegree[node] += 1

    for node, (kind, idx) in enumerate(nodes):
        if kind == "gate":
            for i in gate_in[idx]:
                add_edge(i, node)
        else:
            for di in drivers_of[idx]:
                drv = drivers[di]
                if drv.cond is not None:
                    add_edge(drv.cond, node)
                if drv.src is not None:
                    add_edge(drv.src, node)

    queue = deque(i for i in range(total) if indegree[i] == 0)
    order: list[int] = []
    while queue:
        node = queue.popleft()
        order.append(node)
        for nxt in out_edges[node]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if len(order) != total:
        stuck = next(i for i in range(total) if indegree[i] > 0)
        kind, idx = nodes[stuck]
        name = display[gate_out[idx] if kind == "gate" else idx]
        raise ScheduleError(
            f"combinational cycle through {name!r} (not cut by a register)"
        )

    # -- emit the flat op list -----------------------------------------
    sched = Schedule()
    sched.n = n
    sched.none_row = [None] * n
    sched.free_nets = list(sim._free)
    sched.input_defaults = [
        (i, Logic.ZERO if display[i] in ("RSET", "CLK") else Logic.UNDEF)
        for i in range(n)
        if sim._is_input[i] and not drivers_of[i]
    ]
    sched.reg_pairs = list(enumerate(sim._reg_q))
    sched.n_gates = len(gates)
    sched.n_drivers = len(drivers)
    sched.gate_ids = list(range(len(gates)))

    for gi, ins in enumerate(gate_in):
        if ins:
            continue
        out = gate_out[gi]
        if gates[gi].op == "RANDOM":
            sched.source_ops.append((OPC_RANDOM, out))
        else:
            value = GATE_FUNCTIONS[gates[gi].op]([])
            sched.source_ops.append(
                (OPC_SET, out, Logic.UNDEF if value is None else value)
            )

    ops = sched.ops
    for node in order:
        kind, idx = nodes[node]
        if kind == "gate":
            op = gates[idx].op
            ins = tuple(gate_in[idx])
            out = gate_out[idx]
            if op == "NOT":
                ops.append((OPC_NOT, ins[0], out))
            elif op == "EQUAL":
                half = len(ins) // 2
                ops.append((OPC_EQUAL, tuple(zip(ins[:half], ins[half:])), out))
            elif op in _NARY_CODES:
                ops.append((_NARY_CODES[op], ins, out))
            else:
                raise ScheduleError(f"gate op {op!r} has no levelized rule")
        else:
            ci = idx
            ds = drivers_of[ci]
            if len(ds) == 1:
                drv = drivers[ds[0]]
                if drv.cond is None:
                    if drv.const is None:
                        ops.append((OPC_COPY, ci, drv.src))
                    else:
                        ops.append((OPC_CONST, ci, drv.const))
                    continue
            spec = tuple(
                (
                    drv.cond if drv.cond is not None else -1,
                    drv.src if drv.src is not None else -1,
                    drv.const,
                )
                for drv in (drivers[di] for di in ds)
            )
            ops.append((OPC_CLASS, ci, spec))
    return sched


def execute(
    sched: Schedule,
    values: list,
    pokes: dict,
    reg_state: list,
    rng_random: Callable[[], float],
    conflict: Callable[[int, Logic, Logic], Logic],
) -> None:
    """One combinational evaluation pass over the static schedule.

    ``values`` is the simulator's per-class value array (reset here);
    ``conflict(dst, prior, value)`` records a multi-drive violation and
    returns the resolved value (UNDEF), raising in strict mode.
    """
    ZERO_ = Logic.ZERO
    ONE_ = Logic.ONE
    UNDEF_ = Logic.UNDEF
    NOINFL_ = Logic.NOINFL

    values[:] = sched.none_row
    get_poke = pokes.get

    # Source firings (cycle start).
    for i in sched.free_nets:
        values[i] = NOINFL_
    for i, default in sched.input_defaults:
        v = get_poke(i)
        values[i] = default if v is None else v
    for ri, qi in sched.reg_pairs:
        values[qi] = reg_state[ri]
    for op in sched.source_ops:
        if op[0] == OPC_RANDOM:
            values[op[1]] = ONE_ if rng_random() < 0.5 else ZERO_
        else:
            values[op[1]] = op[2]

    # The single levelized pass.
    for op in sched.ops:
        code = op[0]
        if code == OPC_COPY:
            dst = op[1]
            pv = get_poke(dst)
            if pv is None:
                values[dst] = values[op[2]]
            else:
                c = values[op[2]]
                if pv is NOINFL_:
                    values[dst] = c
                elif c is NOINFL_:
                    values[dst] = pv
                else:
                    values[dst] = conflict(dst, pv, c)
        elif code == OPC_AND:
            r = ONE_
            for i in op[1]:
                v = values[i]
                if v is ZERO_:
                    r = ZERO_
                    break
                if v is not ONE_:
                    r = UNDEF_
            values[op[2]] = r
        elif code == OPC_CLASS:
            dst = op[1]
            driving = None
            undef_guard = False
            pv = get_poke(dst)
            if pv is not None and pv is not NOINFL_:
                driving = pv
            for cond, src, const in op[2]:
                if cond >= 0:
                    cv = values[cond]
                    if cv is ZERO_:
                        continue  # guard off: NOINFL contribution
                    if cv is not ONE_:
                        undef_guard = True  # guard UNDEF: may drive
                        continue
                c = const if const is not None else values[src]
                if c is NOINFL_:
                    continue
                if driving is None:
                    driving = c
                else:
                    driving = conflict(dst, driving, c)
            if undef_guard:
                values[dst] = UNDEF_
            elif driving is None:
                values[dst] = NOINFL_
            else:
                values[dst] = driving
        elif code == OPC_NOT:
            v = values[op[1]]
            values[op[2]] = (
                ONE_ if v is ZERO_ else (ZERO_ if v is ONE_ else UNDEF_)
            )
        elif code == OPC_EQUAL:
            r = ONE_
            for ai, bi in op[1]:
                x = values[ai]
                y = values[bi]
                if x is ZERO_ or x is ONE_:
                    if y is x:
                        continue
                    if y is ZERO_ or y is ONE_:
                        r = ZERO_  # a defined, differing bit decides
                        break
                    r = UNDEF_
                else:
                    r = UNDEF_
            values[op[2]] = r
        elif code == OPC_OR:
            r = ZERO_
            for i in op[1]:
                v = values[i]
                if v is ONE_:
                    r = ONE_
                    break
                if v is not ZERO_:
                    r = UNDEF_
            values[op[2]] = r
        elif code == OPC_CONST:
            dst = op[1]
            pv = get_poke(dst)
            if pv is None:
                values[dst] = op[2]
            else:
                c = op[2]
                if pv is NOINFL_:
                    values[dst] = c
                elif c is NOINFL_:
                    values[dst] = pv
                else:
                    values[dst] = conflict(dst, pv, c)
        elif code == OPC_XOR:
            ones = 0
            undef = False
            for i in op[1]:
                v = values[i]
                if v is ONE_:
                    ones += 1
                elif v is not ZERO_:
                    undef = True
                    break
            values[op[2]] = (
                UNDEF_ if undef else (ONE_ if ones & 1 else ZERO_)
            )
        elif code == OPC_NAND:
            r = ONE_
            for i in op[1]:
                v = values[i]
                if v is ZERO_:
                    r = ZERO_
                    break
                if v is not ONE_:
                    r = UNDEF_
            values[op[2]] = (
                ZERO_ if r is ONE_ else (ONE_ if r is ZERO_ else UNDEF_)
            )
        elif code == OPC_NOR:
            r = ZERO_
            for i in op[1]:
                v = values[i]
                if v is ONE_:
                    r = ONE_
                    break
                if v is not ZERO_:
                    r = UNDEF_
            values[op[2]] = (
                ZERO_ if r is ONE_ else (ONE_ if r is ZERO_ else UNDEF_)
            )
