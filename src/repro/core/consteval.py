"""Compile-time constant expression evaluation (sections 3.1 and 4.2).

Zeus adopts the Modula-2 syntax for numerical constant expressions; they
drive the meta language: replication bounds, WHEN conditions, type
parameters and array bounds.  Two value species exist:

* numbers (Python ``int``; relations/odd produce ``bool``, a subtype);
* signal constants -- nested tuples of :class:`~repro.core.values.Logic`
  (``(0,1)``, ``((0,1),(1,0))``, ``BIN(10,5)``...).

``DIV``/``MOD`` follow Modula-2 (floor division with the divisor's sign
rules reduced to the non-negative cases that matter here: we use floor
semantics and reject division by zero).  The predefined constant
functions are ``min``, ``max`` and ``odd`` (section 7 appendix).
"""

from __future__ import annotations

from typing import Any, Union

from ..lang import ast
from ..lang.errors import ElaborationError
from .symbols import ConstBinding, Env, LoopVar
from .values import Logic, bits_of

#: A structured signal constant: Logic at the leaves, tuples above.
ConstTree = Union[Logic, tuple]


def is_signal_const(value: Any) -> bool:
    return isinstance(value, (Logic, tuple))


def const_width(value: ConstTree) -> int:
    """Number of basic substructures of a signal constant."""
    if isinstance(value, Logic):
        return 1
    return sum(const_width(v) for v in value)


def const_leaves(value: ConstTree) -> list[Logic]:
    if isinstance(value, Logic):
        return [value]
    out: list[Logic] = []
    for item in value:
        out.extend(const_leaves(item))
    return out


def eval_const(expr: ast.Expr, env: Env) -> Any:
    """Evaluate a constant expression to an int/bool or a ConstTree."""
    if isinstance(expr, ast.NumberLit):
        return expr.value
    if isinstance(expr, ast.LogicLit):
        return Logic.from_name(expr.value)
    if isinstance(expr, ast.Name):
        return _eval_name(expr, env)
    if isinstance(expr, ast.Tuple_):
        return tuple(_to_const_tree(eval_const(item, env), item) for item in expr.items)
    if isinstance(expr, ast.BinCall):
        value = eval_int(expr.value, env)
        width = eval_int(expr.width, env)
        try:
            return tuple(bits_of(value, width))
        except ValueError as exc:
            raise ElaborationError(str(exc), expr.span) from None
    if isinstance(expr, ast.Unary):
        return _eval_unary(expr, env)
    if isinstance(expr, ast.Binary):
        return _eval_binary(expr, env)
    if isinstance(expr, ast.Call):
        return _eval_call(expr, env)
    raise ElaborationError(
        f"not a constant expression: {type(expr).__name__}", expr.span
    )


def eval_int(expr: ast.Expr, env: Env) -> int:
    """Evaluate a constant expression that must yield a number."""
    value = eval_const(expr, env)
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and not isinstance(value, Logic):
        return value
    raise ElaborationError("numeric constant expression required", expr.span)


def eval_condition(expr: ast.Expr, env: Env) -> bool:
    """Evaluate a WHEN condition: any non-zero number counts as true."""
    return eval_int(expr, env) != 0


def _eval_name(expr: ast.Name, env: Env) -> Any:
    binding = env.lookup(expr.ident, expr.span)
    if isinstance(binding, LoopVar):
        return binding.value
    if isinstance(binding, ConstBinding):
        return binding.value
    raise ElaborationError(
        f"{expr.ident!r} is not a constant in this context", expr.span
    )


def _to_const_tree(value: Any, expr: ast.Expr) -> ConstTree:
    """Interpret a constant value as part of a signal constant: the
    literals 0 and 1 become logic values inside tuples (section 3.1)."""
    if isinstance(value, Logic):
        return value
    if isinstance(value, tuple):
        return value
    if isinstance(value, bool):
        value = int(value)
    if value in (0, 1):
        return Logic.from_bit(value)
    raise ElaborationError(
        f"number {value} is not a basic signal constant (only 0 and 1 are)",
        expr.span,
    )


def _eval_unary(expr: ast.Unary, env: Env) -> Any:
    value = eval_const(expr.operand, env)
    if expr.op == "-":
        if isinstance(value, int) and not isinstance(value, Logic):
            return -value
        raise ElaborationError("unary '-' needs a number", expr.span)
    if expr.op == "+":
        return value
    if expr.op == "NOT":
        return not _as_bool(value, expr.operand)
    raise ElaborationError(f"unknown unary operator {expr.op!r}", expr.span)


def _eval_binary(expr: ast.Binary, env: Env) -> Any:
    op = expr.op
    if op in ("AND", "OR"):
        left = _as_bool(eval_const(expr.left, env), expr.left)
        # Modula-2 short-circuit semantics.
        if op == "AND":
            return left and _as_bool(eval_const(expr.right, env), expr.right)
        return left or _as_bool(eval_const(expr.right, env), expr.right)
    left = eval_const(expr.left, env)
    right = eval_const(expr.right, env)
    if op in ("=", "<>") and (is_signal_const(left) or is_signal_const(right)):
        equal = const_leaves(_as_tree(left, expr.left)) == const_leaves(
            _as_tree(right, expr.right)
        )
        return equal if op == "=" else not equal
    lnum = _as_int(left, expr.left)
    rnum = _as_int(right, expr.right)
    if op == "+":
        return lnum + rnum
    if op == "-":
        return lnum - rnum
    if op == "*":
        return lnum * rnum
    if op == "DIV":
        if rnum == 0:
            raise ElaborationError("DIV by zero in constant expression", expr.span)
        return lnum // rnum
    if op == "MOD":
        if rnum == 0:
            raise ElaborationError("MOD by zero in constant expression", expr.span)
        return lnum % rnum
    if op == "=":
        return lnum == rnum
    if op == "<>":
        return lnum != rnum
    if op == "<":
        return lnum < rnum
    if op == "<=":
        return lnum <= rnum
    if op == ">":
        return lnum > rnum
    if op == ">=":
        return lnum >= rnum
    raise ElaborationError(f"unknown operator {op!r}", expr.span)


def _eval_call(expr: ast.Call, env: Env) -> Any:
    if not isinstance(expr.func, ast.Name):
        raise ElaborationError("constant function name expected", expr.span)
    name = expr.func.ident
    args = [eval_const(a, env) for a in expr.args]
    if name == "min":
        return min(_as_int(a, expr) for a in args)
    if name == "max":
        return max(_as_int(a, expr) for a in args)
    if name == "odd":
        if len(args) != 1:
            raise ElaborationError("odd takes one argument", expr.span)
        return _as_int(args[0], expr) % 2 != 0
    raise ElaborationError(
        f"{name!r} is not a predefined constant function (min, max, odd)",
        expr.span,
    )


def _as_int(value: Any, expr: ast.Expr) -> int:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int) and not isinstance(value, Logic):
        return value
    raise ElaborationError("number expected in constant expression", expr.span)


def _as_bool(value: Any, expr: ast.Expr) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int) and not isinstance(value, Logic):
        return value != 0
    raise ElaborationError("boolean constant expected", expr.span)


def _as_tree(value: Any, expr: ast.Expr) -> ConstTree:
    if is_signal_const(value):
        return value  # type: ignore[return-value]
    return _to_const_tree(value, expr)
