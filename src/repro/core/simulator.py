"""The Zeus simulator: dataflow firing rules over the semantics graph
(paper section 8) plus the synchronous REG/CLK model (section 5).

One **clock cycle** re-evaluates every signal:

1. registers fire their stored value on the ``out`` pin, primary inputs
   fire their poked values, constants fire, RANDOM sources fire;
2. values propagate by the firing rules: a gate node fires as soon as its
   output is determined (AND fires 0 on the first 0 input); a boolean
   signal fires as soon as one driving value (0, 1, UNDEF) reaches it;
   a multiplex signal fires once *all* incoming edges have contributed,
   resolving NOINFL < {0, 1, UNDEF};
3. at the cycle end every REG latches: a driving value on ``in`` is
   stored; NOINFL (no active assignment this cycle) keeps the old value
   ("if *in* is not changed during a clock cycle, it keeps its value").

The runtime safety rule ("the simulator checks that at most one
(0,1,UNDEF)-assignment takes place at runtime") raises
:class:`~repro.lang.errors.SimulationError` in strict mode and records a
violation otherwise.

Class values are kept in the raw multiplex domain; consumption converts:
gate inputs and boolean ``peek`` results map NOINFL to UNDEF (the
implicit amplifier of section 3.2), REG latching maps NOINFL to "keep".
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..lang.errors import SimulationError
from ..obs.metrics import SimMetrics
from .elaborate import Design
from .netlist import Gate, Net
from .types import BOOLEAN
from .values import Logic

PokeValue = Union[Logic, int, str, Sequence[Union[Logic, int, str]]]


@dataclass
class Violation:
    """A recorded runtime rule violation (lenient mode)."""

    cycle: int
    net: str
    values: list[Logic]

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        return f"cycle {self.cycle}: signal {self.net!r} driven by [{vals}]"


class _Driver:
    __slots__ = ("cond", "src", "const", "dst")

    def __init__(self, dst: int, cond: int | None, src: int | None, const: Logic | None):
        self.dst = dst
        self.cond = cond
        self.src = src
        self.const = const


class Simulator:
    """Cycle-based simulator for an elaborated (and ideally checked)
    :class:`~repro.core.elaborate.Design`."""

    def __init__(
        self,
        design: Design,
        *,
        strict: bool = True,
        seed: int = 0,
        record_firing: bool = False,
        metrics: bool = False,
    ):
        self.design = design
        self.netlist = design.netlist
        self.strict = strict
        self.rng = random.Random(seed)
        self.violations: list[Violation] = []
        self.cycle = 0

        find = self.netlist.find
        nets = self.netlist.nets
        self._canon = [find(n).id for n in nets]
        canon_ids = sorted(set(self._canon))
        self._index = {cid: i for i, cid in enumerate(canon_ids)}
        self._canon_ids = canon_ids
        n = len(canon_ids)

        # Class metadata.
        self._members: list[list[Net]] = [[] for _ in range(n)]
        for net in nets:
            self._members[self._index[self._canon[net.id]]].append(net)
        self._display = [
            min(
                (m.name for m in ms if not m.name.startswith("$")),
                default=ms[0].name,
            )
            for ms in self._members
        ]
        self._is_boolean = [all(m.kind == BOOLEAN for m in ms) for ms in self._members]
        self._is_input = [any(m.is_input for m in ms) for ms in self._members]

        # Drivers.
        self._drivers: list[_Driver] = []
        self._drivers_of: list[list[int]] = [[] for _ in range(n)]
        self._cond_watch: dict[int, list[int]] = {}
        self._src_watch: dict[int, list[int]] = {}
        for conn in self.netlist.unique_conns():
            self._add_driver(
                self._idx(conn.dst),
                self._idx(conn.cond) if conn.cond is not None else None,
                self._idx(conn.src),
                None,
            )
        for cc in self.netlist.unique_const_conns():
            self._add_driver(
                self._idx(cc.dst),
                self._idx(cc.cond) if cc.cond is not None else None,
                None,
                cc.value,
            )

        # Gates.
        self._gates: list[Gate] = self.netlist.gates
        self._gate_out = [self._idx(g.output) for g in self._gates]
        self._gate_in = [[self._idx(i) for i in g.inputs] for g in self._gates]
        self._gate_watch: dict[int, list[int]] = {}
        for gi, ins in enumerate(self._gate_in):
            for i in ins:
                self._gate_watch.setdefault(i, []).append(gi)

        # Registers.
        self._reg_d = [self._idx(r.d) for r in self.netlist.regs]
        self._reg_q = [self._idx(r.q) for r in self.netlist.regs]
        self._reg_state: list[Logic] = [Logic.UNDEF] * len(self.netlist.regs)
        reg_q_set = set(self._reg_q)
        self._is_reg_q = [i in reg_q_set for i in range(n)]

        # Free nets: no drivers, not an input, not a reg output, not a
        # gate output -- they fire a default at cycle start.
        gate_out_set = set(self._gate_out)
        self._free = [
            i
            for i in range(n)
            if not self._drivers_of[i]
            and not self._is_input[i]
            and not self._is_reg_q[i]
            and i not in gate_out_set
        ]

        self._pokes: dict[int, Logic] = {}
        self.values: list[Logic | None] = [None] * n
        self._traces: list = []

        # Activity metrics (repro.obs).  ``record_firing=True`` is the
        # legacy spelling: metrics plus the ordered firing-event log.
        gate_labels = [
            f"{g.op}->{self._display[self._gate_out[gi]]}"
            for gi, g in enumerate(self._gates)
        ]
        self.metrics = SimMetrics(
            list(self._display),
            gate_labels,
            enabled=metrics or record_firing,
            keep_firing_log=record_firing,
        )
        self._metrics_on = self.metrics.enabled
        self._prev_values: list[Logic | None] = [None] * n

    @property
    def record_firing(self) -> bool:
        """Legacy flag view: True when the firing-event log is kept."""
        return self.metrics.enabled and self.metrics.keep_firing_log

    @property
    def firing_log(self) -> list[tuple[str, Logic]]:
        """Ordered ``(display_name, value)`` firing events (legacy view
        of ``self.metrics.firing_log``)."""
        return self.metrics.firing_log

    # -- construction helpers ------------------------------------------------

    def _idx(self, net: Net) -> int:
        return self._index[self._canon[net.id]]

    def _add_driver(
        self, dst: int, cond: int | None, src: int | None, const: Logic | None
    ) -> None:
        di = len(self._drivers)
        self._drivers.append(_Driver(dst, cond, src, const))
        self._drivers_of[dst].append(di)
        if cond is not None:
            self._cond_watch.setdefault(cond, []).append(di)
        if src is not None:
            self._src_watch.setdefault(src, []).append(di)

    # -- path resolution ------------------------------------------------------

    def nets_of(self, path: str) -> list[Net]:
        """Resolve a hierarchical signal path to its flattened nets.

        Accepts full paths (``adder.a``), top-relative paths (``a``), and
        a trailing ``[i]`` element selection on a registered array."""
        signals = self.netlist.signals
        if path in signals:
            return signals[path]
        qualified = f"{self.design.name}.{path}"
        if qualified in signals:
            return signals[qualified]
        for candidate in (path, qualified):
            if "[" in candidate and candidate.endswith("]"):
                base, _, idx = candidate.rpartition("[")
                if base in signals:
                    try:
                        i = int(idx[:-1])
                    except ValueError:
                        continue
                    element = f"{base}[{i}]"
                    if element in signals:
                        return signals[element]
            # Mapped field access over an array of components: the paper's
            # abbreviation rule (``state.out`` == ``state[1..n].out``).
            if "." in candidate:
                base, _, field = candidate.rpartition(".")
                import re as _re

                pat = _re.compile(
                    _re.escape(base) + r"\[(-?\d+)\]\." + _re.escape(field) + "$"
                )
                hits: list[tuple[int, list[Net]]] = []
                for key, nets in signals.items():
                    m = pat.match(key)
                    if m:
                        hits.append((int(m.group(1)), nets))
                if hits:
                    hits.sort()
                    return [n for _, nets in hits for n in nets]
        raise KeyError(f"unknown signal path {path!r}")

    # -- poking and peeking ---------------------------------------------------

    def poke(self, path: str, value: PokeValue) -> None:
        """Set a primary input (or INOUT pin) for the coming cycles.

        Accepts a Logic value, 0/1, "UNDEF"/"NOINFL", a bit list (index 1
        = LSB first, matching BIN), or an int for multi-bit signals."""
        nets = self.nets_of(path)
        bits = _coerce_bits(value, len(nets), path)
        for net, bit in zip(nets, bits):
            self._pokes[self._idx(net)] = bit

    def unpoke(self, path: str) -> None:
        """Release a poked signal (it will default again)."""
        for net in self.nets_of(path):
            self._pokes.pop(self._idx(net), None)

    def peek(self, path: str) -> list[Logic]:
        """Read current values (boolean signals convert NOINFL to UNDEF)."""
        out: list[Logic] = []
        for net in self.nets_of(path):
            i = self._idx(net)
            v = self.values[i]
            if v is None:
                v = Logic.UNDEF
            if net.kind == BOOLEAN:
                v = v.to_boolean()
            out.append(v)
        return out

    def peek_bit(self, path: str) -> Logic:
        bits = self.peek(path)
        if len(bits) != 1:
            raise KeyError(f"{path!r} is {len(bits)} bits wide, not 1")
        return bits[0]

    def peek_int(self, path: str) -> int | None:
        """Numeric value (NUM convention: element 1 is the LSB), or None
        when any bit is undefined."""
        from .values import num_of

        return num_of(self.peek(path))

    # -- the cycle ------------------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        """Run *cycles* full clock cycles (evaluate + latch)."""
        m = self.metrics
        for _ in range(cycles):
            if m.enabled:
                f0 = m.firings
                w0 = m.gate_evals + m.driver_evals
            self.evaluate()
            self._latch()
            if m.enabled:
                m.cycles += 1
                m.firings_per_cycle.append(m.firings - f0)
                m.steps_per_cycle.append(m.gate_evals + m.driver_evals - w0)
                self._prev_values = list(self.values)
            for trace in self._traces:
                trace.sample(self)
            self.cycle += 1

    def evaluate(self) -> None:
        """One combinational evaluation pass (no latching)."""
        self._metrics_on = self.metrics.enabled
        n = len(self._canon_ids)
        self.values = [None] * n
        self._contrib_count = [0] * n
        self._driving: list[Logic | None] = [None] * n
        self._conflicted = [False] * n
        self._maybe_count = [0] * n
        self._driver_done = [False] * len(self._drivers)
        self._gate_done = [False] * len(self._gates)
        self._extra_driver = [0] * n
        self._queue: list[int] = []

        # Poked inputs count as one extra driver on their class.
        for i, v in self._pokes.items():
            self._extra_driver[i] = 1

        # Initial firings.
        for i in self._free:
            self._fire(i, Logic.NOINFL)
        for i in range(n):
            if self._is_input[i] and not self._drivers_of[i]:
                self._fire(i, self._input_default(i))
        for ri, qi in enumerate(self._reg_q):
            self._fire(qi, self._reg_state[ri])
        for gi, ins in enumerate(self._gate_in):
            if not ins:
                self._try_gate(gi)
        # Inputs that also have internal drivers (INOUT): contribute.
        for i, v in list(self._pokes.items()):
            if self._drivers_of[i] and self.values[i] is None:
                self._contribute(i, v)
        for di, drv in enumerate(self._drivers):
            if drv.cond is None and drv.const is not None:
                self._try_driver(di)

        # Propagate.
        while self._queue:
            i = self._queue.pop()
            for gi in self._gate_watch.get(i, ()):
                self._try_gate(gi)
            for di in self._cond_watch.get(i, ()):
                self._try_driver(di)
            for di in self._src_watch.get(i, ()):
                self._try_driver(di)

        # Anything still unfired (possible only on unchecked cyclic
        # graphs, or multiplex nets waiting on contributions that cannot
        # arrive) resolves to UNDEF.
        for i in range(n):
            if self.values[i] is None:
                self.values[i] = Logic.UNDEF

    def _input_default(self, i: int) -> Logic:
        if i in self._pokes:
            return self._pokes[i]
        name = self._display[i]
        if name in ("RSET", "CLK"):
            return Logic.ZERO
        return Logic.UNDEF

    def _fire(self, i: int, value: Logic) -> None:
        if self.values[i] is not None:
            return
        self.values[i] = value
        if self._metrics_on:
            m = self.metrics
            m.firings += 1
            m.net_fires[i] += 1
            prev = self._prev_values[i]
            if prev is not None and value is not prev:
                m.net_toggles[i] += 1
            if m.keep_firing_log:
                m.firing_log.append((self._display[i], value))
        self._queue.append(i)

    def _try_gate(self, gi: int) -> None:
        if self._metrics_on:
            self.metrics.gate_evals += 1
            self.metrics.gate_eval_counts[gi] += 1
        if self._gate_done[gi]:
            return
        op = self._gates[gi].op
        ins = self._gate_in[gi]
        vals: list[Logic | None] = [
            self.values[i].to_boolean() if self.values[i] is not None else None
            for i in ins
        ]
        out = _gate_value(op, vals, self.rng)
        if out is not None:
            self._gate_done[gi] = True
            if self._metrics_on:
                self.metrics.gate_fire_counts[gi] += 1
            self._fire(self._gate_out[gi], out)

    def _try_driver(self, di: int) -> None:
        if self._metrics_on:
            self.metrics.driver_evals += 1
        if self._driver_done[di]:
            return
        drv = self._drivers[di]
        if drv.cond is not None:
            cv = self.values[drv.cond]
            if cv is None:
                return
            cb = cv.to_boolean()
            if cb is Logic.ZERO:
                contribution: Logic | None = Logic.NOINFL
                maybe = False
            elif cb is Logic.UNDEF:
                # The guard itself is undefined: the edge *may* drive.
                # This poisons the signal to UNDEF but is not a proven
                # double-drive (the decoded guards of a NUM access are
                # mutually exclusive, which the simulator cannot see).
                contribution = Logic.UNDEF
                maybe = True
            else:  # guard is 1: pass the source through
                contribution = self._source_value(drv)
                maybe = False
                if contribution is None:
                    return
        else:
            contribution = self._source_value(drv)
            maybe = False
            if contribution is None:
                return
        self._driver_done[di] = True
        self._contribute(drv.dst, contribution, maybe)

    def _source_value(self, drv: _Driver) -> Logic | None:
        if drv.const is not None:
            return drv.const
        assert drv.src is not None
        return self.values[drv.src]

    def _contribute(self, dst: int, value: Logic, maybe: bool = False) -> None:
        self._contrib_count[dst] += 1
        if maybe:
            self._maybe_count[dst] += 1
        elif value is not Logic.NOINFL:
            prior = self._driving[dst]
            if prior is None:
                self._driving[dst] = value
            else:
                self._multi_drive(dst, [prior, value])
        total = len(self._drivers_of[dst]) + self._extra_driver[dst]
        if self._is_boolean[dst] and total == 1 and not maybe:
            # Boolean firing rule: a single-driver boolean signal fires
            # as soon as its value arrives (the common case; signals with
            # several conditional drivers wait so maybe-drives resolve).
            if self._driving[dst] is not None:
                self._fire(dst, self._driving[dst])  # type: ignore[arg-type]
                return
        if self._contrib_count[dst] >= total:
            v = self._driving[dst]
            if self._maybe_count[dst]:
                v = Logic.UNDEF
            self._fire(dst, Logic.NOINFL if v is None else v)

    def _multi_drive(self, dst: int, values: list[Logic]) -> None:
        violation = Violation(self.cycle, self._display[dst], values)
        self.violations.append(violation)
        if self._metrics_on:
            self.metrics.violations += 1
        self._conflicted[dst] = True
        self._driving[dst] = Logic.UNDEF
        if self.strict:
            raise SimulationError(
                f"multiple (0,1,UNDEF) assignments to signal "
                f"{self._display[dst]!r} in cycle {self.cycle} "
                "(this would burn transistors)",
            )

    def _latch(self) -> None:
        mon = self._metrics_on
        for ri, di in enumerate(self._reg_d):
            v = self.values[di]
            if v is not None and v is not Logic.NOINFL:
                self._reg_state[ri] = v
                if mon:
                    self.metrics.latches += 1

    # -- state management ------------------------------------------------------

    def reset_state(self) -> None:
        """Clear all register contents back to UNDEF, the cycle count,
        and the activity metrics."""
        self._reg_state = [Logic.UNDEF] * len(self._reg_state)
        self.cycle = 0
        self.violations.clear()
        self.metrics.reset()
        self._prev_values = [None] * len(self._prev_values)

    def registers(self) -> dict[str, Logic]:
        """Current register contents by instance path."""
        return {
            reg.name or f"$reg{reg.id}": self._reg_state[i]
            for i, reg in enumerate(self.netlist.regs)
        }

    def attach_trace(self, trace) -> None:
        """Attach a :class:`~repro.core.trace.Trace`; paths are resolved
        to net indices once, here, so sampling is index-based."""
        bind = getattr(trace, "bind", None)
        if bind is not None:
            bind(self)
        self._traces.append(trace)

    @property
    def event_count(self) -> int:
        """Nets fired in the last evaluation (a work measure for the
        simulator-complexity benchmarks)."""
        return sum(1 for v in self.values if v is not None)


def _gate_value(
    op: str, vals: list[Logic | None], rng: random.Random
) -> Logic | None:
    from . import values as V

    if op == "RANDOM":
        return Logic.ONE if rng.random() < 0.5 else Logic.ZERO
    if op == "EQUAL":
        if any(v is None for v in vals):
            return None
        half = len(vals) // 2
        a, b = vals[:half], vals[half:]
        if all(v is not None and v.is_defined for v in vals):
            return Logic.ONE if a == b else Logic.ZERO
        return Logic.UNDEF
    fn = V.GATE_FUNCTIONS[op]
    return fn(vals)


def _coerce_bits(value: PokeValue, width: int, path: str) -> list[Logic]:
    if isinstance(value, Logic):
        bits = [value]
    elif isinstance(value, str):
        bits = [Logic.from_name(value)]
    elif isinstance(value, int):
        if width == 1:
            bits = [_one_bit(value)]
        else:
            from .values import bits_of

            bits = bits_of(value, width)
    elif isinstance(value, Iterable):
        bits = [_coerce_one(v) for v in value]
    else:
        raise TypeError(f"cannot interpret poke value {value!r}")
    if len(bits) != width:
        raise ValueError(
            f"poke {path!r}: got {len(bits)} bits for a {width}-bit signal"
        )
    return bits


def _coerce_one(v: Logic | int | str) -> Logic:
    if isinstance(v, Logic):
        return v
    if isinstance(v, str):
        return Logic.from_name(v)
    return _one_bit(v)


def _one_bit(v: int) -> Logic:
    if v in (0, 1):
        return Logic.from_bit(v)
    raise ValueError(f"single-bit poke must be 0 or 1, got {v}")
