"""The Zeus simulator: dataflow firing rules over the semantics graph
(paper section 8) plus the synchronous REG/CLK model (section 5).

One **clock cycle** re-evaluates every signal:

1. registers fire their stored value on the ``out`` pin, primary inputs
   fire their poked values, constants fire, RANDOM sources fire;
2. values propagate by the firing rules: a gate node fires as soon as its
   output is determined (AND fires 0 on the first 0 input); a boolean
   signal fires as soon as one driving value (0, 1, UNDEF) reaches it;
   a multiplex signal fires once *all* incoming edges have contributed,
   resolving NOINFL < {0, 1, UNDEF};
3. at the cycle end every REG latches: a driving value on ``in`` is
   stored; NOINFL (no active assignment this cycle) keeps the old value
   ("if *in* is not changed during a clock cycle, it keeps its value").

The runtime safety rule ("the simulator checks that at most one
(0,1,UNDEF)-assignment takes place at runtime") raises
:class:`~repro.lang.errors.SimulationError` in strict mode and records a
violation otherwise.

Class values are kept in the raw multiplex domain; consumption converts:
gate inputs and boolean ``peek`` results map NOINFL to UNDEF (the
implicit amplifier of section 3.2), REG latching maps NOINFL to "keep".
"""

from __future__ import annotations

import random
import re
from dataclasses import dataclass
from typing import Iterable, Sequence, Union

from ..lang.errors import SimulationError
from ..obs.metrics import SimMetrics
from .batched import LOGIC_PLANES, PLANE_LOGIC, lane_value, unpack
from .batched import execute as _execute_batched
from .elaborate import Design
from .netlist import Gate, Net
from .schedule import Schedule, ScheduleError, build_schedule
from .schedule import execute as _execute_schedule
from .types import BOOLEAN
from .values import Logic

#: Valid values for the ``engine=`` knob.
ENGINES = ("auto", "levelized", "dataflow", "batched", "codegen")

PokeValue = Union[Logic, int, str, Sequence[Union[Logic, int, str]]]


@dataclass
class Violation:
    """A recorded runtime rule violation (lenient mode).

    ``lane`` identifies the stimulus lane on the batched engine (None
    for the scalar engines).
    """

    cycle: int
    net: str
    values: list[Logic]
    lane: int | None = None

    def __str__(self) -> str:
        vals = ", ".join(str(v) for v in self.values)
        where = f"cycle {self.cycle}"
        if self.lane is not None:
            where += f" lane {self.lane}"
        return f"{where}: signal {self.net!r} driven by [{vals}]"


class _Driver:
    __slots__ = ("cond", "src", "const", "dst")

    def __init__(self, dst: int, cond: int | None, src: int | None, const: Logic | None):
        self.dst = dst
        self.cond = cond
        self.src = src
        self.const = const


class Simulator:
    """Cycle-based simulator for an elaborated (and ideally checked)
    :class:`~repro.core.elaborate.Design`.

    Three evaluation engines share the section-8 semantics:

    * ``"levelized"`` -- the scalar fast path: gates and drivers are
      compiled once into a static topological
      :class:`~repro.core.schedule.Schedule` of the REG-cut semantics
      graph and each cycle is a single pass over it (see
      :mod:`repro.core.schedule`);
    * ``"dataflow"`` -- the original firing-rule engine (worklist + watch
      lists), the semantics oracle and the only engine able to run
      unchecked cyclic designs;
    * ``"batched"`` -- the bit-parallel engine: *lanes* independent
      stimuli evaluate per pass over the same schedule, each net held as
      two bitplane ints (see :mod:`repro.core.batched`).  Drive lanes
      with :meth:`poke_lanes` (scalar :meth:`poke` broadcasts), read
      them with :meth:`peek_lanes`; scalar :meth:`peek` and traces see
      lane 0.  Lane ``k`` behaves exactly like a scalar run with seed
      ``seed + k``.  When no schedule can be built the lane API stays
      available through a per-lane dataflow fallback (the reason in
      :attr:`engine_reason`);
    * ``"codegen"`` -- the batched engine's lane model with the
      interpreter compiled away: the schedule is emitted as one
      exec-compiled Python function at construction (see
      :mod:`repro.core.codegen`), either over big-int planes
      (``backend="int"``) or NumPy uint64 word arrays
      (``backend="numpy"``; ``backend="auto"`` picks by lane count).
      Same lane API, same observations; exotic pokes (INOUT pins,
      internal nets, NOINFL lanes) transparently run the interpreted
      batched pass instead.

    ``engine="auto"`` (the default) selects the levelized engine whenever
    a schedule can be built, and otherwise falls back to dataflow with
    the reason recorded in :attr:`engine_reason`.  The resolved choice is
    in :attr:`engine`.
    """

    def __init__(
        self,
        design: Design,
        *,
        strict: bool = True,
        seed: int = 0,
        record_firing: bool = False,
        metrics: bool = False,
        engine: str = "auto",
        lanes: int = 64,
        backend: str = "auto",
        flight=None,
        schedule: Schedule | None = None,
    ):
        self.design = design
        self.netlist = design.netlist
        self.strict = strict
        self.rng = random.Random(seed)
        self.violations: list[Violation] = []
        self.cycle = 0

        find = self.netlist.find
        nets = self.netlist.nets
        self._canon = [find(n).id for n in nets]
        canon_ids = sorted(set(self._canon))
        self._index = {cid: i for i, cid in enumerate(canon_ids)}
        self._canon_ids = canon_ids
        n = len(canon_ids)

        # Class metadata.
        self._members: list[list[Net]] = [[] for _ in range(n)]
        for net in nets:
            self._members[self._index[self._canon[net.id]]].append(net)
        self._display = [
            min(
                (m.name for m in ms if not m.name.startswith("$")),
                default=ms[0].name,
            )
            for ms in self._members
        ]
        self._is_boolean = [all(m.kind == BOOLEAN for m in ms) for ms in self._members]
        self._is_input = [any(m.is_input for m in ms) for ms in self._members]

        # Drivers.
        self._drivers: list[_Driver] = []
        self._drivers_of: list[list[int]] = [[] for _ in range(n)]
        self._cond_watch: dict[int, list[int]] = {}
        self._src_watch: dict[int, list[int]] = {}
        for conn in self.netlist.unique_conns():
            self._add_driver(
                self._idx(conn.dst),
                self._idx(conn.cond) if conn.cond is not None else None,
                self._idx(conn.src),
                None,
            )
        for cc in self.netlist.unique_const_conns():
            self._add_driver(
                self._idx(cc.dst),
                self._idx(cc.cond) if cc.cond is not None else None,
                None,
                cc.value,
            )

        # Gates.
        self._gates: list[Gate] = self.netlist.gates
        self._gate_out = [self._idx(g.output) for g in self._gates]
        self._gate_in = [[self._idx(i) for i in g.inputs] for g in self._gates]
        self._gate_watch: dict[int, list[int]] = {}
        for gi, ins in enumerate(self._gate_in):
            for i in ins:
                self._gate_watch.setdefault(i, []).append(gi)
        self._has_random = any(g.op == "RANDOM" for g in self._gates)

        # Registers.
        self._reg_d = [self._idx(r.d) for r in self.netlist.regs]
        self._reg_q = [self._idx(r.q) for r in self.netlist.regs]
        self._reg_state: list[Logic] = [Logic.UNDEF] * len(self.netlist.regs)
        reg_q_set = set(self._reg_q)
        self._is_reg_q = [i in reg_q_set for i in range(n)]

        # Free nets: no drivers, not an input, not a reg output, not a
        # gate output -- they fire a default at cycle start.
        gate_out_set = set(self._gate_out)
        self._free = [
            i
            for i in range(n)
            if not self._drivers_of[i]
            and not self._is_input[i]
            and not self._is_reg_q[i]
            and i not in gate_out_set
        ]

        self._pokes: dict[int, Logic] = {}
        self.values: list[Logic | None] = [None] * n
        self._traces: list = []
        self._path_cache: dict[str, list[Net]] = {}

        # Activity metrics (repro.obs).  ``record_firing=True`` is the
        # legacy spelling: metrics plus the ordered firing-event log.
        gate_labels = [
            f"{g.op}->{self._display[self._gate_out[gi]]}"
            for gi, g in enumerate(self._gates)
        ]
        self.metrics = SimMetrics(
            list(self._display),
            gate_labels,
            enabled=metrics or record_firing,
            keep_firing_log=record_firing,
        )
        self._metrics_on = self.metrics.enabled
        self._prev_values: list[Logic | None] = [None] * n

        # Engine selection: compile the static schedule when possible.
        if engine not in ENGINES:
            raise ValueError(
                f"unknown engine {engine!r}; expected one of {ENGINES}"
            )
        self.engine_requested = engine
        self.engine = "dataflow"
        #: why the dataflow engine was selected ("" for levelized).
        self.engine_reason = ""
        self._schedule: Schedule | None = None
        #: lane count on the batched engine, None on the scalar engines.
        self.lanes: int | None = None
        #: the active CompiledStep on the codegen engine (None while the
        #: interpreted batched pass runs instead), and the construction-
        #: time compile it can be restored to by :meth:`reset_state`.
        self._cg = None
        self._cg_compiled = None
        #: codegen backend name ("int"/"numpy"), None off codegen.
        self.codegen_backend: str | None = None
        self._cg_np_ran = False
        self._cg_vals_stale = False
        self._cg_regs_stale = False
        if engine in ("batched", "codegen"):
            if lanes < 1:
                raise ValueError(f"{engine} engine needs lanes >= 1, got {lanes}")
            if record_firing:
                raise ValueError(
                    "record_firing needs a scalar engine (the firing log "
                    "is defined by dataflow propagation order)"
                )
            self.engine = engine
            self.lanes = lanes
            self._lane_mask = (1 << lanes) - 1
            self._lane_rngs = [random.Random(seed + k) for k in range(lanes)]
            self._bvals0 = [0] * n
            self._bvals1 = [0] * n
            self._bpokes: dict[int, tuple[int, int, int]] = {}
            n_regs = len(self._reg_state)
            self._breg0 = [self._lane_mask] * n_regs
            self._breg1 = [self._lane_mask] * n_regs
            #: lane 0 not yet copied into ``self.values`` (lazy peek).
            self._values_stale = False
            #: True when the bit-parallel schedule path is active (False
            #: means the per-lane dataflow fallback).
            self._batched_fast = False
            from ..obs.spans import span

            try:
                if schedule is not None:
                    self._schedule = schedule
                else:
                    with span("schedule", design=self.design.name):
                        self._schedule = build_schedule(self)
                self._batched_fast = True
            except ScheduleError as exc:
                self.engine_reason = (
                    f"bit-parallel fallback to per-lane dataflow: {exc}"
                )
            if engine == "codegen" and self._batched_fast:
                from .codegen import CodegenError, compile_step

                try:
                    with span("codegen", design=self.design.name):
                        self._cg_compiled = compile_step(
                            self._schedule, backend=backend, lanes=lanes
                        )
                except CodegenError as exc:
                    self.engine_reason = (
                        f"codegen fallback to interpreted batched: {exc}"
                    )
                else:
                    self._cg = self._cg_compiled
                    self.codegen_backend = self._cg.backend
                    #: poke table changed since the last compiled-pass
                    #: eligibility check.
                    self._cg_dirty = True
                    self._cg_pokes_ok = True
                    if self._cg.backend == "numpy":
                        self._cg_init_numpy_state()
        elif engine == "dataflow":
            self.engine_reason = "dataflow engine requested"
        elif engine == "auto" and self.metrics.keep_firing_log:
            # The firing log is defined by dataflow propagation order.
            self.engine_reason = "record_firing needs the dataflow event order"
        else:
            from ..obs.spans import span

            try:
                if schedule is not None:
                    self._schedule = schedule
                else:
                    with span("schedule", design=self.design.name):
                        self._schedule = build_schedule(self)
                self.engine = "levelized"
            except ScheduleError as exc:
                if engine == "levelized":
                    raise SimulationError(
                        f"cannot build a levelized schedule: {exc}"
                    ) from exc
                self.engine_reason = str(exc)
        self.metrics.engine = self.engine
        self.metrics.lanes = self.lanes
        self.metrics.backend = self.codegen_backend
        if self.lanes is not None:
            self.metrics.fast_path = self._batched_fast
            #: construction-time reason, restored when a numpy-backend
            #: demotion is undone by reset_state.
            self._cg_reason0 = self.engine_reason

        # Flight recorder (repro.obs.flight): ``flight=N`` is shorthand
        # for a fresh recorder holding the last N cycles.
        if flight is None:
            self.flight = None
        else:
            from ..obs.flight import FlightRecorder

            if isinstance(flight, int):
                flight = FlightRecorder(flight)
            flight.bind(self)
            self.flight = flight

    @property
    def record_firing(self) -> bool:
        """Legacy flag view: True when the firing-event log is kept."""
        return self.metrics.enabled and self.metrics.keep_firing_log

    @property
    def firing_log(self) -> list[tuple[str, Logic]]:
        """Ordered ``(display_name, value)`` firing events (legacy view
        of ``self.metrics.firing_log``)."""
        return self.metrics.firing_log

    # -- construction helpers ------------------------------------------------

    def _idx(self, net: Net) -> int:
        return self._index[self._canon[net.id]]

    def _add_driver(
        self, dst: int, cond: int | None, src: int | None, const: Logic | None
    ) -> None:
        di = len(self._drivers)
        self._drivers.append(_Driver(dst, cond, src, const))
        self._drivers_of[dst].append(di)
        if cond is not None:
            self._cond_watch.setdefault(cond, []).append(di)
        if src is not None:
            self._src_watch.setdefault(src, []).append(di)

    # -- path resolution ------------------------------------------------------

    def nets_of(self, path: str) -> list[Net]:
        """Resolve a hierarchical signal path to its flattened nets.

        Accepts full paths (``adder.a``), top-relative paths (``a``), and
        a trailing ``[i]`` element selection on a registered array.
        Resolutions are cached (the netlist is immutable), so the hot
        peek/poke path and :meth:`~repro.core.trace.Trace.bind` pay the
        search at most once per distinct path."""
        nets = self._path_cache.get(path)
        if nets is None:
            nets = self._resolve_nets(path)
            self._path_cache[path] = nets
        return nets

    def _resolve_nets(self, path: str) -> list[Net]:
        signals = self.netlist.signals
        if path in signals:
            return signals[path]
        qualified = f"{self.design.name}.{path}"
        if qualified in signals:
            return signals[qualified]
        for candidate in (path, qualified):
            if "[" in candidate and candidate.endswith("]"):
                base, _, idx = candidate.rpartition("[")
                if base in signals:
                    try:
                        i = int(idx[:-1])
                    except ValueError:
                        continue
                    element = f"{base}[{i}]"
                    if element in signals:
                        return signals[element]
            # Mapped field access over an array of components: the paper's
            # abbreviation rule (``state.out`` == ``state[1..n].out``).
            if "." in candidate:
                base, _, field = candidate.rpartition(".")
                pat = re.compile(
                    re.escape(base) + r"\[(-?\d+)\]\." + re.escape(field) + "$"
                )
                hits: list[tuple[int, list[Net]]] = []
                for key, nets in signals.items():
                    m = pat.match(key)
                    if m:
                        hits.append((int(m.group(1)), nets))
                if hits:
                    hits.sort()
                    return [n for _, nets in hits for n in nets]
        raise KeyError(f"unknown signal path {path!r}")

    # -- poking and peeking ---------------------------------------------------

    def poke(self, path: str, value: PokeValue) -> None:
        """Set a primary input (or INOUT pin) for the coming cycles.

        Accepts a Logic value, 0/1, "UNDEF"/"NOINFL", a bit list (index 1
        = LSB first, matching BIN), or an int for multi-bit signals.  On
        the batched engine the value broadcasts to every lane."""
        nets = self.nets_of(path)
        bits = _coerce_bits(value, len(nets), path)
        if self.lanes is not None:
            M = self._lane_mask
            for net, bit in zip(nets, bits):
                b0, b1 = LOGIC_PLANES[bit]
                self._bpokes[self._idx(net)] = (
                    M if b0 else 0, M if b1 else 0, M
                )
            self._cg_dirty = True
            return
        for net, bit in zip(nets, bits):
            self._pokes[self._idx(net)] = bit

    def unpoke(self, path: str) -> None:
        """Release a poked signal (it will default again)."""
        for net in self.nets_of(path):
            self._pokes.pop(self._idx(net), None)
            if self.lanes is not None:
                self._bpokes.pop(self._idx(net), None)
        self._cg_dirty = True

    def poke_lanes(self, path: str, values: Sequence) -> None:
        """Set a signal per lane (batched engine only).

        *values* has one entry per lane: anything :meth:`poke` accepts,
        or ``None`` for "no poke on this lane" (the lane keeps its input
        default).  Replaces any previous poke of *path*."""
        if self.lanes is None:
            raise SimulationError(
                "poke_lanes needs engine='batched' "
                f"(this simulator runs {self.engine!r})"
            )
        lane_values = list(values)
        if len(lane_values) != self.lanes:
            raise ValueError(
                f"poke_lanes {path!r}: got {len(lane_values)} lane values "
                f"for {self.lanes} lanes"
            )
        nets = self.nets_of(path)
        width = len(nets)
        acc0 = [0] * width
        acc1 = [0] * width
        mask = 0
        for k, v in enumerate(lane_values):
            if v is None:
                continue
            bit = 1 << k
            mask |= bit
            try:
                bits = _coerce_bits(v, width, path)
            except (TypeError, ValueError) as exc:
                msg = str(exc)
                prefix = f"poke {path!r}: "
                if msg.startswith(prefix):
                    msg = msg[len(prefix):]
                raise type(exc)(
                    f"poke {path!r} lane {k}: {msg}"
                ) from None
            for j, b in enumerate(bits):
                b0, b1 = LOGIC_PLANES[b]
                if b0:
                    acc0[j] |= bit
                if b1:
                    acc1[j] |= bit
        self._cg_dirty = True
        if not mask:
            for net in nets:
                self._bpokes.pop(self._idx(net), None)
            return
        for j, net in enumerate(nets):
            self._bpokes[self._idx(net)] = (acc0[j], acc1[j], mask)

    def peek_lanes(self, path: str) -> list[list[Logic]]:
        """Read a signal on every lane (batched engine only): one list
        of per-bit Logic values per lane (boolean signals convert NOINFL
        to UNDEF, as :meth:`peek` does)."""
        if self.lanes is None:
            raise SimulationError(
                "peek_lanes needs engine='batched' "
                f"(this simulator runs {self.engine!r})"
            )
        if self._cg_vals_stale:
            self._cg_sync_vals()
        per_net: list[list[Logic]] = []
        for net in self.nets_of(path):
            i = self._idx(net)
            vals = unpack(self._bvals0[i], self._bvals1[i], self.lanes)
            if net.kind == BOOLEAN:
                vals = [v.to_boolean() for v in vals]
            per_net.append(vals)
        return [[vals[k] for vals in per_net] for k in range(self.lanes)]

    def peek_lane(self, path: str, lane: int) -> list[Logic]:
        """One lane's per-bit values (batched engine only)."""
        if self.lanes is None:
            raise SimulationError(
                "peek_lane needs engine='batched' "
                f"(this simulator runs {self.engine!r})"
            )
        if not 0 <= lane < self.lanes:
            raise ValueError(f"lane {lane} out of range 0..{self.lanes - 1}")
        if self._cg_vals_stale:
            self._cg_sync_vals()
        out: list[Logic] = []
        for net in self.nets_of(path):
            i = self._idx(net)
            v = lane_value(self._bvals0[i], self._bvals1[i], lane)
            if net.kind == BOOLEAN:
                v = v.to_boolean()
            out.append(v)
        return out

    def peek_lane_int(self, path: str, lane: int) -> int | None:
        """One lane's numeric value, or None when any bit is undefined."""
        from .values import num_of

        return num_of(self.peek_lane(path, lane))

    # -- lane sessions (the zeusd multiplexer's primitives) -------------------
    #
    # A *lane session* treats one lane of a shared batched simulator as
    # an independent user simulation: :meth:`reset_lane` hands the lane
    # out fresh (registers UNDEF, no pokes, rng reseeded),
    # :meth:`poke_lane`/:meth:`unpoke_lane` drive only that lane, and
    # :meth:`step_lanes` advances a *subset* of lanes one cycle while
    # every other lane is provably untouched: its register planes are
    # not latched, its value-plane bits are restored after the pass, its
    # rng stream does not advance, and its phantom violations are
    # dropped.  A session stepped n times with seed q therefore observes
    # exactly what an isolated scalar run seeded q would after n cycles,
    # regardless of how other lanes interleave (the batched engine's
    # lane-isolation contract, per lane-mask).

    def _lane_bit(self, lane: int) -> int:
        if self.lanes is None:
            raise SimulationError(
                "lane sessions need engine='batched' or 'codegen' "
                f"(this simulator runs {self.engine!r})"
            )
        if not 0 <= lane < self.lanes:
            raise ValueError(f"lane {lane} out of range 0..{self.lanes - 1}")
        return 1 << lane

    def reset_lane(self, lane: int, seed: int | None = None) -> None:
        """Return *lane* to a fresh-run state: registers UNDEF, value
        planes UNDEF, every poke on the lane released, and -- when
        *seed* is given -- the lane rng reseeded so the lane behaves
        like a scalar run constructed with that seed."""
        bit = self._lane_bit(lane)
        if self._cg_vals_stale:
            self._cg_sync_vals()
        if self._cg_regs_stale:
            self._cg_sync_regs()
        if self._cg is not None and self._cg.backend == "numpy":
            self._cg_demote("lane session reset")
        for ri in range(len(self._breg0)):
            self._breg0[ri] |= bit
            self._breg1[ri] |= bit
        for i in range(len(self._bvals0)):
            self._bvals0[i] |= bit
            self._bvals1[i] |= bit
        self._clear_lane_pokes(bit)
        if seed is not None:
            self._lane_rngs[lane] = random.Random(seed)
        self._values_stale = True
        self._cg_dirty = True

    def _clear_lane_pokes(self, bit: int) -> None:
        stale = [i for i, (p0, p1, pm) in self._bpokes.items() if pm & bit]
        for i in stale:
            p0, p1, pm = self._bpokes[i]
            pm &= ~bit
            if pm:
                self._bpokes[i] = (p0 & ~bit, p1 & ~bit, pm)
            else:
                del self._bpokes[i]

    def poke_lane(self, path: str, lane: int, value: PokeValue) -> None:
        """Set a signal on one lane only, leaving every other lane's
        poke of *path* (or its input default) in place."""
        bit = self._lane_bit(lane)
        nets = self.nets_of(path)
        try:
            bits = _coerce_bits(value, len(nets), path)
        except (TypeError, ValueError) as exc:
            msg = str(exc)
            prefix = f"poke {path!r}: "
            if msg.startswith(prefix):
                msg = msg[len(prefix):]
            raise type(exc)(f"poke {path!r} lane {lane}: {msg}") from None
        for net, b in zip(nets, bits):
            i = self._idx(net)
            b0, b1 = LOGIC_PLANES[b]
            p0, p1, pm = self._bpokes.get(i, (0, 0, 0))
            self._bpokes[i] = (
                (p0 & ~bit) | (bit if b0 else 0),
                (p1 & ~bit) | (bit if b1 else 0),
                pm | bit,
            )
        self._cg_dirty = True

    def unpoke_lane(self, path: str, lane: int) -> None:
        """Release one lane's poke of *path* (back to the input
        default), leaving the other lanes' pokes in place."""
        bit = self._lane_bit(lane)
        for net in self.nets_of(path):
            i = self._idx(net)
            pk = self._bpokes.get(i)
            if pk is None:
                continue
            p0, p1, pm = pk
            pm &= ~bit
            if pm:
                self._bpokes[i] = (p0 & ~bit, p1 & ~bit, pm)
            else:
                del self._bpokes[i]
        self._cg_dirty = True

    def step_lanes(
        self, active: "int | Iterable[int]", cycles: int = 1
    ) -> list[Violation]:
        """Advance only the *active* lanes (a bitmask or an iterable of
        lane indices) through *cycles* full clock cycles.

        Frozen (non-active) lanes are completely unaffected: their
        registers do not latch, their value-plane bits are restored
        after each pass, their rng streams do not advance, and
        violations raised on them are discarded (they will re-occur,
        identically, on the lane's own next active step).  Returns the
        new violations recorded for active lanes, stamped with this
        simulator's shared cycle counter (a session multiplexer remaps
        them to per-session cycles).

        In strict mode a violation on an *active* lane raises after the
        pass completes; frozen-lane phantoms never raise.
        """
        if isinstance(active, int):
            amask = active
        else:
            amask = 0
            for k in active:
                amask |= self._lane_bit(k)
        if self.lanes is None:
            raise SimulationError(
                "step_lanes needs engine='batched' or 'codegen' "
                f"(this simulator runs {self.engine!r})"
            )
        M = self._lane_mask
        if amask & ~M:
            raise ValueError(
                f"active mask {amask:#x} selects lanes beyond "
                f"{self.lanes - 1}"
            )
        fmask = M & ~amask
        if not amask:
            return []
        if self._cg is not None and self._cg.backend == "numpy":
            # The numpy backend has no cheap per-lane merge; run the
            # session workload on big-int planes instead.
            if self._cg_vals_stale:
                self._cg_sync_vals()
            if self._cg_regs_stale:
                self._cg_sync_regs()
            self._cg_demote("lane-masked stepping")
        fresh: list[Violation] = []
        snapshot_rngs = bool(fmask) and self._has_random
        strict = self.strict
        for _ in range(cycles):
            v0 = len(self.violations)
            if fmask:
                old0 = self._bvals0[:]
                old1 = self._bvals1[:]
                if snapshot_rngs:
                    rng_saves = [
                        (k, self._lane_rngs[k].getstate())
                        for k in range(self.lanes)
                        if (fmask >> k) & 1
                    ]
            # Strict raising is deferred: a phantom conflict on a frozen
            # lane must not abort an active lane's step.
            self.strict = False
            try:
                self.evaluate()
            finally:
                self.strict = strict
            new = self.violations[v0:]
            if fmask:
                kept = [
                    v for v in new
                    if v.lane is None or (amask >> v.lane) & 1
                ]
                if len(kept) != len(new):
                    del self.violations[v0:]
                    self.violations.extend(kept)
                    if self._metrics_on:
                        self.metrics.violations -= len(new) - len(kept)
                new = kept
                b0 = self._bvals0
                b1 = self._bvals1
                for i in range(len(b0)):
                    b0[i] = (old0[i] & fmask) | (b0[i] & amask)
                    b1[i] = (old1[i] & fmask) | (b1[i] & amask)
                if snapshot_rngs:
                    for k, state in rng_saves:
                        self._lane_rngs[k].setstate(state)
            fresh.extend(new)
            self._latch_lanes(amask)
            self.cycle += 1
        self._values_stale = True
        if strict and fresh:
            v = fresh[0]
            raise SimulationError(
                f"multiple (0,1,UNDEF) assignments to signal "
                f"{v.net!r} in cycle {v.cycle} (lane {v.lane}) "
                "(this would burn transistors)",
            )
        return fresh

    def _latch_lanes(self, amask: int) -> None:
        """The batched latch rule restricted to the lanes of *amask*."""
        if self._cg_np_ran:  # pragma: no cover - numpy is demoted above
            self._latch_codegen_numpy()
            return
        mon = self._metrics_on
        b0 = self._bvals0
        b1 = self._bvals1
        r0 = self._breg0
        r1 = self._breg1
        for ri, di in enumerate(self._reg_d):
            d0 = b0[di] & amask
            d1 = b1[di] & amask
            driving = d0 | d1
            if not driving:
                continue
            keep = ~driving
            r0[ri] = (r0[ri] & keep) | d0
            r1[ri] = (r1[ri] & keep) | d1
            if mon:
                self.metrics.latches += driving.bit_count()

    def peek(self, path: str) -> list[Logic]:
        """Read current values (boolean signals convert NOINFL to UNDEF).

        On the batched engine this reads lane 0."""
        if self.lanes is not None and self._values_stale:
            self._materialize_lane0()
        out: list[Logic] = []
        for net in self.nets_of(path):
            i = self._idx(net)
            v = self.values[i]
            if v is None:
                v = Logic.UNDEF
            if net.kind == BOOLEAN:
                v = v.to_boolean()
            out.append(v)
        return out

    def peek_bit(self, path: str) -> Logic:
        bits = self.peek(path)
        if len(bits) != 1:
            raise KeyError(f"{path!r} is {len(bits)} bits wide, not 1")
        return bits[0]

    def peek_int(self, path: str) -> int | None:
        """Numeric value (NUM convention: element 1 is the LSB), or None
        when any bit is undefined."""
        from .values import num_of

        return num_of(self.peek(path))

    # -- the cycle ------------------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        """Run *cycles* full clock cycles (evaluate + latch)."""
        m = self.metrics
        fl = self.flight
        for _ in range(cycles):
            if m.enabled:
                f0 = m.firings
                w0 = m.gate_evals + m.driver_evals
            v0 = len(self.violations)
            self.evaluate()
            self._latch()
            if m.enabled:
                m.cycles += 1
                m.firings_per_cycle.append(m.firings - f0)
                m.steps_per_cycle.append(m.gate_evals + m.driver_evals - w0)
                self._prev_values = list(self.values)
            if fl is not None:
                fl.record(self, self.violations[v0:])
            if self._traces:
                if self.lanes is not None and self._values_stale:
                    self._materialize_lane0()
                for trace in self._traces:
                    trace.sample(self)
            self.cycle += 1

    def evaluate(self) -> None:
        """One combinational evaluation pass (no latching), on the
        engine selected at construction."""
        if self.lanes is not None:
            self._evaluate_batched()
        elif self._schedule is not None:
            self._evaluate_levelized()
        else:
            self._evaluate_dataflow()

    def _evaluate_batched(self) -> None:
        """Bit-parallel pass: all lanes in one sweep over the schedule
        (or the per-lane dataflow fallback), then lane 0 materialized
        into ``self.values`` so scalar peeks and traces keep working."""
        mon = self.metrics.enabled
        self._metrics_on = mon
        self._cg_np_ran = False
        if self._batched_fast:
            cg = self._cg
            if cg is not None:
                if self._cg_dirty:
                    self._cg_refresh_pokes()
                if not self._cg_pokes_ok:
                    # An exotic poke (INOUT pin, internal net, NOINFL
                    # lane): the generated function cannot merge it.
                    if cg.backend == "numpy":
                        self._cg_demote(
                            "a poke outside the compiled input set"
                        )
                    cg = None
            if cg is None:
                _execute_batched(
                    self._schedule,
                    self._lane_mask,
                    self._bvals0,
                    self._bvals1,
                    self._bpokes,
                    self._breg0,
                    self._breg1,
                    self._lane_rngs,
                    self._lane_conflict,
                )
            elif cg.backend == "numpy":
                cg.fn(
                    self._cg_v0,
                    self._cg_v1,
                    self._cg_np_pokes,
                    self._cg_r0,
                    self._cg_r1,
                    self._lane_rngs,
                    self._lane_conflict,
                    self._cg_M,
                )
                self._cg_np_ran = True
                self._cg_vals_stale = True
            else:
                cg.fn(
                    self._bvals0,
                    self._bvals1,
                    self._bpokes,
                    self._breg0,
                    self._breg1,
                    self._lane_rngs,
                    self._lane_conflict,
                    self._lane_mask,
                )
        else:
            self._evaluate_batched_fallback()
            self._metrics_on = mon
        self._values_stale = True
        if mon:
            self._materialize_lane0()
            self._batched_metrics()

    def _materialize_lane0(self) -> None:
        """Copy lane 0 out of the planes into ``self.values`` (deferred
        until something actually reads scalar values: a pure batched
        sweep never pays this per cycle)."""
        if self._cg_vals_stale:
            self._cg_sync_vals()
        PL = PLANE_LOGIC
        self.values = [
            PL[(x & 1) | ((y & 1) << 1)]
            for x, y in zip(self._bvals0, self._bvals1)
        ]
        self._values_stale = False

    # -- codegen engine plumbing ----------------------------------------------

    def _cg_init_numpy_state(self) -> None:
        """Fresh word-array state for the numpy codegen backend.  The
        big-int planes (``_bvals*``/``_breg*``) stay allocated as lazy
        mirrors, re-synced on demand (peeks, registers, fallback)."""
        from .codegen import int_to_words, lane_mask_words

        words = self._cg_compiled.words
        n = len(self._canon_ids)
        self._cg_M = lane_mask_words(self.lanes)
        zero = int_to_words(0, words)
        self._cg_v0 = [zero] * n
        self._cg_v1 = [zero] * n
        n_regs = len(self._breg0)
        self._cg_r0 = [self._cg_M] * n_regs
        self._cg_r1 = [self._cg_M] * n_regs
        self._cg_np_pokes: dict[int, tuple] = {}
        self._cg_vals_stale = False
        self._cg_regs_stale = False

    def _cg_refresh_pokes(self) -> None:
        """Re-check poke eligibility after the poke table changed: the
        generated function only merges non-NOINFL pokes on the compiled
        input set (anything else runs the interpreted pass)."""
        cg = self._cg
        ok = True
        poke_ok = cg.poke_ok
        for i, (p0, p1, pm) in self._bpokes.items():
            if i not in poke_ok or pm & ~(p0 | p1):
                ok = False
                break
        self._cg_pokes_ok = ok
        if ok and cg.backend == "numpy":
            from .codegen import pokes_to_words

            self._cg_np_pokes = pokes_to_words(self._bpokes, cg.words)
        self._cg_dirty = False

    def _cg_sync_vals(self) -> None:
        """Word-array value planes -> big-int mirrors (for peeks, lane-0
        materialization and the interpreted paths)."""
        from .codegen import planes_to_ints

        self._bvals0 = planes_to_ints(self._cg_v0)
        self._bvals1 = planes_to_ints(self._cg_v1)
        self._cg_vals_stale = False

    def _cg_sync_regs(self) -> None:
        """Word-array register planes -> big-int mirrors."""
        from .codegen import planes_to_ints

        self._breg0 = planes_to_ints(self._cg_r0)
        self._breg1 = planes_to_ints(self._cg_r1)
        self._cg_regs_stale = False

    def _cg_demote(self, why: str) -> None:
        """Permanently drop the numpy codegen backend back to the
        interpreted batched pass (big-int planes); :meth:`reset_state`
        restores the compiled function.  Per-pass switching would pay an
        array<->int conversion of every net per cycle, so demotion is
        sticky instead."""
        if self._cg_vals_stale:
            self._cg_sync_vals()
        if self._cg_regs_stale:
            self._cg_sync_regs()
        self._cg = None
        self.engine_reason = (
            f"codegen numpy backend demoted to interpreted batched: {why}"
        )

    def _evaluate_batched_fallback(self) -> None:
        """Per-lane dataflow fallback: identical lane semantics at
        scalar speed.  Each lane temporarily owns the scalar poke table,
        register state, and rng (seed + lane), exactly reproducing an
        independent scalar run; results are packed back into planes."""
        m = self.metrics
        n = len(self._canon_ids)
        out0 = [0] * n
        out1 = [0] * n
        saved_rng = self.rng
        metrics_were_on = m.enabled
        # The per-lane passes must not multiply the activity counters;
        # violations are re-counted from the list delta below.
        m.enabled = False
        try:
            for k in range(self.lanes):
                bit = 1 << k
                self._pokes = {
                    i: lane_value(p0, p1, k)
                    for i, (p0, p1, pm) in self._bpokes.items()
                    if pm & bit
                }
                self._reg_state = [
                    lane_value(self._breg0[ri], self._breg1[ri], k)
                    for ri in range(len(self._breg0))
                ]
                self.rng = self._lane_rngs[k]
                before = len(self.violations)
                try:
                    self._evaluate_dataflow()
                finally:
                    for v in self.violations[before:]:
                        v.lane = k
                    if metrics_were_on:
                        m.violations += len(self.violations) - before
                for i, v in enumerate(self.values):
                    if v is None:
                        continue
                    vb0, vb1 = LOGIC_PLANES[v]
                    if vb0:
                        out0[i] |= bit
                    if vb1:
                        out1[i] |= bit
        finally:
            m.enabled = metrics_were_on
            self.rng = saved_rng
            self._pokes = {}
        self._bvals0 = out0
        self._bvals1 = out1

    def _batched_metrics(self) -> None:
        """Activity accounting for one batched pass.  Net fires and
        toggles follow lane 0 (the scalar-comparable view); gate and
        driver evaluations count once per pass on the fast path (every
        gate really is evaluated once, for all lanes); ``lane_cycles``
        accumulates lanes-per-pass so throughput is lanes * cycles."""
        m = self.metrics
        prev = self._prev_values
        fires = m.net_fires
        toggles = m.net_toggles
        fired = 0
        for i, v in enumerate(self.values):
            if v is None:
                continue
            fired += 1
            fires[i] += 1
            p = prev[i]
            if p is not None and v is not p:
                toggles[i] += 1
        m.firings += fired
        m.lane_cycles += self.lanes
        sched = self._schedule
        if sched is not None:
            m.gate_evals += sched.n_gates
            m.driver_evals += sched.n_drivers
            evals = m.gate_eval_counts
            gate_fires = m.gate_fire_counts
            for gi in sched.gate_ids:
                evals[gi] += 1
                gate_fires[gi] += 1

    def _evaluate_levelized(self) -> None:
        """Fast path: one pass over the static schedule; the value array
        is reused, nothing else is allocated per cycle."""
        self._metrics_on = self.metrics.enabled
        _execute_schedule(
            self._schedule,
            self.values,
            self._pokes,
            self._reg_state,
            self.rng.random,
            self._conflict,
        )
        if self._metrics_on:
            self._levelized_metrics()

    def _levelized_metrics(self) -> None:
        """Activity accounting for one levelized pass.  The levelized
        engine touches every gate and driver exactly once per cycle, so
        ``gate_evals``/``driver_evals`` count real single evaluations
        (the dataflow engine may need several attempts per gate)."""
        m = self.metrics
        sched = self._schedule
        prev = self._prev_values
        fires = m.net_fires
        toggles = m.net_toggles
        fired = 0
        for i, v in enumerate(self.values):
            if v is None:
                continue
            fired += 1
            fires[i] += 1
            p = prev[i]
            if p is not None and v is not p:
                toggles[i] += 1
        m.firings += fired
        m.gate_evals += sched.n_gates
        m.driver_evals += sched.n_drivers
        evals = m.gate_eval_counts
        gate_fires = m.gate_fire_counts
        for gi in sched.gate_ids:
            evals[gi] += 1
            gate_fires[gi] += 1
        if m.keep_firing_log:
            # Levelized firing order is schedule order, not dataflow
            # propagation order (engine="auto" keeps dataflow instead).
            display = self._display
            log = m.firing_log
            for i, v in enumerate(self.values):
                if v is not None:
                    log.append((display[i], v))

    def _evaluate_dataflow(self) -> None:
        """The dataflow firing-rule engine (the semantics oracle)."""
        self._metrics_on = self.metrics.enabled
        n = len(self._canon_ids)
        self.values = [None] * n
        self._contrib_count = [0] * n
        self._driving: list[Logic | None] = [None] * n
        self._conflicted = [False] * n
        self._maybe_count = [0] * n
        self._driver_done = [False] * len(self._drivers)
        self._gate_done = [False] * len(self._gates)
        self._extra_driver = [0] * n
        self._queue: list[int] = []

        # Poked inputs count as one extra driver on their class.
        for i, v in self._pokes.items():
            self._extra_driver[i] = 1

        # Initial firings.
        for i in self._free:
            self._fire(i, Logic.NOINFL)
        for i in range(n):
            if self._is_input[i] and not self._drivers_of[i]:
                self._fire(i, self._input_default(i))
        for ri, qi in enumerate(self._reg_q):
            self._fire(qi, self._reg_state[ri])
        for gi, ins in enumerate(self._gate_in):
            if not ins:
                self._try_gate(gi)
        # Inputs that also have internal drivers (INOUT): contribute.
        for i, v in list(self._pokes.items()):
            if self._drivers_of[i] and self.values[i] is None:
                self._contribute(i, v)
        for di, drv in enumerate(self._drivers):
            if drv.cond is None and drv.const is not None:
                self._try_driver(di)

        # Propagate.
        while self._queue:
            i = self._queue.pop()
            for gi in self._gate_watch.get(i, ()):
                self._try_gate(gi)
            for di in self._cond_watch.get(i, ()):
                self._try_driver(di)
            for di in self._src_watch.get(i, ()):
                self._try_driver(di)

        # Anything still unfired (possible only on unchecked cyclic
        # graphs, or multiplex nets waiting on contributions that cannot
        # arrive) resolves to UNDEF.
        for i in range(n):
            if self.values[i] is None:
                self.values[i] = Logic.UNDEF

    def _input_default(self, i: int) -> Logic:
        if i in self._pokes:
            return self._pokes[i]
        name = self._display[i]
        if name in ("RSET", "CLK"):
            return Logic.ZERO
        return Logic.UNDEF

    def _fire(self, i: int, value: Logic) -> None:
        if self.values[i] is not None:
            return
        self.values[i] = value
        if self._metrics_on:
            m = self.metrics
            m.firings += 1
            m.net_fires[i] += 1
            prev = self._prev_values[i]
            if prev is not None and value is not prev:
                m.net_toggles[i] += 1
            if m.keep_firing_log:
                m.firing_log.append((self._display[i], value))
        self._queue.append(i)

    def _try_gate(self, gi: int) -> None:
        if self._gate_done[gi]:
            # Already fired: re-notification from a late input, not an
            # evaluation -- must not inflate the activity counters.
            return
        if self._metrics_on:
            self.metrics.gate_evals += 1
            self.metrics.gate_eval_counts[gi] += 1
        op = self._gates[gi].op
        ins = self._gate_in[gi]
        vals: list[Logic | None] = [
            self.values[i].to_boolean() if self.values[i] is not None else None
            for i in ins
        ]
        out = _gate_value(op, vals, self.rng)
        if out is not None:
            self._gate_done[gi] = True
            if self._metrics_on:
                self.metrics.gate_fire_counts[gi] += 1
            self._fire(self._gate_out[gi], out)

    def _try_driver(self, di: int) -> None:
        if self._metrics_on:
            self.metrics.driver_evals += 1
        if self._driver_done[di]:
            return
        drv = self._drivers[di]
        if drv.cond is not None:
            cv = self.values[drv.cond]
            if cv is None:
                return
            cb = cv.to_boolean()
            if cb is Logic.ZERO:
                contribution: Logic | None = Logic.NOINFL
                maybe = False
            elif cb is Logic.UNDEF:
                # The guard itself is undefined: the edge *may* drive.
                # This poisons the signal to UNDEF but is not a proven
                # double-drive (the decoded guards of a NUM access are
                # mutually exclusive, which the simulator cannot see).
                contribution = Logic.UNDEF
                maybe = True
            else:  # guard is 1: pass the source through
                contribution = self._source_value(drv)
                maybe = False
                if contribution is None:
                    return
        else:
            contribution = self._source_value(drv)
            maybe = False
            if contribution is None:
                return
        self._driver_done[di] = True
        self._contribute(drv.dst, contribution, maybe)

    def _source_value(self, drv: _Driver) -> Logic | None:
        if drv.const is not None:
            return drv.const
        assert drv.src is not None
        return self.values[drv.src]

    def _contribute(self, dst: int, value: Logic, maybe: bool = False) -> None:
        self._contrib_count[dst] += 1
        if maybe:
            self._maybe_count[dst] += 1
        elif value is not Logic.NOINFL:
            prior = self._driving[dst]
            if prior is None:
                self._driving[dst] = value
            else:
                self._multi_drive(dst, [prior, value])
        total = len(self._drivers_of[dst]) + self._extra_driver[dst]
        if self._is_boolean[dst] and total == 1 and not maybe:
            # Boolean firing rule: a single-driver boolean signal fires
            # as soon as its value arrives (the common case; signals with
            # several conditional drivers wait so maybe-drives resolve).
            if self._driving[dst] is not None:
                self._fire(dst, self._driving[dst])  # type: ignore[arg-type]
                return
        if self._contrib_count[dst] >= total:
            v = self._driving[dst]
            if self._maybe_count[dst]:
                v = Logic.UNDEF
            self._fire(dst, Logic.NOINFL if v is None else v)

    def _multi_drive(self, dst: int, values: list[Logic]) -> None:
        self._conflicted[dst] = True
        self._driving[dst] = Logic.UNDEF
        self._record_violation(dst, values)

    def _conflict(self, dst: int, prior: Logic, value: Logic) -> Logic:
        """Levelized-engine multi-drive hook: record and resolve to
        UNDEF (mirrors :meth:`_multi_drive` without dataflow scratch)."""
        self._record_violation(dst, [prior, value])
        return Logic.UNDEF

    def _lane_conflict(
        self, dst: int, lanes_mask: int, a0: int, a1: int, b0: int, b1: int
    ) -> None:
        """Batched-engine multi-drive hook: one violation per conflicted
        lane (UNDEF resolution is applied by the caller's plane algebra).
        In strict mode the lowest conflicted lane raises."""
        mon = self._metrics_on
        name = self._display[dst]
        m = lanes_mask
        while m:
            low = m & -m
            k = low.bit_length() - 1
            self.violations.append(
                Violation(
                    self.cycle,
                    name,
                    [lane_value(a0, a1, k), lane_value(b0, b1, k)],
                    lane=k,
                )
            )
            if mon:
                self.metrics.violations += 1
            if self.strict:
                raise SimulationError(
                    f"multiple (0,1,UNDEF) assignments to signal "
                    f"{name!r} in cycle {self.cycle} (lane {k}) "
                    "(this would burn transistors)",
                )
            m ^= low

    def _record_violation(self, dst: int, values: list[Logic]) -> None:
        self.violations.append(
            Violation(self.cycle, self._display[dst], values)
        )
        if self._metrics_on:
            self.metrics.violations += 1
        if self.strict:
            raise SimulationError(
                f"multiple (0,1,UNDEF) assignments to signal "
                f"{self._display[dst]!r} in cycle {self.cycle} "
                "(this would burn transistors)",
            )

    def _latch(self) -> None:
        if self.lanes is not None:
            if self._cg_np_ran:
                self._latch_codegen_numpy()
            else:
                self._latch_batched()
            return
        mon = self._metrics_on
        for ri, di in enumerate(self._reg_d):
            v = self.values[di]
            if v is not None and v is not Logic.NOINFL:
                self._reg_state[ri] = v
                if mon:
                    self.metrics.latches += 1

    def _latch_batched(self) -> None:
        """Per-lane REG latching: a lane with a driving (non-NOINFL)
        ``in`` value stores it, every other lane keeps its old value."""
        mon = self._metrics_on
        M = self._lane_mask
        b0 = self._bvals0
        b1 = self._bvals1
        r0 = self._breg0
        r1 = self._breg1
        for ri, di in enumerate(self._reg_d):
            d0 = b0[di]
            d1 = b1[di]
            driving = d0 | d1
            if not driving:
                continue
            keep = M & ~driving
            r0[ri] = (r0[ri] & keep) | d0
            r1[ri] = (r1[ri] & keep) | d1
            if mon:
                self.metrics.latches += driving.bit_count()

    def _latch_codegen_numpy(self) -> None:
        """The batched latch rule over uint64 word arrays.  Arrays are
        never mutated in place (the generated function may alias planes
        across nets), so the merge rebinds fresh arrays."""
        import numpy as np

        mon = self._metrics_on
        M = self._cg_M
        v0 = self._cg_v0
        v1 = self._cg_v1
        r0 = self._cg_r0
        r1 = self._cg_r1
        for ri, di in enumerate(self._reg_d):
            d0 = v0[di]
            d1 = v1[di]
            driving = d0 | d1
            if not driving.any():
                continue
            keep = M & ~driving
            r0[ri] = (r0[ri] & keep) | d0
            r1[ri] = (r1[ri] & keep) | d1
            if mon:
                self.metrics.latches += int(
                    np.bitwise_count(driving).sum()
                )
        self._cg_regs_stale = True
        if self.flight is not None:
            # The flight recorder reads the big-int register planes
            # directly when it records this cycle.
            self._cg_sync_regs()

    # -- state management ------------------------------------------------------

    def reset_state(self) -> None:
        """Reset to a fresh run: registers back to UNDEF, cycle count,
        violations and activity metrics cleared, all signal values and
        pokes dropped (``peek`` reads UNDEF until the next cycle and no
        stale poke leaks into the new run).  On the batched engine this
        also clears every lane: the plane values, the per-lane register
        state, and the lane poke table."""
        self._reg_state = [Logic.UNDEF] * len(self._reg_state)
        self.cycle = 0
        self.violations.clear()
        self.metrics.reset()
        self._prev_values = [None] * len(self._prev_values)
        self.values = [None] * len(self.values)
        self._pokes.clear()
        if self.flight is not None:
            self.flight.reset()
        if self.lanes is not None:
            M = self._lane_mask
            self._breg0 = [M] * len(self._breg0)
            self._breg1 = [M] * len(self._breg1)
            self._bvals0 = [0] * len(self._bvals0)
            self._bvals1 = [0] * len(self._bvals1)
            self._bpokes.clear()
            # A pre-reset pass may have left lane 0 marked dirty; the
            # fresh planes above are the truth now.
            self._values_stale = False
            self._cg_np_ran = False
            if self._cg_compiled is not None:
                # Undo any numpy-backend demotion: the compiled function
                # is valid again for the fresh (unpoked) state.
                self._cg = self._cg_compiled
                self._cg_dirty = True
                self._cg_pokes_ok = True
                self.engine_reason = self._cg_reason0
                if self._cg.backend == "numpy":
                    self._cg_init_numpy_state()

    def registers(self, lane: int | None = None) -> dict[str, Logic]:
        """Current register contents by instance path.

        On the batched engine *lane* selects the stimulus lane (default
        lane 0); the scalar engines only accept lane ``None``/``0``."""
        if self.lanes is not None:
            k = 0 if lane is None else lane
            if not 0 <= k < self.lanes:
                raise ValueError(
                    f"lane {k} out of range 0..{self.lanes - 1}"
                )
            if self._cg_regs_stale:
                self._cg_sync_regs()
            return {
                reg.name or f"$reg{reg.id}": lane_value(
                    self._breg0[i], self._breg1[i], k
                )
                for i, reg in enumerate(self.netlist.regs)
            }
        if lane not in (None, 0):
            raise ValueError(
                f"register lanes need engine='batched' "
                f"(this simulator runs {self.engine!r})"
            )
        return {
            reg.name or f"$reg{reg.id}": self._reg_state[i]
            for i, reg in enumerate(self.netlist.regs)
        }

    def attach_trace(self, trace) -> None:
        """Attach a :class:`~repro.core.trace.Trace`; paths are resolved
        to net indices once, here, so sampling is index-based."""
        bind = getattr(trace, "bind", None)
        if bind is not None:
            bind(self)
        self._traces.append(trace)

    @property
    def event_count(self) -> int:
        """Nets fired in the last evaluation (a work measure for the
        simulator-complexity benchmarks)."""
        if self.lanes is not None and self._values_stale:
            self._materialize_lane0()
        return sum(1 for v in self.values if v is not None)


def _gate_value(
    op: str, vals: list[Logic | None], rng: random.Random
) -> Logic | None:
    from . import values as V

    if op == "RANDOM":
        return Logic.ONE if rng.random() < 0.5 else Logic.ZERO
    fn = V.NETLIST_GATE_FUNCTIONS[op]
    return fn(vals)


def _coerce_bits(value: PokeValue, width: int, path: str) -> list[Logic]:
    if isinstance(value, Logic):
        bits = [value]
    elif isinstance(value, str):
        bits = [Logic.from_name(value)]
    elif isinstance(value, int):
        if width == 1:
            bits = [_one_bit(value)]
        else:
            from .values import bits_of

            bits = bits_of(value, width)
    elif isinstance(value, Iterable):
        bits = [_coerce_one(v) for v in value]
    else:
        raise TypeError(f"cannot interpret poke value {value!r}")
    if len(bits) != width:
        raise ValueError(
            f"poke {path!r}: got {len(bits)} bits for a {width}-bit signal"
        )
    return bits


def _coerce_one(v: Logic | int | str) -> Logic:
    if isinstance(v, Logic):
        return v
    if isinstance(v, str):
        return Logic.from_name(v)
    return _one_bit(v)


def _one_bit(v: int) -> Logic:
    if v in (0, 1):
        return Logic.from_bit(v)
    raise ValueError(f"single-bit poke must be 0 or 1, got {v}")
