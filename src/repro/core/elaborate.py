"""Elaboration: from the Zeus AST to the semantics graph (sections 4, 8).

Elaboration runs the compile-time meta program -- constant expressions,
FOR replication, WHEN conditional generation, parameterized and recursive
types -- and flattens the component hierarchy into a
:class:`~repro.core.netlist.Netlist`:

* every basic local signal becomes a :class:`~repro.core.netlist.Net`;
* every predefined function component instance becomes a ``Gate``;
* ``:=`` assignments and connection statements become (possibly guarded)
  ``Conn`` edges; IF statements contribute the guards, rewritten exactly
  as in section 8 (``ELSIF``/``ELSE`` become AND/NOT chains);
* ``==`` aliasing merges nets via union-find;
* ``REG`` instances become cycle-breaking ``Reg`` elements;
* ``x[NUM(a)]`` decodes into EQUAL-guarded read muxes / write enables.

Component instances are **lazy**: a declared signal of a component type
with a body materialises only when first referenced -- the termination
mechanism of the paper's recursive htree/routing-network declarations.

The elaborator also enforces the *directional* static rules (who may
assign what); the counting rules of section 4.7 (single unconditional
assignment etc.) live in :mod:`repro.core.checker`, which sees the whole
graph.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Union

from ..lang import ast
from ..lang.errors import DiagnosticSink, ElaborationError, TypeError_
from ..lang.source import NO_SPAN, SourceText, Span
from .consteval import (
    ConstTree,
    const_leaves,
    eval_condition,
    eval_const,
    eval_int,
    is_signal_const,
)
from .netlist import Net, Netlist
from .sigtree import (
    ArrayTree,
    BitTree,
    CompTree,
    ConcatTree,
    LazyTree,
    SigTree,
    VirtualTree,
    force,
)
from .symbols import ConstBinding, Env, LoopVar, SignalBinding, TypeBinding
from .types import (
    BOOLEAN,
    BOOLEAN_T,
    MULTIPLEX,
    MULTIPLEX_T,
    VIRTUAL,
    ArrayV,
    BasicV,
    ComponentV,
    ParamV,
    TypeV,
)
from .values import Logic

#: Predefined bitwise gates and their arity constraints.
GATE_OPS = frozenset(["AND", "OR", "NAND", "NOR", "XOR", "NOT", "EQUAL", "RANDOM"])

_MAX_DEPTH = 150


class StarFill:
    """A ``*`` of flexible (None) or fixed width inside a flattened
    expression; expanded when the expected width is known."""

    def __init__(self, width: int | None = None):
        self.width = width


#: A single flattened source bit: a net, a constant, or a star.
STAR = object()
Src = Union[Net, Logic, object]


class Flattened:
    """A flattened expression: sources plus flexible stars."""

    def __init__(self, items: list[Any]):
        self.items = items  # Src or StarFill

    @property
    def min_width(self) -> int:
        return sum(
            (it.width or 0) if isinstance(it, StarFill) else 1 for it in self.items
        )

    @property
    def flexible(self) -> bool:
        return any(isinstance(it, StarFill) and it.width is None for it in self.items)

    def fit(self, want: int, span: Span) -> list[Src]:
        """Expand to exactly *want* sources, stretching one flexible star."""
        flex = [it for it in self.items if isinstance(it, StarFill) and it.width is None]
        if len(flex) > 1:
            raise ElaborationError(
                "at most one width-less '*' per expression position", span
            )
        fixed = self.min_width
        out: list[Src] = []
        for it in self.items:
            if isinstance(it, StarFill):
                n = it.width if it.width is not None else want - fixed
                if n < 0:
                    raise ElaborationError(
                        f"expression is wider ({fixed}) than expected ({want})", span
                    )
                out.extend([STAR] * n)
            else:
                out.append(it)
        if len(out) != want:
            raise ElaborationError(
                f"expression width {len(out)} does not match expected width {want}",
                span,
            )
        return out

    def strict(self, span: Span, what: str = "expression") -> list[Src]:
        """Expand with no stars allowed (e.g. gate operands)."""
        if any(isinstance(it, StarFill) for it in self.items):
            raise ElaborationError(f"'*' is not allowed in {what}", span)
        return list(self.items)


@dataclass
class Ctx:
    """Per-component elaboration context."""

    env: Env
    path: str
    guard: Net | None = None
    #: net id -> Mode for the pins of the component whose body is being
    #: elaborated (the *inner* view used by the formal-parameter rules).
    boundary: dict[int, ast.Mode] = dc_field(default_factory=dict)
    #: RESULT target nets when elaborating a function component body.
    result_sink: list[Net] | None = None

    def with_guard(self, guard: Net | None) -> "Ctx":
        return Ctx(self.env, self.path, guard, self.boundary, self.result_sink)

    def with_env(self, env: Env) -> "Ctx":
        return Ctx(env, self.path, self.guard, self.boundary, self.result_sink)


@dataclass
class Design:
    """The result of elaboration: the semantics graph plus everything the
    checker, simulator and layout engine need."""

    name: str
    netlist: Netlist
    top: CompTree
    top_type: ComponentV
    instances: list[CompTree]
    seq_constraints: list[tuple[list[Net], list[Net]]]
    sink: DiagnosticSink
    program: ast.Program
    source: SourceText | None = None
    #: pin-net id -> owning instance (for the unused-port check).
    pin_owner: dict[int, CompTree] = dc_field(default_factory=dict)

    def port_nets(self, pin: str) -> list[Net]:
        return [self.netlist.find(n) for n in self.netlist.port(pin).nets]


def build_pervasive_env() -> Env:
    """The standard environment (pervasive predefined objects)."""
    env = Env()
    env.pervasive = env
    for basic in (BOOLEAN, MULTIPLEX, VIRTUAL):
        env.bind(basic, TypeBinding(basic, builtin="basic"))
    env.bind("REG", TypeBinding("REG", builtin="REG"))
    for gate in GATE_OPS:
        env.bind(gate, TypeBinding(gate, builtin="gate"))
    env.bind("UNDEF", ConstBinding(Logic.UNDEF))
    env.bind("NOINFL", ConstBinding(Logic.NOINFL))
    return env


class Elaborator:
    """Elaborates one program.  Use :func:`elaborate` for the public API."""

    def __init__(
        self,
        program: ast.Program,
        source: SourceText | None = None,
        name: str = "top",
    ):
        self.program = program
        self.source = source
        self.netlist = Netlist(name)
        self.sink = DiagnosticSink(source=source)
        self.pervasive = build_pervasive_env()
        self.global_env = Env(parent=self.pervasive, pervasive=self.pervasive)
        #: pin-net id -> owning instance, for the unused-port rule.
        self.pin_owner: dict[int, CompTree] = {}
        self.instances: list[CompTree] = []
        self.seq_constraints: list[tuple[list[Net], list[Net]]] = []
        self._const_nets: dict[Logic, Net] = {}
        self._not_cache: dict[int, Net] = {}
        self._and_cache: dict[tuple[int, int], Net] = {}
        self._special_nets: dict[str, Net] = {}
        self._conn_signatures: dict[int, list[tuple]] = {}
        self._depth = 0
        self._fn_counter = 0
        #: When not None, nets assigned by directly elaborated statements
        #: are appended here (SEQUENTIAL consistency bookkeeping); forced
        #: instance bodies suspend it.
        self._target_log: list[Net] | None = None

    # ------------------------------------------------------------------
    # program level
    # ------------------------------------------------------------------

    def run(self, top: str | None = None) -> Design:
        import sys

        # Deep legal recursion (htree, routing networks) uses many Python
        # frames per Zeus level; raise the interpreter limit so our own
        # _MAX_DEPTH guard fires first with a proper diagnostic.
        old_limit = sys.getrecursionlimit()
        sys.setrecursionlimit(max(old_limit, 40000))
        try:
            return self._run(top)
        finally:
            sys.setrecursionlimit(old_limit)

    def _run(self, top: str | None = None) -> Design:
        top_ctx = Ctx(self.global_env, "")
        for decl in self.program.decls:
            self.elaborate_decl(decl, top_ctx)
        name, tree = self._pick_top(top)
        tree = force(tree)
        if not isinstance(tree, CompTree) or not tree.is_instance:
            raise ElaborationError(
                f"top signal {name!r} is not an instantiated component with a body"
            )
        self._mark_top_ports(tree)
        return Design(
            name=name,
            netlist=self.netlist,
            top=tree,
            top_type=tree.type,  # type: ignore[arg-type]
            instances=self.instances,
            seq_constraints=self.seq_constraints,
            sink=self.sink,
            program=self.program,
            source=self.source,
            pin_owner=self.pin_owner,
        )

    def _pick_top(self, top: str | None) -> tuple[str, SigTree]:
        candidates: list[tuple[str, SigTree]] = []
        for decl in self.program.signals():
            for nm in decl.names:
                binding = self.global_env.lookup(nm, decl.span)
                if isinstance(binding, SignalBinding):
                    tree = binding.tree
                    t = tree.type
                    if isinstance(t, ComponentV) and t.has_body:
                        candidates.append((nm, tree))
        if top is not None:
            for nm, tree in candidates:
                if nm == top:
                    return nm, tree
            raise ElaborationError(
                f"no top-level component signal named {top!r} "
                f"(candidates: {', '.join(nm for nm, _ in candidates) or 'none'})"
            )
        if not candidates:
            raise ElaborationError(
                "program declares no top-level signal of a component type with a body"
            )
        return candidates[-1]

    def _mark_top_ports(self, tree: CompTree) -> None:
        from .netlist import PortInfo

        assert isinstance(tree.type, ComponentV)
        for param in tree.type.params:
            pin_tree = force(tree.fields[param.name])
            nets = pin_tree.leaves()
            modes = [leaf.mode for leaf in param.type.leaves(mode=param.mode)]
            for net, mode in zip(nets, modes):
                if mode is ast.Mode.IN:
                    net.is_input = True
                elif mode is ast.Mode.OUT:
                    net.is_output = True
                else:
                    net.is_input = True
                    net.is_output = True
            self.netlist.ports.append(
                PortInfo(param.name, param.mode.value, nets)
            )

    # ------------------------------------------------------------------
    # declarations
    # ------------------------------------------------------------------

    def elaborate_decl(self, decl: ast.Decl, ctx: Ctx) -> None:
        if isinstance(decl, ast.ConstDecl):
            value = eval_const(decl.value, ctx.env)
            ctx.env.bind(decl.name, ConstBinding(value), decl.span)
        elif isinstance(decl, ast.TypeDecl):
            ctx.env.bind(
                decl.name,
                TypeBinding(decl.name, decl.params, decl.type, ctx.env),
                decl.span,
            )
        elif isinstance(decl, ast.SignalDecl):
            t = self.elab_type(decl.type, ctx.env)
            for nm in decl.names:
                path = f"{ctx.path}.{nm}" if ctx.path else nm
                tree = self.make_signal(path, t, ctx, decl.span)
                ctx.env.bind(nm, SignalBinding(tree), decl.span)
        else:  # pragma: no cover - parser produces only the above
            raise ElaborationError("unknown declaration kind", decl.span)

    # ------------------------------------------------------------------
    # types
    # ------------------------------------------------------------------

    def elab_type(
        self, texpr: ast.TypeExpr, env: Env, type_name: str = "", type_args: tuple[int, ...] = ()
    ) -> TypeV:
        if isinstance(texpr, ast.NamedType):
            return self._elab_named_type(texpr, env)
        if isinstance(texpr, ast.ArrayType):
            lo = eval_int(texpr.lo, env)
            hi = eval_int(texpr.hi, env)
            if hi < lo - 1:
                raise TypeError_(f"array bounds [{lo}..{hi}] are decreasing", texpr.span)
            return ArrayV(lo, hi, self.elab_type(texpr.element, env))
        if isinstance(texpr, ast.ComponentType):
            return self._elab_component_type(texpr, env, type_name, type_args)
        raise ElaborationError("unknown type expression", texpr.span)

    def _elab_named_type(self, texpr: ast.NamedType, env: Env) -> TypeV:
        binding = env.lookup(texpr.name, texpr.span)
        if not isinstance(binding, TypeBinding):
            raise TypeError_(f"{texpr.name!r} is not a type", texpr.span)
        if binding.builtin == "basic":
            if texpr.args:
                raise TypeError_(f"type {texpr.name} takes no parameters", texpr.span)
            return BasicV(binding.name)
        if binding.builtin == "REG":
            if texpr.args:
                raise TypeError_("REG takes no parameters", texpr.span)
            return self.reg_type()
        if binding.builtin == "gate":
            raise TypeError_(
                f"predefined function component {binding.name} cannot be used "
                "as a signal type",
                texpr.span,
            )
        args = [eval_int(a, env) for a in texpr.args]
        if len(args) != len(binding.params):
            raise TypeError_(
                f"type {texpr.name} expects {len(binding.params)} parameter(s), "
                f"got {len(args)}",
                texpr.span,
            )
        assert binding.closure is not None and binding.type_ast is not None
        inner = binding.closure.child()
        for p, a in zip(binding.params, args):
            inner.bind(p, ConstBinding(a))
        return self.elab_type(binding.type_ast, inner, binding.name, tuple(args))

    def reg_type(self) -> ComponentV:
        return ComponentV(
            "REG",
            (
                ParamV("in", ast.Mode.IN, BOOLEAN_T),
                ParamV("out", ast.Mode.OUT, BOOLEAN_T),
            ),
        )

    def _elab_component_type(
        self,
        texpr: ast.ComponentType,
        env: Env,
        type_name: str,
        type_args: tuple[int, ...],
    ) -> ComponentV:
        params: list[ParamV] = []
        seen: set[str] = set()
        for group in texpr.params:
            ptype = self.elab_type(group.type, env)
            for nm in group.names:
                if nm in seen:
                    raise TypeError_(f"duplicate parameter {nm!r}", group.span)
                seen.add(nm)
                params.append(ParamV(nm, group.mode, ptype))
        result = self.elab_type(texpr.result, env) if texpr.result is not None else None
        if result is not None and texpr.body is None:
            raise TypeError_("function component type requires a body", texpr.span)
        comp = ComponentV(
            type_name,
            tuple(params),
            result,
            decl_ast=texpr,
            closure=env,
            type_args=type_args,
            span=texpr.span,
        )
        self._check_param_modes(comp, texpr.span)
        return comp

    def _check_param_modes(self, comp: ComponentV, span: Span) -> None:
        """Basic-parameter mode rules of section 3.2, for instantiable
        components: unstructured IN/OUT pins must be boolean; unstructured
        INOUT pins must be multiplex."""
        if not comp.has_body and not comp.is_function:
            return  # record types are exempt (the paper's bus example)
        for p in comp.params:
            if isinstance(p.type, BasicV):
                if p.mode in (ast.Mode.IN, ast.Mode.OUT) and p.type.kind != BOOLEAN:
                    raise TypeError_(
                        f"unstructured {p.mode.value} parameter {p.name!r} must be "
                        f"boolean, not {p.type.kind}",
                        span,
                    )
                if p.mode is ast.Mode.INOUT and p.type.kind != MULTIPLEX:
                    raise TypeError_(
                        f"unstructured INOUT parameter {p.name!r} must be "
                        f"multiplex, not {p.type.kind}",
                        span,
                    )

    # ------------------------------------------------------------------
    # signals and instantiation
    # ------------------------------------------------------------------

    def make_signal(self, path: str, t: TypeV, ctx: Ctx, span: Span) -> SigTree:
        """Create a locally declared signal of elaborated type *t*."""
        if isinstance(t, BasicV):
            if t.kind == VIRTUAL:
                return VirtualTree(t, path)
            net = self.netlist.new_net(path, t.kind, span, role="local")
            self.netlist.register_signal(path, [net])
            return BitTree(t, net)
        if isinstance(t, ArrayV):
            elems = [
                self.make_signal(f"{path}[{i}]", t.element, ctx, span)
                for i in range(t.lo, t.hi + 1)
            ]
            tree = ArrayTree(t, elems)
            if not _has_unmaterialized(tree):
                self.netlist.register_signal(path, tree.leaves())
            return tree
        if isinstance(t, ComponentV):
            if t.is_function:
                raise TypeError_(
                    "function component types cannot be used in signal "
                    f"declarations ({path})",
                    span,
                )
            if t.name == "REG" and t.decl_ast is None:
                return LazyTree(t, lambda: self.instantiate_reg(path, span))
            if t.has_body:
                return LazyTree(t, lambda: self.instantiate_component(t, path, span))
            # Record type: a bundle of wires, all role "local".
            return self._make_record_wires(path, t, span)
        raise ElaborationError(f"cannot instantiate type {t.describe()}", span)

    def _make_record_wires(self, path: str, t: ComponentV, span: Span) -> SigTree:
        fields: dict[str, SigTree] = {}
        for p in t.params:
            sub = f"{path}.{p.name}"
            if isinstance(p.type, BasicV):
                if p.type.kind == VIRTUAL:
                    fields[p.name] = VirtualTree(p.type, sub)
                    continue
                net = self.netlist.new_net(sub, p.type.kind, span, role="local")
                self.netlist.register_signal(sub, [net])
                fields[p.name] = BitTree(p.type, net)
            elif isinstance(p.type, ArrayV):
                fields[p.name] = self._record_wire_array(sub, p.type, span)
            elif isinstance(p.type, ComponentV):
                if p.type.has_body:
                    fields[p.name] = LazyTree(
                        p.type,
                        (lambda pt=p.type, sp=sub: self.instantiate_component(pt, sp, span)),
                    )
                elif p.type.name == "REG" and p.type.decl_ast is None:
                    fields[p.name] = LazyTree(
                        p.type, (lambda sp=sub: self.instantiate_reg(sp, span))
                    )
                else:
                    fields[p.name] = self._make_record_wires(sub, p.type, span)
            else:  # pragma: no cover
                raise ElaborationError("bad record field type", span)
        return CompTree(t, fields, path)

    def _record_wire_array(self, path: str, t: ArrayV, span: Span) -> SigTree:
        elems: list[SigTree] = []
        for i in range(t.lo, t.hi + 1):
            sub = f"{path}[{i}]"
            if isinstance(t.element, BasicV):
                net = self.netlist.new_net(sub, t.element.kind, span, role="local")
                elems.append(BitTree(t.element, net))
            elif isinstance(t.element, ArrayV):
                elems.append(self._record_wire_array(sub, t.element, span))
            elif isinstance(t.element, ComponentV) and not t.element.has_body:
                elems.append(self._make_record_wires(sub, t.element, span))
            else:
                elems.append(
                    LazyTree(
                        t.element,
                        (lambda et=t.element, sp=sub: self.instantiate_component(et, sp, span)),  # type: ignore[arg-type]
                    )
                )
        nets = [n for e in elems for n in (e.leaves() if not isinstance(e, LazyTree) else [])]
        if nets:
            self.netlist.register_signal(path, nets)
        return ArrayTree(t, elems)

    def instantiate_reg(self, path: str, span: Span) -> CompTree:
        t = self.reg_type()
        d = self.netlist.new_net(f"{path}.in", BOOLEAN, span, role="pin_in")
        q = self.netlist.new_net(f"{path}.out", BOOLEAN, span, role="reg_q")
        self.netlist.add_reg(d, q, path, span)
        self.netlist.register_signal(f"{path}.in", [d])
        self.netlist.register_signal(f"{path}.out", [q])
        tree = CompTree(
            t,
            {"in": BitTree(BOOLEAN_T, d), "out": BitTree(BOOLEAN_T, q)},
            path,
            is_instance=True,
        )
        for net in (d, q):
            self.pin_owner[net.id] = tree
        self.instances.append(tree)
        return tree

    def instantiate_component(
        self, comp: ComponentV, path: str, span: Span = NO_SPAN
    ) -> CompTree:
        """Force one component instance: pins, local declarations, layout
        replacements, body statements (and RESULT for functions)."""
        self._depth += 1
        if self._depth > _MAX_DEPTH:
            raise ElaborationError(
                f"instantiation recursion exceeds depth {_MAX_DEPTH} at {path!r}; "
                "missing WHEN termination in a recursive type?",
                span,
            )
        try:
            assert comp.decl_ast is not None and comp.closure is not None
            fields: dict[str, SigTree] = {}
            boundary: dict[int, ast.Mode] = {}
            tree = CompTree(comp, fields, path, is_instance=True)
            for p in comp.params:
                pin = self._make_pin_tree(f"{path}.{p.name}", p.type, p.mode, span, tree)
                fields[p.name] = pin
                if not self._is_nested_instance_type(p.type):
                    for net, leaf in zip(pin.leaves(), p.type.leaves(mode=p.mode)):
                        boundary[net.id] = leaf.mode
                self.netlist.register_signal(f"{path}.{p.name}", pin.leaves())
            self.instances.append(tree)

            env = Env(parent=comp.closure, uses=comp.decl_ast.uses)
            for p in comp.params:
                env.bind(p.name, SignalBinding(fields[p.name]))
            ctx = Ctx(env, path, boundary=boundary)

            for decl in comp.decl_ast.decls:
                self.elaborate_decl(decl, ctx)

            # Layout replacements (section 6.4) must run before the body.
            self._run_layout_replacements(comp.decl_ast.layout, ctx)
            self._run_layout_replacements(comp.decl_ast.header_layout, ctx)

            if comp.is_function:
                assert comp.result is not None
                kind = (
                    MULTIPLEX
                    if _function_is_multiplex(comp.decl_ast.body or [])
                    else BOOLEAN
                )
                sinks = [
                    self.netlist.new_net(f"{path}.$result[{i}]", kind, span, role="local")
                    for i in range(comp.result.width)
                ]
                ctx = Ctx(env, path, boundary=boundary, result_sink=sinks)
                self.netlist.register_signal(f"{path}.$result", sinks)

            saved_log, self._target_log = self._target_log, None
            try:
                for stmt in comp.decl_ast.body or []:
                    self.elaborate_stmt(stmt, ctx)
            finally:
                self._target_log = saved_log

            tree.local_env = env
            return tree
        finally:
            self._depth -= 1

    def _is_nested_instance_type(self, t: TypeV) -> bool:
        return isinstance(t, ComponentV) and (
            t.has_body or (t.name == "REG" and t.decl_ast is None)
        )

    def _make_pin_tree(
        self, path: str, t: TypeV, mode: ast.Mode, span: Span, owner: CompTree
    ) -> SigTree:
        if isinstance(t, BasicV):
            if t.kind == VIRTUAL:
                raise TypeError_(f"pin {path} cannot be of type virtual", span)
            role = {
                ast.Mode.IN: "pin_in",
                ast.Mode.OUT: "pin_out",
                ast.Mode.INOUT: "pin_inout",
            }[mode]
            net = self.netlist.new_net(path, t.kind, span, role=role)
            self.pin_owner[net.id] = owner
            return BitTree(t, net)
        if isinstance(t, ArrayV):
            elems = [
                self._make_pin_tree(f"{path}[{i}]", t.element, mode, span, owner)
                for i in range(t.lo, t.hi + 1)
            ]
            tree = ArrayTree(t, elems)
            for i, e in zip(range(t.lo, t.hi + 1), elems):
                self.netlist.register_signal(f"{path}[{i}]", e.leaves())
            return tree
        if isinstance(t, ComponentV):
            if self._is_nested_instance_type(t):
                # A component-typed parameter with a body is a nested
                # sub-instance (the pattern-matcher's comparator/acc pins).
                if t.name == "REG" and t.decl_ast is None:
                    return self.instantiate_reg(path, span)
                return self.instantiate_component(t, path, span)
            if t.is_function:
                raise TypeError_(f"pin {path} cannot have a function type", span)
            fields = {}
            for p in t.params:
                inner = p.mode if p.mode is not ast.Mode.INOUT else mode
                sub = self._make_pin_tree(
                    f"{path}.{p.name}", p.type, inner, span, owner
                )
                fields[p.name] = sub
                self.netlist.register_signal(f"{path}.{p.name}", sub.leaves())
            return CompTree(t, fields, path)
        raise ElaborationError(f"bad pin type {t.describe()}", span)

    # ------------------------------------------------------------------
    # statements
    # ------------------------------------------------------------------

    def elaborate_stmt(self, stmt: ast.Stmt, ctx: Ctx) -> None:
        if isinstance(stmt, ast.Assign):
            self._stmt_assign(stmt, ctx)
        elif isinstance(stmt, ast.Connection):
            self._stmt_connection(stmt, ctx)
        elif isinstance(stmt, ast.If):
            self._stmt_if(stmt, ctx)
        elif isinstance(stmt, ast.For):
            self._stmt_for(stmt, ctx)
        elif isinstance(stmt, ast.WhenGen):
            self._stmt_when(stmt, ctx)
        elif isinstance(stmt, ast.Sequential):
            self._stmt_sequential(stmt, ctx)
        elif isinstance(stmt, ast.Parallel):
            for s in stmt.body:
                self.elaborate_stmt(s, ctx)
        elif isinstance(stmt, ast.With):
            self._stmt_with(stmt, ctx)
        elif isinstance(stmt, ast.Result):
            self._stmt_result(stmt, ctx)
        elif isinstance(stmt, ast.EmptyStmt):
            pass
        else:  # pragma: no cover
            raise ElaborationError("unknown statement kind", stmt.span)

    def _stmt_assign(self, stmt: ast.Assign, ctx: Ctx) -> None:
        if stmt.op == "==":
            self._stmt_alias(stmt, ctx)
            return
        if isinstance(stmt.target, ast.Star):
            # ``* := e``: the expression is evaluated (its uses count) and
            # discarded.
            self.flatten_expr(stmt.value, ctx)
            return
        targets = self.resolve_write(stmt.target, ctx)
        flat = self.flatten_expr(stmt.value, ctx)
        sources = flat.fit(len(targets), stmt.span)
        for bit_targets, src in zip(targets, sources):
            if src is STAR:
                continue
            for net, extra_guard in bit_targets:
                guard = self.and_guard(ctx.guard, extra_guard, stmt.span)
                self._drive(net, src, guard, stmt.span, ctx)

    def _drive(
        self, dst: Net, src: Src, guard: Net | None, span: Span, ctx: Ctx
    ) -> None:
        self._check_writable(dst, ctx, span)
        if isinstance(src, Logic):
            self.netlist.add_const(src, dst, guard, span)
        elif isinstance(src, Net):
            self.netlist.add_conn(src, dst, guard, span)
        else:  # pragma: no cover
            raise ElaborationError("cannot drive from '*'", span)
        if self._target_log is not None:
            self._target_log.append(dst)

    def _check_writable(self, net: Net, ctx: Ctx, span: Span) -> None:
        mode = ctx.boundary.get(net.id)
        if mode is ast.Mode.IN:
            raise TypeError_(
                f"assignment to formal IN parameter {net.name!r}", span
            )
        if mode is not None:
            return  # formal OUT / INOUT: assignable from inside
        if net.role == "pin_out":
            raise TypeError_(
                f"assignment to OUT parameter {net.name!r} of an "
                "instantiated component",
                span,
            )
        if net.role == "reg_q":
            raise TypeError_(f"assignment to register output {net.name!r}", span)
        if net.role == "gate":  # pragma: no cover - unreachable by parsing
            raise TypeError_(f"assignment to gate output {net.name!r}", span)

    def _stmt_alias(self, stmt: ast.Assign, ctx: Ctx) -> None:
        if ctx.guard is not None:
            raise TypeError_(
                "aliasing (==) must not occur within a conditional statement",
                stmt.span,
            )
        lhs_star = isinstance(stmt.target, ast.Star)
        rhs_star = isinstance(stmt.value, ast.Star)
        if lhs_star and rhs_star:
            return
        if lhs_star or rhs_star:
            # ``x == *``: an empty (closing) alias; just record the use.
            expr = stmt.value if lhs_star else stmt.target
            self.flatten_expr(expr, ctx)
            return
        left = self._alias_side(stmt.target, ctx, stmt.span)
        right = self._alias_side(stmt.value, ctx, stmt.span)
        if len(left) != len(right):
            raise TypeError_(
                f"aliased signals have different widths "
                f"({len(left)} vs {len(right)})",
                stmt.span,
            )
        for a, b in zip(left, right):
            self._check_alias_pair(a, b, ctx, stmt.span)
            self.netlist.alias(a, b)

    def _alias_side(self, expr: ast.Expr, ctx: Ctx, span: Span) -> list[Net]:
        flat = self.flatten_expr(expr, ctx)
        nets: list[Net] = []
        for item in flat.strict(span, "an aliasing statement"):
            if not isinstance(item, Net):
                raise TypeError_("only signals can be aliased with ==", span)
            nets.append(item)
        return nets

    def _check_alias_pair(self, a: Net, b: Net, ctx: Ctx, span: Span) -> None:
        def boolean_ok(net: Net) -> bool:
            # Exception 1 of section 4.7: an IN parameter of an
            # instantiated component or a formal OUT parameter.
            if net.role == "pin_in" and net.id not in ctx.boundary:
                return True
            return ctx.boundary.get(net.id) is ast.Mode.OUT

        for net in (a, b):
            if net.kind == BOOLEAN and not boolean_ok(net):
                raise TypeError_(
                    f"cannot alias boolean signal {net.name!r} with == "
                    "(type rules (2), section 4.7)",
                    span,
                )

    def _stmt_connection(self, stmt: ast.Connection, ctx: Ctx) -> None:
        tree = self.resolve_tree(stmt.signal, ctx)
        tree = force(tree)
        if isinstance(tree, CompTree) and tree.is_instance:
            self._connect_instance(tree, stmt, ctx)
            return
        if isinstance(tree, ArrayTree):
            self._connect_array(tree, stmt, ctx)
            return
        if not stmt.actuals:
            # A bare signal statement: legal parse, no effect.
            self.mark_use(tree.leaves(), ctx)
            return
        raise TypeError_(
            "connection statements require an instantiated component "
            "(or an array of equal components) with a body",
            stmt.span,
        )

    def _connect_instance(
        self, tree: CompTree, stmt: ast.Connection, ctx: Ctx
    ) -> None:
        comp = tree.type
        assert isinstance(comp, ComponentV)
        if comp.is_function:
            raise TypeError_("function components are connected by calls", stmt.span)
        if not stmt.actuals:
            self.mark_use(tree.leaves(), ctx)
            return
        if len(stmt.actuals) != len(comp.params):
            raise TypeError_(
                f"connection to {comp.describe()} needs {len(comp.params)} "
                f"actuals, got {len(stmt.actuals)}",
                stmt.span,
            )
        signature: list[tuple] = []
        for param, actual in zip(comp.params, stmt.actuals):
            pin = force(tree.fields[param.name])
            sig = self._connect_param(pin, param, actual, ctx, stmt.span, repeat=1)
            signature.append(sig)
        self._register_connection(tree, tuple(signature), ctx, stmt.span)

    def _connect_array(self, tree: ArrayTree, stmt: ast.Connection, ctx: Ctx) -> None:
        elems = [force(e) for e in tree.elems]
        if not elems or not all(
            isinstance(e, CompTree) and e.is_instance for e in elems
        ):
            raise TypeError_(
                "array connection requires an array of instantiated components",
                stmt.span,
            )
        comp = elems[0].type
        assert isinstance(comp, ComponentV)
        if not stmt.actuals:
            for e in elems:
                self.mark_use(e.leaves(), ctx)
            return
        if len(stmt.actuals) != len(comp.params):
            raise TypeError_(
                f"connection to array of {comp.describe()} needs "
                f"{len(comp.params)} actuals, got {len(stmt.actuals)}",
                stmt.span,
            )
        q = len(elems)
        for pi, (param, actual) in enumerate(zip(comp.params, stmt.actuals)):
            w = param.type.width
            flat = self.flatten_expr_or_write(param, actual, ctx, stmt.span, q * w)
            for k, inst in enumerate(elems):
                assert isinstance(inst, CompTree)
                pin = force(inst.fields[param.name])
                self._bind_param_slice(
                    pin, param, flat[k * w : (k + 1) * w], ctx, stmt.span
                )
        for inst in elems:
            assert isinstance(inst, CompTree)
            self._register_connection(inst, ("array",), ctx, stmt.span)

    def _register_connection(
        self, tree: CompTree, signature: tuple, ctx: Ctx, span: Span
    ) -> None:
        prior = self._conn_signatures.setdefault(id(tree), [])
        if prior and signature not in prior:
            self.sink.warning(
                f"multiple distinct connection statements for instance "
                f"{tree.path!r}; the paper allows repeats only when identical",
                span,
                phase="elaborate",
            )
        prior.append(signature)

    def _connect_param(
        self,
        pin: SigTree,
        param: ParamV,
        actual: ast.Expr,
        ctx: Ctx,
        span: Span,
        repeat: int,
    ) -> tuple:
        w = param.type.width * repeat
        if param.mode is ast.Mode.OUT:
            # xi := ai -- the actual must be a signal expression.
            targets = self.resolve_write_or_star(actual, ctx, w, span)
            pins = pin.leaves()
            self.mark_use(pins, ctx)
            for src, bit_targets in zip(pins, targets):
                for net, extra in bit_targets:
                    guard = self.and_guard(ctx.guard, extra, span)
                    self._drive(net, src, guard, span, ctx)
            return ("out", tuple(id(t) for bt in targets for t in bt))
        if param.mode is ast.Mode.IN:
            flat = self.flatten_expr(actual, ctx)
            sources = flat.fit(w, span)
            pins = pin.leaves()
            self.mark_use(pins, ctx)
            for dst, src in zip(pins, sources):
                if src is STAR:
                    continue
                self._drive(dst, src, ctx.guard, span, ctx)
            return ("in", tuple(_src_key(s) for s in sources))
        # INOUT: aliasing.
        if ctx.guard is not None:
            raise TypeError_(
                "a connection to an INOUT parameter must not occur within "
                "an if statement (aliasing cannot be conditional)",
                span,
            )
        flat = self.flatten_expr(actual, ctx)
        sources = flat.fit(w, span)
        pins = pin.leaves()
        self.mark_use(pins, ctx)
        for dst, src in zip(pins, sources):
            if src is STAR:
                continue
            if not isinstance(src, Net):
                raise TypeError_(
                    f"INOUT parameter {param.name!r} must be connected to a "
                    "signal",
                    span,
                )
            self._check_alias_pair(dst, src, ctx, span)
            self.netlist.alias(dst, src)
        return ("inout", tuple(_src_key(s) for s in sources))

    def _bind_param_slice(
        self,
        pin: SigTree,
        param: ParamV,
        flat_slice: list[Any],
        ctx: Ctx,
        span: Span,
    ) -> None:
        """Connect one element of an array connection from a pre-flattened
        actual slice (sources for IN/INOUT, targets for OUT)."""
        pins = pin.leaves()
        self.mark_use(pins, ctx)
        if param.mode is ast.Mode.OUT:
            for src, bit_targets in zip(pins, flat_slice):
                for net, extra in bit_targets:
                    guard = self.and_guard(ctx.guard, extra, span)
                    self._drive(net, src, guard, span, ctx)
            return
        if param.mode is ast.Mode.IN:
            for dst, src in zip(pins, flat_slice):
                if src is STAR:
                    continue
                self._drive(dst, src, ctx.guard, span, ctx)
            return
        if ctx.guard is not None:
            raise TypeError_(
                "a connection to an INOUT parameter must not occur within "
                "an if statement",
                span,
            )
        for dst, src in zip(pins, flat_slice):
            if src is STAR:
                continue
            if not isinstance(src, Net):
                raise TypeError_("INOUT parameters connect to signals only", span)
            self._check_alias_pair(dst, src, ctx, span)
            self.netlist.alias(dst, src)

    def flatten_expr_or_write(
        self, param: ParamV, actual: ast.Expr, ctx: Ctx, span: Span, width: int
    ) -> list[Any]:
        """Flatten an array-connection actual: sources for IN/INOUT
        params, write-target groups for OUT params."""
        if param.mode is ast.Mode.OUT:
            return self.resolve_write_or_star(actual, ctx, width, span)
        return self.flatten_expr(actual, ctx).fit(width, span)

    def _stmt_if(self, stmt: ast.If, ctx: Ctx) -> None:
        prefix: Net | None = None
        for cond_expr, body in stmt.arms:
            cond = self._condition_net(cond_expr, ctx)
            arm_guard = self.and_guard(prefix, cond, stmt.span)
            inner = self.and_guard(ctx.guard, arm_guard, stmt.span)
            sub = ctx.with_guard(inner)
            for s in body:
                self.elaborate_stmt(s, sub)
            prefix = self.and_guard(prefix, self.not_net(cond, stmt.span), stmt.span)
        if stmt.else_body:
            inner = self.and_guard(ctx.guard, prefix, stmt.span)
            sub = ctx.with_guard(inner)
            for s in stmt.else_body:
                self.elaborate_stmt(s, sub)

    def _condition_net(self, expr: ast.Expr, ctx: Ctx) -> Net:
        flat = self.flatten_expr(expr, ctx)
        items = flat.strict(expr.span, "an IF condition")
        if len(items) != 1:
            raise TypeError_(
                f"IF condition must be a single basic signal, got width "
                f"{len(items)}",
                expr.span,
            )
        return self._materialize(items[0], expr.span)

    def _stmt_for(self, stmt: ast.For, ctx: Ctx) -> None:
        lo = eval_int(stmt.lo, ctx.env)
        hi = eval_int(stmt.hi, ctx.env)
        values = range(lo, hi - 1, -1) if stmt.downto else range(lo, hi + 1)
        step_targets: list[list[Net]] = []
        for value in values:
            env = ctx.env.child()
            env.bind(stmt.var, LoopVar(value), stmt.span)
            sub = ctx.with_env(env)
            if stmt.sequentially:
                step_targets.append(
                    self._capture_targets(
                        lambda sub=sub: [
                            self.elaborate_stmt(s, sub) for s in stmt.body
                        ]
                    )
                )
            else:
                for s in stmt.body:
                    self.elaborate_stmt(s, sub)
        for earlier, later in zip(step_targets, step_targets[1:]):
            if earlier and later:
                self.seq_constraints.append((earlier, later))

    def _stmt_when(self, stmt: ast.WhenGen, ctx: Ctx) -> None:
        for cond, body in stmt.arms:
            if eval_condition(cond, ctx.env):
                for s in body:
                    self.elaborate_stmt(s, ctx)
                return
        for s in stmt.otherwise:
            self.elaborate_stmt(s, ctx)

    def _stmt_sequential(self, stmt: ast.Sequential, ctx: Ctx) -> None:
        step_targets: list[list[Net]] = []
        for s in stmt.body:
            if isinstance(s, ast.For) and s.sequentially:
                # FOR ... DO SEQUENTIALLY inside SEQUENTIAL: each iteration
                # is one step of the enclosing sequence (section 4.5).
                lo = eval_int(s.lo, ctx.env)
                hi = eval_int(s.hi, ctx.env)
                values = range(lo, hi - 1, -1) if s.downto else range(lo, hi + 1)
                for value in values:
                    env = ctx.env.child()
                    env.bind(s.var, LoopVar(value), s.span)
                    sub = ctx.with_env(env)
                    step_targets.append(
                        self._capture_targets(
                            lambda sub=sub, body=s.body: [
                                self.elaborate_stmt(inner, sub) for inner in body
                            ]
                        )
                    )
            else:
                step_targets.append(
                    self._capture_targets(
                        lambda s=s: self.elaborate_stmt(s, ctx)
                    )
                )
        for earlier, later in zip(step_targets, step_targets[1:]):
            if earlier and later:
                self.seq_constraints.append((earlier, later))

    def _capture_targets(self, thunk) -> list[Net]:
        """Run *thunk* and return the nets its statements assign directly
        (lazily forced instance internals excluded); nested captures also
        propagate to the enclosing capture."""
        saved, self._target_log = self._target_log, []
        try:
            thunk()
            return self._target_log
        finally:
            step = self._target_log
            self._target_log = saved
            if saved is not None:
                saved.extend(step)

    def _stmt_with(self, stmt: ast.With, ctx: Ctx) -> None:
        tree = force(self.resolve_tree(stmt.signal, ctx))
        if not isinstance(tree, CompTree):
            raise TypeError_(
                "WITH requires a signal of a component type", stmt.span
            )
        env = ctx.env.child()
        for p in tree.type.params:
            env.bind(p.name, SignalBinding(tree.fields[p.name]), stmt.span)
        sub = ctx.with_env(env)
        for s in stmt.body:
            self.elaborate_stmt(s, sub)

    def _stmt_result(self, stmt: ast.Result, ctx: Ctx) -> None:
        if ctx.result_sink is None:
            raise TypeError_(
                "RESULT outside of a function component body", stmt.span
            )
        flat = self.flatten_expr(stmt.value, ctx)
        sources = flat.fit(len(ctx.result_sink), stmt.span)
        for dst, src in zip(ctx.result_sink, sources):
            if src is STAR:
                continue
            if isinstance(src, Logic):
                self.netlist.add_const(src, dst, ctx.guard, stmt.span)
            else:
                assert isinstance(src, Net)
                self.netlist.add_conn(src, dst, ctx.guard, stmt.span)
            if self._target_log is not None:
                self._target_log.append(dst)

    # ------------------------------------------------------------------
    # layout replacements (section 6.4) -- run at elaboration time
    # ------------------------------------------------------------------

    def _run_layout_replacements(self, stmts: list[ast.LayoutStmt], ctx: Ctx) -> None:
        for s in stmts:
            if isinstance(s, ast.LayoutBasic) and s.replacement is not None:
                self._do_replacement(s, ctx)
            elif isinstance(s, ast.LayoutOrder):
                self._run_layout_replacements(s.body, ctx)
            elif isinstance(s, ast.LayoutBoundary):
                self._run_layout_replacements(s.body, ctx)
            elif isinstance(s, ast.LayoutFor):
                lo = eval_int(s.lo, ctx.env)
                hi = eval_int(s.hi, ctx.env)
                values = range(lo, hi - 1, -1) if s.downto else range(lo, hi + 1)
                for value in values:
                    env = ctx.env.child()
                    env.bind(s.var, LoopVar(value), s.span)
                    self._run_layout_replacements(s.body, ctx.with_env(env))
            elif isinstance(s, ast.LayoutWhen):
                done = False
                for cond, body in s.arms:
                    if eval_condition(cond, ctx.env):
                        self._run_layout_replacements(body, ctx)
                        done = True
                        break
                if not done:
                    self._run_layout_replacements(s.otherwise, ctx)
            elif isinstance(s, ast.LayoutWith):
                tree = force(self.resolve_tree(s.signal, ctx))
                if isinstance(tree, CompTree):
                    env = ctx.env.child()
                    for p in tree.type.params:
                        env.bind(p.name, SignalBinding(tree.fields[p.name]), s.span)
                    self._run_layout_replacements(s.body, ctx.with_env(env))

    def _do_replacement(self, s: ast.LayoutBasic, ctx: Ctx) -> None:
        assert s.replacement is not None
        tree = self.resolve_tree(s.signal, ctx)
        if not isinstance(tree, VirtualTree):
            raise TypeError_(
                "only signals of type virtual can be replaced (section 6.4)",
                s.span,
            )
        if tree.replaced is not None:
            raise TypeError_(
                f"virtual signal {tree.path!r} replaced more than once", s.span
            )
        t = self.elab_type(s.replacement, ctx.env)
        tree.replaced = self.make_signal(tree.path, t, ctx, s.span)

    # ------------------------------------------------------------------
    # designator resolution
    # ------------------------------------------------------------------

    def resolve_tree(self, expr: ast.Expr, ctx: Ctx) -> SigTree:
        """Resolve a designator to a single signal tree (no NUM selectors)."""
        alts = self.resolve_alts(expr, ctx)
        if isinstance(alts, ConstResult):
            raise TypeError_("a signal is required here, not a constant", expr.span)
        if len(alts) != 1 or alts[0][0] is not None:
            raise TypeError_(
                "NUM-indexed signals cannot be used in this position", expr.span
            )
        return alts[0][1]

    def resolve_alts(
        self, expr: ast.Expr, ctx: Ctx
    ) -> "list[tuple[Net | None, SigTree]] | ConstResult":
        """Resolve a designator to guarded alternatives.

        Normal designators yield ``[(None, tree)]``; each ``NUM`` selector
        multiplies the alternatives by the decoded index values.  Constant
        designators (e.g. ``bit2[i]``) yield a :class:`ConstResult`.
        """
        if isinstance(expr, ast.Name):
            if expr.ident in ("CLK", "RSET"):
                return [(None, BitTree(BOOLEAN_T, self.special_net(expr.ident)))]
            binding = ctx.env.lookup(expr.ident, expr.span)
            if isinstance(binding, SignalBinding):
                return [(None, binding.tree)]
            if isinstance(binding, ConstBinding):
                return ConstResult(binding.value)
            if isinstance(binding, LoopVar):
                return ConstResult(binding.value)
            raise TypeError_(f"{expr.ident!r} is not a signal", expr.span)
        if isinstance(expr, ast.Index):
            base = self.resolve_alts(expr.base, ctx)
            i = eval_int(expr.index, ctx.env)
            if isinstance(base, ConstResult):
                return base.index(i, expr.span)
            return [(g, t.index(i, expr.span)) for g, t in base]
        if isinstance(expr, ast.IndexRange):
            base = self.resolve_alts(expr.base, ctx)
            lo = eval_int(expr.lo, ctx.env)
            hi = eval_int(expr.hi, ctx.env)
            if isinstance(base, ConstResult):
                return base.slice(lo, hi, expr.span)
            return [(g, t.slice(lo, hi, expr.span)) for g, t in base]
        if isinstance(expr, ast.Field):
            base = self.resolve_alts(expr.base, ctx)
            if isinstance(base, ConstResult):
                raise TypeError_("constants have no fields", expr.span)
            return [(g, t.field(expr.name, expr.span)) for g, t in base]
        if isinstance(expr, ast.FieldRange):
            base = self.resolve_alts(expr.base, ctx)
            if isinstance(base, ConstResult):
                raise TypeError_("constants have no fields", expr.span)
            return [
                (g, t.field_range(expr.first, expr.last, expr.span)) for g, t in base
            ]
        if isinstance(expr, ast.IndexNum):
            base = self.resolve_alts(expr.base, ctx)
            if isinstance(base, ConstResult):
                raise TypeError_("NUM indexing of constants is not supported", expr.span)
            sel = self.flatten_expr(expr.selector, ctx).strict(expr.span, "NUM(...)")
            sel_nets = [self._materialize(s, expr.span) for s in sel]
            out: list[tuple[Net | None, SigTree]] = []
            for g, t in base:
                t = force(t)
                at = t.type
                if not isinstance(at, ArrayV):
                    raise TypeError_("NUM indexing requires an array signal", expr.span)
                for i in range(at.lo, at.hi + 1):
                    if i >= (1 << len(sel_nets)) or i < 0:
                        continue  # unaddressable element
                    eq = self._decode_net(sel_nets, i, expr.span)
                    guard = self.and_guard(g, eq, expr.span)
                    out.append((guard, t.index(i, expr.span)))
            return out
        raise TypeError_("expected a signal designator", expr.span)

    def resolve_write(
        self, expr: ast.Expr, ctx: Ctx
    ) -> list[list[tuple[Net, Net | None]]]:
        """Resolve an assignment target: one list of (net, guard) fan-out
        targets per bit position."""
        alts = self.resolve_alts(expr, ctx)
        if isinstance(alts, ConstResult):
            raise TypeError_("cannot assign to a constant", expr.span)
        per_alt: list[tuple[Net | None, list[Net]]] = []
        width: int | None = None
        for g, t in alts:
            leaves = t.leaves()
            self.mark_use(leaves, ctx)
            if width is None:
                width = len(leaves)
            elif width != len(leaves):  # pragma: no cover - same shape by construction
                raise TypeError_("inconsistent NUM alternative widths", expr.span)
            per_alt.append((g, leaves))
        if width is None:
            raise TypeError_("empty assignment target", expr.span)
        targets: list[list[tuple[Net, Net | None]]] = []
        for j in range(width):
            targets.append([(leaves[j], g) for g, leaves in per_alt])
        return targets

    def resolve_write_or_star(
        self, expr: ast.Expr, ctx: Ctx, width: int, span: Span
    ) -> list[list[tuple[Net, Net | None]]]:
        """Resolve an OUT-direction connection actual, which may be or
        contain ``*`` (= leave those output bits unconnected)."""
        if isinstance(expr, ast.Star):
            w = eval_int(expr.width, ctx.env) if expr.width is not None else width
            if w != width:
                raise TypeError_(f"'*:{w}' does not match width {width}", span)
            return [[] for _ in range(width)]
        if isinstance(expr, ast.Tuple_):
            groups: list[list[list[tuple[Net, Net | None]]]] = []
            fixed = 0
            flex_at: int | None = None
            for item in expr.items:
                if isinstance(item, ast.Star) and item.width is None:
                    if flex_at is not None:
                        raise TypeError_("at most one width-less '*'", span)
                    flex_at = len(groups)
                    groups.append([])
                else:
                    g = self.resolve_write_or_star(item, ctx, -1, span)
                    fixed += len(g)
                    groups.append(g)
            if flex_at is not None:
                pad = width - fixed
                if pad < 0:
                    raise TypeError_("actual parameter too wide", span)
                groups[flex_at] = [[] for _ in range(pad)]
            out = [t for g in groups for t in g]
            if width >= 0 and len(out) != width:
                raise TypeError_(
                    f"actual width {len(out)} does not match formal width {width}",
                    span,
                )
            return out
        targets = self.resolve_write(expr, ctx)
        if width >= 0 and len(targets) != width:
            raise TypeError_(
                f"actual width {len(targets)} does not match formal width {width}",
                span,
            )
        return targets

    def mark_use(self, nets: list[Net], ctx: Ctx | None = None) -> None:
        """Record pin usage for the unused-port rule.  References to the
        *enclosing* component's own formal parameters do not count -- the
        rule is about the ports of instantiated sub-components."""
        boundary = ctx.boundary if ctx is not None else {}
        for net in nets:
            if net.id in boundary:
                continue
            owner = self.pin_owner.get(net.id)
            if owner is not None:
                owner.touched.add(net.id)

    # ------------------------------------------------------------------
    # expressions
    # ------------------------------------------------------------------

    def flatten_expr(self, expr: ast.Expr, ctx: Ctx) -> Flattened:
        if isinstance(expr, ast.Star):
            if expr.width is not None:
                return Flattened([StarFill(eval_int(expr.width, ctx.env))])
            return Flattened([StarFill(None)])
        if isinstance(expr, ast.NumberLit):
            return Flattened([self._bit_const(expr.value, expr.span)])
        if isinstance(expr, ast.LogicLit):
            return Flattened([Logic.from_name(expr.value)])
        if isinstance(expr, ast.Tuple_):
            items: list[Any] = []
            for sub in expr.items:
                items.extend(self.flatten_expr(sub, ctx).items)
            return Flattened(items)
        if isinstance(expr, ast.BinCall):
            value = eval_int(expr.value, ctx.env)
            width = eval_int(expr.width, ctx.env)
            from .values import bits_of

            try:
                return Flattened(list(bits_of(value, width)))
            except ValueError as exc:
                raise ElaborationError(str(exc), expr.span) from None
        if isinstance(expr, ast.Call):
            return Flattened(list(self.elaborate_call(expr, ctx)))
        if isinstance(expr, ast.Unary) and expr.op == "NOT":
            operand = self.flatten_expr(expr.operand, ctx).strict(
                expr.span, "a NOT operand"
            )
            nets = [self._materialize(s, expr.span) for s in operand]
            return Flattened(
                [self.netlist.add_gate("NOT", [n], expr.span) for n in nets]
            )
        if isinstance(expr, (ast.Unary, ast.Binary)):
            value = eval_const(expr, ctx.env)
            return Flattened(self._const_items(value, expr.span))
        if isinstance(
            expr, (ast.Name, ast.Index, ast.IndexRange, ast.IndexNum, ast.Field, ast.FieldRange)
        ):
            alts = self.resolve_alts(expr, ctx)
            if isinstance(alts, ConstResult):
                return Flattened(self._const_items(alts.value, expr.span))
            return Flattened(list(self._read_alts(alts, expr.span, ctx)))
        raise ElaborationError(
            f"cannot elaborate expression {type(expr).__name__}", expr.span
        )

    def _const_items(self, value: Any, span: Span) -> list[Any]:
        if isinstance(value, Logic):
            return [value]
        if is_signal_const(value):
            return list(const_leaves(value))
        if isinstance(value, bool):
            value = int(value)
        if value in (0, 1):
            return [Logic.from_bit(value)]
        raise TypeError_(
            f"numeric constant {value} is not a signal value (only 0 and 1 are)",
            span,
        )

    def _bit_const(self, value: int, span: Span) -> Logic:
        if value in (0, 1):
            return Logic.from_bit(value)
        raise TypeError_(
            f"number {value} cannot be used as a signal (only 0 and 1)", span
        )

    def _read_alts(
        self, alts: list[tuple[Net | None, SigTree]], span: Span, ctx: Ctx
    ) -> list[Src]:
        if len(alts) == 1 and alts[0][0] is None:
            leaves = alts[0][1].leaves()
            self.mark_use(leaves, ctx)
            return list(leaves)
        # NUM-indexed read: build a decoded multiplexer.
        width = None
        for _, t in alts:
            w = t.width
            width = w if width is None else width
        assert width is not None
        outs = [
            self.netlist.new_net(f"$nummux{len(self.netlist.nets)}", MULTIPLEX, span, role="local")
            for _ in range(width)
        ]
        for guard, t in alts:
            leaves = t.leaves()
            self.mark_use(leaves, ctx)
            for dst, src in zip(outs, leaves):
                self.netlist.add_conn(src, dst, guard, span)
        return list(outs)

    def elaborate_call(self, expr: ast.Call, ctx: Ctx) -> list[Src]:
        func, type_args = self._unwrap_func(expr.func, ctx)
        if not isinstance(func, ast.Name):
            raise TypeError_("function component name expected", expr.span)
        name = func.ident
        binding = ctx.env.lookup(name, expr.span)
        if isinstance(binding, TypeBinding) and binding.builtin == "gate":
            return self._gate_call(name, expr, ctx)
        if isinstance(binding, TypeBinding):
            return self._function_call(binding, type_args, expr, ctx)
        raise TypeError_(f"{name!r} is not a function component", expr.span)

    def _unwrap_func(
        self, func: ast.Expr, ctx: Ctx
    ) -> tuple[ast.Expr, list[int]]:
        """Split ``f[n][m]`` call heads into the name and explicit type
        arguments (the paper's ``plus[n](a, b)`` narrative syntax)."""
        args: list[int] = []
        while isinstance(func, ast.Index):
            args.insert(0, eval_int(func.index, ctx.env))
            func = func.base
        return func, args

    def _gate_call(self, op: str, expr: ast.Call, ctx: Ctx) -> list[Src]:
        arg_bits: list[list[Net]] = []
        for a in expr.args:
            flat = self.flatten_expr(a, ctx).strict(a.span, f"{op} operands")
            arg_bits.append([self._materialize(s, a.span) for s in flat])
        if op == "RANDOM":
            if arg_bits:
                raise TypeError_("RANDOM takes no arguments", expr.span)
            return [self.netlist.add_gate("RANDOM", [], expr.span)]
        if op == "NOT":
            if len(arg_bits) != 1:
                raise TypeError_("NOT takes one argument", expr.span)
            return [
                self.netlist.add_gate("NOT", [n], expr.span) for n in arg_bits[0]
            ]
        if not arg_bits:
            raise TypeError_(f"{op} needs at least one argument", expr.span)
        widths = {len(bits) for bits in arg_bits}
        if len(widths) != 1:
            raise TypeError_(
                f"{op} operands must have the same number of basic "
                f"substructures, got {sorted(widths)}",
                expr.span,
            )
        if op == "EQUAL":
            if len(arg_bits) != 2:
                raise TypeError_("EQUAL takes two arguments", expr.span)
            # One gate comparing the full vectors (section 8: one exiting
            # edge, 1 iff all defined and equal).
            return [
                self.netlist.add_gate("EQUAL", arg_bits[0] + arg_bits[1], expr.span)
            ]
        m = widths.pop()
        return [
            self.netlist.add_gate(op, [bits[j] for bits in arg_bits], expr.span)
            for j in range(m)
        ]

    def _function_call(
        self,
        binding: TypeBinding,
        type_args: list[int],
        expr: ast.Call,
        ctx: Ctx,
    ) -> list[Src]:
        comp = self._resolve_function_type(binding, type_args, expr, ctx)
        if not comp.is_function:
            raise TypeError_(
                f"{binding.name!r} is not a function component type", expr.span
            )
        if len(expr.args) != len(comp.params):
            raise TypeError_(
                f"{binding.name} expects {len(comp.params)} arguments, got "
                f"{len(expr.args)}",
                expr.span,
            )
        self._fn_counter += 1
        path = f"{ctx.path}.${binding.name}{self._fn_counter}"
        inst = self.instantiate_component(comp, path, expr.span)
        # Feed the arguments (unconditionally -- the IF guard applies to
        # the use of the result, not to the existence of the hardware).
        feed_ctx = Ctx(ctx.env, ctx.path, None, ctx.boundary, None)
        for param, actual in zip(comp.params, expr.args):
            pin = force(inst.fields[param.name])
            self._connect_param(pin, param, actual, feed_ctx, expr.span, repeat=1)
        result = self.netlist.signals[f"{path}.$result"]
        return list(result)

    def _resolve_function_type(
        self,
        binding: TypeBinding,
        type_args: list[int],
        expr: ast.Call,
        ctx: Ctx,
    ) -> ComponentV:
        if binding.builtin is not None:
            raise TypeError_(
                f"{binding.name!r} cannot be called as a function", expr.span
            )
        assert binding.type_ast is not None and binding.closure is not None
        if len(binding.params) == 0:
            t = self.elab_type(
                ast.NamedType(binding.name, [], span=expr.span), ctx.env
            )
        elif type_args:
            t = self.elab_type(
                ast.NamedType(
                    binding.name,
                    [ast.NumberLit(a, span=expr.span) for a in type_args],
                    span=expr.span,
                ),
                ctx.env,
            )
        else:
            t = self._infer_function_type(binding, expr, ctx)
        if not isinstance(t, ComponentV):
            raise TypeError_(f"{binding.name!r} is not a component type", expr.span)
        return t

    def _infer_function_type(
        self, binding: TypeBinding, expr: ast.Call, ctx: Ctx
    ) -> TypeV:
        """Infer a single numeric type parameter from argument widths by
        bounded search (documented extension covering ``plus[n]`` without
        explicit brackets)."""
        if len(binding.params) != 1:
            raise TypeError_(
                f"{binding.name} needs explicit type parameters, e.g. "
                f"{binding.name}[n](...)",
                expr.span,
            )
        widths = [len(self.flatten_expr(a, ctx).items) for a in expr.args]
        for candidate in range(1, 4097):
            try:
                t = self.elab_type(
                    ast.NamedType(
                        binding.name, [ast.NumberLit(candidate, span=expr.span)],
                        span=expr.span,
                    ),
                    ctx.env,
                )
            except Exception:
                continue
            if isinstance(t, ComponentV) and len(t.params) == len(widths):
                if all(p.type.width == w for p, w in zip(t.params, widths)):
                    return t
        raise TypeError_(
            f"could not infer the type parameter of {binding.name} from the "
            f"argument widths {widths}; use {binding.name}[n](...)",
            expr.span,
        )

    # ------------------------------------------------------------------
    # net-level helpers
    # ------------------------------------------------------------------

    def special_net(self, name: str) -> Net:
        """The predefined CLK / RSET input signals."""
        if name not in self._special_nets:
            net = self.netlist.new_net(name, BOOLEAN, role="local", is_input=True)
            self.netlist.register_signal(name, [net])
            self._special_nets[name] = net
        return self._special_nets[name]

    def const_net(self, value: Logic, span: Span = NO_SPAN) -> Net:
        if value not in self._const_nets:
            kind = MULTIPLEX if value is Logic.NOINFL else BOOLEAN
            net = self.netlist.new_net(f"$const_{value}", kind, span, role="local")
            self.netlist.add_const(value, net, None, span)
            self._const_nets[value] = net
        return self._const_nets[value]

    def _materialize(self, src: Src, span: Span) -> Net:
        if isinstance(src, Net):
            return src
        if isinstance(src, Logic):
            return self.const_net(src, span)
        raise TypeError_("'*' cannot be used as an operand", span)

    def not_net(self, net: Net, span: Span) -> Net:
        if net.id not in self._not_cache:
            self._not_cache[net.id] = self.netlist.add_gate("NOT", [net], span)
        return self._not_cache[net.id]

    def and_guard(self, a: Net | None, b: Net | None, span: Span) -> Net | None:
        if a is None:
            return b
        if b is None:
            return a
        key = (min(a.id, b.id), max(a.id, b.id))
        if key not in self._and_cache:
            self._and_cache[key] = self.netlist.add_gate("AND", [a, b], span)
        return self._and_cache[key]

    def _decode_net(self, sel: list[Net], value: int, span: Span) -> Net:
        """EQUAL(sel, BIN(value, len(sel))) as a cached decode gate."""
        from .values import bits_of

        consts = [self.const_net(b, span) for b in bits_of(value, len(sel))]
        key = (tuple(n.id for n in sel), value)
        if key not in self._and_cache:
            self._and_cache[key] = self.netlist.add_gate(  # type: ignore[index]
                "EQUAL", sel + consts, span
            )
        return self._and_cache[key]  # type: ignore[index]


def _has_unmaterialized(tree: SigTree) -> bool:
    """True when flattening *tree* would force a lazy instance or touch an
    unreplaced virtual signal (such trees are not registered eagerly)."""
    if isinstance(tree, (LazyTree, VirtualTree)):
        return True
    if isinstance(tree, ArrayTree):
        return any(_has_unmaterialized(e) for e in tree.elems)
    if isinstance(tree, CompTree):
        return any(_has_unmaterialized(f) for f in tree.fields.values())
    return False


class ConstResult:
    """A designator that resolved to a compile-time constant."""

    def __init__(self, value: Any):
        self.value = value

    def index(self, i: int, span: Span) -> "ConstResult":
        if not isinstance(self.value, tuple):
            raise TypeError_("constant cannot be indexed", span)
        if not 1 <= i <= len(self.value):
            raise TypeError_(
                f"constant index {i} out of bounds [1..{len(self.value)}]", span
            )
        return ConstResult(self.value[i - 1])

    def slice(self, lo: int, hi: int, span: Span) -> "ConstResult":
        if not isinstance(self.value, tuple):
            raise TypeError_("constant cannot be sliced", span)
        if not (1 <= lo and hi <= len(self.value) and lo <= hi):
            raise TypeError_(f"constant slice [{lo}..{hi}] out of bounds", span)
        return ConstResult(self.value[lo - 1 : hi])


def _function_is_multiplex(body: list[ast.Stmt]) -> bool:
    """True when every RESULT statement is nested inside an IF (the
    section 3.2 rule deciding the function's value type)."""

    def walk(stmts: list[ast.Stmt], under_if: bool) -> tuple[bool, bool]:
        saw, all_conditional = False, True
        for s in stmts:
            if isinstance(s, ast.Result):
                saw = True
                all_conditional = all_conditional and under_if
            elif isinstance(s, ast.If):
                for _, arm in s.arms:
                    sub_saw, sub_all = walk(arm, True)
                    saw = saw or sub_saw
                    all_conditional = all_conditional and sub_all
                sub_saw, sub_all = walk(s.else_body, True)
                saw = saw or sub_saw
                all_conditional = all_conditional and sub_all
            elif isinstance(s, (ast.Sequential, ast.Parallel)):
                sub_saw, sub_all = walk(s.body, under_if)
                saw = saw or sub_saw
                all_conditional = all_conditional and sub_all
            elif isinstance(s, ast.For):
                sub_saw, sub_all = walk(s.body, under_if)
                saw = saw or sub_saw
                all_conditional = all_conditional and sub_all
            elif isinstance(s, ast.WhenGen):
                for _, arm in s.arms:
                    sub_saw, sub_all = walk(arm, under_if)
                    saw = saw or sub_saw
                    all_conditional = all_conditional and sub_all
                sub_saw, sub_all = walk(s.otherwise, under_if)
                saw = saw or sub_saw
                all_conditional = all_conditional and sub_all
            elif isinstance(s, ast.With):
                sub_saw, sub_all = walk(s.body, under_if)
                saw = saw or sub_saw
                all_conditional = all_conditional and sub_all
        return saw, all_conditional

    saw, all_conditional = walk(body, False)
    return saw and all_conditional


def _src_key(src: Src) -> Any:
    if isinstance(src, Net):
        return ("net", src.id)
    if isinstance(src, Logic):
        return ("const", int(src))
    return ("star",)


def elaborate(
    program: ast.Program,
    top: str | None = None,
    source: SourceText | None = None,
    name: str = "top",
) -> Design:
    """Elaborate a parsed program into a :class:`Design`.

    *top* selects the top-level signal declaration to instantiate; by
    default the last top-level signal of a component type with a body.
    """
    from ..obs.spans import span

    with span("elaborate"):
        return Elaborator(program, source, name).run(top)
