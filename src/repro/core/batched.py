"""The batched bit-parallel simulation engine.

The levelized engine of :mod:`repro.core.schedule` evaluates one
stimulus per pass.  Everything downstream that sweeps many independent
vectors -- ``exhaustive_equivalent``, ``random_equivalent``, the fuzz
suite, formal counterexample replay, mass regression traffic -- pays
the full schedule cost once per vector.  This module removes that
multiplier with the classic bit-parallel move (Barzilai et al.'s HSS,
and every compiled-code fault simulator since): pack N independent
stimulus *lanes* into machine words and evaluate all of them in one
pass over the same static schedule.

Bitplane encoding
-----------------

Each net class holds **two unbounded Python ints** (bitplanes).  Bit
``k`` of plane 0 means "lane k is possibly 0", bit ``k`` of plane 1
means "lane k is possibly 1" -- the standard 2-bit encoding of the
four-valued domain:

==========  =======  =======
value       plane 0  plane 1
==========  =======  =======
``ZERO``       1        0
``ONE``        0        1
``UNDEF``      1        1
``NOINFL``     0        0
==========  =======  =======

Under this encoding every scalar opcode of the levelized
:class:`~repro.core.schedule.Schedule` becomes a handful of plane-wise
bitwise expressions over *all lanes at once*; Python ints are unbounded
so the lane count is limited only by memory.  The implicit
multiplex-to-boolean amplifier (NOINFL reads as UNDEF at gate inputs)
falls out for free: gate rules test for the *exact* encodings
``(1,0)``/``(0,1)``, so NOINFL ``(0,0)`` behaves like UNDEF without an
explicit conversion.

Equivalence contract
--------------------

Lane ``k`` of a batched run with seed ``s`` is observationally
identical to a scalar (levelized or dataflow) run driven with lane
``k``'s stimulus and seed ``s + k``: same peeks, the same per-lane
register state, the same per-lane multiplex-conflict violations, and
the same RANDOM-gate stream (each lane owns a ``random.Random(s + k)``
consumed in gate-index order per cycle, exactly the scalar engines'
consumption order for that seed).  ``tests/test_engines.py`` checks the
contract metamorphically over the stdlib programs and the fuzz corpus.
"""

from __future__ import annotations

from typing import Callable, Iterable, Mapping, Sequence

from .schedule import (
    OPC_AND,
    OPC_CLASS,
    OPC_CONST,
    OPC_COPY,
    OPC_EQUAL,
    OPC_NAND,
    OPC_NOR,
    OPC_NOT,
    OPC_OR,
    OPC_RANDOM,
    OPC_XOR,
    Schedule,
)
from .values import Logic

#: Decode a lane's two plane bits -- index ``b0 | (b1 << 1)``.
PLANE_LOGIC = (Logic.NOINFL, Logic.ZERO, Logic.ONE, Logic.UNDEF)

#: Encode one Logic value as its ``(plane0, plane1)`` single-lane bits.
LOGIC_PLANES = {
    Logic.ZERO: (1, 0),
    Logic.ONE: (0, 1),
    Logic.UNDEF: (1, 1),
    Logic.NOINFL: (0, 0),
}


def pack(values: Sequence[Logic]) -> tuple[int, int]:
    """Pack per-lane Logic values into the two bitplanes (lane k = bit k)."""
    p0 = p1 = 0
    for k, v in enumerate(values):
        b0, b1 = LOGIC_PLANES[v]
        p0 |= b0 << k
        p1 |= b1 << k
    return p0, p1


def unpack(p0: int, p1: int, lanes: int) -> list[Logic]:
    """Unpack two bitplanes into *lanes* per-lane Logic values."""
    return [
        PLANE_LOGIC[((p0 >> k) & 1) | (((p1 >> k) & 1) << 1)]
        for k in range(lanes)
    ]


def broadcast(value: Logic, mask: int) -> tuple[int, int]:
    """The bitplanes carrying *value* in every lane of *mask*."""
    b0, b1 = LOGIC_PLANES[value]
    return (mask if b0 else 0, mask if b1 else 0)


def lane_value(p0: int, p1: int, lane: int) -> Logic:
    """One lane's Logic value out of a plane pair."""
    return PLANE_LOGIC[((p0 >> lane) & 1) | (((p1 >> lane) & 1) << 1)]


class BatchStimulus:
    """A per-lane stimulus block: signal path -> one poke value per lane.

    A lane entry is anything :meth:`Simulator.poke` accepts (int, Logic,
    ``"UNDEF"``/``"NOINFL"``, bit list) or ``None`` for "no poke on this
    lane" (the lane keeps its input default).  Scalar entries broadcast
    to every lane.
    """

    def __init__(self, lanes: int, pokes: Mapping[str, object] | None = None):
        if lanes < 1:
            raise ValueError(f"a batch needs at least one lane, got {lanes}")
        self.lanes = lanes
        self.pokes: dict[str, list] = {}
        for path, value in (pokes or {}).items():
            self.set(path, value)

    def set(self, path: str, value) -> "BatchStimulus":
        """Set a signal's lane values (a list per lane, or a scalar to
        broadcast)."""
        if isinstance(value, (list, tuple)):
            if len(value) != self.lanes:
                raise ValueError(
                    f"batch stimulus {path!r}: got {len(value)} lane values "
                    f"for {self.lanes} lanes"
                )
            self.pokes[path] = list(value)
        else:
            self.pokes[path] = [value] * self.lanes
        return self

    @classmethod
    def from_vectors(cls, vectors: Sequence[Mapping[str, object]]) -> "BatchStimulus":
        """One lane per vector: ``[{"a": 3, "b": 1}, {"a": 0, "b": 2}]``."""
        vectors = list(vectors)
        if not vectors:
            raise ValueError(
                "from_vectors needs at least one vector (one lane each)"
            )
        for k, vec in enumerate(vectors):
            if not hasattr(vec, "items"):
                raise ValueError(
                    f"from_vectors: vector for lane {k} is not a "
                    f"signal->value mapping: {vec!r}"
                )
        stim = cls(len(vectors))
        names = {name for vec in vectors for name in vec}
        for name in sorted(names):
            stim.pokes[name] = [vec.get(name) for vec in vectors]
        return stim

    @classmethod
    def sweep(cls, path: str, values: Iterable, **fixed) -> "BatchStimulus":
        """Sweep *path* over *values* (one lane each), holding the
        keyword signals constant across lanes."""
        lane_values = list(values)
        stim = cls(len(lane_values))
        stim.pokes[path] = lane_values
        for name, value in fixed.items():
            stim.set(name.replace("__", "."), value)
        return stim

    @classmethod
    def from_json(cls, source) -> "BatchStimulus":
        """Load from a JSON file path or an already-parsed dict.

        Accepted shapes: ``{"lanes": N, "pokes": {sig: value-or-list}}``
        or the bare ``{sig: value-or-list}`` mapping (the lane count is
        then the longest list, or 1 if everything is scalar).
        """
        import json

        if isinstance(source, str):
            with open(source, "r", encoding="utf-8") as f:
                data = json.load(f)
        else:
            data = source
        if not isinstance(data, dict):
            raise ValueError("batch stimulus JSON must be an object")
        pokes = data.get("pokes", None)
        lanes = data.get("lanes", None)
        if pokes is None:
            pokes = {k: v for k, v in data.items() if k != "lanes"}
        if not isinstance(pokes, dict):
            raise ValueError("batch stimulus 'pokes' must be an object")
        if lanes is None:
            lanes = max(
                (len(v) for v in pokes.values() if isinstance(v, list)),
                default=1,
            )
        if isinstance(lanes, bool) or not isinstance(lanes, int):
            raise ValueError(
                f"batch stimulus 'lanes' must be an integer, got {lanes!r}"
            )
        return cls(lanes, pokes)

    def apply(self, sim) -> None:
        """Poke every signal into a batched :class:`Simulator`."""
        for path, values in self.pokes.items():
            sim.poke_lanes(path, values)

    def __repr__(self) -> str:
        return (
            f"BatchStimulus(lanes={self.lanes}, "
            f"signals={sorted(self.pokes)})"
        )


def execute(
    sched: Schedule,
    mask: int,
    vals0: list[int],
    vals1: list[int],
    pokes: dict[int, tuple[int, int, int]],
    reg0: list[int],
    reg1: list[int],
    lane_rngs: list,
    conflict: Callable[[int, int, int, int, int, int], None],
) -> None:
    """One bit-parallel combinational pass over the static schedule.

    ``mask`` is the all-lanes mask ``(1 << lanes) - 1``; ``vals0``/
    ``vals1`` are the per-class bitplanes (overwritten here); ``pokes``
    maps a class to ``(plane0, plane1, lane_mask)``; ``conflict(dst,
    lanes, prior0, prior1, new0, new1)`` records per-lane multi-drive
    violations (raising in strict mode).

    The op set and resolution rules mirror
    :func:`repro.core.schedule.execute` exactly, lifted to planes; see
    the module docstring for the encoding algebra.
    """
    M = mask
    get_poke = pokes.get

    # Source firings (cycle start).
    for i in sched.free_nets:
        vals0[i] = 0
        vals1[i] = 0
    for i, default in sched.input_defaults:
        d0 = M  # defaults are ZERO (M, 0) or UNDEF (M, M)
        d1 = M if default is Logic.UNDEF else 0
        pk = get_poke(i)
        if pk is None:
            vals0[i] = d0
            vals1[i] = d1
        else:
            p0, p1, pm = pk
            free = M & ~pm
            vals0[i] = (d0 & free) | p0
            vals1[i] = (d1 & free) | p1
    for ri, qi in sched.reg_pairs:
        vals0[qi] = reg0[ri]
        vals1[qi] = reg1[ri]
    for op in sched.source_ops:
        if op[0] == OPC_RANDOM:
            ones = 0
            bit = 1
            for rng in lane_rngs:
                if rng.random() < 0.5:
                    ones |= bit
                bit <<= 1
            vals0[op[1]] = M ^ ones
            vals1[op[1]] = ones
        else:
            vals0[op[1]], vals1[op[1]] = broadcast(op[2], M)

    # The single bit-parallel pass.
    for op in sched.ops:
        code = op[0]
        if code == OPC_COPY:
            dst = op[1]
            s0 = vals0[op[2]]
            s1 = vals1[op[2]]
            pk = get_poke(dst)
            if pk is None:
                vals0[dst] = s0
                vals1[dst] = s1
            else:
                p0, p1, _ = pk
                clash = (p0 | p1) & (s0 | s1)
                if clash:
                    conflict(dst, clash, p0, p1, s0, s1)
                vals0[dst] = p0 | s0 | clash
                vals1[dst] = p1 | s1 | clash
        elif code == OPC_AND:
            ins = op[1]
            if len(ins) == 2:  # the overwhelmingly common case, unrolled
                a0 = vals0[ins[0]]
                a1 = vals1[ins[0]]
                b0 = vals0[ins[1]]
                b1 = vals1[ins[1]]
                zeros = (a0 & ~a1) | (b0 & ~b1)
                one = (a1 & ~a0) & (b1 & ~b0) & ~zeros
            else:
                zeros = 0
                all_one = M
                for i in ins:
                    v0 = vals0[i]
                    v1 = vals1[i]
                    zeros |= v0 & ~v1
                    all_one &= v1 & ~v0
                one = all_one & ~zeros
            vals0[op[2]] = M & ~one
            vals1[op[2]] = M & ~zeros
        elif code == OPC_CLASS:
            dst = op[1]
            acc0 = acc1 = driven = maybe = conf = 0
            pk = get_poke(dst)
            if pk is not None:
                acc0, acc1, _ = pk
                driven = acc0 | acc1
            for cond, src, const in op[2]:
                if cond >= 0:
                    c0 = vals0[cond]
                    c1 = vals1[cond]
                    on = c1 & ~c0
                    # Guard UNDEF -- or a floating NOINFL guard, which
                    # amplifies to UNDEF -- *may* drive: poisons the lane.
                    maybe |= M & ~(on | (c0 & ~c1))
                    if not on:
                        continue
                else:
                    on = M
                if const is None:
                    d0 = vals0[src] & on
                    d1 = vals1[src] & on
                else:
                    b0, b1 = LOGIC_PLANES[const]
                    d0 = on if b0 else 0
                    d1 = on if b1 else 0
                drive = d0 | d1
                if drive:
                    clash = driven & drive
                    if clash:
                        conflict(dst, clash, acc0, acc1, d0, d1)
                        conf |= clash
                    acc0 |= d0
                    acc1 |= d1
                    driven |= drive
            vals0[dst] = acc0 | conf | maybe
            vals1[dst] = acc1 | conf | maybe
        elif code == OPC_NOT:
            v0 = vals0[op[1]]
            v1 = vals1[op[1]]
            vals0[op[2]] = M & ~(v0 & ~v1)
            vals1[op[2]] = M & ~(v1 & ~v0)
        elif code == OPC_EQUAL:
            diff = undef = 0
            for ai, bi in op[1]:
                a0 = vals0[ai]
                a1 = vals1[ai]
                b0 = vals0[bi]
                b1 = vals1[bi]
                both_def = (a0 ^ a1) & (b0 ^ b1)
                diff |= both_def & (a1 ^ b1)
                undef |= M & ~both_def
            vals0[op[2]] = diff | undef
            vals1[op[2]] = M & ~diff
        elif code == OPC_OR:
            ins = op[1]
            if len(ins) == 2:
                a0 = vals0[ins[0]]
                a1 = vals1[ins[0]]
                b0 = vals0[ins[1]]
                b1 = vals1[ins[1]]
                ones = (a1 & ~a0) | (b1 & ~b0)
                zero = (a0 & ~a1) & (b0 & ~b1) & ~ones
            else:
                ones = 0
                all_zero = M
                for i in ins:
                    v0 = vals0[i]
                    v1 = vals1[i]
                    ones |= v1 & ~v0
                    all_zero &= v0 & ~v1
                zero = all_zero & ~ones
            vals0[op[2]] = M & ~ones
            vals1[op[2]] = M & ~zero
        elif code == OPC_CONST:
            dst = op[1]
            s0, s1 = broadcast(op[2], M)
            pk = get_poke(dst)
            if pk is None:
                vals0[dst] = s0
                vals1[dst] = s1
            else:
                p0, p1, _ = pk
                clash = (p0 | p1) & (s0 | s1)
                if clash:
                    conflict(dst, clash, p0, p1, s0, s1)
                vals0[dst] = p0 | s0 | clash
                vals1[dst] = p1 | s1 | clash
        elif code == OPC_XOR:
            ins = op[1]
            if len(ins) == 2:
                a0 = vals0[ins[0]]
                a1 = vals1[ins[0]]
                b0 = vals0[ins[1]]
                b1 = vals1[ins[1]]
                all_def = (a0 ^ a1) & (b0 ^ b1)
                parity = (a1 & ~a0) ^ (b1 & ~b0)
            else:
                all_def = M
                parity = 0
                for i in ins:
                    v0 = vals0[i]
                    v1 = vals1[i]
                    all_def &= v0 ^ v1
                    parity ^= v1 & ~v0
            nd = M & ~all_def
            vals0[op[2]] = (all_def & ~parity) | nd
            vals1[op[2]] = (all_def & parity) | nd
        elif code == OPC_NAND:
            zeros = 0
            all_one = M
            for i in op[1]:
                v0 = vals0[i]
                v1 = vals1[i]
                zeros |= v0 & ~v1
                all_one &= v1 & ~v0
            one = all_one & ~zeros
            # NOT of a NOINFL-free value just swaps the planes.
            vals0[op[2]] = M & ~zeros
            vals1[op[2]] = M & ~one
        elif code == OPC_NOR:
            ones = 0
            all_zero = M
            for i in op[1]:
                v0 = vals0[i]
                v1 = vals1[i]
                ones |= v1 & ~v0
                all_zero &= v0 & ~v1
            zero = all_zero & ~ones
            vals0[op[2]] = M & ~zero
            vals1[op[2]] = M & ~ones
