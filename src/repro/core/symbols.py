"""Scoped symbol environments for elaboration.

Zeus scoping (section 3): identifiers are valid within the component type
in which they are declared; a USES list restricts which outer objects a
component may see; predefined standard objects are pervasive.  Constants,
types and signals live in one namespace.

Bindings:

* :class:`ConstBinding` -- numeric constant or structured signal constant;
* :class:`TypeBinding` -- a (possibly parameterized) declared type: the
  template AST plus its closure environment;
* :class:`SignalBinding` -- an elaborated signal (bound during
  elaboration; see :mod:`repro.core.elaborate`);
* :class:`LoopVar` -- a FOR replication variable (an integer).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from ..lang import ast
from ..lang.errors import ElaborationError
from ..lang.source import NO_SPAN, Span

if TYPE_CHECKING:
    from .elaborate import SigTree


@dataclass
class ConstBinding:
    """``CONST name = ...``: an int or a nested tuple of Logic values."""

    value: Any  # int | ConstTree (nested tuples / Logic)


@dataclass
class TypeBinding:
    """A declared type template awaiting elaboration.

    ``builtin`` marks the pervasive predefined types (boolean, multiplex,
    virtual, REG and the standard function components), which are
    elaborated by special cases rather than from an AST.
    """

    name: str
    params: list[str] = field(default_factory=list)
    type_ast: ast.TypeExpr | None = None
    closure: "Env | None" = None
    builtin: Any = None  # marker / payload for predefined types


@dataclass
class LoopVar:
    value: int


@dataclass
class SignalBinding:
    tree: "SigTree"


Binding = ConstBinding | TypeBinding | LoopVar | SignalBinding


class Env:
    """A chained scope.  ``uses`` (when not None) is the USES filter: only
    those outer names -- plus everything pervasive -- are visible through
    this scope boundary."""

    def __init__(
        self,
        parent: "Env | None" = None,
        uses: list[str] | None = None,
        pervasive: "Env | None" = None,
    ):
        self.parent = parent
        self.bindings: dict[str, Binding] = {}
        self.uses = uses
        # The pervasive scope (standard environment) is always visible,
        # even through an empty USES list.
        self.pervasive = pervasive if pervasive is not None else (
            parent.pervasive if parent is not None else None
        )

    def bind(self, name: str, binding: Binding, span: Span = NO_SPAN) -> None:
        if name in self.bindings:
            raise ElaborationError(f"duplicate declaration of {name!r}", span)
        self.bindings[name] = binding

    def rebind(self, name: str, binding: Binding) -> None:
        self.bindings[name] = binding

    def lookup(self, name: str, span: Span = NO_SPAN) -> Binding:
        found = self._lookup(name)
        if found is None:
            raise ElaborationError(f"undeclared identifier {name!r}", span)
        return found

    def _lookup(self, name: str) -> Binding | None:
        env: Env | None = self
        while env is not None:
            if name in env.bindings:
                return env.bindings[name]
            if env.uses is not None and name not in env.uses:
                # The USES wall: only listed names pass; pervasive
                # standard objects are looked up separately below.
                break
            env = env.parent
        if self.pervasive is not None and name in self.pervasive.bindings:
            return self.pervasive.bindings[name]
        # A listed USES name continues the search above the wall.
        if env is not None and env.uses is not None and name in env.uses:
            outer = env.parent
            while outer is not None:
                if name in outer.bindings:
                    return outer.bindings[name]
                if outer.uses is not None and name not in outer.uses:
                    return None
                outer = outer.parent
        return None

    def defines_locally(self, name: str) -> bool:
        return name in self.bindings

    def child(self, uses: list[str] | None = None) -> "Env":
        return Env(self, uses=uses)
