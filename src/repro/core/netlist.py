"""The semantics graph (paper section 8), a.k.a. the elaborated netlist.

Elaboration flattens the component hierarchy into:

* :class:`Net` -- one node per basic signal (boolean or multiplex leaf);
* :class:`Gate` -- one node per predefined function component instance
  (AND, OR, NAND, NOR, XOR, EQUAL, NOT, RANDOM), producing a fresh net;
* drivers (:class:`Conn` / :class:`ConstConn`) -- the directed edges
  introduced by assignment and connection statements, optionally guarded
  by an IF-node condition net;
* :class:`Reg` -- REG instances, the only cycle breakers;
* alias merges -- the effect of ``==`` statements, realised by union-find
  over nets.

The simulator and the static checker both operate on this structure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.source import NO_SPAN, Span
from .types import BOOLEAN, MULTIPLEX
from .values import Logic


@dataclass(eq=False)
class Net:
    """One basic signal node.

    ``kind`` is BOOLEAN or MULTIPLEX.  ``is_input`` marks primary inputs
    of the top-level component (pokeable from outside); ``is_output``
    marks its OUT pins.  ``name`` is the flattened hierarchical path.

    ``role`` records what the net is from the point of view of the
    component whose statements may assign it, which is what the static
    assignment rules of section 4.7 key on:

    * ``local`` -- a locally declared signal of basic type;
    * ``formal_in`` / ``formal_out`` / ``formal_inout`` -- a pin of the
      component under elaboration, seen from inside;
    * ``pin_in`` / ``pin_out`` / ``pin_inout`` -- a pin of an
      *instantiated* sub-component, seen from outside;
    * ``gate`` -- the fresh output of a predefined gate;
    * ``reg_d`` / ``reg_q`` -- REG terminals.
    """

    id: int
    name: str
    kind: str
    span: Span = NO_SPAN
    is_input: bool = False
    is_output: bool = False
    role: str = "local"

    def __repr__(self) -> str:
        return f"Net({self.id}, {self.name!r}, {self.kind})"


@dataclass(eq=False)
class Gate:
    """A predefined function component instance operating on single bits.

    Structured operands have already been expanded bitwise: an
    ``AND(a, b)`` over 4-bit operands becomes four 2-input AND gates.
    ``op`` is one of AND OR NAND NOR XOR EQUAL NOT RANDOM.
    """

    id: int
    op: str
    inputs: list[Net]
    output: Net
    span: Span = NO_SPAN

    def __repr__(self) -> str:
        return f"Gate({self.op}, in={[n.id for n in self.inputs]}, out={self.output.id})"


@dataclass(eq=False)
class Conn:
    """A directed edge ``src -> dst`` (an assignment), optionally guarded:
    ``IF cond THEN dst := src`` contributes src when cond=1, NOINFL when
    cond=0, UNDEF when cond is UNDEF/NOINFL (section 8 if-node rules)."""

    src: Net
    dst: Net
    cond: Net | None = None
    span: Span = NO_SPAN


@dataclass(eq=False)
class ConstConn:
    """A constant driver ``dst := value`` with optional guard."""

    value: Logic
    dst: Net
    cond: Net | None = None
    span: Span = NO_SPAN


@dataclass(eq=False)
class Reg:
    """One REG storage element: ``q`` carries the value latched from ``d``
    at the end of the previous cycle.  The REG node has no internal edges
    -- it is the cycle breaker of the semantics graph."""

    id: int
    d: Net
    q: Net
    name: str = ""
    span: Span = NO_SPAN


@dataclass
class PortInfo:
    """Interface description of the top-level component: pin name ->
    (mode, flattened nets in natural order)."""

    name: str
    mode: str  # "IN", "OUT", "INOUT"
    nets: list[Net]


class Netlist:
    """The complete elaborated design."""

    def __init__(self, name: str = "top"):
        self.name = name
        self.nets: list[Net] = []
        self.gates: list[Gate] = []
        self.conns: list[Conn] = []
        self.const_conns: list[ConstConn] = []
        self.regs: list[Reg] = []
        self.ports: list[PortInfo] = []
        #: hierarchical signal path -> flattened nets, for probing.
        self.signals: dict[str, list[Net]] = {}
        #: union-find parent pointers for == aliasing.
        self._alias_parent: dict[int, int] = {}
        self._next_gate = 0
        self._next_reg = 0

    # -- construction -------------------------------------------------------

    def new_net(
        self,
        name: str,
        kind: str,
        span: Span = NO_SPAN,
        *,
        is_input: bool = False,
        is_output: bool = False,
        role: str = "local",
    ) -> Net:
        net = Net(len(self.nets), name, kind, span, is_input, is_output, role)
        self.nets.append(net)
        return net

    def add_gate(self, op: str, inputs: list[Net], span: Span = NO_SPAN) -> Net:
        out = self.new_net(f"${op.lower()}{self._next_gate}", BOOLEAN, span, role="gate")
        gate = Gate(self._next_gate, op, list(inputs), out, span)
        self._next_gate += 1
        self.gates.append(gate)
        return out

    def add_conn(
        self, src: Net, dst: Net, cond: Net | None = None, span: Span = NO_SPAN
    ) -> None:
        self.conns.append(Conn(src, dst, cond, span))

    def add_const(
        self, value: Logic, dst: Net, cond: Net | None = None, span: Span = NO_SPAN
    ) -> None:
        self.const_conns.append(ConstConn(value, dst, cond, span))

    def add_reg(self, d: Net, q: Net, name: str = "", span: Span = NO_SPAN) -> Reg:
        reg = Reg(self._next_reg, d, q, name, span)
        self._next_reg += 1
        self.regs.append(reg)
        return reg

    def register_signal(self, path: str, nets: list[Net]) -> None:
        self.signals[path] = nets

    # -- aliasing (union-find) ----------------------------------------------

    def alias(self, a: Net, b: Net) -> None:
        """Merge the alias classes of nets *a* and *b* (the == operator)."""
        ra, rb = self.find(a), self.find(b)
        if ra is not rb:
            self._alias_parent[rb.id] = ra.id

    def find(self, net: Net) -> Net:
        """Canonical representative of *net*'s alias class."""
        nid = net.id
        root = nid
        while root in self._alias_parent:
            root = self._alias_parent[root]
        # Path compression.
        while nid != root:
            nxt = self._alias_parent[nid]
            self._alias_parent[nid] = root
            nid = nxt
        return self.nets[root]

    def alias_class(self, net: Net) -> list[Net]:
        """All nets aliased with *net* (including itself)."""
        root = self.find(net)
        return [n for n in self.nets if self.find(n) is root]

    def unique_conns(self) -> list[Conn]:
        """Connections deduplicated over alias-canonical (src, dst, cond).

        The paper allows repeating a connection "as long as it is
        identical" (section 4.3) -- its own fulladder example wires
        ``h2.a`` twice -- so identical edges count as one driver.
        """
        seen: set[tuple[int, int, int | None]] = set()
        out: list[Conn] = []
        for c in self.conns:
            key = (
                self.find(c.src).id,
                self.find(c.dst).id,
                self.find(c.cond).id if c.cond is not None else None,
            )
            if key not in seen:
                seen.add(key)
                out.append(c)
        return out

    def unique_const_conns(self) -> list[ConstConn]:
        """Constant drivers deduplicated like :meth:`unique_conns`."""
        seen: set[tuple[Logic, int, int | None]] = set()
        out: list[ConstConn] = []
        for c in self.const_conns:
            key = (
                c.value,
                self.find(c.dst).id,
                self.find(c.cond).id if c.cond is not None else None,
            )
            if key not in seen:
                seen.add(key)
                out.append(c)
        return out

    # -- queries -------------------------------------------------------------

    @property
    def input_nets(self) -> list[Net]:
        return [n for n in self.nets if n.is_input]

    @property
    def output_nets(self) -> list[Net]:
        return [n for n in self.nets if n.is_output]

    def port(self, name: str) -> PortInfo:
        for p in self.ports:
            if p.name == name:
                return p
        raise KeyError(f"no port {name!r} in {self.name}")

    def stats(self) -> dict[str, int]:
        """Size statistics, used by the benchmarks and the CLI."""
        return {
            "nets": len(self.nets),
            "gates": len(self.gates),
            "connections": len(self.conns) + len(self.const_conns),
            "registers": len(self.regs),
            "alias_merges": len(self._alias_parent),
        }

    def describe(self) -> str:
        s = self.stats()
        return (
            f"netlist {self.name}: {s['nets']} nets, {s['gates']} gates, "
            f"{s['connections']} connections, {s['registers']} registers"
        )
