"""Elaborated signal references.

A :class:`SigTree` is the elaborated counterpart of a Zeus signal: a shape
(the elaborated type) over flattened :class:`~repro.core.netlist.Net`
leaves.  Selector navigation (indexing, slicing, field access and the
paper's abbreviation rules) happens here.

Two Zeus specifics shape the design:

* **Laziness** (section 4.2, routing-network comment: "this hardware is
  only generated if it is used").  A declared signal whose type is a
  component *with a body* materialises -- pins created, internals
  elaborated -- only when first referenced.  This is what terminates the
  recursive htree/routingnetwork declarations.
* **Mapped field access** (section 4.1): if ``r`` is an array of
  components, ``r.in`` denotes ``r[1..n].in``; selecting a field of an
  :class:`ArrayTree` maps over the elements.

Pin-usage bookkeeping for the unused-port rule lives in the elaborator
(which knows which instance owns each pin net); trees are pure structure.
"""

from __future__ import annotations

from typing import Callable

from ..lang.errors import ElaborationError
from ..lang.source import NO_SPAN, Span
from .netlist import Net
from .types import ArrayV, BasicV, ComponentV, TypeV


class SigTree:
    """Abstract elaborated signal reference."""

    type: TypeV

    def leaves(self) -> list[Net]:
        """Flatten to basic signals in natural order (forces laziness)."""
        raise NotImplementedError

    @property
    def width(self) -> int:
        return self.type.width

    def index(self, i: int, span: Span = NO_SPAN) -> "SigTree":
        raise ElaborationError(
            f"signal of type {self.type.describe()} cannot be indexed", span
        )

    def slice(self, lo: int, hi: int, span: Span = NO_SPAN) -> "SigTree":
        raise ElaborationError(
            f"signal of type {self.type.describe()} cannot be sliced", span
        )

    def field(self, name: str, span: Span = NO_SPAN) -> "SigTree":
        raise ElaborationError(
            f"signal of type {self.type.describe()} has no field {name!r}", span
        )

    def field_range(self, first: str, last: str, span: Span = NO_SPAN) -> "SigTree":
        raise ElaborationError(
            f"signal of type {self.type.describe()} has no fields", span
        )


class BitTree(SigTree):
    """A single basic signal."""

    def __init__(self, type_: BasicV, net: Net):
        self.type = type_
        self.net = net

    def leaves(self) -> list[Net]:
        return [self.net]


class ArrayTree(SigTree):
    """An array signal; elements may still be lazy."""

    def __init__(self, type_: ArrayV, elems: list[SigTree]):
        self.type = type_
        self.elems = elems

    def leaves(self) -> list[Net]:
        out: list[Net] = []
        for e in self.elems:
            out.extend(e.leaves())
        return out

    def _offset(self, i: int, span: Span) -> int:
        at = self.type
        assert isinstance(at, ArrayV)
        if not at.lo <= i <= at.hi:
            raise ElaborationError(
                f"index {i} out of bounds [{at.lo}..{at.hi}]", span
            )
        return i - at.lo

    def index(self, i: int, span: Span = NO_SPAN) -> SigTree:
        return self.elems[self._offset(i, span)]

    def slice(self, lo: int, hi: int, span: Span = NO_SPAN) -> SigTree:
        at = self.type
        assert isinstance(at, ArrayV)
        if hi < lo:
            raise ElaborationError(f"empty slice [{lo}..{hi}]", span)
        first = self._offset(lo, span)
        last = self._offset(hi, span)
        sub = ArrayV(1, hi - lo + 1, at.element)
        return ArrayTree(sub, self.elems[first : last + 1])

    def field(self, name: str, span: Span = NO_SPAN) -> SigTree:
        # Abbreviation rule: r.in == r[lo..hi].in (map over elements).
        mapped = [e.field(name, span) for e in self.elems]
        if not mapped:
            raise ElaborationError(f"field {name!r} of empty array", span)
        return ArrayTree(ArrayV(1, len(mapped), mapped[0].type), mapped)


class CompTree(SigTree):
    """An instantiated component (or record) signal: its visible pins.

    ``is_instance`` is True for instances of components with a body
    (sub-circuits), which the unused-port rule of section 4.1 applies to;
    the elaborator accumulates used pin-net ids in ``touched``.
    """

    def __init__(
        self,
        type_: ComponentV,
        fields: dict[str, SigTree],
        path: str = "",
        *,
        is_instance: bool = False,
    ):
        self.type = type_
        self.fields = fields
        self.path = path
        self.is_instance = is_instance
        self.touched: set[int] = set()
        #: Environment of the instance body after elaboration; the layout
        #: engine resolves layout-statement signal references against it.
        self.local_env = None

    def leaves(self) -> list[Net]:
        out: list[Net] = []
        for p in self.type.params:  # natural (declaration) order
            out.extend(self.fields[p.name].leaves())
        return out

    def field(self, name: str, span: Span = NO_SPAN) -> SigTree:
        if name not in self.fields:
            raise ElaborationError(
                f"component {self.type.describe()} has no pin {name!r}", span
            )
        return self.fields[name]

    def field_range(self, first: str, last: str, span: Span = NO_SPAN) -> SigTree:
        names = [p.name for p in self.type.params]
        if first not in names or last not in names:
            missing = first if first not in names else last
            raise ElaborationError(
                f"component {self.type.describe()} has no pin {missing!r}", span
            )
        i, j = names.index(first), names.index(last)
        if j < i:
            raise ElaborationError(f"field range {first}..{last} is reversed", span)
        return ConcatTree([self.fields[n] for n in names[i : j + 1]])


class ConcatTree(SigTree):
    """An anonymous concatenation of signals (field ranges, tuples)."""

    def __init__(self, parts: list[SigTree]):
        self.parts = parts
        total = sum(p.width for p in parts)
        self.type = ArrayV(1, total, BasicV("boolean"))

    @property
    def width(self) -> int:
        return sum(p.width for p in self.parts)

    def leaves(self) -> list[Net]:
        out: list[Net] = []
        for p in self.parts:
            out.extend(p.leaves())
        return out


class VirtualTree(SigTree):
    """A signal of type ``virtual`` (section 6.4): a chessboard-style
    placeholder that the layout language replaces by a real type, at most
    once.  Until replaced, any structural use is an error; afterwards the
    tree forwards to the replacement."""

    def __init__(self, type_: TypeV, path: str = ""):
        self.type = type_
        self.path = path
        self.replaced: SigTree | None = None

    def _real(self, span: Span) -> SigTree:
        if self.replaced is None:
            raise ElaborationError(
                f"virtual signal {self.path or '<anonymous>'} used before "
                "replacement (section 6.4)",
                span,
            )
        return self.replaced

    def leaves(self) -> list[Net]:
        return self._real(NO_SPAN).leaves()

    def index(self, i: int, span: Span = NO_SPAN) -> SigTree:
        return self._real(span).index(i, span)

    def slice(self, lo: int, hi: int, span: Span = NO_SPAN) -> SigTree:
        return self._real(span).slice(lo, hi, span)

    def field(self, name: str, span: Span = NO_SPAN) -> SigTree:
        return self._real(span).field(name, span)

    def field_range(self, first: str, last: str, span: Span = NO_SPAN) -> SigTree:
        return self._real(span).field_range(first, last, span)


class LazyTree(SigTree):
    """A not-yet-materialised component instance (or array of them);
    forcing runs the ``maker`` exactly once and caches the result."""

    def __init__(self, type_: TypeV, maker: Callable[[], SigTree]):
        self.type = type_
        self._maker: Callable[[], SigTree] | None = maker
        self._forced: SigTree | None = None

    @property
    def is_forced(self) -> bool:
        return self._forced is not None

    def force(self) -> SigTree:
        if self._forced is None:
            assert self._maker is not None
            maker, self._maker = self._maker, None
            self._forced = maker()
        return self._forced

    def leaves(self) -> list[Net]:
        return self.force().leaves()

    def index(self, i: int, span: Span = NO_SPAN) -> SigTree:
        return self.force().index(i, span)

    def slice(self, lo: int, hi: int, span: Span = NO_SPAN) -> SigTree:
        return self.force().slice(lo, hi, span)

    def field(self, name: str, span: Span = NO_SPAN) -> SigTree:
        return self.force().field(name, span)

    def field_range(self, first: str, last: str, span: Span = NO_SPAN) -> SigTree:
        return self.force().field_range(first, last, span)


def force(tree: SigTree) -> SigTree:
    """Force a possibly lazy tree to its concrete form."""
    return tree.force() if isinstance(tree, LazyTree) else tree
