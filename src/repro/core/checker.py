"""Graph-level static checks (paper sections 1, 4.5, 4.7, 8).

Run after elaboration, these enforce the rules that need the whole
semantics graph:

* **acyclicity** -- "we disallow feedback loops which do not lead through
  registers" (section 1); REG is the only cycle breaker;
* **assignment counting** (section 4.7): at most one unconditional
  assignment per basic signal; never both conditional and unconditional;
  conditional assignment to a *boolean* signal only under exception 1
  (an IN pin of an instantiated component or a formal OUT parameter);
* **aliasing** interaction: a boolean signal aliased with ``==`` must not
  also be unconditionally assigned with ``:=`` (section 4.1);
* **unused ports** (section 4.1): every pin of a partially connected
  instance must be used, assigned, or explicitly closed with ``*``;
* **SEQUENTIAL consistency** (section 4.5): a user-specified execution
  order must be compatible with the dataflow order;
* undriven-signal warnings (the signal will read UNDEF).
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass

from ..lang.errors import CheckError, DiagnosticSink
from ..lang.source import NO_SPAN
from .elaborate import Design
from .netlist import Net, Netlist
from .types import BOOLEAN


@dataclass
class _NetFacts:
    uncond: int = 0
    cond: int = 0
    has_uncond_conn: bool = False  # a ':=' (not const) unconditional driver


def dependency_graph(netlist: Netlist) -> dict[int, set[int]]:
    """Combinational dependency edges over canonical net ids:
    ``deps[dst]`` is the set of canonical nets *dst* depends on.
    Gate outputs depend on gate inputs; connection targets depend on the
    source and the guard; REG introduces no edges."""
    deps: dict[int, set[int]] = defaultdict(set)
    find = netlist.find
    for gate in netlist.gates:
        out = find(gate.output).id
        for inp in gate.inputs:
            deps[out].add(find(inp).id)
    for conn in netlist.conns:
        dst = find(conn.dst).id
        deps[dst].add(find(conn.src).id)
        if conn.cond is not None:
            deps[dst].add(find(conn.cond).id)
    for cc in netlist.const_conns:
        if cc.cond is not None:
            deps[find(cc.dst).id].add(find(cc.cond).id)
    return deps


def topological_order(netlist: Netlist) -> list[int]:
    """Kahn topological order of canonical net ids; raises
    :class:`CheckError` naming a cycle if one exists."""
    deps = dependency_graph(netlist)
    canon_ids = {netlist.find(n).id for n in netlist.nets}
    indegree = {nid: 0 for nid in canon_ids}
    fanout: dict[int, list[int]] = defaultdict(list)
    for dst, srcs in deps.items():
        for src in srcs:
            fanout[src].append(dst)
            indegree[dst] += 1
    queue = deque(nid for nid, deg in indegree.items() if deg == 0)
    order: list[int] = []
    while queue:
        nid = queue.popleft()
        order.append(nid)
        for nxt in fanout[nid]:
            indegree[nxt] -= 1
            if indegree[nxt] == 0:
                queue.append(nxt)
    if len(order) != len(canon_ids):
        cycle = _find_cycle(deps, {nid for nid, d in indegree.items() if d > 0})
        names = " -> ".join(netlist.nets[nid].name for nid in cycle)
        raise CheckError(
            f"combinational feedback loop (not through a register): {names}"
        )
    return order


def _find_cycle(deps: dict[int, set[int]], remaining: set[int]) -> list[int]:
    start = next(iter(remaining))
    path: list[int] = []
    seen: dict[int, int] = {}
    node = start
    while node not in seen:
        seen[node] = len(path)
        path.append(node)
        nxt = [d for d in deps.get(node, ()) if d in remaining]
        if not nxt:
            # Restart from another stuck node (shouldn't happen: every
            # remaining node has a remaining predecessor).
            remaining = remaining - set(path)
            if not remaining:
                return path
            node = next(iter(remaining))
            path.clear()
            seen.clear()
            continue
        node = nxt[0]
    return path[seen[node] :] + [node]


class Checker:
    """Runs all graph checks over one elaborated design."""

    def __init__(self, design: Design):
        self.design = design
        self.netlist = design.netlist
        self.sink = DiagnosticSink(source=design.source)

    def run(self) -> DiagnosticSink:
        self.check_acyclic()
        self.check_assignment_rules()
        self.check_unused_ports()
        self.check_sequential_constraints()
        self.warn_undriven()
        return self.sink

    # -- acyclicity -----------------------------------------------------

    def check_acyclic(self) -> None:
        try:
            topological_order(self.netlist)
        except CheckError as exc:
            self.sink.error(str(exc), exc.span, phase="check")

    # -- section 4.7 counting rules ---------------------------------------

    def _net_facts(self) -> dict[int, _NetFacts]:
        find = self.netlist.find
        facts: dict[int, _NetFacts] = defaultdict(_NetFacts)
        for conn in self.netlist.unique_conns():
            f = facts[find(conn.dst).id]
            if conn.cond is None:
                f.uncond += 1
                f.has_uncond_conn = True
            else:
                f.cond += 1
        for cc in self.netlist.unique_const_conns():
            f = facts[find(cc.dst).id]
            if cc.cond is None:
                f.uncond += 1
            else:
                f.cond += 1
        return facts

    def check_assignment_rules(self) -> None:
        find = self.netlist.find
        facts = self._net_facts()
        # Aggregate per-class membership to evaluate the aliasing rules.
        classes: dict[int, list[Net]] = defaultdict(list)
        for net in self.netlist.nets:
            classes[find(net).id].append(net)
        for canon_id, f in facts.items():
            canon = self.netlist.nets[canon_id]
            members = classes[canon_id]
            display = min((m.name for m in members if not m.name.startswith("$")),
                          default=canon.name)
            if f.uncond > 1:
                self.sink.error(
                    f"signal {display!r} has {f.uncond} unconditional "
                    "assignments (exactly one is allowed; this could connect "
                    "power to ground)",
                    canon.span,
                    phase="check",
                )
            if f.uncond >= 1 and f.cond >= 1:
                self.sink.error(
                    f"signal {display!r} is assigned both conditionally and "
                    "unconditionally (section 4.7)",
                    canon.span,
                    phase="check",
                )
            if f.cond >= 1:
                self._check_conditional_boolean(members, display)
            if len(members) > 1 and f.has_uncond_conn:
                booleans = [m for m in members if m.kind == BOOLEAN]
                if booleans:
                    self.sink.error(
                        f"boolean signal {display!r} is aliased with == and "
                        "also unconditionally assigned with := (section 4.1)",
                        canon.span,
                        phase="check",
                    )

    def _check_conditional_boolean(self, members: list[Net], display: str) -> None:
        """Conditional assignment reaches this alias class: every boolean
        member must fall under exception 1 of the type rules."""
        for m in members:
            if m.kind != BOOLEAN:
                continue
            if m.role in ("pin_in", "pin_out"):
                continue  # exception 1 (incl. formal OUT seen from inside)
            if m.role == "gate":
                continue  # implicit nets synthesized by the elaborator
            if m.name.startswith("$"):
                continue  # NUM-mux and other synthesized helper nets
            self.sink.error(
                f"conditional assignment to boolean signal {display!r} "
                f"({m.name}); it must be of type multiplex, or be an IN pin "
                "of an instantiated component or a formal OUT parameter "
                "(type rules (1), section 4.7)",
                m.span,
                phase="check",
            )

    # -- unused ports -------------------------------------------------------

    def check_unused_ports(self) -> None:
        pins_of: dict[int, list[Net]] = defaultdict(list)
        instances = {id(inst): inst for inst in self.design.instances}
        for net_id, inst in self.design.pin_owner.items():
            pins_of[id(inst)].append(self.netlist.nets[net_id])
        for key, inst in instances.items():
            pins = pins_of.get(key, [])
            if not pins or not inst.touched:
                continue  # completely disconnected components are legal
            missing = [p for p in pins if p.id not in inst.touched]
            for pin in missing:
                self.sink.error(
                    f"port {pin.name!r} of instance {inst.path!r} is neither "
                    "used nor assigned; close it explicitly with '*' "
                    "(section 4.1)",
                    pin.span,
                    phase="check",
                )

    # -- SEQUENTIAL consistency ------------------------------------------

    def check_sequential_constraints(self) -> None:
        if not self.design.seq_constraints:
            return
        deps = dependency_graph(self.netlist)
        find = self.netlist.find
        for earlier, later in self.design.seq_constraints:
            earlier_ids = {find(n).id for n in earlier}
            later_ids = {find(n).id for n in later}
            # The user claims `earlier` is computed before `later`: then no
            # earlier target may (combinationally) depend on a later target.
            hit = self._reaches(deps, earlier_ids, later_ids)
            if hit is not None:
                a, b = hit
                self.sink.error(
                    f"SEQUENTIAL order incompatible with the dataflow order: "
                    f"{self.netlist.nets[a].name!r} (earlier statement) "
                    f"depends on {self.netlist.nets[b].name!r} (later "
                    "statement)",
                    phase="check",
                )

    @staticmethod
    def _reaches(
        deps: dict[int, set[int]], from_ids: set[int], targets: set[int]
    ) -> tuple[int, int] | None:
        """Is any of *targets* reachable (via deps) from any of *from_ids*?
        Returns a witness (start, target) or None."""
        for start in from_ids:
            seen = {start}
            stack = [start]
            while stack:
                node = stack.pop()
                for dep in deps.get(node, ()):
                    if dep in targets:
                        return (start, dep)
                    if dep not in seen:
                        seen.add(dep)
                        stack.append(dep)
        return None

    # -- warnings -----------------------------------------------------------

    def warn_undriven(self) -> None:
        find = self.netlist.find
        driven = {find(c.dst).id for c in self.netlist.conns}
        driven |= {find(c.dst).id for c in self.netlist.const_conns}
        driven |= {find(g.output).id for g in self.netlist.gates}
        driven |= {find(r.q).id for r in self.netlist.regs}
        read: set[int] = set()
        for g in self.netlist.gates:
            read |= {find(i).id for i in g.inputs}
        for c in self.netlist.conns:
            read.add(find(c.src).id)
            if c.cond is not None:
                read.add(find(c.cond).id)
        for r in self.netlist.regs:
            read.add(find(r.d).id)
        inputs = {find(n).id for n in self.netlist.nets if n.is_input}
        for nid in sorted(read - driven - inputs):
            net = self.netlist.nets[nid]
            self.sink.warning(
                f"signal {net.name!r} is read but never assigned; it will be "
                f"{'NOINFL' if net.kind != BOOLEAN else 'UNDEF'}",
                net.span,
                phase="check",
            )
        self._warn_write_only()

    def _warn_write_only(self) -> None:
        """Assigned-but-never-read warnings, delegated to the lint
        framework's write-only pass so the checker and ``zeusc lint``
        agree on the exclusions (ports, ``==``-alias dedup, synthetic
        nets)."""
        from ..lint.context import LintContext
        from ..lint.model import LintConfig
        from ..lint.passes import write_only_pass

        ctx = LintContext(self.design)
        for finding in write_only_pass(ctx, LintConfig()):
            self.sink.warning(finding.message, finding.span, phase="check")


def check(design: Design, strict: bool = True) -> DiagnosticSink:
    """Run all static checks; raise :class:`CheckError` on the first
    error when *strict*."""
    from ..obs.spans import span

    with span("check"):
        sink = Checker(design).run()
    if strict and sink.has_errors():
        first = sink.errors[0]
        raise CheckError(first.message, first.span)
    return sink
