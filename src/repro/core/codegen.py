"""Per-design code generation: the ``engine="codegen"`` backend.

The batched engine (:mod:`repro.core.batched`) interprets the levelized
:class:`~repro.core.schedule.Schedule` opcode by opcode: every pass pays
a dispatch branch, a tuple unpack and two list indexes per op, on top of
the plane arithmetic that is the actual work.  This module removes the
interpreter entirely, in the style of compiled-code logic simulators
(and of Hardcaml's simulation backends): at :class:`Simulator`
construction the schedule is *compiled to Python source* -- one straight
-line function whose locals are the bitplanes -- and ``exec``-compiled
once.  A cycle is then a single call of generated code:

* no per-opcode dispatch -- each op is emitted as its own expression;
* locals-only variable access (``LOAD_FAST``), no per-op list indexing;
* ``COPY`` ops (the majority in real designs: 225 of 305 in the 16-bit
  ripple adder) cost *nothing* -- copy propagation aliases the
  destination's plane names to the source's;
* constant masks are folded into the emitted source (`SET`/`CONST` ops
  become the literals ``M``/``0``);
* gates consume *amplified* planes (NOINFL pre-converted to UNDEF), so
  the AND/OR/NAND/NOR rules collapse to two plane ops each and NOT to a
  pure alias swap; the amplification itself is emitted only for the few
  classes that can actually carry NOINFL (multiplex nets, free nets) --
  gate outputs, register outputs and poked inputs provably cannot.

Two backends share the emitter:

* ``"int"`` -- planes are unbounded Python ints, exactly the batched
  engine's state layout (the :class:`Simulator` reuses its plane lists,
  pokes and register planes unchanged);
* ``"numpy"`` -- planes are little-endian ``uint64`` word arrays
  (``lanes`` packed 64 per word), so the per-op cost stays flat as the
  lane count grows past the point where Python big-int arithmetic turns
  quadratic-ish.  Measured on the 16-bit adder gate block: big ints win
  below ~16k lanes, the word arrays win above (3.6x at 256k lanes).

``backend="auto"`` picks the word-array backend at
``NUMPY_LANE_THRESHOLD`` lanes and up when NumPy is importable, and
degrades gracefully to ``"int"`` when it is not.  Any schedule the
emitter cannot handle raises :class:`CodegenError`; the caller falls
back to the interpreted batched path, so ``engine="codegen"`` is never
less capable than ``engine="batched"``.

Poke contract
-------------

The generated function only merges pokes on *input-default* classes
(inputs without drivers -- where virtually all stimulus lands), and only
non-NOINFL poke values; :attr:`CompiledStep.poke_ok` names the classes.
The :class:`Simulator` checks the active poke table against that set and
runs the interpreted batched pass instead when an exotic poke (an INOUT
pin, an internal net, a NOINFL lane) is present -- same observations,
interpreter speed.
"""

from __future__ import annotations

from typing import Callable

from .schedule import (
    OPC_AND,
    OPC_CLASS,
    OPC_CONST,
    OPC_COPY,
    OPC_EQUAL,
    OPC_NAND,
    OPC_NOR,
    OPC_NOT,
    OPC_OR,
    OPC_RANDOM,
    OPC_SET,
    OPC_XOR,
    Schedule,
)
from .values import Logic

try:  # the numpy backend is optional; the int backend is always there
    import numpy as _np
except ImportError:  # pragma: no cover - exercised via HAVE_NUMPY gates
    _np = None

HAVE_NUMPY = _np is not None

#: Lane count at and above which ``backend="auto"`` picks the uint64
#: word-array backend (measured crossover of big-int vs numpy plane op
#: cost on the adders sweep; see EXPERIMENTS.md E16).
NUMPY_LANE_THRESHOLD = 65536

#: Explicit little-endian uint64, so int <-> word-array conversion via
#: ``to_bytes(..., "little")`` is correct regardless of host order.
WORD_DTYPE = _np.dtype("<u8") if HAVE_NUMPY else None

BACKENDS = ("int", "numpy")


class CodegenError(Exception):
    """The emitter cannot compile this schedule (the caller should fall
    back to the interpreted batched engine)."""


def choose_backend(lanes: int) -> str:
    """The ``backend="auto"`` rule: word arrays once big-int plane ops
    stop being competitive, ints (always available) below."""
    if HAVE_NUMPY and lanes >= NUMPY_LANE_THRESHOLD:
        return "numpy"
    return "int"


def words_for(lanes: int) -> int:
    """uint64 words needed to hold *lanes* plane bits."""
    return (lanes + 63) // 64


def int_to_words(value: int, words: int):
    """One big-int plane -> little-endian uint64 word array."""
    return _np.frombuffer(
        value.to_bytes(words * 8, "little"), dtype=WORD_DTYPE
    )


def words_to_int(arr) -> int:
    """One uint64 word-array plane -> big-int plane (ints pass through,
    so conflict hooks can receive either representation)."""
    if isinstance(arr, int):
        return arr
    return int.from_bytes(arr.tobytes(), "little")


class CompiledStep:
    """One exec-compiled combinational pass over a schedule.

    ``fn(vals0, vals1, pokes, reg0, reg1, lane_rngs, conflict, M)``
    mirrors :func:`repro.core.batched.execute` -- same state layout,
    same argument meaning, planes either ints or uint64 word arrays
    depending on :attr:`backend`.  :attr:`source` is the generated
    Python source (goldens in ``tests/test_codegen.py`` pin it down).
    """

    __slots__ = ("source", "fn", "backend", "poke_ok", "words", "n_ops")

    def __init__(self, source: str, fn: Callable, backend: str,
                 poke_ok: frozenset, words: int | None, n_ops: int):
        self.source = source
        self.fn = fn
        self.backend = backend
        self.poke_ok = poke_ok
        self.words = words
        self.n_ops = n_ops

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"CompiledStep(backend={self.backend!r}, "
            f"{self.n_ops} ops, {len(self.source.splitlines())} lines)"
        )


class _Emitter:
    """Schedule -> Python source.  One instance per compile."""

    def __init__(self, sched: Schedule, backend: str):
        self.sched = sched
        self.backend = backend
        self.np = backend == "numpy"
        self.lines: list[str] = []
        #: per-class raw plane refs (expression strings), SSA-style.
        self.ref0: list[str | None] = [None] * sched.n
        self.ref1: list[str | None] = [None] * sched.n
        #: per-class amplified refs (NOINFL -> UNDEF), built on demand.
        self.amp0: list[str | None] = [None] * sched.n
        self.amp1: list[str | None] = [None] * sched.n
        #: True when the class can carry NOINFL (needs amplification
        #: before a gate consumes it).
        self.maybe_noinfl = [False] * sched.n
        self.tmp = 0
        #: literal for an all-zero plane ("Z" is the shared zero array).
        self.zero = "Z" if self.np else "0"

    # -- small helpers ---------------------------------------------------

    def emit(self, line: str, depth: int = 1) -> None:
        self.lines.append("    " * depth + line)

    def fresh(self) -> str:
        self.tmp += 1
        return f"t{self.tmp}"

    def truth(self, expr: str) -> str:
        """A boolean test of a plane expression (arrays need .any())."""
        return f"{expr}.any()" if self.np else expr

    def set_raw(self, i: int, r0: str, r1: str, noinfl: bool) -> None:
        self.ref0[i] = r0
        self.ref1[i] = r1
        self.maybe_noinfl[i] = noinfl
        if not noinfl:
            self.amp0[i] = r0
            self.amp1[i] = r1

    def define(self, i: int, e0: str, e1: str, noinfl: bool,
               depth: int = 1) -> None:
        """Assign class *i*'s planes to fresh locals p{i}/q{i}."""
        self.emit(f"p{i} = {e0}", depth)
        self.emit(f"q{i} = {e1}", depth)
        self.set_raw(i, f"p{i}", f"q{i}", noinfl)

    def amp(self, i: int) -> tuple[str, str]:
        """Amplified plane refs of class *i* (gate-input view: NOINFL
        reads as UNDEF).  Emitted at most once per class."""
        if self.amp0[i] is None:
            r0, r1 = self.ref0[i], self.ref1[i]
            if r0 == self.zero and r1 == self.zero:
                # A constant NOINFL (free net) amplifies to UNDEF.
                self.amp0[i] = self.amp1[i] = "M"
            else:
                u = self.fresh()
                self.emit(f"{u} = M ^ ({r0} | {r1})")
                self.emit(f"a{i} = {r0} | {u}")
                self.emit(f"b{i} = {r1} | {u}")
                self.amp0[i] = f"a{i}"
                self.amp1[i] = f"b{i}"
        return self.amp0[i], self.amp1[i]

    def const_planes(self, value: Logic) -> tuple[str, str]:
        """The plane literals of a broadcast constant."""
        from .batched import LOGIC_PLANES

        b0, b1 = LOGIC_PLANES[value]
        return ("M" if b0 else self.zero, "M" if b1 else self.zero)

    # -- emission --------------------------------------------------------

    def compile(self, func_name: str) -> tuple[str, frozenset]:
        sched = self.sched
        self.emit(
            f"def {func_name}(vals0, vals1, pokes, reg0, reg1, "
            "lane_rngs, conflict, M):", 0
        )
        self.emit("get_poke = pokes.get")

        # Source firings (cycle start), mirroring batched.execute.
        for i in sched.free_nets:
            self.set_raw(i, self.zero, self.zero, noinfl=True)
        poke_ok = self._emit_input_defaults()
        for ri, qi in sched.reg_pairs:
            # Register planes are never NOINFL: they start UNDEF and the
            # latch only overwrites driven lanes.
            self.define(qi, f"reg0[{ri}]", f"reg1[{ri}]", noinfl=False)
        for op in sched.source_ops:
            if op[0] == OPC_RANDOM:
                self._emit_random(op[1])
            else:
                assert op[0] == OPC_SET
                e0, e1 = self.const_planes(op[2])
                self.set_raw(op[1], e0, e1, noinfl=op[2] is Logic.NOINFL)

        for op in sched.ops:
            self._emit_op(op)

        self._emit_store()
        for i in range(sched.n):
            if self.ref0[i] is None:
                raise CodegenError(f"class {i} has no producer")
        return "\n".join(self.lines) + "\n", poke_ok

    def _emit_input_defaults(self) -> frozenset:
        """Input classes: default value unless poked.  Pokes here carry
        no NOINFL lanes (the Simulator falls back for those), so the
        merged value never needs amplification."""
        poke_ok = set()
        for i, default in self.sched.input_defaults:
            if default not in (Logic.ZERO, Logic.UNDEF):
                raise CodegenError(
                    f"unsupported input default {default!r}"
                )
            poke_ok.add(i)
            undef = default is Logic.UNDEF
            self.emit(f"pk = get_poke({i})")
            self.emit("if pk is None:")
            self.emit(f"p{i} = M", 2)
            self.emit(f"q{i} = {'M' if undef else self.zero}", 2)
            self.emit("else:")
            self.emit("t0, t1, pm = pk", 2)
            self.emit("f = M ^ pm", 2)
            self.emit(f"p{i} = f | t0", 2)
            self.emit(f"q{i} = {'f | t1' if undef else 't1'}", 2)
            self.set_raw(i, f"p{i}", f"q{i}", noinfl=False)
        return frozenset(poke_ok)

    def _emit_random(self, out: int) -> None:
        """RANDOM source: consume each lane rng once, lane order --
        exactly the interpreter's stream, so the seed+k contract holds."""
        self.emit("ones = 0")
        self.emit("bit = 1")
        self.emit("for rng in lane_rngs:")
        self.emit("if rng.random() < 0.5:", 2)
        self.emit("ones |= bit", 3)
        self.emit("bit <<= 1", 2)
        if self.np:
            self.emit(f"q{out} = I2W(ones)")
            self.emit(f"p{out} = M ^ q{out}")
        else:
            self.emit(f"p{out} = M ^ ones")
            self.emit(f"q{out} = ones")
        self.set_raw(out, f"p{out}", f"q{out}", noinfl=False)

    def _emit_op(self, op: tuple) -> None:
        code = op[0]
        if code == OPC_COPY:
            # Pure aliasing: the dst planes *are* the src planes (pokes
            # on COPY destinations route through the interpreter).
            dst, src = op[1], op[2]
            self.ref0[dst] = self.ref0[src]
            self.ref1[dst] = self.ref1[src]
            self.amp0[dst] = self.amp0[src]
            self.amp1[dst] = self.amp1[src]
            self.maybe_noinfl[dst] = self.maybe_noinfl[src]
            # A later amp() of dst must also land on src's cache.
            if self.maybe_noinfl[dst]:
                self._alias_amp(dst, src)
        elif code == OPC_CONST:
            e0, e1 = self.const_planes(op[2])
            self.set_raw(op[1], e0, e1, noinfl=op[2] is Logic.NOINFL)
        elif code == OPC_NOT:
            a0, a1 = self._amped(op[1])
            # NOT on amplified planes is a plane swap: zero ops.
            self.set_raw(op[2], a1, a0, noinfl=False)
        elif code in (OPC_AND, OPC_OR, OPC_NAND, OPC_NOR):
            self._emit_and_or(code, op[1], op[2])
        elif code == OPC_XOR:
            self._emit_xor(op[1], op[2])
        elif code == OPC_EQUAL:
            self._emit_equal(op[1], op[2])
        elif code == OPC_CLASS:
            self._emit_class(op[1], op[2])
        else:  # pragma: no cover - future opcodes land here explicitly
            raise CodegenError(f"unknown opcode {code}")

    def _alias_amp(self, dst: int, src: int) -> None:
        """Keep dst's amp cache tied to src's, so amplification emitted
        for either is shared."""
        # Chase src to its alias root (refs are shared strings, so the
        # simplest correct sharing is: re-run amp(src) when dst needs it;
        # record the link via a tiny closure-free indirection table.
        self._amp_link = getattr(self, "_amp_link", {})
        self._amp_link[dst] = self._amp_link.get(src, src)

    def _amped(self, i: int) -> tuple[str, str]:
        link = getattr(self, "_amp_link", {})
        root = link.get(i, i)
        a0, a1 = self.amp(root)
        if root != i:
            self.amp0[i], self.amp1[i] = a0, a1
        return a0, a1

    def _emit_and_or(self, code: int, ins: tuple, out: int) -> None:
        """AND/OR/NAND/NOR on amplified planes:

        AND:  possibly-1 = all inputs possibly-1; possibly-0 = any
        input possibly-0.  OR is the dual; NAND/NOR swap the outputs.
        (Amplification makes this exact: a NOINFL operand reads as
        UNDEF, which is possibly-0 *and* possibly-1, degrading the
        output exactly like the scalar tables.)"""
        amps = [self._amped(i) for i in ins]
        if code in (OPC_AND, OPC_NAND):
            any0 = " | ".join(a0 for a0, _ in amps)
            all1 = " & ".join(a1 for _, a1 in amps)
            e0, e1 = any0, all1
        else:
            any1 = " | ".join(a1 for _, a1 in amps)
            all0 = " & ".join(a0 for a0, _ in amps)
            e0, e1 = all0, any1
        if code in (OPC_NAND, OPC_NOR):
            e0, e1 = e1, e0
        self.define(out, e0, e1, noinfl=False)

    def _emit_xor(self, ins: tuple, out: int) -> None:
        """XOR folds pairwise on amplified planes: possibly-1 of a ^ b
        is (a possibly-0 and b possibly-1) or vice versa; UNDEF operands
        poison both planes, matching the scalar all-defined rule."""
        a0, a1 = self._amped(ins[0])
        for j in ins[1:]:
            b0, b1 = self._amped(j)
            x0, x1 = self.fresh(), self.fresh()
            self.emit(f"{x0} = ({a0} & {b0}) | ({a1} & {b1})")
            self.emit(f"{x1} = ({a0} & {b1}) | ({a1} & {b0})")
            a0, a1 = x0, x1
        self.emit(f"p{out} = {a0}")
        self.emit(f"q{out} = {a1}")
        self.set_raw(out, f"p{out}", f"q{out}", noinfl=False)

    def _xor(self, a: str, b: str) -> str:
        """Constant-fold a plane xor: every plane value is a subset of
        the lane mask ``M``, so ``x ^ 0 = x`` and ``x ^ x = 0`` hold,
        and ``M`` is the all-lanes constant."""
        if a == self.zero:
            return b
        if b == self.zero:
            return a
        if a == b:
            return self.zero
        return f"{a} ^ {b}"

    def _and(self, a: str, b: str) -> str:
        """Constant-fold a plane and (same subset-of-M invariant)."""
        Z = self.zero
        if a == Z or b == Z:
            return Z
        if a == "M":
            return b
        if b == "M":
            return a
        pa = a if " " not in a else f"({a})"
        pb = b if " " not in b else f"({b})"
        return f"{pa} & {pb}"

    def _emit_equal(self, pairs: tuple, out: int) -> None:
        """Multi-bit EQUAL, the interpreter's formulation: ZERO as soon
        as a defined bit pair differs, UNDEF when any pair is undefined
        and none differ.  The plane form is amplification-invariant, so
        raw refs are fine."""
        Z = self.zero
        diff_terms = []
        undef_terms = []
        for ai, bi in pairs:
            a0, a1 = self.ref0[ai], self.ref1[ai]
            b0, b1 = self.ref0[bi], self.ref1[bi]
            both = self._and(self._xor(a0, a1), self._xor(b0, b1))
            if both == Z:
                # This bit pair is never both-defined: it can only
                # contribute "undefined", never a decided difference.
                undef_terms.append("M")
                continue
            if both == "M":
                # Always both-defined: no undefined contribution.
                dx = self._xor(a1, b1)
                if dx != Z:
                    diff_terms.append(f"({dx})" if " " in dx else dx)
                continue
            bd = self.fresh()
            self.emit(f"{bd} = {both}")
            dx = self._xor(a1, b1)
            if dx != Z:
                diff_terms.append(f"({self._and(bd, dx)})")
            undef_terms.append(f"(M ^ {bd})")
        if diff_terms:
            d = self.fresh()
            self.emit(f"{d} = {' | '.join(diff_terms)}")
        else:
            d = Z
        parts0 = ([d] if d != Z else []) + undef_terms
        self.define(
            out,
            " | ".join(parts0) if parts0 else Z,
            "M" if d == Z else f"M ^ {d}",
            noinfl=False,
        )

    def _emit_class(self, dst: int, drivers: tuple) -> None:
        """A multiplex class: guarded drivers resolved with the maybe/
        NOINFL/burning rules of the interpreter, conflicts reported per
        lane through the ``conflict`` hook.  Pokes on multiplex classes
        are exotic (interpreter fallback), so the accumulators start
        empty."""
        Z = self.zero
        self.emit(f"ac0 = ac1 = dv = mb = cf = {Z}")
        first = True
        for cond, src, const in drivers:
            depth = 1
            if cond >= 0:
                c0, c1 = self.ref0[cond], self.ref1[cond]
                self.emit(f"on = {c1} & ~{c0}")
                # Guard UNDEF -- or a floating NOINFL guard -- *may*
                # drive: poisons the lane without counting as a drive.
                self.emit(f"mb = mb | (M ^ (on | ({c0} & ~{c1})))")
                self.emit(f"if {self.truth('on')}:")
                depth = 2
                on = "on"
            else:
                on = "M"
            if const is None:
                s0, s1 = self.ref0[src], self.ref1[src]
                if on == "M":
                    d0, d1 = s0, s1
                else:
                    self.emit(f"d0 = {s0} & on", depth)
                    self.emit(f"d1 = {s1} & on", depth)
                    d0, d1 = "d0", "d1"
            else:
                e0, e1 = self.const_planes(const)
                d0 = on if e0 == "M" else Z
                d1 = on if e1 == "M" else Z
            self.emit(f"dr = {d0} | {d1}", depth)
            self.emit(f"if {self.truth('dr')}:", depth)
            if not first:
                self.emit(f"cl = dv & dr", depth + 1)
                self.emit(f"if {self.truth('cl')}:", depth + 1)
                if self.np:
                    self.emit(
                        "conflict("
                        f"{dst}, W2I(cl), W2I(ac0), W2I(ac1), "
                        f"W2I({d0}), W2I({d1}))",
                        depth + 2,
                    )
                else:
                    self.emit(
                        f"conflict({dst}, cl, ac0, ac1, {d0}, {d1})",
                        depth + 2,
                    )
                self.emit("cf = cf | cl", depth + 2)
            self.emit(f"ac0 = ac0 | {d0}", depth + 1)
            self.emit(f"ac1 = ac1 | {d1}", depth + 1)
            self.emit(f"dv = dv | dr", depth + 1)
            first = False
        self.define(dst, "ac0 | cf | mb", "ac1 | cf | mb", noinfl=True)

    def _emit_store(self) -> None:
        """Write every class's planes back in two list displays -- one
        bulk store per plane instead of one ``STORE_SUBSCR`` per class."""
        for name, refs in (("vals0", self.ref0), ("vals1", self.ref1)):
            self.emit(f"{name}[:] = [")
            row: list[str] = []
            for r in refs:
                row.append(r if r is not None else self.zero)
                if len(row) == 10:
                    self.emit("    " + ", ".join(row) + ",")
                    row = []
            if row:
                self.emit("    " + ", ".join(row) + ",")
            self.emit("]")


def compile_step(
    sched: Schedule,
    *,
    backend: str = "int",
    lanes: int | None = None,
    func_name: str = "zeus_step",
) -> CompiledStep:
    """Compile *sched* into one :class:`CompiledStep`.

    ``backend="int"`` needs nothing extra; ``backend="numpy"`` needs
    *lanes* (for the word count) and an importable NumPy, else
    :class:`CodegenError`."""
    if backend == "auto":
        backend = choose_backend(lanes or 0)
    if backend not in BACKENDS:
        raise CodegenError(
            f"unknown codegen backend {backend!r}; expected one of "
            f"{BACKENDS} or 'auto'"
        )
    words = None
    if backend == "numpy":
        if not HAVE_NUMPY:
            raise CodegenError("numpy backend requested but numpy is "
                               "not importable")
        if lanes is None:
            raise CodegenError("numpy backend needs the lane count")
        words = words_for(lanes)

    emitter = _Emitter(sched, backend)
    source, poke_ok = emitter.compile(func_name)

    namespace: dict = {}
    if backend == "numpy":
        namespace["Z"] = _np.zeros(words, dtype=WORD_DTYPE)
        namespace["I2W"] = lambda v, _w=words: int_to_words(v, _w)
        namespace["W2I"] = words_to_int
    try:
        code = compile(source, f"<zeus-codegen:{backend}>", "exec")
    except SyntaxError as exc:  # pragma: no cover - emitter bug guard
        raise CodegenError(f"generated source does not compile: {exc}")
    exec(code, namespace)
    return CompiledStep(
        source, namespace[func_name], backend, poke_ok, words,
        len(sched.ops),
    )


def lane_mask_words(lanes: int):
    """The all-lanes mask as a word array (tail bits zero, so every
    masked expression keeps the unused high bits clear)."""
    return int_to_words((1 << lanes) - 1, words_for(lanes))


def pokes_to_words(pokes: dict, words: int) -> dict:
    """A bigint poke table -> word-array poke table (same keys)."""
    return {
        i: (
            int_to_words(p0, words),
            int_to_words(p1, words),
            int_to_words(pm, words),
        )
        for i, (p0, p1, pm) in pokes.items()
    }


def planes_to_words(planes: list[int], words: int) -> list:
    """Bigint plane list -> word-array plane list."""
    return [int_to_words(v, words) for v in planes]


def planes_to_ints(planes: list) -> list[int]:
    """Word-array plane list -> bigint plane list."""
    return [words_to_int(a) for a in planes]
