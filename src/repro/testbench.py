"""Testbench utilities: reusable drivers for simulating Zeus designs.

Every non-trivial testbench in the paper's world repeats the same moves:
assert RSET for enough cycles to flush pipelines, drive inputs per
cycle, preview combinational outputs before committing a clock edge
(handshakes like the Blackjack `hit` protocol), and compare signals
against expectations.  :class:`Testbench` packages those moves.

Example::

    tb = Testbench(circuit)
    tb.reset(cycles=2)
    tb.drive(a=5, b=9, cin=0)
    tb.clock()
    tb.expect(s=14, cout=0)

    # Reactive handshake: decide this cycle's inputs from this cycle's
    # (combinational) outputs before committing the edge.
    with tb.preview() as now:
        if now.bit("hit") == "1":
            tb.drive(ycard=1, value=10)
    tb.clock()
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Any

from . import Circuit
from .core.simulator import Simulator
from .core.values import Logic


class ExpectationError(AssertionError):
    """A signal did not carry the expected value."""


@dataclass
class Preview:
    """A read-only combinational view of the current cycle."""

    sim: Simulator

    def bits(self, path: str) -> list[str]:
        return [str(v) for v in self.sim.peek(path)]

    def bit(self, path: str) -> str:
        return str(self.sim.peek_bit(path))

    def int(self, path: str) -> int | None:
        return self.sim.peek_int(path)


@dataclass
class Testbench:
    """A clocked driver around a :class:`Simulator`.

    ``reset_signal`` names the reset input (the predefined RSET by
    default); ``reset_drive`` maps inputs to hold during reset.
    ``engine`` selects the simulation engine ("auto", "levelized",
    "dataflow", "batched" or "codegen" — see :class:`Simulator`).
    Setting ``lanes`` selects the batched engine (unless another engine
    is named explicitly): scalar drives/expects then observe lane 0,
    and :meth:`drive_batch` / :meth:`peek_lanes` address all lanes.
    ``backend`` picks the codegen plane representation ("auto", "int",
    "numpy").
    ``flight`` records the last N cycles in a flight recorder
    (``tb.sim.flight``) for post-mortem causal explanation
    (:func:`repro.obs.explain`).
    """

    __test__ = False  # not a pytest test class despite the name

    circuit: Circuit
    strict: bool = True
    seed: int = 0
    reset_signal: str = "RSET"
    engine: str = "auto"
    lanes: int | None = None
    backend: str = "auto"
    flight: int | None = None
    sim: Simulator = field(init=False)
    #: cycle-indexed log of expect() checks that passed, for reporting.
    checked: int = 0

    def __post_init__(self) -> None:
        engine = self.engine
        if self.lanes is not None and engine == "auto":
            engine = "batched"
        kwargs: dict[str, Any] = dict(
            strict=self.strict, seed=self.seed, engine=engine,
            backend=self.backend,
        )
        if self.lanes is not None:
            kwargs["lanes"] = self.lanes
        if self.flight is not None:
            kwargs["flight"] = self.flight
        self.sim = self.circuit.simulator(**kwargs)
        self.engine = self.sim.engine

    # -- driving ---------------------------------------------------------

    def drive(self, **signals: Any) -> "Testbench":
        """Poke several signals by keyword (dots allowed via __ as .)."""
        for name, value in signals.items():
            self.sim.poke(name.replace("__", "."), value)
        return self

    def release(self, *names: str) -> "Testbench":
        for name in names:
            self.sim.unpoke(name.replace("__", "."))
        return self

    def drive_batch(self, stimulus) -> "Testbench":
        """Apply a :class:`~repro.core.batched.BatchStimulus` (or any
        mapping of path -> per-lane values) to the batched engine."""
        apply = getattr(stimulus, "apply", None)
        if apply is not None:
            apply(self.sim)
        else:
            for path, values in stimulus.items():
                self.sim.poke_lanes(path, values)
        return self

    def drive_lanes(self, path: str, values) -> "Testbench":
        """Poke one signal per lane (batched engine only)."""
        self.sim.poke_lanes(path.replace("__", "."), values)
        return self

    def clock(self, cycles: int = 1) -> "Testbench":
        self.sim.step(cycles)
        return self

    def reset(self, cycles: int = 1, **hold: Any) -> "Testbench":
        """Assert the reset signal for *cycles* (holding the given input
        values, default 0 for every IN port), then deassert."""
        if not hold:
            hold = {
                p.name: 0
                for p in self.circuit.netlist.ports
                if p.mode == "IN"
            }
        self.drive(**hold)
        self.sim.poke(self.reset_signal, 1)
        self.clock(cycles)
        self.sim.poke(self.reset_signal, 0)
        return self

    # -- observing ---------------------------------------------------------

    @contextmanager
    def preview(self):
        """Evaluate combinationally with the current pokes, yield a
        read-only view, without advancing the clock.  Poke changes made
        inside the block take effect at the next clock()."""
        self.sim.evaluate()
        yield Preview(self.sim)

    def peek(self, path: str) -> list[Logic]:
        return self.sim.peek(path)

    def peek_int(self, path: str) -> int | None:
        return self.sim.peek_int(path)

    def peek_lanes(self, path: str) -> list[list[Logic]]:
        """Per-lane peek (batched engine only)."""
        return self.sim.peek_lanes(path)

    def peek_lane_int(self, path: str, lane: int) -> int | None:
        """One lane's numeric value (batched engine only)."""
        return self.sim.peek_lane_int(path, lane)

    def expect(self, **expectations: Any) -> "Testbench":
        """Check signals against expected values (ints for vectors,
        0/1/'UNDEF'/'NOINFL' for bits); raises :class:`ExpectationError`
        naming the first mismatch."""
        for name, want in expectations.items():
            path = name.replace("__", ".")
            got_bits = self.sim.peek(path)
            if isinstance(want, int) and len(got_bits) > 1:
                got: Any = self.sim.peek_int(path)
            elif len(got_bits) == 1:
                got = str(got_bits[0])
                want = str(want)
            else:
                got = [str(b) for b in got_bits]
            if got != want:
                raise ExpectationError(
                    f"cycle {self.sim.cycle}: {path} = {got!r}, "
                    f"expected {want!r}"
                )
            self.checked += 1
        return self

    def run_table(self, table: list[dict[str, Any]]) -> "Testbench":
        """Drive/check a stimulus table: each row's plain keys are poked,
        keys starting with ``expect_`` are checked *after* the clock."""
        for row in table:
            drives = {k: v for k, v in row.items() if not k.startswith("expect_")}
            checks = {k[7:]: v for k, v in row.items() if k.startswith("expect_")}
            self.drive(**drives)
            self.clock()
            if checks:
                self.expect(**checks)
        return self
