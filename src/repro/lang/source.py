"""Source text handling: positions, spans and line/column mapping.

Every token and AST node carries a :class:`Span` into the original source so
that diagnostics can point at the offending text.  A :class:`SourceText`
wraps the raw program text together with an optional file name and provides
offset -> (line, column) conversion.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field


@dataclass(frozen=True)
class Position:
    """A (line, column) pair, both 1-based."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


@dataclass(frozen=True)
class Span:
    """A half-open byte range ``[start, end)`` into a source text."""

    start: int
    end: int

    def merge(self, other: "Span") -> "Span":
        """Smallest span covering both ``self`` and ``other``."""
        return Span(min(self.start, other.start), max(self.end, other.end))

    @property
    def length(self) -> int:
        return self.end - self.start


#: Span used for synthesized nodes that have no source location.
NO_SPAN = Span(0, 0)


@dataclass
class SourceText:
    """A program text plus the bookkeeping needed for diagnostics."""

    text: str
    name: str = "<string>"
    _line_starts: list[int] = field(default_factory=list, repr=False)

    def __post_init__(self) -> None:
        starts = [0]
        for i, ch in enumerate(self.text):
            if ch == "\n":
                starts.append(i + 1)
        self._line_starts = starts

    def position(self, offset: int) -> Position:
        """Convert a byte offset to a 1-based line/column position."""
        offset = max(0, min(offset, len(self.text)))
        line = bisect.bisect_right(self._line_starts, offset) - 1
        return Position(line + 1, offset - self._line_starts[line] + 1)

    def line_text(self, line: int) -> str:
        """Return the text of a 1-based line number, without the newline."""
        if not 1 <= line <= len(self._line_starts):
            return ""
        start = self._line_starts[line - 1]
        end = self.text.find("\n", start)
        if end < 0:
            end = len(self.text)
        return self.text[start:end]

    def snippet(self, span: Span) -> str:
        """The raw text covered by *span*."""
        return self.text[span.start : span.end]

    def caret_diagram(self, span: Span) -> str:
        """Render the offending line with a caret underline, gcc-style."""
        pos = self.position(span.start)
        line = self.line_text(pos.line)
        width = max(1, min(span.length, len(line) - pos.column + 1))
        underline = " " * (pos.column - 1) + "^" * width
        return f"{line}\n{underline}"
