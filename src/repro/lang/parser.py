"""Recursive-descent parser for Zeus (paper section 7).

The parser follows the published EBNF closely, with the documented
repairs where the report's grammar and its own examples disagree:

* ``SimpleConstExpr`` drops the spurious leading ``"="`` of grammar line 8;
* a function component type header ``COMPONENT (...) : t IS ... END`` is
  required to carry ``IS`` (the mux4 example misses it -- a typo);
* layout ``basic`` statements allow a bare (optionally oriented) signal
  reference in addition to the ``signal = type`` replacement form, since
  every layout example in the paper uses bare references;
* ``ARRAY[a..b, c..d] OF t`` and ``s[i, j]`` desugar to nested arrays and
  chained selectors (used by the chessboard example);
* a boundary statement (``TOP``/``BOTTOM``/... pin list) extends to the
  next side keyword or the end of the layout list, since the grammar gives
  it no END delimiter.

Everything else -- including the odd but deliberate rule that statement
order is irrelevant -- is handled downstream.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import tokenize_with_comments
from .source import SourceText, Span
from .tokens import Token, TokenKind

_K = TokenKind

#: Orientation changes of the layout language (all non-identity elements
#: of the dihedral group, section 6.3).
ORIENTATIONS = frozenset(
    ["rotate90", "rotate180", "rotate270", "flip0", "flip45", "flip90", "flip135"]
)

#: The eight directions of separation (section 6.2).
DIRECTIONS = frozenset(
    [
        "toptobottom",
        "bottomtotop",
        "lefttoright",
        "righttoleft",
        "toplefttobottomright",
        "bottomrighttotopleft",
        "toprighttobottomleft",
        "bottomlefttotopright",
    ]
)

_STMT_FOLLOW = frozenset(
    [
        _K.END,
        _K.ELSE,
        _K.ELSIF,
        _K.OTHERWISE,
        _K.OTHERWISEWHEN,
        _K.EOF,
        _K.RBRACE,
    ]
)

_BOUNDARY_SIDES = {
    _K.TOP: "top",
    _K.RIGHT: "right",
    _K.BOTTOM: "bottom",
    _K.LEFT: "left",
}

_RELATION_OPS = {
    _K.EQ: "=",
    _K.NEQ: "<>",
    _K.LT: "<",
    _K.LE: "<=",
    _K.GT: ">",
    _K.GE: ">=",
}

_ADD_OPS = {_K.PLUS: "+", _K.MINUS: "-", _K.OR: "OR"}
_MUL_OPS = {_K.STAR: "*", _K.DIV: "DIV", _K.MOD: "MOD", _K.AND: "AND"}


class Parser:
    """One-token-lookahead recursive-descent parser."""

    def __init__(self, source: SourceText | str):
        if isinstance(source, str):
            source = SourceText(source)
        self.source = source
        self.toks, self.comments = tokenize_with_comments(source)
        self.idx = 0

    # -- token helpers -------------------------------------------------------

    @property
    def tok(self) -> Token:
        return self.toks[self.idx]

    def peek(self, ahead: int = 1) -> Token:
        return self.toks[min(self.idx + ahead, len(self.toks) - 1)]

    def at(self, *kinds: TokenKind) -> bool:
        return self.tok.kind in kinds

    def advance(self) -> Token:
        tok = self.tok
        if tok.kind is not _K.EOF:
            self.idx += 1
        return tok

    def accept(self, kind: TokenKind) -> Token | None:
        if self.tok.kind is kind:
            return self.advance()
        return None

    def expect(self, kind: TokenKind, what: str = "") -> Token:
        if self.tok.kind is kind:
            return self.advance()
        wanted = what or kind.name
        raise ParseError(
            f"expected {wanted}, found {self.tok.text!r}", self.tok.span
        )

    def expect_ident(self, what: str = "identifier") -> str:
        return self.expect(_K.IDENT, what).text

    # -- entry points --------------------------------------------------------

    def parse_program(self) -> ast.Program:
        start = self.tok.span
        decls: list[ast.Decl] = []
        while not self.at(_K.EOF):
            decls.extend(self.parse_declaration())
        span = start.merge(self.tok.span) if decls else start
        return ast.Program(decls, comments=list(self.comments), span=span)

    def parse_declaration(self) -> list[ast.Decl]:
        if self.at(_K.CONST):
            return self._const_declaration()
        if self.at(_K.TYPE):
            return self._type_declaration()
        if self.at(_K.SIGNAL):
            return self._signal_declaration()
        raise ParseError(
            f"expected CONST, TYPE or SIGNAL declaration, found {self.tok.text!r}",
            self.tok.span,
        )

    # -- declarations --------------------------------------------------------

    def _const_declaration(self) -> list[ast.Decl]:
        self.expect(_K.CONST)
        decls: list[ast.Decl] = []
        while self.at(_K.IDENT):
            start = self.tok.span
            name = self.expect_ident()
            self.expect(_K.EQ, "'='")
            value = self.parse_constant()
            self.expect(_K.SEMICOLON, "';'")
            decls.append(ast.ConstDecl(name, value, span=start.merge(value.span)))
        if not decls:
            raise ParseError("empty CONST declaration", self.tok.span)
        return decls

    def _type_declaration(self) -> list[ast.Decl]:
        self.expect(_K.TYPE)
        decls: list[ast.Decl] = []
        while self.at(_K.IDENT):
            start = self.tok.span
            name = self.expect_ident()
            params: list[str] = []
            if self.accept(_K.LPAREN):
                params.append(self.expect_ident("type parameter"))
                while self.accept(_K.COMMA):
                    params.append(self.expect_ident("type parameter"))
                self.expect(_K.RPAREN, "')'")
            self.expect(_K.EQ, "'='")
            type_ = self.parse_type()
            self.expect(_K.SEMICOLON, "';'")
            decls.append(ast.TypeDecl(name, params, type_, span=start.merge(type_.span)))
        if not decls:
            raise ParseError("empty TYPE declaration", self.tok.span)
        return decls

    def _signal_declaration(self) -> list[ast.Decl]:
        self.expect(_K.SIGNAL)
        decls: list[ast.Decl] = []
        while self.at(_K.IDENT):
            start = self.tok.span
            names = [self.expect_ident()]
            while self.accept(_K.COMMA):
                names.append(self.expect_ident())
            self.expect(_K.COLON, "':'")
            type_ = self.parse_type()
            self.expect(_K.SEMICOLON, "';'")
            decls.append(ast.SignalDecl(names, type_, span=start.merge(type_.span)))
        if not decls:
            raise ParseError("empty SIGNAL declaration", self.tok.span)
        return decls

    # -- types ---------------------------------------------------------------

    def parse_type(self) -> ast.TypeExpr:
        if self.at(_K.ARRAY):
            return self._array_type()
        if self.at(_K.COMPONENT):
            return self._component_type()
        start = self.tok.span
        name = self.expect_ident("type name")
        args: list[ast.Expr] = []
        end = start
        if self.accept(_K.LPAREN):
            args.append(self.parse_const_expression())
            while self.accept(_K.COMMA):
                args.append(self.parse_const_expression())
            end = self.expect(_K.RPAREN, "')'").span
        return ast.NamedType(name, args, span=start.merge(end))

    def _array_type(self) -> ast.TypeExpr:
        start = self.expect(_K.ARRAY).span
        self.expect(_K.LBRACKET, "'['")
        bounds: list[tuple[ast.Expr, ast.Expr]] = []
        while True:
            lo = self.parse_const_expression()
            self.expect(_K.DOTDOT, "'..'")
            hi = self.parse_const_expression()
            bounds.append((lo, hi))
            if not self.accept(_K.COMMA):
                break
        self.expect(_K.RBRACKET, "']'")
        self.expect(_K.OF, "OF")
        element = self.parse_type()
        # Desugar ARRAY[a..b, c..d] OF t to ARRAY[a..b] OF ARRAY[c..d] OF t.
        for lo, hi in reversed(bounds):
            element = ast.ArrayType(lo, hi, element, span=start.merge(element.span))
        return element

    def _component_type(self) -> ast.TypeExpr:
        start = self.expect(_K.COMPONENT).span
        self.expect(_K.LPAREN, "'('")
        params: list[ast.FParam] = []
        if not self.at(_K.RPAREN):
            params.append(self._fparams())
            while self.accept(_K.SEMICOLON):
                params.append(self._fparams())
        self.expect(_K.RPAREN, "')'")

        header_layout: list[ast.LayoutStmt] = []
        if self.accept(_K.LBRACE):
            header_layout = self.parse_layout_list()
            self.expect(_K.RBRACE, "'}'")

        result: ast.TypeExpr | None = None
        if self.accept(_K.COLON):
            result = self.parse_type()

        if not self.at(_K.IS):
            if result is not None:
                raise ParseError(
                    "function component type requires IS and a body", self.tok.span
                )
            # Record type: component without body.
            return ast.ComponentType(
                params, header_layout, span=start.merge(self.tok.span)
            )

        self.expect(_K.IS)
        uses: list[str] | None = None
        if self.accept(_K.USES):
            uses = []
            if self.at(_K.IDENT):
                uses.append(self.expect_ident())
                while self.accept(_K.COMMA):
                    uses.append(self.expect_ident())
            self.expect(_K.SEMICOLON, "';'")

        decls: list[ast.Decl] = []
        while self.at(_K.CONST, _K.TYPE, _K.SIGNAL):
            decls.extend(self.parse_declaration())

        layout: list[ast.LayoutStmt] = []
        if self.accept(_K.LBRACE):
            layout = self.parse_layout_list()
            self.expect(_K.RBRACE, "'}'")

        self.expect(_K.BEGIN, "BEGIN")
        body = self.parse_statement_sequence()
        end = self.expect(_K.END, "END").span
        return ast.ComponentType(
            params,
            header_layout,
            result,
            uses,
            decls,
            layout,
            body,
            span=start.merge(end),
        )

    def _fparams(self) -> ast.FParam:
        start = self.tok.span
        mode = ast.Mode.INOUT
        if self.accept(_K.IN):
            mode = ast.Mode.IN
        elif self.accept(_K.OUT):
            mode = ast.Mode.OUT
        names = [self.expect_ident("parameter name")]
        while self.accept(_K.COMMA):
            names.append(self.expect_ident("parameter name"))
        self.expect(_K.COLON, "':'")
        type_ = self.parse_type()
        return ast.FParam(mode, names, type_, span=start.merge(type_.span))

    # -- constant expressions (sections 3.1, 7 lines 6-19) -------------------

    def parse_constant(self) -> ast.Expr:
        """``constant = ConstExpression | sigConstExpression``.

        A leading ``(`` is ambiguous; we parse the parenthesised group and
        decide by whether a comma follows (tuple => signal constant).
        """
        if self.at(_K.LPAREN):
            return self._paren_constant()
        if self.at(_K.BIN):
            start = self.advance().span
            self.expect(_K.LPAREN, "'('")
            value = self.parse_const_expression()
            self.expect(_K.COMMA, "','")
            width = self.parse_const_expression()
            end = self.expect(_K.RPAREN, "')'").span
            return ast.BinCall(value, width, span=start.merge(end))
        return self.parse_const_expression()

    def _paren_constant(self) -> ast.Expr:
        start = self.expect(_K.LPAREN).span
        first = self.parse_constant()
        if self.at(_K.COMMA):
            items = [first]
            while self.accept(_K.COMMA):
                items.append(self.parse_constant())
            end = self.expect(_K.RPAREN, "')'").span
            tup: ast.Expr = ast.Tuple_(items, span=start.merge(end))
            # Signal constants may be compared with = / <> .
            if self.tok.kind in (_K.EQ, _K.NEQ):
                op = "=" if self.advance().kind is _K.EQ else "<>"
                right = self.parse_constant()
                tup = ast.Binary(op, tup, right, span=tup.span.merge(right.span))
            return tup
        self.expect(_K.RPAREN, "')'")
        # Parenthesised scalar: may continue as a constant expression,
        # e.g. ``(3+4)*2``.
        return self._const_expression_tail(first)

    def parse_const_expression(self) -> ast.Expr:
        left = self._simple_const_expr()
        if self.tok.kind in _RELATION_OPS:
            op = _RELATION_OPS[self.advance().kind]
            right = self._simple_const_expr()
            return ast.Binary(op, left, right, span=left.span.merge(right.span))
        return left

    def _const_expression_tail(self, left: ast.Expr) -> ast.Expr:
        """Continue a constant expression whose first factor is *left*."""
        while self.tok.kind in _MUL_OPS:
            op = _MUL_OPS[self.advance().kind]
            right = self._const_factor()
            left = ast.Binary(op, left, right, span=left.span.merge(right.span))
        while self.tok.kind in _ADD_OPS:
            op = _ADD_OPS[self.advance().kind]
            right = self._const_term()
            left = ast.Binary(op, left, right, span=left.span.merge(right.span))
        if self.tok.kind in _RELATION_OPS:
            op = _RELATION_OPS[self.advance().kind]
            right = self._simple_const_expr()
            left = ast.Binary(op, left, right, span=left.span.merge(right.span))
        return left

    def _simple_const_expr(self) -> ast.Expr:
        sign: str | None = None
        start = self.tok.span
        if self.at(_K.PLUS):
            self.advance()
            sign = "+"
        elif self.at(_K.MINUS):
            self.advance()
            sign = "-"
        left = self._const_term()
        if sign == "-":
            left = ast.Unary("-", left, span=start.merge(left.span))
        while self.tok.kind in _ADD_OPS:
            op = _ADD_OPS[self.advance().kind]
            right = self._const_term()
            left = ast.Binary(op, left, right, span=left.span.merge(right.span))
        return left

    def _const_term(self) -> ast.Expr:
        left = self._const_factor()
        while self.tok.kind in _MUL_OPS:
            op = _MUL_OPS[self.advance().kind]
            right = self._const_factor()
            left = ast.Binary(op, left, right, span=left.span.merge(right.span))
        return left

    def _const_factor(self) -> ast.Expr:
        tok = self.tok
        if tok.kind is _K.NUMBER:
            self.advance()
            assert tok.value is not None
            return ast.NumberLit(tok.value, span=tok.span)
        if tok.kind is _K.LPAREN:
            self.advance()
            inner = self.parse_const_expression()
            self.expect(_K.RPAREN, "')'")
            return inner
        if tok.kind is _K.NOT:
            self.advance()
            operand = self._const_factor()
            return ast.Unary("NOT", operand, span=tok.span.merge(operand.span))
        if tok.kind is _K.IDENT:
            self.advance()
            node: ast.Expr = ast.Name(tok.text, span=tok.span)
            if self.at(_K.LPAREN):
                # Predefined constant functions: min, max, odd (section 7).
                self.advance()
                args = [self.parse_const_expression()]
                while self.accept(_K.SEMICOLON) or self.accept(_K.COMMA):
                    args.append(self.parse_const_expression())
                end = self.expect(_K.RPAREN, "')'").span
                node = ast.Call(node, args, span=tok.span.merge(end))
            return node
        raise ParseError(
            f"expected constant factor, found {tok.text!r}", tok.span
        )

    # -- signal designators and expressions -----------------------------------

    def parse_designator(self) -> ast.Expr:
        """``signal`` of grammar lines 37-39, without the leading ``*``."""
        tok = self.tok
        if tok.kind in (_K.CLK, _K.RSET):
            self.advance()
            base: ast.Expr = ast.Name(tok.text, span=tok.span)
        else:
            name = self.expect_ident("signal name")
            base = ast.Name(name, span=tok.span)
        return self._selectors(base)

    def _selectors(self, base: ast.Expr) -> ast.Expr:
        while True:
            if self.at(_K.LBRACKET):
                self.advance()
                while True:
                    base = self._one_index(base)
                    if not self.accept(_K.COMMA):
                        break
                self.expect(_K.RBRACKET, "']'")
            elif self.at(_K.DOT):
                self.advance()
                name = self.expect_ident("field name")
                if self.accept(_K.DOTDOT):
                    last = self.expect_ident("field name")
                    base = ast.FieldRange(
                        base, name, last, span=base.span.merge(self.toks[self.idx - 1].span)
                    )
                else:
                    base = ast.Field(
                        base, name, span=base.span.merge(self.toks[self.idx - 1].span)
                    )
            else:
                return base

    def _one_index(self, base: ast.Expr) -> ast.Expr:
        if self.at(_K.NUM):
            start = self.advance().span
            self.expect(_K.LPAREN, "'('")
            sel = self.parse_expression()
            end = self.expect(_K.RPAREN, "')'").span
            return ast.IndexNum(base, sel, span=base.span.merge(end))
        lo = self.parse_const_expression()
        if self.accept(_K.DOTDOT):
            hi = self.parse_const_expression()
            return ast.IndexRange(base, lo, hi, span=base.span.merge(hi.span))
        return ast.Index(base, lo, span=base.span.merge(lo.span))

    def parse_expression(self) -> ast.Expr:
        """``expression`` of grammar lines 40-45 (signal level)."""
        tok = self.tok
        if tok.kind is _K.STAR:
            self.advance()
            width: ast.Expr | None = None
            end = tok.span
            if self.accept(_K.COLON):
                width = self.parse_const_expression()
                end = width.span
            return ast.Star(width, span=tok.span.merge(end))
        if tok.kind is _K.LPAREN:
            self.advance()
            items = [self.parse_expression()]
            while self.accept(_K.COMMA):
                items.append(self.parse_expression())
            end = self.expect(_K.RPAREN, "')'").span
            if len(items) == 1:
                return items[0]
            return ast.Tuple_(items, span=tok.span.merge(end))
        if tok.kind is _K.NUMBER:
            self.advance()
            assert tok.value is not None
            node: ast.Expr = ast.NumberLit(tok.value, span=tok.span)
            # Numeric literals may take part in constant arithmetic even in
            # expression position (e.g. inside BIN arguments).
            return self._const_expression_tail(node)
        if tok.kind is _K.BIN:
            self.advance()
            self.expect(_K.LPAREN, "'('")
            value = self.parse_const_expression()
            self.expect(_K.COMMA, "','")
            width = self.parse_const_expression()
            end = self.expect(_K.RPAREN, "')'").span
            return ast.BinCall(value, width, span=tok.span.merge(end))
        if tok.kind is _K.NOT:
            self.advance()
            operand = self.parse_expression()
            return ast.Unary("NOT", operand, span=tok.span.merge(operand.span))
        if tok.kind in (_K.AND, _K.OR):
            # AND/OR used as predefined function components: AND(a, b).
            op = self.advance()
            self.expect(_K.LPAREN, "'('")
            args = [self.parse_expression()]
            while self.accept(_K.COMMA):
                args.append(self.parse_expression())
            end = self.expect(_K.RPAREN, "')'").span
            return ast.Call(
                ast.Name(op.text, span=op.span), args, span=op.span.merge(end)
            )
        if tok.kind in (_K.IDENT, _K.CLK, _K.RSET):
            node = self.parse_designator()
            if self.at(_K.LPAREN):
                self.advance()
                args: list[ast.Expr] = []
                if not self.at(_K.RPAREN):
                    args.append(self.parse_expression())
                    while self.accept(_K.COMMA):
                        args.append(self.parse_expression())
                end = self.expect(_K.RPAREN, "')'").span
                return ast.Call(node, args, span=node.span.merge(end))
            # Loop variables and numeric constants may continue as
            # constant arithmetic (``2*i+1`` in selector-free positions).
            if self.tok.kind in (_K.DIV, _K.MOD):
                return self._const_expression_tail(node)
            return node
        raise ParseError(f"expected expression, found {tok.text!r}", tok.span)

    # -- statements ------------------------------------------------------------

    def parse_statement_sequence(self) -> list[ast.Stmt]:
        stmts: list[ast.Stmt] = []
        while True:
            if self.tok.kind in _STMT_FOLLOW:
                return stmts
            stmt = self.parse_statement()
            if not isinstance(stmt, ast.EmptyStmt):
                stmts.append(stmt)
            if not self.accept(_K.SEMICOLON):
                return stmts

    def parse_statement(self) -> ast.Stmt:
        tok = self.tok
        if tok.kind is _K.IF:
            return self._if_statement()
        if tok.kind is _K.FOR:
            return self._for_statement()
        if tok.kind is _K.WHEN:
            return self._when_statement()
        if tok.kind is _K.SEQUENTIAL:
            self.advance()
            body = self.parse_statement_sequence()
            end = self.expect(_K.END, "END").span
            return ast.Sequential(body, span=tok.span.merge(end))
        if tok.kind is _K.PARALLEL:
            self.advance()
            body = self.parse_statement_sequence()
            end = self.expect(_K.END, "END").span
            return ast.Parallel(body, span=tok.span.merge(end))
        if tok.kind is _K.WITH:
            self.advance()
            signal = self.parse_designator()
            self.expect(_K.DO, "DO")
            body = self.parse_statement_sequence()
            end = self.expect(_K.END, "END").span
            return ast.With(signal, body, span=tok.span.merge(end))
        if tok.kind is _K.RESULT:
            self.advance()
            value = self.parse_expression()
            return ast.Result(value, span=tok.span.merge(value.span))
        if tok.kind is _K.STAR:
            # ``* := x.b`` -- assignment to the empty signal.
            self.advance()
            target: ast.Expr = ast.Star(span=tok.span)
            return self._assignment_tail(target)
        if tok.kind in (_K.IDENT, _K.CLK, _K.RSET):
            designator = self.parse_designator()
            if self.at(_K.ASSIGN, _K.ALIAS):
                return self._assignment_tail(designator)
            if self.at(_K.LPAREN):
                return self._connection_tail(designator)
            # Bare signal statement (grammar: connection = signal [expr]).
            return ast.Connection(designator, [], span=designator.span)
        if tok.kind is _K.SEMICOLON or tok.kind in _STMT_FOLLOW:
            return ast.EmptyStmt(span=tok.span)
        raise ParseError(f"expected statement, found {tok.text!r}", tok.span)

    def _assignment_tail(self, target: ast.Expr) -> ast.Stmt:
        if self.accept(_K.ASSIGN):
            op = ":="
        else:
            self.expect(_K.ALIAS, "':=' or '=='")
            op = "=="
        value = self.parse_expression()
        return ast.Assign(target, op, value, span=target.span.merge(value.span))

    def _connection_tail(self, signal: ast.Expr) -> ast.Stmt:
        self.expect(_K.LPAREN, "'('")
        actuals: list[ast.Expr] = []
        if not self.at(_K.RPAREN):
            actuals.append(self.parse_expression())
            while self.accept(_K.COMMA):
                actuals.append(self.parse_expression())
        end = self.expect(_K.RPAREN, "')'").span
        return ast.Connection(signal, actuals, span=signal.span.merge(end))

    def _if_statement(self) -> ast.Stmt:
        start = self.expect(_K.IF).span
        arms: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self.parse_expression()
        self.expect(_K.THEN, "THEN")
        arms.append((cond, self.parse_statement_sequence()))
        while self.accept(_K.ELSIF):
            cond = self.parse_expression()
            self.expect(_K.THEN, "THEN")
            arms.append((cond, self.parse_statement_sequence()))
        else_body: list[ast.Stmt] = []
        if self.accept(_K.ELSE):
            else_body = self.parse_statement_sequence()
        end = self.expect(_K.END, "END").span
        return ast.If(arms, else_body, span=start.merge(end))

    def _for_statement(self) -> ast.Stmt:
        start = self.expect(_K.FOR).span
        var = self.expect_ident("loop variable")
        self.expect(_K.ASSIGN, "':='")
        lo = self.parse_const_expression()
        downto = False
        if self.accept(_K.DOWNTO):
            downto = True
        else:
            self.expect(_K.TO, "TO or DOWNTO")
        hi = self.parse_const_expression()
        self.expect(_K.DO, "DO")
        sequentially = bool(self.accept(_K.SEQUENTIALLY))
        body = self.parse_statement_sequence()
        end = self.expect(_K.END, "END").span
        return ast.For(var, lo, hi, downto, sequentially, body, span=start.merge(end))

    def _when_statement(self) -> ast.Stmt:
        start = self.expect(_K.WHEN).span
        arms: list[tuple[ast.Expr, list[ast.Stmt]]] = []
        cond = self.parse_const_expression()
        self.expect(_K.THEN, "THEN")
        arms.append((cond, self.parse_statement_sequence()))
        while self.accept(_K.OTHERWISEWHEN):
            cond = self.parse_const_expression()
            self.expect(_K.THEN, "THEN")
            arms.append((cond, self.parse_statement_sequence()))
        otherwise: list[ast.Stmt] = []
        if self.accept(_K.OTHERWISE):
            otherwise = self.parse_statement_sequence()
        end = self.expect(_K.END, "END").span
        return ast.WhenGen(arms, otherwise, span=start.merge(end))

    # -- layout statements (section 6) ------------------------------------------

    def parse_layout_list(self) -> list[ast.LayoutStmt]:
        stmts: list[ast.LayoutStmt] = []
        while True:
            if self.tok.kind in _STMT_FOLLOW:
                return stmts
            stmt = self.parse_layout_statement()
            if stmt is not None:
                stmts.append(stmt)
            if not self.accept(_K.SEMICOLON):
                return stmts

    def parse_layout_statement(self) -> ast.LayoutStmt | None:
        tok = self.tok
        if tok.kind is _K.ORDER:
            self.advance()
            direction = self.expect_ident("direction of separation")
            if direction not in DIRECTIONS:
                raise ParseError(
                    f"unknown direction of separation {direction!r}", tok.span
                )
            body = self.parse_layout_list()
            end = self.expect(_K.END, "END").span
            return ast.LayoutOrder(direction, body, span=tok.span.merge(end))
        if tok.kind is _K.FOR:
            self.advance()
            var = self.expect_ident("loop variable")
            if not self.accept(_K.ASSIGN):
                self.expect(_K.EQ, "':=' or '='")
            lo = self.parse_const_expression()
            downto = False
            if self.accept(_K.DOWNTO):
                downto = True
            else:
                self.expect(_K.TO, "TO or DOWNTO")
            hi = self.parse_const_expression()
            self.expect(_K.DO, "DO")
            body = self.parse_layout_list()
            end = self.expect(_K.END, "END").span
            return ast.LayoutFor(var, lo, hi, downto, body, span=tok.span.merge(end))
        if tok.kind is _K.WHEN:
            self.advance()
            arms: list[tuple[ast.Expr, list[ast.LayoutStmt]]] = []
            cond = self.parse_const_expression()
            self.expect(_K.THEN, "THEN")
            arms.append((cond, self.parse_layout_list()))
            while self.accept(_K.OTHERWISEWHEN):
                cond = self.parse_const_expression()
                self.expect(_K.THEN, "THEN")
                arms.append((cond, self.parse_layout_list()))
            otherwise: list[ast.LayoutStmt] = []
            if self.accept(_K.OTHERWISE):
                otherwise = self.parse_layout_list()
            end = self.expect(_K.END, "END").span
            return ast.LayoutWhen(arms, otherwise, span=tok.span.merge(end))
        if tok.kind in _BOUNDARY_SIDES:
            side = _BOUNDARY_SIDES[self.advance().kind]
            body: list[ast.LayoutStmt] = []
            while self.tok.kind in (_K.IDENT,):
                pin = self.parse_designator()
                body.append(ast.LayoutBasic(None, pin, span=pin.span))
                if not self.accept(_K.SEMICOLON):
                    break
                if self.tok.kind in _BOUNDARY_SIDES or self.tok.kind in _STMT_FOLLOW:
                    # Hand the separator back to the caller's list loop.
                    self.idx -= 1
                    break
            return ast.LayoutBoundary(side, body, span=tok.span)
        if tok.kind is _K.WITH:
            self.advance()
            signal = self.parse_designator()
            self.expect(_K.DO, "DO")
            body = self.parse_layout_list()
            end = self.expect(_K.END, "END").span
            return ast.LayoutWith(signal, body, span=tok.span.merge(end))
        if tok.kind is _K.IDENT:
            orientation: str | None = None
            if tok.text in ORIENTATIONS and self.peek().kind is _K.IDENT:
                orientation = self.advance().text
            signal = self.parse_designator()
            replacement: ast.TypeExpr | None = None
            if self.accept(_K.EQ):
                replacement = self.parse_type()
            return ast.LayoutBasic(
                orientation, signal, replacement, span=tok.span.merge(signal.span)
            )
        if tok.kind is _K.SEMICOLON or tok.kind in _STMT_FOLLOW:
            return None
        raise ParseError(f"expected layout statement, found {tok.text!r}", tok.span)


def parse(source: SourceText | str) -> ast.Program:
    """Parse a complete Zeus program text."""
    from ..obs.spans import span

    parser = Parser(source)  # lexing happens here, under its own span
    with span("parse"):
        return parser.parse_program()


def parse_expression(source: SourceText | str) -> ast.Expr:
    """Parse a single Zeus expression (test/tooling helper)."""
    parser = Parser(source)
    expr = parser.parse_expression()
    parser.expect(TokenKind.EOF, "end of input")
    return expr
