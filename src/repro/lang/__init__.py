"""Zeus language frontend: source handling, lexer, AST and parser."""

from . import ast
from .errors import (
    CheckError,
    Diagnostic,
    DiagnosticSink,
    ElaborationError,
    InterchangeError,
    LayoutError,
    LexError,
    ParseError,
    Severity,
    SimulationError,
    TypeError_,
    ZeusError,
    error_payload,
)
from .lexer import Lexer, tokenize
from .parser import Parser, parse, parse_expression
from .source import NO_SPAN, Position, SourceText, Span
from .tokens import KEYWORDS, Token, TokenKind

__all__ = [
    "ast",
    "CheckError",
    "Diagnostic",
    "DiagnosticSink",
    "ElaborationError",
    "InterchangeError",
    "KEYWORDS",
    "LayoutError",
    "LexError",
    "Lexer",
    "NO_SPAN",
    "ParseError",
    "Parser",
    "Position",
    "Severity",
    "SimulationError",
    "SourceText",
    "Span",
    "Token",
    "TokenKind",
    "TypeError_",
    "ZeusError",
    "error_payload",
    "parse",
    "parse_expression",
    "tokenize",
]
