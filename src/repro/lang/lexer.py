"""The Zeus scanner (paper section 2).

Turns source text into a list of :class:`~repro.lang.tokens.Token`.

* identifiers: ``letter { letter | digit }`` (case-sensitive);
* numbers: decimal digit strings, with a trailing ``B``/``b`` marking an
  *octal* literal as in Modula-2 (``17B`` == 15);
* comments: ``<* ... *>``, nesting allowed (Modula-2 convention);
* all special symbols of the vocabulary, longest match first.

Comments are trivia -- they produce no tokens -- but their spans are
recorded on :attr:`Lexer.comments` so downstream tooling (the
``zeuslint`` suppression comments, see :mod:`repro.lint.suppress`) can
recover them without re-scanning.
"""

from __future__ import annotations

from .errors import LexError
from .source import SourceText, Span
from .tokens import KEYWORDS, SYMBOLS, Token, TokenKind

_WHITESPACE = " \t\r\n\f"


class Lexer:
    """A one-pass scanner over a :class:`SourceText`."""

    def __init__(self, source: SourceText | str):
        if isinstance(source, str):
            source = SourceText(source)
        self.source = source
        self.text = source.text
        self.pos = 0
        #: spans of every ``<* ... *>`` comment scanned, in source order.
        self.comments: list[Span] = []

    def tokens(self) -> list[Token]:
        """Scan the whole input and return all tokens plus a final EOF."""
        out: list[Token] = []
        while True:
            tok = self.next_token()
            out.append(tok)
            if tok.kind is TokenKind.EOF:
                return out

    # -- internals ---------------------------------------------------------

    def next_token(self) -> Token:
        self._skip_trivia()
        if self.pos >= len(self.text):
            return Token(TokenKind.EOF, "", Span(self.pos, self.pos))
        ch = self.text[self.pos]
        if ch.isalpha():
            return self._identifier()
        if ch.isdigit():
            return self._number()
        return self._symbol()

    def _skip_trivia(self) -> None:
        while self.pos < len(self.text):
            ch = self.text[self.pos]
            if ch in _WHITESPACE:
                self.pos += 1
            elif self.text.startswith("<*", self.pos):
                self._skip_comment()
            else:
                return

    def _skip_comment(self) -> None:
        start = self.pos
        depth = 0
        while self.pos < len(self.text):
            if self.text.startswith("<*", self.pos):
                depth += 1
                self.pos += 2
            elif self.text.startswith("*>", self.pos):
                depth -= 1
                self.pos += 2
                if depth == 0:
                    self.comments.append(Span(start, self.pos))
                    return
            else:
                self.pos += 1
        raise LexError("unterminated comment", Span(start, len(self.text)))

    def _identifier(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isalnum():
            self.pos += 1
        word = self.text[start : self.pos]
        span = Span(start, self.pos)
        kind = KEYWORDS.get(word)
        if kind is not None:
            return Token(kind, word, span)
        return Token(TokenKind.IDENT, word, span)

    def _number(self) -> Token:
        start = self.pos
        while self.pos < len(self.text) and self.text[self.pos].isdigit():
            self.pos += 1
        digits = self.text[start : self.pos]
        base = 10
        if self.pos < len(self.text) and self.text[self.pos] in "Bb":
            # Octal marker -- but only when not the start of an identifier
            # continuation (a number followed by letters is an error anyway).
            nxt = self.text[self.pos + 1 : self.pos + 2]
            if not nxt.isalnum():
                base = 8
                self.pos += 1
        span = Span(start, self.pos)
        if self.pos < len(self.text) and self.text[self.pos].isalpha():
            raise LexError(
                f"malformed number {self.text[start:self.pos + 1]!r}",
                Span(start, self.pos + 1),
            )
        try:
            value = int(digits, base)
        except ValueError:
            raise LexError(f"invalid octal number {digits!r}B", span) from None
        return Token(TokenKind.NUMBER, self.source.snippet(span), span, value)

    def _symbol(self) -> Token:
        for text, kind in SYMBOLS:
            if self.text.startswith(text, self.pos):
                span = Span(self.pos, self.pos + len(text))
                self.pos += len(text)
                return Token(kind, text, span)
        raise LexError(
            f"illegal character {self.text[self.pos]!r}",
            Span(self.pos, self.pos + 1),
        )


def tokenize(source: SourceText | str) -> list[Token]:
    """Convenience wrapper: scan *source* into a token list ending in EOF."""
    return tokenize_with_comments(source)[0]


def tokenize_with_comments(
    source: SourceText | str,
) -> tuple[list[Token], list[Span]]:
    """Scan *source*; return the token list plus all comment spans."""
    from ..obs.spans import span

    with span("lex"):
        lexer = Lexer(source)
        return lexer.tokens(), lexer.comments
