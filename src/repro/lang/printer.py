"""Pretty-printer: AST back to concrete Zeus syntax.

Supports tooling (formatting, program generation, golden tests) and the
round-trip property ``parse(print(parse(text))) == parse(text)`` that the
test suite checks over every bundled program.
"""

from __future__ import annotations

from . import ast

_INDENT = "    "


def print_program(program: ast.Program) -> str:
    out: list[str] = []
    pending: str | None = None
    for decl in program.decls:
        kind = type(decl).__name__
        keyword = {
            "ConstDecl": "CONST",
            "TypeDecl": "TYPE",
            "SignalDecl": "SIGNAL",
        }[kind]
        if pending != keyword:
            out.append(keyword)
            pending = keyword
        out.append(_print_decl(decl, 1))
    return "\n".join(out) + "\n"


def _print_decl(decl: ast.Decl, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(decl, ast.ConstDecl):
        return f"{pad}{decl.name} = {print_expr(decl.value)};"
    if isinstance(decl, ast.TypeDecl):
        params = f"({', '.join(decl.params)})" if decl.params else ""
        return f"{pad}{decl.name}{params} = {print_type(decl.type, depth)};"
    if isinstance(decl, ast.SignalDecl):
        names = ", ".join(decl.names)
        return f"{pad}{names}: {print_type(decl.type, depth)};"
    raise TypeError(f"not a declaration: {decl!r}")


def print_type(t: ast.TypeExpr, depth: int = 0) -> str:
    if isinstance(t, ast.NamedType):
        if t.args:
            return f"{t.name}({', '.join(print_expr(a) for a in t.args)})"
        return t.name
    if isinstance(t, ast.ArrayType):
        return (
            f"ARRAY [{print_expr(t.lo)}..{print_expr(t.hi)}] "
            f"OF {print_type(t.element, depth)}"
        )
    if isinstance(t, ast.ComponentType):
        return _print_component(t, depth)
    raise TypeError(f"not a type: {t!r}")


def _print_component(t: ast.ComponentType, depth: int) -> str:
    pad = _INDENT * depth
    groups = []
    for p in t.params:
        mode = "" if p.mode is ast.Mode.INOUT else p.mode.value + " "
        groups.append(f"{mode}{', '.join(p.names)}: {print_type(p.type, depth)}")
    head = f"COMPONENT ({'; '.join(groups)})"
    if t.header_layout:
        head += " { " + _print_layout_list(t.header_layout, depth + 1) + " }"
    if t.body is None and t.result is None:
        return head
    if t.result is not None:
        head += f" : {print_type(t.result, depth)}"
    lines = [head + " IS"]
    if t.uses is not None:
        lines.append(f"{pad}USES {', '.join(t.uses)};")
    for d in t.decls:
        keyword = {
            "ConstDecl": "CONST",
            "TypeDecl": "TYPE",
            "SignalDecl": "SIGNAL",
        }[type(d).__name__]
        lines.append(f"{pad}{keyword} {_print_decl(d, 0).strip()}")
    if t.layout:
        lines.append(pad + "{ " + _print_layout_list(t.layout, depth + 1) + " }")
    lines.append(f"{pad}BEGIN")
    for s in t.body or []:
        lines.append(print_stmt(s, depth + 1))
    lines.append(f"{pad}END")
    return "\n".join(lines)


def print_stmt(s: ast.Stmt, depth: int) -> str:
    pad = _INDENT * depth
    if isinstance(s, ast.Assign):
        return f"{pad}{print_expr(s.target)} {s.op} {print_expr(s.value)};"
    if isinstance(s, ast.Connection):
        if not s.actuals:
            return f"{pad}{print_expr(s.signal)};"
        actuals = ", ".join(print_expr(a) for a in s.actuals)
        return f"{pad}{print_expr(s.signal)}({actuals});"
    if isinstance(s, ast.If):
        lines = []
        for i, (cond, body) in enumerate(s.arms):
            kw = "IF" if i == 0 else "ELSIF"
            lines.append(f"{pad}{kw} {print_expr(cond)} THEN")
            lines.extend(print_stmt(b, depth + 1) for b in body)
        if s.else_body:
            lines.append(f"{pad}ELSE")
            lines.extend(print_stmt(b, depth + 1) for b in s.else_body)
        lines.append(f"{pad}END;")
        return "\n".join(lines)
    if isinstance(s, ast.For):
        direction = "DOWNTO" if s.downto else "TO"
        seq = " SEQUENTIALLY" if s.sequentially else ""
        lines = [
            f"{pad}FOR {s.var} := {print_expr(s.lo)} {direction} "
            f"{print_expr(s.hi)} DO{seq}"
        ]
        lines.extend(print_stmt(b, depth + 1) for b in s.body)
        lines.append(f"{pad}END;")
        return "\n".join(lines)
    if isinstance(s, ast.WhenGen):
        lines = []
        for i, (cond, body) in enumerate(s.arms):
            kw = "WHEN" if i == 0 else "OTHERWISEWHEN"
            lines.append(f"{pad}{kw} {print_expr(cond)} THEN")
            lines.extend(print_stmt(b, depth + 1) for b in body)
        if s.otherwise:
            lines.append(f"{pad}OTHERWISE")
            lines.extend(print_stmt(b, depth + 1) for b in s.otherwise)
        lines.append(f"{pad}END;")
        return "\n".join(lines)
    if isinstance(s, ast.Sequential):
        body = "\n".join(print_stmt(b, depth + 1) for b in s.body)
        return f"{pad}SEQUENTIAL\n{body}\n{pad}END;"
    if isinstance(s, ast.Parallel):
        body = "\n".join(print_stmt(b, depth + 1) for b in s.body)
        return f"{pad}PARALLEL\n{body}\n{pad}END;"
    if isinstance(s, ast.With):
        body = "\n".join(print_stmt(b, depth + 1) for b in s.body)
        return f"{pad}WITH {print_expr(s.signal)} DO\n{body}\n{pad}END;"
    if isinstance(s, ast.Result):
        return f"{pad}RESULT {print_expr(s.value)};"
    if isinstance(s, ast.EmptyStmt):
        return f"{pad};"
    raise TypeError(f"not a statement: {s!r}")


def _print_layout_list(stmts: list[ast.LayoutStmt], depth: int) -> str:
    return "; ".join(_print_layout(s, depth) for s in stmts)


def _print_layout(s: ast.LayoutStmt, depth: int) -> str:
    if isinstance(s, ast.LayoutBasic):
        text = print_expr(s.signal)
        if s.orientation:
            text = f"{s.orientation} {text}"
        if s.replacement is not None:
            text += f" = {print_type(s.replacement, depth)}"
        return text
    if isinstance(s, ast.LayoutOrder):
        return f"ORDER {s.direction} {_print_layout_list(s.body, depth)} END"
    if isinstance(s, ast.LayoutFor):
        direction = "DOWNTO" if s.downto else "TO"
        return (
            f"FOR {s.var} := {print_expr(s.lo)} {direction} {print_expr(s.hi)} "
            f"DO {_print_layout_list(s.body, depth)} END"
        )
    if isinstance(s, ast.LayoutWhen):
        parts = []
        for i, (cond, body) in enumerate(s.arms):
            kw = "WHEN" if i == 0 else "OTHERWISEWHEN"
            parts.append(f"{kw} {print_expr(cond)} THEN {_print_layout_list(body, depth)}")
        if s.otherwise:
            parts.append(f"OTHERWISE {_print_layout_list(s.otherwise, depth)}")
        return " ".join(parts) + " END"
    if isinstance(s, ast.LayoutBoundary):
        return f"{s.side.upper()} {_print_layout_list(s.body, depth)}"
    if isinstance(s, ast.LayoutWith):
        return f"WITH {print_expr(s.signal)} DO {_print_layout_list(s.body, depth)} END"
    raise TypeError(f"not a layout statement: {s!r}")


def print_expr(e: ast.Expr) -> str:
    if isinstance(e, ast.NumberLit):
        return str(e.value)
    if isinstance(e, ast.LogicLit):
        return e.value
    if isinstance(e, ast.Name):
        return e.ident
    if isinstance(e, ast.Index):
        return f"{print_expr(e.base)}[{print_expr(e.index)}]"
    if isinstance(e, ast.IndexRange):
        return f"{print_expr(e.base)}[{print_expr(e.lo)}..{print_expr(e.hi)}]"
    if isinstance(e, ast.IndexNum):
        return f"{print_expr(e.base)}[NUM({print_expr(e.selector)})]"
    if isinstance(e, ast.Field):
        return f"{print_expr(e.base)}.{e.name}"
    if isinstance(e, ast.FieldRange):
        return f"{print_expr(e.base)}.{e.first}..{e.last}"
    if isinstance(e, ast.Star):
        if e.width is not None:
            return f"* : {print_expr(e.width)}"
        return "*"
    if isinstance(e, ast.Tuple_):
        return "(" + ", ".join(print_expr(i) for i in e.items) + ")"
    if isinstance(e, ast.Call):
        head = print_expr(e.func)
        if e.type_args:
            head += "[" + ", ".join(print_expr(a) for a in e.type_args) + "]"
        return f"{head}({', '.join(print_expr(a) for a in e.args)})"
    if isinstance(e, ast.BinCall):
        return f"BIN({print_expr(e.value)}, {print_expr(e.width)})"
    if isinstance(e, ast.Unary):
        if e.op == "NOT":
            return f"NOT {_paren(e.operand)}"
        return f"{e.op}{_paren(e.operand)}"
    if isinstance(e, ast.Binary):
        return f"({print_expr(e.left)} {e.op} {print_expr(e.right)})"
    raise TypeError(f"not an expression: {e!r}")


def _paren(e: ast.Expr) -> str:
    text = print_expr(e)
    if isinstance(e, (ast.Binary, ast.Unary)):
        return f"({text})"
    return text
