"""Token kinds and the Zeus vocabulary (paper section 2).

Keywords are the exact uppercase reserved words listed in the paper;
identifiers are case-sensitive, so ``array`` is a legal identifier while
``ARRAY`` is reserved.  Predefined objects such as ``REG``, ``XOR`` or
``EQUAL`` are *identifiers* bound in the standard environment, not
keywords -- exactly as in the report, whose keyword list omits them
(``BIN`` and ``NUM`` however appear in the grammar and are reserved).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum, auto

from .source import Span


class TokenKind(Enum):
    # literals / names
    IDENT = auto()
    NUMBER = auto()

    # punctuation and operators
    PLUS = auto()          # +
    MINUS = auto()         # -
    STAR = auto()          # *  (multiplication / "no connection")
    LPAREN = auto()        # (
    RPAREN = auto()        # )
    LBRACKET = auto()      # [
    RBRACKET = auto()      # ]
    LBRACE = auto()        # {  (layout statement list)
    RBRACE = auto()        # }
    DOT = auto()           # .
    DOTDOT = auto()        # ..
    COMMA = auto()         # ,
    SEMICOLON = auto()     # ;
    COLON = auto()         # :
    EQ = auto()            # =
    NEQ = auto()           # <>
    LT = auto()            # <
    LE = auto()            # <=
    GT = auto()            # >
    GE = auto()            # >=
    ASSIGN = auto()        # :=
    ALIAS = auto()         # ==

    # keywords
    AND = auto()
    ARRAY = auto()
    BEGIN = auto()
    BIN = auto()
    BOTTOM = auto()
    CLK = auto()
    COMPONENT = auto()
    CONST = auto()
    DIV = auto()
    DO = auto()
    DOWNTO = auto()
    ELSE = auto()
    ELSIF = auto()
    END = auto()
    FOR = auto()
    IF = auto()
    IN = auto()
    IS = auto()
    LEFT = auto()
    MOD = auto()
    NOT = auto()
    NUM = auto()
    OF = auto()
    OR = auto()
    ORDER = auto()
    OTHERWISE = auto()
    OTHERWISEWHEN = auto()
    OUT = auto()
    PARALLEL = auto()
    RSET = auto()
    RESULT = auto()
    RIGHT = auto()
    SEQUENTIAL = auto()
    SEQUENTIALLY = auto()
    SIGNAL = auto()
    THEN = auto()
    TO = auto()
    TOP = auto()
    TYPE = auto()
    USES = auto()
    WHEN = auto()
    WITH = auto()

    EOF = auto()


#: Reserved words of section 2, mapped to their token kinds.
KEYWORDS: dict[str, TokenKind] = {
    kw: TokenKind[kw]
    for kw in (
        "AND ARRAY BEGIN BIN BOTTOM CLK COMPONENT CONST DIV DO DOWNTO "
        "ELSE ELSIF END FOR IF IN IS LEFT MOD NOT NUM OF OR ORDER "
        "OTHERWISE OTHERWISEWHEN OUT PARALLEL RSET RESULT RIGHT "
        "SEQUENTIAL SEQUENTIALLY SIGNAL THEN TO TOP TYPE USES WHEN WITH"
    ).split()
}

#: Multi-character symbols, longest first so the lexer can greedily match.
SYMBOLS: list[tuple[str, TokenKind]] = [
    (":=", TokenKind.ASSIGN),
    ("==", TokenKind.ALIAS),
    ("<=", TokenKind.LE),
    (">=", TokenKind.GE),
    ("<>", TokenKind.NEQ),
    ("..", TokenKind.DOTDOT),
    ("+", TokenKind.PLUS),
    ("-", TokenKind.MINUS),
    ("*", TokenKind.STAR),
    ("(", TokenKind.LPAREN),
    (")", TokenKind.RPAREN),
    ("[", TokenKind.LBRACKET),
    ("]", TokenKind.RBRACKET),
    ("{", TokenKind.LBRACE),
    ("}", TokenKind.RBRACE),
    (".", TokenKind.DOT),
    (",", TokenKind.COMMA),
    (";", TokenKind.SEMICOLON),
    (":", TokenKind.COLON),
    ("=", TokenKind.EQ),
    ("<", TokenKind.LT),
    (">", TokenKind.GT),
]


@dataclass(frozen=True)
class Token:
    kind: TokenKind
    text: str
    span: Span
    value: int | None = None  # numeric value for NUMBER tokens

    def __str__(self) -> str:
        return f"{self.kind.name}({self.text!r})"
