"""Abstract syntax for Zeus (paper section 7, EBNF lines 1-63).

The tree deliberately stays close to the concrete grammar: constant
expressions and signal expressions share one ``Expr`` hierarchy because the
grammar reuses identifiers and parenthesised lists in both roles; the
elaborator decides, given the static environment, whether a ``Name`` is a
numeric constant, a type, or a signal.

Two grammar liberties, both needed for the paper's own examples:

* multi-dimensional arrays ``ARRAY[1..n, 1..n] OF t`` and index lists
  ``m[i, j]`` (used by the chessboard example of section 6.4) desugar to
  nested arrays / chained selectors;
* in the layout language, a ``basic`` statement is an optionally oriented
  signal reference with an *optional* ``= type`` replacement part (the
  paper's examples use bare references like ``root`` or ``flip90 s[3]``,
  while its grammar only shows the replacement form).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .source import NO_SPAN, Span


@dataclass
class Node:
    """Base class for every AST node."""

    span: Span = field(default=NO_SPAN, kw_only=True)


# ---------------------------------------------------------------------------
# Expressions (both constant and signal expressions)
# ---------------------------------------------------------------------------


@dataclass
class Expr(Node):
    pass


@dataclass
class NumberLit(Expr):
    """A numeric literal (decimal, or octal written with a B suffix)."""

    value: int


@dataclass
class LogicLit(Expr):
    """One of the basic signal constants 0, 1, UNDEF, NOINFL.

    The lexer produces 0/1 as numbers; the elaborator reinterprets them as
    logic values by context.  UNDEF and NOINFL arrive as predefined names
    and are folded to this node during elaboration; the parser never emits
    ``LogicLit`` directly.
    """

    value: str  # "0" | "1" | "UNDEF" | "NOINFL"


@dataclass
class Name(Expr):
    """An identifier reference (signal, constant, type or function name).

    The predefined signals CLK and RSET parse to ``Name("CLK")`` and
    ``Name("RSET")``.
    """

    ident: str


@dataclass
class Index(Expr):
    """``base[index]`` with a constant index expression."""

    base: Expr
    index: Expr


@dataclass
class IndexRange(Expr):
    """``base[lo..hi]`` selecting a slice of an array signal."""

    base: Expr
    lo: Expr
    hi: Expr


@dataclass
class IndexNum(Expr):
    """``base[NUM(sel)]`` -- dynamic, hardware-decoded indexing."""

    base: Expr
    selector: Expr


@dataclass
class Field(Expr):
    """``base.name`` selecting a component/record field (pin)."""

    base: Expr
    name: str


@dataclass
class FieldRange(Expr):
    """``base.first..last`` selecting a consecutive run of fields."""

    base: Expr
    first: str
    last: str


@dataclass
class Star(Expr):
    """``*`` -- the empty signal / "no connection"; ``*: n`` gives it an
    explicit width of *n* basic signals for positional padding."""

    width: Expr | None = None


@dataclass
class Tuple_(Expr):
    """A parenthesised list ``(e1, e2, ...)``: signal concatenation, a
    structured constant, or the actual-parameter list of a connection."""

    items: list[Expr]


@dataclass
class Call(Expr):
    """``f(args)`` or ``f[t1, t2](args)``: function component call.

    ``type_args`` holds explicit numeric type parameters (``plus[n](a, b)``
    in the paper's narrative syntax); when absent they are inferred from
    the widths of the actual parameters.
    """

    func: Expr
    args: list[Expr]
    type_args: list[Expr] | None = None


@dataclass
class BinCall(Expr):
    """``BIN(value, width)`` -- the standard number-to-bits function."""

    value: Expr
    width: Expr


@dataclass
class Unary(Expr):
    """Constant-expression unary operator: ``+``, ``-``, ``NOT``.

    ``NOT`` on a signal operand is re-interpreted by the elaborator as the
    predefined NOT function component.
    """

    op: str
    operand: Expr


@dataclass
class Binary(Expr):
    """Constant-expression binary operator:
    ``+ - * DIV MOD AND OR = <> < <= > >=``."""

    op: str
    left: Expr
    right: Expr


# ---------------------------------------------------------------------------
# Types
# ---------------------------------------------------------------------------


class Mode(Enum):
    """Parameter transmission mode of a component pin."""

    IN = "IN"
    OUT = "OUT"
    INOUT = "INOUT"


@dataclass
class TypeExpr(Node):
    pass


@dataclass
class NamedType(TypeExpr):
    """A reference to a declared (possibly parameterized) type, e.g.
    ``boolean``, ``bo(4)``, ``tree(n DIV 2)``."""

    name: str
    args: list[Expr] = field(default_factory=list)


@dataclass
class ArrayType(TypeExpr):
    """``ARRAY [lo..hi] OF element``."""

    lo: Expr
    hi: Expr
    element: TypeExpr


@dataclass
class FParam(Node):
    """One formal-parameter group ``[IN|OUT] a, b, c : type``."""

    mode: Mode
    names: list[str]
    type: TypeExpr


@dataclass
class ComponentType(TypeExpr):
    """``COMPONENT (params) {layout} [: result] IS ... BEGIN body END``.

    ``body is None`` distinguishes a record type (a component without body,
    section 3.2) from a component with an empty statement part.
    ``result`` is the value type of a function component type.
    ``uses`` is ``None`` when the USES clause is absent (everything visible)
    and a -- possibly empty -- name list otherwise.
    """

    params: list[FParam]
    header_layout: list["LayoutStmt"] = field(default_factory=list)
    result: TypeExpr | None = None
    uses: list[str] | None = None
    decls: list["Decl"] = field(default_factory=list)
    layout: list["LayoutStmt"] = field(default_factory=list)
    body: list["Stmt"] | None = None


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass
class Stmt(Node):
    pass


@dataclass
class Assign(Stmt):
    """``target := expr`` (directed definition) or ``target == expr``
    (aliasing / bidirectional connection)."""

    target: Expr
    op: str  # ":=" or "=="
    value: Expr


@dataclass
class Connection(Stmt):
    """``sig(actuals)``: positional connection of an instantiated
    component's pins (section 4.3)."""

    signal: Expr
    actuals: list[Expr]


@dataclass
class If(Stmt):
    """``IF c THEN ... {ELSIF c THEN ...} [ELSE ...] END`` -- a *switch*;
    all conditions are runtime signal expressions evaluated in parallel."""

    arms: list[tuple[Expr, list[Stmt]]]
    else_body: list[Stmt] = field(default_factory=list)


@dataclass
class For(Stmt):
    """``FOR i := lo TO|DOWNTO hi DO [SEQUENTIALLY] ... END`` --
    compile-time replication (section 4.2)."""

    var: str
    lo: Expr
    hi: Expr
    downto: bool
    sequentially: bool
    body: list[Stmt]


@dataclass
class WhenGen(Stmt):
    """``WHEN c THEN ... {OTHERWISEWHEN c THEN ...} [OTHERWISE ...] END``
    -- compile-time conditional hardware generation (section 4.2)."""

    arms: list[tuple[Expr, list[Stmt]]]
    otherwise: list[Stmt] = field(default_factory=list)


@dataclass
class Sequential(Stmt):
    """``SEQUENTIAL s1; ...; sn END`` -- redundant ordering annotation,
    checked against the dataflow order but without semantic effect."""

    body: list[Stmt]


@dataclass
class Parallel(Stmt):
    """``PARALLEL ... END`` -- reverses SEQUENTIAL inside it."""

    body: list[Stmt]


@dataclass
class With(Stmt):
    """``WITH sig DO ... END`` -- opens the pins of *sig* as a scope."""

    signal: Expr
    body: list[Stmt]


@dataclass
class Result(Stmt):
    """``RESULT expr`` -- defines the value of a function component."""

    value: Expr


@dataclass
class EmptyStmt(Stmt):
    """The empty statement admitted by the grammar."""


# ---------------------------------------------------------------------------
# Layout statements (section 6)
# ---------------------------------------------------------------------------


@dataclass
class LayoutStmt(Node):
    pass


@dataclass
class LayoutBasic(LayoutStmt):
    """``[orientation] signal [= type]``.

    Bare form places/references a cell (optionally rotated/flipped);
    the ``= type`` form *replaces* a virtual signal by a real type
    (section 6.4)."""

    orientation: str | None
    signal: Expr
    replacement: TypeExpr | None = None


@dataclass
class LayoutOrder(LayoutStmt):
    """``ORDER direction stmts END`` -- relative placement along one of the
    eight directions of separation."""

    direction: str
    body: list[LayoutStmt]


@dataclass
class LayoutFor(LayoutStmt):
    var: str
    lo: Expr
    hi: Expr
    downto: bool
    body: list[LayoutStmt]


@dataclass
class LayoutWhen(LayoutStmt):
    arms: list[tuple[Expr, list[LayoutStmt]]]
    otherwise: list[LayoutStmt] = field(default_factory=list)


@dataclass
class LayoutBoundary(LayoutStmt):
    """``TOP|RIGHT|BOTTOM|LEFT pins`` -- pins on one side of the cell."""

    side: str
    body: list[LayoutStmt]


@dataclass
class LayoutWith(LayoutStmt):
    signal: Expr
    body: list[LayoutStmt]


# ---------------------------------------------------------------------------
# Declarations and the program
# ---------------------------------------------------------------------------


@dataclass
class Decl(Node):
    pass


@dataclass
class ConstDecl(Decl):
    """``CONST name = constant;`` -- numeric or signal constant."""

    name: str
    value: Expr


@dataclass
class TypeDecl(Decl):
    """``TYPE name [(p1, p2)] = type;`` -- possibly parameterized."""

    name: str
    params: list[str]
    type: TypeExpr


@dataclass
class SignalDecl(Decl):
    """``SIGNAL a, b : type;`` -- instantiates the type (section 3.3)."""

    names: list[str]
    type: TypeExpr


@dataclass
class Program(Node):
    """``Hardware = {declaration}`` -- a whole Zeus text."""

    decls: list[Decl] = field(default_factory=list)
    #: spans of all ``<* ... *>`` comments (lexer trivia), kept for the
    #: lint suppression comments (:mod:`repro.lint.suppress`).
    comments: list[Span] = field(default_factory=list)

    def constants(self) -> list[ConstDecl]:
        return [d for d in self.decls if isinstance(d, ConstDecl)]

    def types(self) -> list[TypeDecl]:
        return [d for d in self.decls if isinstance(d, TypeDecl)]

    def signals(self) -> list[SignalDecl]:
        return [d for d in self.decls if isinstance(d, SignalDecl)]
