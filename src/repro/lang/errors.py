"""Diagnostics and the Zeus error hierarchy.

All compiler phases report problems through :class:`Diagnostic` objects
collected in a :class:`DiagnosticSink`; user-facing entry points convert
fatal diagnostics to exceptions from the ``ZeusError`` family.

The hierarchy mirrors the paper's phases:

* :class:`LexError` / :class:`ParseError` -- vocabulary / syntax (sections 2, 7)
* :class:`TypeError_` -- static type rules (section 4.7)
* :class:`ElaborationError` -- meta-program evaluation (section 4.2)
* :class:`CheckError` -- graph-level rules (acyclicity, unused ports)
* :class:`SimulationError` -- runtime checks, e.g. the multi-driver
  "burning transistors" check (sections 3.2, 8)
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum

from .source import NO_SPAN, SourceText, Span


class Severity(Enum):
    ERROR = "error"
    WARNING = "warning"
    NOTE = "note"


@dataclass(frozen=True)
class Diagnostic:
    severity: Severity
    message: str
    span: Span = NO_SPAN
    phase: str = ""

    def render(self, source: SourceText | None = None) -> str:
        head = f"{self.severity.value}: {self.message}"
        if self.phase:
            head = f"[{self.phase}] {head}"
        if source is not None and self.span is not NO_SPAN:
            pos = source.position(self.span.start)
            head = f"{source.name}:{pos}: {head}\n{source.caret_diagram(self.span)}"
        return head


class ZeusError(Exception):
    """Base class for all errors raised by the Zeus toolchain."""

    def __init__(self, message: str, span: Span = NO_SPAN):
        super().__init__(message)
        self.message = message
        self.span = span


class LexError(ZeusError):
    """Illegal character or malformed token (section 2)."""


class ParseError(ZeusError):
    """Syntax error relative to the section-7 EBNF."""


class TypeError_(ZeusError):
    """Violation of the static type rules of section 4.7."""


class ElaborationError(ZeusError):
    """Error while evaluating the compile-time meta program
    (constant expressions, replications, conditional generation,
    parameterized/recursive types)."""


class CheckError(ZeusError):
    """Graph-level static check failure: combinational cycles,
    unused ports, multiple unconditional assignment, etc."""


class SimulationError(ZeusError):
    """Runtime rule violation, most importantly more than one
    (0,1,UNDEF) assignment to one signal in a cycle."""


class LayoutError(ZeusError):
    """Layout-language error (section 6): double replacement of a
    virtual signal, unknown direction of separation, etc."""


class InterchangeError(ZeusError):
    """Verilog interchange error: an unsupported construct in an
    imported structural netlist, a dangling instance port, or a design
    shape the emitter cannot encode (see :mod:`repro.interchange`)."""


#: ZeusError subclass -> the compiler phase it belongs to, for
#: structured error payloads.
_ERROR_PHASES = {
    "LexError": "lex",
    "ParseError": "parse",
    "TypeError_": "type",
    "ElaborationError": "elaborate",
    "CheckError": "check",
    "SimulationError": "simulate",
    "LayoutError": "layout",
    "InterchangeError": "interchange",
}


def error_payload(
    exc: ZeusError, source: SourceText | None = None
) -> dict:
    """Render a :class:`ZeusError` as the ``zeus.error/1`` JSON shape.

    One renderer serves every consumer of structured failures: the CLI's
    ``--format json`` subcommands print it on a parse/elaboration error,
    and ``zeusd`` returns it as the body of 4xx responses.  *source*
    (when the failing text is at hand) adds 1-based line/column
    positions next to the raw span offsets.
    """
    payload: dict = {
        "schema": "zeus.error/1",
        "phase": _ERROR_PHASES.get(type(exc).__name__, "error"),
        "type": type(exc).__name__,
        "message": exc.message,
        "span": None,
        "position": None,
    }
    span = getattr(exc, "span", NO_SPAN)
    if span is not NO_SPAN and span is not None:
        payload["span"] = {"start": span.start, "end": span.end}
        if source is not None:
            pos = source.position(span.start)
            payload["position"] = {
                "file": source.name,
                "line": pos.line,
                "column": pos.column,
            }
    return payload


@dataclass
class DiagnosticSink:
    """Collects diagnostics across a compilation.

    ``strict`` sinks raise immediately on the first error, which is what
    the library entry points use; the CLI uses a permissive sink so it can
    report several problems per run.
    """

    source: SourceText | None = None
    strict: bool = False
    diagnostics: list[Diagnostic] = field(default_factory=list)

    def emit(self, diag: Diagnostic) -> None:
        self.diagnostics.append(diag)
        if self.strict and diag.severity is Severity.ERROR:
            raise CheckError(diag.message, diag.span)

    def error(self, message: str, span: Span = NO_SPAN, phase: str = "") -> None:
        self.emit(Diagnostic(Severity.ERROR, message, span, phase))

    def warning(self, message: str, span: Span = NO_SPAN, phase: str = "") -> None:
        self.emit(Diagnostic(Severity.WARNING, message, span, phase))

    @property
    def errors(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.ERROR]

    @property
    def warnings(self) -> list[Diagnostic]:
        return [d for d in self.diagnostics if d.severity is Severity.WARNING]

    def has_errors(self) -> bool:
        return bool(self.errors)

    def render(self) -> str:
        return "\n".join(d.render(self.source) for d in self.diagnostics)
