"""The Zeus layout language (paper section 6): slicing floorplans,
dihedral orientations, boundary pins and virtual-signal replacement."""

from .floorplan import LayoutEngine, Placed, compute_layout
from .geometry import IDENTITY, ORIENTATIONS, Rect, Transform, orientation

__all__ = [
    "IDENTITY",
    "LayoutEngine",
    "ORIENTATIONS",
    "Placed",
    "Rect",
    "Transform",
    "compute_layout",
    "orientation",
]
