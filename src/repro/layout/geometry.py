"""Geometry for the layout language: rectangles and the dihedral group.

The paper's layout semantics is purely *relative* ("x1 is left of x2"
means the bounding rectangles are disjoint along x), so the engine works
in abstract integer grid units: primitive cells are 1x1, composite cells
are the bounding boxes of their slicing arrangements.

Orientation changes (section 6.3) are the seven non-identity elements of
the dihedral group D4, acting counter-clockwise on the cell:

* ``rotate90``, ``rotate180``, ``rotate270`` -- rotations;
* ``flip0``   -- mirror about the horizontal axis (y -> -y);
* ``flip90``  -- mirror about the vertical axis (x -> -x);
* ``flip45``, ``flip135`` -- mirrors about the two diagonals.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class Rect:
    """An axis-aligned rectangle with integer origin and size."""

    x: int
    y: int
    w: int
    h: int

    @property
    def x2(self) -> int:
        return self.x + self.w

    @property
    def y2(self) -> int:
        return self.y + self.h

    @property
    def area(self) -> int:
        return self.w * self.h

    def translate(self, dx: int, dy: int) -> "Rect":
        return Rect(self.x + dx, self.y + dy, self.w, self.h)

    def overlaps(self, other: "Rect") -> bool:
        return (
            self.x < other.x2
            and other.x < self.x2
            and self.y < other.y2
            and other.y < self.y2
        )

    def union(self, other: "Rect") -> "Rect":
        x = min(self.x, other.x)
        y = min(self.y, other.y)
        return Rect(x, y, max(self.x2, other.x2) - x, max(self.y2, other.y2) - y)


@dataclass(frozen=True)
class Transform:
    """An element of D4 as an integer 2x2 matrix (column-major action:
    (x, y) -> (xx*x + xy*y, yx*x + yy*y))."""

    xx: int
    xy: int
    yx: int
    yy: int

    def apply(self, x: int, y: int) -> tuple[int, int]:
        return (self.xx * x + self.xy * y, self.yx * x + self.yy * y)

    def compose(self, other: "Transform") -> "Transform":
        """self after other."""
        return Transform(
            self.xx * other.xx + self.xy * other.yx,
            self.xx * other.xy + self.xy * other.yy,
            self.yx * other.xx + self.yy * other.yx,
            self.yx * other.xy + self.yy * other.yy,
        )

    @property
    def swaps_axes(self) -> bool:
        return self.xx == 0

    def size(self, w: int, h: int) -> tuple[int, int]:
        """Bounding size of a w x h cell after this transform."""
        return (h, w) if self.swaps_axes else (w, h)

    def apply_rect(self, rect: Rect, w: int, h: int) -> Rect:
        """Transform *rect* inside a w x h cell, renormalising so the
        cell's bounding box stays anchored at the origin."""
        corners = [
            self.apply(rect.x, rect.y),
            self.apply(rect.x2, rect.y2),
        ]
        xs = sorted(c[0] for c in corners)
        ys = sorted(c[1] for c in corners)
        # Shift so the transformed w x h cell sits at (0, 0).
        cell = [self.apply(0, 0), self.apply(w, h)]
        ox = min(c[0] for c in cell)
        oy = min(c[1] for c in cell)
        return Rect(xs[0] - ox, ys[0] - oy, xs[1] - xs[0], ys[1] - ys[0])


IDENTITY = Transform(1, 0, 0, 1)

#: The seven named orientation changes (counter-clockwise rotations;
#: flip<angle> mirrors about the axis at that angle).
ORIENTATIONS: dict[str, Transform] = {
    "rotate90": Transform(0, -1, 1, 0),
    "rotate180": Transform(-1, 0, 0, -1),
    "rotate270": Transform(0, 1, -1, 0),
    "flip0": Transform(1, 0, 0, -1),
    "flip90": Transform(-1, 0, 0, 1),
    "flip45": Transform(0, 1, 1, 0),
    "flip135": Transform(0, -1, -1, 0),
}


def orientation(name: str) -> Transform:
    try:
        return ORIENTATIONS[name]
    except KeyError:
        raise ValueError(f"unknown orientation change {name!r}") from None
