"""The layout interpreter (paper section 6): slicing floorplans.

Each component instance with layout statements gets a floorplan computed
bottom-up:

* an ``ORDER direction s1; ...; sn END`` arranges the sub-floorplans
  adjacently along the direction of separation (the four axis directions
  pack side by side; the four diagonal directions produce staircases --
  the paper's Snake figure);
* ``FOR`` / ``WHEN`` are the meta language, exactly as in the statement
  part;
* an orientation change applies a dihedral transform to the cell;
* a boundary statement (``TOP``/``RIGHT``/``BOTTOM``/``LEFT``) records
  which pins sit on which edge;
* a ``signal = type`` basic statement is a *replacement* -- already
  executed during elaboration, here it simply places the replaced cell.

Rules the paper leaves open, resolved here (documented in DESIGN.md):

* a layout statement list with several items and no ORDER stacks them
  top-to-bottom;
* forced sub-instances never mentioned in the layout are appended in a
  default top-to-bottom stack (so every generated cell is placed);
* instances that were never generated (lazy signals never referenced --
  the recursion terminator) are silently skipped;
* a component with no layout and no sub-instances is a 1x1 primitive
  cell, as is a REG.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.consteval import eval_condition, eval_int
from ..core.elaborate import Design
from ..core.sigtree import (
    ArrayTree,
    CompTree,
    LazyTree,
    SigTree,
    VirtualTree,
)
from ..core.symbols import Env, LoopVar, SignalBinding
from ..core.types import ComponentV
from ..lang import ast
from ..lang.errors import LayoutError
from .geometry import IDENTITY, Rect, Transform, orientation

_AXIS_DIRECTIONS = {
    "lefttoright": (1, 0),
    "righttoleft": (-1, 0),
    "toptobottom": (0, 1),
    "bottomtotop": (0, -1),
}

_DIAGONAL_DIRECTIONS = {
    "toplefttobottomright": (1, 1),
    "bottomrighttotopleft": (-1, -1),
    "toprighttobottomleft": (-1, 1),
    "bottomlefttotopright": (1, -1),
}


@dataclass
class Placed:
    """One placed cell: an instance (or group) with its rectangle in the
    parent's coordinate system."""

    name: str
    rect: Rect
    orientation: str | None = None
    children: list["Placed"] = field(default_factory=list)
    pins: dict[str, list[str]] = field(default_factory=dict)

    @property
    def area(self) -> int:
        return self.rect.area

    @property
    def width(self) -> int:
        return self.rect.w

    @property
    def height(self) -> int:
        return self.rect.h

    def iter_cells(self, ox: int = 0, oy: int = 0):
        """Yield (path, absolute Rect) for every leaf cell."""
        here = self.rect.translate(ox, oy)
        if not self.children:
            yield (self.name, here)
            return
        for child in self.children:
            yield from child.iter_cells(here.x, here.y)

    def leaf_count(self) -> int:
        return sum(1 for _ in self.iter_cells())

    def render_text(self) -> str:
        """A coarse ASCII rendering of the leaf cells on the unit grid."""
        cells = list(self.iter_cells())
        if not cells:
            return "(empty)"
        width = max(r.x2 for _, r in cells)
        height = max(r.y2 for _, r in cells)
        grid = [["." for _ in range(width)] for _ in range(height)]
        for idx, (name, r) in enumerate(cells):
            mark = name.rsplit(".", 1)[-1][:1] or "#"
            for y in range(r.y, min(r.y2, height)):
                for x in range(r.x, min(r.x2, width)):
                    grid[y][x] = mark
        return "\n".join("".join(row) for row in grid)

    def render_svg(self, scale: int = 24) -> str:
        """A simple SVG of the leaf cells (one rect per cell)."""
        cells = list(self.iter_cells())
        w = max((r.x2 for _, r in cells), default=1) * scale
        h = max((r.y2 for _, r in cells), default=1) * scale
        parts = [
            f'<svg xmlns="http://www.w3.org/2000/svg" width="{w}" height="{h}" '
            f'viewBox="0 0 {w} {h}">'
        ]
        for name, r in cells:
            parts.append(
                f'<rect x="{r.x * scale}" y="{r.y * scale}" '
                f'width="{r.w * scale}" height="{r.h * scale}" '
                f'fill="#e8e8f8" stroke="#334" stroke-width="1">'
                f"<title>{name}</title></rect>"
            )
        parts.append("</svg>")
        return "".join(parts)


class LayoutEngine:
    """Computes the slicing floorplan of a design bottom-up."""

    def __init__(self, design: Design):
        self.design = design
        self._cache: dict[int, Placed] = {}

    def floorplan(self, inst: CompTree | None = None) -> Placed:
        if inst is None:
            inst = self.design.top
        key = id(inst)
        if key not in self._cache:
            self._cache[key] = self._plan_instance(inst)
        return self._cache[key]

    # ------------------------------------------------------------------

    def _plan_instance(self, inst: CompTree) -> Placed:
        comp = inst.type
        assert isinstance(comp, ComponentV)
        decl = comp.decl_ast
        stmts: list[ast.LayoutStmt] = []
        if decl is not None:
            stmts = list(decl.header_layout) + list(decl.layout)
        env = inst.local_env
        placed_children: list[Placed] = []
        placed_ids: set[int] = set()
        pins: dict[str, list[str]] = {}
        if stmts and env is not None:
            group = self._plan_list(stmts, env, placed_ids, pins)
            placed_children.extend(group)
        # Default stack for forced sub-instances not mentioned in layout.
        stragglers = [
            sub
            for sub in self._sub_instances(inst, env)
            if id(sub) not in placed_ids
            and not _contains_placed(sub, placed_ids)
        ]
        for sub in stragglers:
            placed_children.append(self._place_sub(sub, None, placed_ids))
        if not placed_children:
            return Placed(inst.path, Rect(0, 0, 1, 1), pins=pins)
        arranged = _arrange(placed_children, "toptobottom" if not stmts else None)
        return Placed(inst.path, arranged.rect, children=arranged.children, pins=pins)

    def _sub_instances(self, inst: CompTree, env: Env | None) -> list[CompTree]:
        """Forced component instances declared locally in *inst* (including
        nested instance-typed pins), in declaration order."""
        out: list[CompTree] = []
        seen: set[int] = set()

        def walk(tree: SigTree) -> None:
            if isinstance(tree, LazyTree):
                if not tree.is_forced:
                    return
                walk(tree.force())
                return
            if isinstance(tree, VirtualTree):
                if tree.replaced is not None:
                    walk(tree.replaced)
                return
            if isinstance(tree, ArrayTree):
                for e in tree.elems:
                    walk(e)
                return
            if isinstance(tree, CompTree):
                if tree.is_instance and id(tree) not in seen:
                    seen.add(id(tree))
                    out.append(tree)
                elif not tree.is_instance:
                    for f in tree.fields.values():
                        walk(f)

        # Nested instance-typed pins of the instance itself.
        for f in inst.fields.values():
            walk(f)
        if env is not None:
            for binding in env.bindings.values():
                if isinstance(binding, SignalBinding):
                    walk(binding.tree)
        return out

    # ------------------------------------------------------------------

    def _plan_list(
        self,
        stmts: list[ast.LayoutStmt],
        env: Env,
        placed_ids: set[int],
        pins: dict[str, list[str]],
    ) -> list[Placed]:
        out: list[Placed] = []
        for s in stmts:
            out.extend(self._plan_stmt(s, env, placed_ids, pins))
        return out

    def _plan_stmt(
        self,
        s: ast.LayoutStmt,
        env: Env,
        placed_ids: set[int],
        pins: dict[str, list[str]],
    ) -> list[Placed]:
        if isinstance(s, ast.LayoutOrder):
            items = self._plan_list(s.body, env, placed_ids, pins)
            if not items:
                return []
            return [_arrange(items, s.direction)]
        if isinstance(s, ast.LayoutFor):
            lo = eval_int(s.lo, env)
            hi = eval_int(s.hi, env)
            values = range(lo, hi - 1, -1) if s.downto else range(lo, hi + 1)
            out: list[Placed] = []
            for v in values:
                child = env.child()
                child.bind(s.var, LoopVar(v), s.span)
                out.extend(self._plan_list(s.body, child, placed_ids, pins))
            return out
        if isinstance(s, ast.LayoutWhen):
            for cond, body in s.arms:
                if eval_condition(cond, env):
                    return self._plan_list(body, env, placed_ids, pins)
            return self._plan_list(s.otherwise, env, placed_ids, pins)
        if isinstance(s, ast.LayoutBoundary):
            names = []
            for sub in s.body:
                if isinstance(sub, ast.LayoutBasic):
                    names.append(_designator_text(sub.signal))
            pins.setdefault(s.side, []).extend(names)
            return []
        if isinstance(s, ast.LayoutWith):
            tree = self._resolve(s.signal, env)
            if tree is None:
                return []
            if isinstance(tree, LazyTree):
                tree = tree.force()
            if not isinstance(tree, CompTree):
                raise LayoutError("WITH requires a component signal", s.span)
            child = env.child()
            for p in tree.type.params:
                child.bind(p.name, SignalBinding(tree.fields[p.name]), s.span)
            return self._plan_list(s.body, child, placed_ids, pins)
        if isinstance(s, ast.LayoutBasic):
            tree = self._resolve(s.signal, env)
            if tree is None:
                return []  # never-generated hardware: skip
            cells = self._collect_instances(tree)
            return [
                self._place_sub(c, s.orientation, placed_ids) for c in cells
            ]
        raise LayoutError("unknown layout statement", s.span)

    def _place_sub(
        self, sub: CompTree, orient: str | None, placed_ids: set[int]
    ) -> Placed:
        placed_ids.add(id(sub))
        inner = self.floorplan(sub)
        if orient is None:
            return Placed(sub.path, Rect(0, 0, inner.width, inner.height),
                          children=inner.children or [], pins=inner.pins)
        t = orientation(orient)
        w, h = t.size(inner.width, inner.height)
        return Placed(
            sub.path,
            Rect(0, 0, w, h),
            orientation=orient,
            children=_transform_children(inner, t),
            pins=inner.pins,
        )

    def _collect_instances(self, tree: SigTree) -> list[CompTree]:
        if isinstance(tree, LazyTree):
            if not tree.is_forced:
                return []
            return self._collect_instances(tree.force())
        if isinstance(tree, VirtualTree):
            if tree.replaced is None:
                return []
            return self._collect_instances(tree.replaced)
        if isinstance(tree, ArrayTree):
            out: list[CompTree] = []
            for e in tree.elems:
                out.extend(self._collect_instances(e))
            return out
        if isinstance(tree, CompTree) and tree.is_instance:
            return [tree]
        return []

    def _resolve(self, expr: ast.Expr, env: Env) -> SigTree | None:
        """Resolve a layout designator without forcing lazy instances."""
        if isinstance(expr, ast.Name):
            binding = env._lookup(expr.ident)
            if binding is None or not isinstance(binding, SignalBinding):
                return None
            return binding.tree
        if isinstance(expr, ast.Index):
            base = self._resolve(expr.base, env)
            if base is None:
                return None
            if isinstance(base, LazyTree):
                if not base.is_forced:
                    return None
                base = base.force()
            return base.index(eval_int(expr.index, env), expr.span)
        if isinstance(expr, ast.IndexRange):
            base = self._resolve(expr.base, env)
            if base is None:
                return None
            return base.slice(
                eval_int(expr.lo, env), eval_int(expr.hi, env), expr.span
            )
        if isinstance(expr, ast.Field):
            base = self._resolve(expr.base, env)
            if base is None:
                return None
            if isinstance(base, LazyTree):
                if not base.is_forced:
                    return None
                base = base.force()
            return base.field(expr.name, expr.span)
        raise LayoutError("unsupported layout designator", expr.span)


def _contains_placed(inst: CompTree, placed_ids: set[int]) -> bool:
    """True when a nested sub-instance of *inst* (e.g. the comparator pin
    of a pattern-matcher cell) was already placed by a layout statement --
    then *inst* itself must not be re-stacked as a straggler."""
    for sub in inst.fields.values():
        if isinstance(sub, LazyTree):
            if not sub.is_forced:
                continue
            sub = sub.force()
        if isinstance(sub, CompTree):
            if id(sub) in placed_ids or _contains_placed(sub, placed_ids):
                return True
    return False


def _transform_children(inner: Placed, t: Transform) -> list[Placed]:
    out: list[Placed] = []
    for child in inner.children:
        rect = t.apply_rect(child.rect, inner.width, inner.height)
        out.append(
            Placed(child.name, rect, child.orientation, child.children, child.pins)
        )
    return out


def _arrange(items: list[Placed], direction: str | None) -> Placed:
    """Pack *items* along a direction of separation; None overlays a
    single item or stacks several top-to-bottom."""
    if direction is None:
        if len(items) == 1:
            return items[0]
        direction = "toptobottom"
    if direction in _AXIS_DIRECTIONS:
        dx, dy = _AXIS_DIRECTIONS[direction]
        seq = items if (dx, dy) in ((1, 0), (0, 1)) else list(reversed(items))
        placed: list[Placed] = []
        offset = 0
        for item in seq:
            if dy == 0:
                rect = Rect(offset, 0, item.width, item.height)
                offset += item.width
            else:
                rect = Rect(0, offset, item.width, item.height)
                offset += item.height
            placed.append(
                Placed(item.name, rect, item.orientation, item.children, item.pins)
            )
        w = max(p.rect.x2 for p in placed)
        h = max(p.rect.y2 for p in placed)
        return Placed("", Rect(0, 0, w, h), children=placed)
    if direction in _DIAGONAL_DIRECTIONS:
        dx, dy = _DIAGONAL_DIRECTIONS[direction]
        seq = items if dx > 0 else list(reversed(items))
        placed = []
        ox = oy = 0
        for item in seq:
            rect = Rect(ox, oy if dy > 0 else -oy - item.height, item.width, item.height)
            ox += item.width
            oy += item.height
            placed.append(
                Placed(item.name, rect, item.orientation, item.children, item.pins)
            )
        minx = min(p.rect.x for p in placed)
        miny = min(p.rect.y for p in placed)
        placed = [
            Placed(p.name, p.rect.translate(-minx, -miny), p.orientation,
                   p.children, p.pins)
            for p in placed
        ]
        w = max(p.rect.x2 for p in placed)
        h = max(p.rect.y2 for p in placed)
        return Placed("", Rect(0, 0, w, h), children=placed)
    raise LayoutError(f"unknown direction of separation {direction!r}")


def _designator_text(expr: ast.Expr) -> str:
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Field):
        return f"{_designator_text(expr.base)}.{expr.name}"
    if isinstance(expr, ast.Index):
        return f"{_designator_text(expr.base)}[...]"
    return "<pin>"


def compute_layout(design: Design) -> Placed:
    """Floorplan of the design's top instance."""
    return LayoutEngine(design).floorplan()
