"""repro -- a complete reproduction of *Zeus: A Hardware Description
Language for VLSI* (Lieberherr & Knudsen, ETH Zürich report 51, 1983).

Quickstart::

    import repro

    circuit = repro.compile_text('''
        TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
        BEGIN
            s := XOR(a,b);
            cout := AND(a,b)
        END;
        SIGNAL h: halfadder;
    ''')
    sim = circuit.simulator()
    sim.poke("a", 1)
    sim.poke("b", 1)
    sim.step()
    assert sim.peek_bit("s") == repro.ZERO
    assert sim.peek_bit("cout") == repro.ONE
"""

from __future__ import annotations

from dataclasses import dataclass

from .core import (
    NOINFL,
    ONE,
    UNDEF,
    ZERO,
    Design,
    Logic,
    Netlist,
    Simulator,
    check,
    elaborate,
)
from .lang import (
    CheckError,
    DiagnosticSink,
    ElaborationError,
    LayoutError,
    LexError,
    ParseError,
    SimulationError,
    SourceText,
    TypeError_,
    ZeusError,
    parse,
)

__version__ = "1.0.0"


@dataclass
class Circuit:
    """A compiled Zeus design: elaborated, checked, ready to simulate."""

    design: Design
    diagnostics: DiagnosticSink

    @property
    def name(self) -> str:
        return self.design.name

    @property
    def netlist(self) -> Netlist:
        return self.design.netlist

    def simulator(self, **kwargs) -> Simulator:
        """A fresh :class:`~repro.core.simulator.Simulator` over this
        design.  Keyword arguments: ``strict``, ``seed``, ``metrics``
        (activity counters on ``sim.metrics``), ``record_firing``
        (metrics plus the ordered firing-event log)."""
        return Simulator(self.design, **kwargs)

    def stats(self) -> dict[str, int]:
        return self.netlist.stats()

    def layout(self):
        """Compute the floorplan of the top component (section 6)."""
        from .layout import compute_layout

        return compute_layout(self.design)


def compile_text(
    text: str,
    top: str | None = None,
    *,
    name: str = "<string>",
    strict: bool = True,
    registry=None,
) -> Circuit:
    """Parse, elaborate and statically check a Zeus program text.

    *top* names the top-level signal declaration to instantiate (default:
    the last component-typed one).  With ``strict=False``, check errors
    are collected in ``Circuit.diagnostics`` instead of raised.

    *registry* (a :class:`~repro.obs.SpanRegistry`) collects this
    compile's phase spans privately instead of on the process-wide
    default — library embedders running concurrent compiles should each
    pass their own.
    """
    from .obs.spans import span

    with span("compile", source=name, registry=registry):
        source = SourceText(text, name)
        program = parse(source)
        design = elaborate(program, top=top, source=source)
        design.netlist.name = design.name
        sink = check(design, strict=strict)
        for diag in design.sink.diagnostics:
            sink.diagnostics.insert(0, diag)
    return Circuit(design, sink)


def make_testbench(circuit: "Circuit | str", **kwargs) -> "object":
    """Create a :class:`repro.testbench.Testbench` for a circuit (or a
    program text, which is compiled first).

    Named ``make_testbench`` because ``repro.testbench`` is the module.
    """
    from .testbench import Testbench

    if isinstance(circuit, str):
        circuit = compile_text(circuit)
    return Testbench(circuit, **kwargs)


def compile_file(path: str, top: str | None = None, **kwargs) -> Circuit:
    """Compile a ``.zeus`` source file (see :func:`compile_text`)."""
    with open(path, "r", encoding="utf-8") as f:
        text = f.read()
    return compile_text(text, top, name=path, **kwargs)


__all__ = [
    "Circuit",
    "CheckError",
    "Design",
    "DiagnosticSink",
    "ElaborationError",
    "LayoutError",
    "LexError",
    "Logic",
    "NOINFL",
    "ONE",
    "ParseError",
    "SimulationError",
    "Simulator",
    "SourceText",
    "TypeError_",
    "UNDEF",
    "ZERO",
    "ZeusError",
    "compile_file",
    "compile_text",
    "make_testbench",
    "elaborate",
    "parse",
    "__version__",
]
