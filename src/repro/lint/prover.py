"""The compile-time multiplex driver-exclusivity prover.

The paper's strongest guarantee (sections 5, 8) is enforced at runtime:
a net may receive at most one (0, 1, UNDEF) assignment per cycle, or the
transistors burn.  This module proves, per pair of conditional drivers,
whether that can ever happen -- for *all* inputs, before a single cycle
is simulated.

For each net with >= 2 deduplicated drivers, every driver pair is
classified as one of

* ``exclusive``   -- the two enable conditions can never both be 1
  (PROVED-EXCLUSIVE: the runtime check can never fire for this pair);
* ``conflicting`` -- a concrete witness assignment of primary inputs
  makes both enables 1 while both sources drive a (0,1,UNDEF) value
  (PROVED-CONFLICTING: the runtime check *will* fire on that input);
* ``unknown``     -- neither could be established within budget; the
  runtime check stays as the oracle.

The proof engine layers three techniques over the guard cones:

1. **constant folding** through the gate cone (a guard that folds to 0
   or UNDEF can never arm its driver);
2. **mutual-exclusion patterns**: complementary literals (``c`` vs
   ``NOT c`` among the AND-factors of the two guards) and one-hot decode
   (two ``EQUAL(sel, k)`` factors over the same selector with different
   constants -- the shape the elaborator emits for ``x[NUM(a)]``);
3. a **bounded case split** (mini-DPLL): enumerate assignments of the
   union support with short-circuit evaluation and pruning, up to a
   node budget, yielding either UNSAT (exclusive) or a witness.

Soundness notes.  Evaluation is Kleene-monotone: a guard that evaluates
to 1 under a partial two-valued assignment evaluates to 1 under every
runtime refinement (UNDEF inputs can never *create* a 1), so UNSAT over
{0,1} assignments really does imply runtime exclusivity.  Conversely a
witness is only reported as a proved conflict when every assigned
variable is a controllable primary input and both sources provably
drive; anything weaker degrades to ``unknown``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.values import Logic
from .context import DriverInfo, LintContext
from .model import LintConfig

# Expression nodes (hash-consed informally by the builder's memo):
#   ("const", 0 | 1 | "U")
#   ("var", key)            key = ("net", ci) | ("rand", gate_id)
#   ("gate", op, args)      op in AND OR NAND NOR XOR NOT EQUAL

_TRUE = ("const", 1)
_FALSE = ("const", 0)
_UNDEF = ("const", "U")

_LOGIC_TO_VAL = {Logic.ZERO: 0, Logic.ONE: 1, Logic.UNDEF: "U"}


class ConeBuilder:
    """Builds boolean expressions for net classes by tracing the gate
    cone back to *support variables*: primary inputs, register outputs,
    RANDOM sources, and nets the builder cannot model precisely
    (multi-driven, cyclic, or oversized cones)."""

    def __init__(self, ctx: LintContext, max_nodes: int = 5000):
        self.ctx = ctx
        self.max_nodes = max_nodes
        self.nodes = 0
        self._memo: dict[int, tuple] = {}
        self._building: set[int] = set()
        #: var key -> kind: input | reg | random | opaque | cyclic | undriven
        self.var_kinds: dict[tuple, str] = {}
        self._support_memo: dict[int, tuple] = {}

    # -- construction --------------------------------------------------------

    def expr(self, ci: int) -> tuple:
        cached = self._memo.get(ci)
        if cached is not None:
            return cached
        if ci in self._building:
            return self._var(("net", ci), "cyclic")
        self._building.add(ci)
        try:
            e = self._build(ci)
        finally:
            self._building.discard(ci)
        self._memo[ci] = e
        return e

    def _var(self, key: tuple, kind: str) -> tuple:
        self.var_kinds.setdefault(key, kind)
        return ("var", key)

    def _build(self, ci: int) -> tuple:
        ctx = self.ctx
        if ctx.is_input[ci]:
            return self._var(("net", ci), "input")
        if ci in ctx.reg_q_of:
            return self._var(("net", ci), "reg")
        gates = ctx.gates_of.get(ci, [])
        drivers = ctx.drivers_of[ci]
        if len(gates) == 1 and not drivers:
            return self._gate_expr(gates[0])
        if not gates and len(drivers) == 1 and drivers[0].uncond:
            drv = drivers[0]
            if drv.const is not None:
                val = _LOGIC_TO_VAL.get(drv.const)
                # A NOINFL constant reads as UNDEF through the implicit
                # amplifier (section 3.2), and UNDEF can never become 1.
                return ("const", val if val is not None else "U")
            return self.expr(drv.src)
        if not gates and not drivers:
            return self._var(("net", ci), "undriven")
        return self._var(("net", ci), "opaque")

    def _gate_expr(self, gate) -> tuple:
        if gate.op == "RANDOM":
            return self._var(("rand", gate.id), "random")
        self.nodes += 1
        if self.nodes > self.max_nodes:
            return self._var(("net", self.ctx.idx(gate.output)), "opaque")
        args = tuple(self.expr(self.ctx.idx(i)) for i in gate.inputs)
        return ("gate", gate.op, args)

    # -- support -------------------------------------------------------------

    def support(self, expr: tuple) -> tuple:
        """All var keys reachable from *expr*, in deterministic order."""
        cached = self._support_memo.get(id(expr))
        if cached is not None:
            return cached
        out: list[tuple] = []
        seen_vars: set[tuple] = set()
        seen_nodes: set[int] = set()
        stack = [expr]
        while stack:
            e = stack.pop()
            if id(e) in seen_nodes:
                continue
            seen_nodes.add(id(e))
            tag = e[0]
            if tag == "var":
                if e[1] not in seen_vars:
                    seen_vars.add(e[1])
                    out.append(e[1])
            elif tag == "gate":
                stack.extend(e[2])
        out.sort()
        result = tuple(out)
        self._support_memo[id(expr)] = result
        return result


def eval_expr(expr: tuple, asn: dict, memo: dict | None = None):
    """Evaluate under a partial two-valued assignment.

    Returns 0, 1, ``"U"`` (undefined at runtime), or None (still depends
    on unassigned variables).  Short-circuits exactly like the section-8
    firing rules, which is what makes the case split prune well."""
    if memo is None:
        memo = {}
    return _eval(expr, asn, memo)


def _eval(e: tuple, asn: dict, memo: dict):
    tag = e[0]
    if tag == "const":
        return e[1]
    if tag == "var":
        return asn.get(e[1])
    key = id(e)
    if key in memo:
        return memo[key]
    op = e[1]
    args = e[2]
    vals = [_eval(a, asn, memo) for a in args]
    out = _apply(op, vals)
    memo[key] = out
    return out


def _apply(op: str, vals: list):
    if op == "NOT":
        v = vals[0]
        if v == 0:
            return 1
        if v == 1:
            return 0
        return v  # "U" or None
    if op in ("AND", "NAND"):
        if any(v == 0 for v in vals):
            out = 0
        elif any(v is None for v in vals):
            out = None
        elif any(v == "U" for v in vals):
            out = "U"
        else:
            out = 1
        return out if op == "AND" else _negate(out)
    if op in ("OR", "NOR"):
        if any(v == 1 for v in vals):
            out = 1
        elif any(v is None for v in vals):
            out = None
        elif any(v == "U" for v in vals):
            out = "U"
        else:
            out = 0
        return out if op == "OR" else _negate(out)
    if op == "XOR":
        if any(v is None for v in vals):
            return None
        if any(v == "U" for v in vals):
            return "U"
        return sum(vals) % 2
    if op == "EQUAL":
        half = len(vals) // 2
        unknown = undef = False
        for x, y in zip(vals[:half], vals[half:]):
            if x in (0, 1) and y in (0, 1):
                if x != y:
                    return 0  # settled, whatever the rest holds
            elif x is None or y is None:
                unknown = True
            else:
                undef = True
        if unknown:
            return None
        return "U" if undef else 1
    raise ValueError(f"prover cannot model gate op {op!r}")


def _negate(v):
    if v == 0:
        return 1
    if v == 1:
        return 0
    return v


def and_factors(e: tuple) -> list[tuple]:
    """Flatten an AND-tree into its conjunction factors."""
    if e[0] == "gate" and e[1] == "AND":
        out: list[tuple] = []
        for a in e[2]:
            out.extend(and_factors(a))
        return out
    return [e]


def _literal(e: tuple):
    """(key, polarity) for ``v`` / ``NOT v`` factors, else None."""
    if e[0] == "var":
        return (e[1], True)
    if e[0] == "gate" and e[1] == "NOT" and e[2][0][0] == "var":
        return (e[2][0][1], False)
    return None


def _equal_const_map(e: tuple) -> dict | None:
    """For an EQUAL factor, map each non-constant operand expression to
    the constant it is compared against (positions where exactly one
    side is a 0/1 constant)."""
    if e[0] != "gate" or e[1] != "EQUAL":
        return None
    args = e[2]
    half = len(args) // 2
    out: dict = {}
    for x, y in zip(args[:half], args[half:]):
        for a, b in ((x, y), (y, x)):
            if b[0] == "const" and b[1] in (0, 1) and a[0] != "const":
                out[a] = b[1]
    return out


@dataclass
class PairVerdict:
    """Classification of one driver pair of one net."""

    a: int  # driver indices into the net's driver list
    b: int
    verdict: str  # "exclusive" | "conflicting" | "unknown"
    reason: str
    witness: dict[str, int] | None = None

    def to_dict(self) -> dict:
        d = {"a": self.a, "b": self.b, "verdict": self.verdict,
             "reason": self.reason}
        if self.witness is not None:
            d["witness"] = dict(self.witness)
        return d


@dataclass
class NetResult:
    """Prover outcome for one multi-driver net."""

    ci: int
    net: str
    drivers: int
    verdict: str  # "exclusive" | "conflicting" | "unknown"
    pairs: list[PairVerdict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "net": self.net,
            "drivers": self.drivers,
            "verdict": self.verdict,
            "pairs": [p.to_dict() for p in self.pairs],
        }


@dataclass
class ProverResult:
    nets: list[NetResult] = field(default_factory=list)

    @property
    def proved_exclusive(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "exclusive")

    @property
    def proved_conflicting(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "conflicting")

    @property
    def unknown(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "unknown")

    def to_dict(self) -> dict:
        return {
            "nets_analyzed": len(self.nets),
            "proved_exclusive": self.proved_exclusive,
            "proved_conflicting": self.proved_conflicting,
            "unknown": self.unknown,
            "nets": [n.to_dict() for n in self.nets],
        }


class _BudgetExceeded(Exception):
    pass


class Prover:
    """Runs the driver-exclusivity proof over one design."""

    def __init__(self, ctx: LintContext, config: LintConfig | None = None):
        self.ctx = ctx
        self.config = config or LintConfig()
        self.builder = ConeBuilder(ctx)
        self._drives_memo: dict[int, bool] = {}

    # -- guard expressions ---------------------------------------------------

    def guard_expr(self, drv: DriverInfo) -> tuple:
        if drv.cond is None:
            return _TRUE
        return self.builder.expr(drv.cond)

    def fold_guard(self, drv: DriverInfo):
        """Constant-fold a driver's guard: 0/1/"U" or None (not const)."""
        return eval_expr(self.guard_expr(drv), {})

    def guard_can_fire(self, drv: DriverInfo) -> bool | None:
        """Can the guard ever evaluate to 1?  False is a proof (by
        Kleene monotonicity it covers UNDEF inputs too, so e.g.
        ``AND(a, NOT a)`` is provably dead); None means the case split
        was out of budget."""
        g = self.guard_expr(drv)
        folded = eval_expr(g, {})
        if folded is not None:
            return folded == 1
        support = list(self.builder.support(g))
        if len(support) > self.config.prover_max_support:
            return None
        try:
            return self._cosat(g, _TRUE, support) is not None
        except _BudgetExceeded:
            return None

    # -- definitely-driving sources -----------------------------------------

    def source_drives(self, drv: DriverInfo) -> bool:
        """True when the driver's source provably contributes a
        (0,1,UNDEF) value whenever the guard is 1 (a NOINFL source never
        trips the runtime check, so it cannot be a proved conflict)."""
        if drv.const is not None:
            return drv.const is not Logic.NOINFL
        return self._net_drives(drv.src, set())

    def _net_drives(self, ci: int, visiting: set[int]) -> bool:
        memo = self._drives_memo
        if ci in memo:
            return memo[ci]
        if ci in visiting:
            return False
        visiting.add(ci)
        ctx = self.ctx
        out = False
        if ctx.is_input[ci] or ci in ctx.reg_q_of or ci in ctx.gates_of:
            # Inputs fire UNDEF when unpoked, registers fire their state,
            # gates fire 0/1/UNDEF: all are driving values.
            out = True
        else:
            for d in ctx.drivers_of[ci]:
                if not d.uncond:
                    continue
                if d.const is not None:
                    if d.const is not Logic.NOINFL:
                        out = True
                        break
                elif self._net_drives(d.src, visiting):
                    out = True
                    break
        visiting.discard(ci)
        memo[ci] = out
        return out

    # -- pair classification -------------------------------------------------

    def classify_pair(self, da: DriverInfo, db: DriverInfo) -> PairVerdict:
        ga, gb = self.guard_expr(da), self.guard_expr(db)

        # 1. constant folding.
        fa, fb = eval_expr(ga, {}), eval_expr(gb, {})
        for f in (fa, fb):
            if f == 0:
                return PairVerdict(da.index, db.index, "exclusive",
                                   "a guard is constant 0 (dead driver)")
            if f == "U":
                return PairVerdict(
                    da.index, db.index, "exclusive",
                    "a guard is constant UNDEF (may-drive only poisons; "
                    "the runtime multi-driver check never counts it)")

        # 2a. complementary literals across the AND-factors.
        factors_a, factors_b = and_factors(ga), and_factors(gb)
        lits_a = {lit for f in factors_a if (lit := _literal(f))}
        lits_b = {lit for f in factors_b if (lit := _literal(f))}
        for key, pol in lits_a:
            if (key, not pol) in lits_b:
                name = self._var_name(key)
                return PairVerdict(
                    da.index, db.index, "exclusive",
                    f"complementary literals on {name!r}")
        # ... and structural complements of whole factors (c vs NOT c).
        set_a = set(factors_a)
        for f in factors_b:
            complementary = (
                (f[0] == "gate" and f[1] == "NOT" and f[2][0] in set_a)
                or ("gate", "NOT", (f,)) in set_a
            )
            if complementary:
                return PairVerdict(da.index, db.index, "exclusive",
                                   "complementary guard factors")

        # 2b. one-hot decode: EQUAL over the same selector, different
        # constants (the x[NUM(sel)] shape).
        eq_maps_a = [m for f in factors_a if (m := _equal_const_map(f))]
        eq_maps_b = [m for f in factors_b if (m := _equal_const_map(f))]
        for ma in eq_maps_a:
            for mb in eq_maps_b:
                for expr_key, ca in ma.items():
                    cb = mb.get(expr_key)
                    if cb is not None and cb != ca:
                        return PairVerdict(
                            da.index, db.index, "exclusive",
                            "one-hot decode: EQUAL on the same selector "
                            "with different constants")

        # 3. bounded case split over the union support.
        support = sorted(set(self.builder.support(ga))
                         | set(self.builder.support(gb)))
        if len(support) > self.config.prover_max_support:
            return PairVerdict(
                da.index, db.index, "unknown",
                f"guard support has {len(support)} variables "
                f"(> {self.config.prover_max_support}); runtime check "
                "remains the oracle")
        try:
            witness = self._cosat(ga, gb, support)
        except _BudgetExceeded:
            return PairVerdict(
                da.index, db.index, "unknown",
                f"case-split budget of {self.config.prover_budget} "
                "exhausted; runtime check remains the oracle")
        if witness is None:
            return PairVerdict(
                da.index, db.index, "exclusive",
                f"case split over {len(support)} variable(s) found no "
                "co-enabling assignment")
        named = {self._var_name(k): v for k, v in witness.items()}
        uncontrolled = [self._var_name(k) for k, v in witness.items()
                        if self.builder.var_kinds.get(k) != "input"]
        if uncontrolled:
            return PairVerdict(
                da.index, db.index, "unknown",
                "guards are co-satisfiable but the witness needs "
                f"non-input state ({', '.join(sorted(uncontrolled))}); "
                "runtime check remains the oracle", named)
        if not (self.source_drives(da) and self.source_drives(db)):
            return PairVerdict(
                da.index, db.index, "unknown",
                "guards can both be 1 but a source may float (NOINFL); "
                "runtime check remains the oracle", named)
        return PairVerdict(
            da.index, db.index, "conflicting",
            "both drivers enabled under the witness assignment", named)

    def _cosat(self, ga: tuple, gb: tuple, support: list) -> dict | None:
        """DPLL-style search for an assignment with ga = gb = 1."""
        budget = self.config.prover_budget
        asn: dict = {}
        nodes = 0

        def rec() -> dict | None:
            nonlocal nodes
            nodes += 1
            if nodes > budget:
                raise _BudgetExceeded
            va = eval_expr(ga, asn)
            if va in (0, "U"):
                return None
            vb = eval_expr(gb, asn)
            if vb in (0, "U"):
                return None
            if va == 1 and vb == 1:
                return dict(asn)
            var = next(v for v in support if v not in asn)
            for val in (1, 0):
                asn[var] = val
                hit = rec()
                if hit is not None:
                    return hit
                del asn[var]
            return None

        return rec()

    def _var_name(self, key: tuple) -> str:
        if key[0] == "net":
            return self.ctx.display[key[1]]
        return f"$random{key[1]}"

    # -- whole-net / whole-design -------------------------------------------

    def classify_net(self, ci: int) -> NetResult:
        drivers = self.ctx.drivers_of[ci]
        pairs: list[PairVerdict] = []
        budget_pairs = self.config.prover_max_pairs
        examined = 0
        for i in range(len(drivers)):
            for j in range(i + 1, len(drivers)):
                if examined >= budget_pairs:
                    pairs.append(PairVerdict(
                        i, j, "unknown",
                        f"pair budget of {budget_pairs} exhausted"))
                    continue
                examined += 1
                pairs.append(self.classify_pair(drivers[i], drivers[j]))
        if any(p.verdict == "conflicting" for p in pairs):
            verdict = "conflicting"
        elif any(p.verdict == "unknown" for p in pairs):
            verdict = "unknown"
        else:
            verdict = "exclusive"
        return NetResult(ci, self.ctx.display[ci], len(drivers),
                         verdict, pairs)

    def run(self) -> ProverResult:
        result = ProverResult()
        for ci in self.ctx.multi_driver_classes():
            result.nets.append(self.classify_net(ci))
        return result
