"""The compile-time multiplex driver-exclusivity prover.

The paper's strongest guarantee (sections 5, 8) is enforced at runtime:
a net may receive at most one (0, 1, UNDEF) assignment per cycle, or the
transistors burn.  This module proves, per pair of conditional drivers,
whether that can ever happen -- for *all* inputs, before a single cycle
is simulated.

For each net with >= 2 deduplicated drivers, every driver pair is
classified as one of

* ``exclusive``   -- the two enable conditions can never both be 1
  (PROVED-EXCLUSIVE: the runtime check can never fire for this pair);
* ``conflicting`` -- a concrete witness assignment of primary inputs
  makes both enables 1 while both sources drive a (0,1,UNDEF) value
  (PROVED-CONFLICTING: the runtime check *will* fire on that input);
* ``unknown``     -- neither could be established within budget; the
  runtime check stays as the oracle.

The proof engine layers three techniques over the guard cones:

1. **constant folding** through the gate cone (a guard that folds to 0
   or UNDEF can never arm its driver);
2. **mutual-exclusion patterns**: complementary literals (``c`` vs
   ``NOT c`` among the AND-factors of the two guards) and one-hot decode
   (two ``EQUAL(sel, k)`` factors over the same selector with different
   constants -- the shape the elaborator emits for ``x[NUM(a)]``);
3. a **bounded case split** (mini-DPLL): enumerate assignments of the
   union support with short-circuit evaluation and pruning, up to a
   node budget, yielding either UNSAT (exclusive) or a witness.

The cone extraction, four-valued evaluation and DPLL live in the shared
solver core (:mod:`repro.formal.solver`) -- the same engine the bounded
model checker and the equivalence checker run on, and the same gate
table the simulator evaluates, so the three can never disagree on a
single gate.  See that module's docstring for the soundness argument
(Kleene monotonicity: UNSAT over {0,1} assignments really does imply
runtime exclusivity).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.values import Logic
from ..formal.solver import (
    BudgetExceeded as _BudgetExceeded,
    ConeBuilder,
    and_factors,
    cosat,
    equal_const_map as _equal_const_map,
    eval_expr,
    literal_of as _literal,
)
from .context import DriverInfo, LintContext
from .model import LintConfig

_TRUE = ("const", 1)

__all__ = [
    "ConeBuilder",
    "NetResult",
    "PairVerdict",
    "Prover",
    "ProverResult",
    "and_factors",
    "eval_expr",
]


@dataclass
class PairVerdict:
    """Classification of one driver pair of one net."""

    a: int  # driver indices into the net's driver list
    b: int
    verdict: str  # "exclusive" | "conflicting" | "unknown"
    reason: str
    witness: dict[str, int] | None = None

    def to_dict(self) -> dict:
        d = {"a": self.a, "b": self.b, "verdict": self.verdict,
             "reason": self.reason}
        if self.witness is not None:
            d["witness"] = dict(self.witness)
        return d


@dataclass
class NetResult:
    """Prover outcome for one multi-driver net."""

    ci: int
    net: str
    drivers: int
    verdict: str  # "exclusive" | "conflicting" | "unknown"
    pairs: list[PairVerdict] = field(default_factory=list)

    def to_dict(self) -> dict:
        return {
            "net": self.net,
            "drivers": self.drivers,
            "verdict": self.verdict,
            "pairs": [p.to_dict() for p in self.pairs],
        }


@dataclass
class ProverResult:
    nets: list[NetResult] = field(default_factory=list)

    @property
    def proved_exclusive(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "exclusive")

    @property
    def proved_conflicting(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "conflicting")

    @property
    def unknown(self) -> int:
        return sum(1 for n in self.nets if n.verdict == "unknown")

    def to_dict(self) -> dict:
        return {
            "nets_analyzed": len(self.nets),
            "proved_exclusive": self.proved_exclusive,
            "proved_conflicting": self.proved_conflicting,
            "unknown": self.unknown,
            "nets": [n.to_dict() for n in self.nets],
        }


class Prover:
    """Runs the driver-exclusivity proof over one design."""

    def __init__(self, ctx: LintContext, config: LintConfig | None = None):
        self.ctx = ctx
        self.config = config or LintConfig()
        self.builder = ConeBuilder(ctx)
        self._drives_memo: dict[int, bool] = {}

    # -- guard expressions ---------------------------------------------------

    def guard_expr(self, drv: DriverInfo) -> tuple:
        if drv.cond is None:
            return _TRUE
        return self.builder.expr(drv.cond)

    def fold_guard(self, drv: DriverInfo):
        """Constant-fold a driver's guard: 0/1/"U" or None (not const)."""
        return eval_expr(self.guard_expr(drv), {})

    def guard_can_fire(self, drv: DriverInfo) -> bool | None:
        """Can the guard ever evaluate to 1?  False is a proof (by
        Kleene monotonicity it covers UNDEF inputs too, so e.g.
        ``AND(a, NOT a)`` is provably dead); None means the case split
        was out of budget."""
        g = self.guard_expr(drv)
        folded = eval_expr(g, {})
        if folded is not None:
            return folded == 1
        support = list(self.builder.support(g))
        if len(support) > self.config.prover_max_support:
            return None
        try:
            return self._cosat(g, _TRUE, support) is not None
        except _BudgetExceeded:
            return None

    # -- definitely-driving sources -----------------------------------------

    def source_drives(self, drv: DriverInfo) -> bool:
        """True when the driver's source provably contributes a
        (0,1,UNDEF) value whenever the guard is 1 (a NOINFL source never
        trips the runtime check, so it cannot be a proved conflict)."""
        if drv.const is not None:
            return drv.const is not Logic.NOINFL
        return self._net_drives(drv.src, set())

    def _net_drives(self, ci: int, visiting: set[int]) -> bool:
        memo = self._drives_memo
        if ci in memo:
            return memo[ci]
        if ci in visiting:
            return False
        visiting.add(ci)
        ctx = self.ctx
        out = False
        if ctx.is_input[ci] or ci in ctx.reg_q_of or ci in ctx.gates_of:
            # Inputs fire UNDEF when unpoked, registers fire their state,
            # gates fire 0/1/UNDEF: all are driving values.
            out = True
        else:
            for d in ctx.drivers_of[ci]:
                if not d.uncond:
                    continue
                if d.const is not None:
                    if d.const is not Logic.NOINFL:
                        out = True
                        break
                elif self._net_drives(d.src, visiting):
                    out = True
                    break
        visiting.discard(ci)
        memo[ci] = out
        return out

    # -- pair classification -------------------------------------------------

    def classify_pair(self, da: DriverInfo, db: DriverInfo) -> PairVerdict:
        ga, gb = self.guard_expr(da), self.guard_expr(db)

        # 1. constant folding.
        fa, fb = eval_expr(ga, {}), eval_expr(gb, {})
        for f in (fa, fb):
            if f == 0:
                return PairVerdict(da.index, db.index, "exclusive",
                                   "a guard is constant 0 (dead driver)")
            if f == "U":
                return PairVerdict(
                    da.index, db.index, "exclusive",
                    "a guard is constant UNDEF (may-drive only poisons; "
                    "the runtime multi-driver check never counts it)")

        # 2a. complementary literals across the AND-factors.
        factors_a, factors_b = and_factors(ga), and_factors(gb)
        lits_a = {lit for f in factors_a if (lit := _literal(f))}
        lits_b = {lit for f in factors_b if (lit := _literal(f))}
        for key, pol in lits_a:
            if (key, not pol) in lits_b:
                name = self._var_name(key)
                return PairVerdict(
                    da.index, db.index, "exclusive",
                    f"complementary literals on {name!r}")
        # ... and structural complements of whole factors (c vs NOT c).
        set_a = set(factors_a)
        for f in factors_b:
            complementary = (
                (f[0] == "gate" and f[1] == "NOT" and f[2][0] in set_a)
                or ("gate", "NOT", (f,)) in set_a
            )
            if complementary:
                return PairVerdict(da.index, db.index, "exclusive",
                                   "complementary guard factors")

        # 2b. one-hot decode: EQUAL over the same selector, different
        # constants (the x[NUM(sel)] shape).
        eq_maps_a = [m for f in factors_a if (m := _equal_const_map(f))]
        eq_maps_b = [m for f in factors_b if (m := _equal_const_map(f))]
        for ma in eq_maps_a:
            for mb in eq_maps_b:
                for expr_key, ca in ma.items():
                    cb = mb.get(expr_key)
                    if cb is not None and cb != ca:
                        return PairVerdict(
                            da.index, db.index, "exclusive",
                            "one-hot decode: EQUAL on the same selector "
                            "with different constants")

        # 3. bounded case split over the union support.
        support = sorted(set(self.builder.support(ga))
                         | set(self.builder.support(gb)))
        if len(support) > self.config.prover_max_support:
            return PairVerdict(
                da.index, db.index, "unknown",
                f"guard support has {len(support)} variables "
                f"(> {self.config.prover_max_support}); runtime check "
                "remains the oracle")
        try:
            witness = self._cosat(ga, gb, support)
        except _BudgetExceeded:
            return PairVerdict(
                da.index, db.index, "unknown",
                f"case-split budget of {self.config.prover_budget} "
                "exhausted; runtime check remains the oracle")
        if witness is None:
            return PairVerdict(
                da.index, db.index, "exclusive",
                f"case split over {len(support)} variable(s) found no "
                "co-enabling assignment")
        named = {self._var_name(k): v for k, v in witness.items()}
        uncontrolled = [self._var_name(k) for k, v in witness.items()
                        if self.builder.var_kinds.get(k) != "input"]
        if uncontrolled:
            return PairVerdict(
                da.index, db.index, "unknown",
                "guards are co-satisfiable but the witness needs "
                f"non-input state ({', '.join(sorted(uncontrolled))}); "
                "runtime check remains the oracle", named)
        if not (self.source_drives(da) and self.source_drives(db)):
            return PairVerdict(
                da.index, db.index, "unknown",
                "guards can both be 1 but a source may float (NOINFL); "
                "runtime check remains the oracle", named)
        return PairVerdict(
            da.index, db.index, "conflicting",
            "both drivers enabled under the witness assignment", named)

    def _cosat(self, ga: tuple, gb: tuple, support: list) -> dict | None:
        """DPLL-style search for an assignment with ga = gb = 1, on the
        shared solver core."""
        return cosat(ga, gb, support, budget=self.config.prover_budget)

    def _var_name(self, key: tuple) -> str:
        if key[0] == "net":
            return self.ctx.display[key[1]]
        return f"$random{key[1]}"

    # -- whole-net / whole-design -------------------------------------------

    def classify_net(self, ci: int) -> NetResult:
        drivers = self.ctx.drivers_of[ci]
        pairs: list[PairVerdict] = []
        budget_pairs = self.config.prover_max_pairs
        examined = 0
        for i in range(len(drivers)):
            for j in range(i + 1, len(drivers)):
                if examined >= budget_pairs:
                    pairs.append(PairVerdict(
                        i, j, "unknown",
                        f"pair budget of {budget_pairs} exhausted"))
                    continue
                examined += 1
                pairs.append(self.classify_pair(drivers[i], drivers[j]))
        if any(p.verdict == "conflicting" for p in pairs):
            verdict = "conflicting"
        elif any(p.verdict == "unknown" for p in pairs):
            verdict = "unknown"
        else:
            verdict = "exclusive"
        return NetResult(ci, self.ctx.display[ci], len(drivers),
                         verdict, pairs)

    def run(self) -> ProverResult:
        result = ProverResult()
        for ci in self.ctx.multi_driver_classes():
            result.nets.append(self.classify_net(ci))
        return result
