"""Lint reporting: the ``zeus.lint/1`` schema, text and SARIF renderers.

Like ``zeus.metrics/1`` (:mod:`repro.obs.export`), the JSON shape is
versioned and :func:`validate_lint_report` is its executable definition:

.. code-block:: none

    {
      "schema": "zeus.lint/1",
      "design": {"name", "nets", "gates", "connections", "registers"},
      "summary": {"findings", "errors", "warnings", "notes",
                  "suppressed", "by_rule": {rule: count}},
      "prover": {                        # omitted when the pass is off
        "nets_analyzed", "proved_exclusive", "proved_conflicting",
        "unknown",
        "nets": [{"net", "drivers", "verdict",
                  "pairs": [{"a","b","verdict","reason","witness"?}]}]
      },
      "findings": [{"rule", "code", "severity", "message", "net",
                    "line", "column", "suppressed"}]
    }

Counts in ``summary`` exclude suppressed findings; the ``findings`` list
includes them (flagged) so consumers can audit suppressions.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..lang.errors import Severity
from ..lang.source import SourceText
from .model import RULES, Finding, LintConfig
from .prover import ProverResult

SCHEMA = "zeus.lint/1"

_LEVELS = {Severity.ERROR: "error", Severity.WARNING: "warning",
           Severity.NOTE: "note"}


@dataclass
class LintReport:
    """The result of one full lint run."""

    design_name: str
    stats: dict
    findings: list[Finding] = field(default_factory=list)
    prover: ProverResult | None = None
    config: LintConfig = field(default_factory=LintConfig)
    source: SourceText | None = None

    # -- counting ------------------------------------------------------------

    def _count(self, severity: Severity) -> int:
        return sum(1 for f in self.findings
                   if f.severity is severity and not f.suppressed)

    @property
    def errors(self) -> int:
        return self._count(Severity.ERROR)

    @property
    def warnings(self) -> int:
        return self._count(Severity.WARNING)

    @property
    def notes(self) -> int:
        return self._count(Severity.NOTE)

    @property
    def suppressed(self) -> int:
        return sum(1 for f in self.findings if f.suppressed)

    def by_rule(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for f in self.findings:
            if not f.suppressed:
                out[f.rule] = out.get(f.rule, 0) + 1
        return out

    def exit_code(self, werror: bool | None = None) -> int:
        """The ``zeusc`` exit-code contract: 0 clean, 1 warnings under
        ``--werror``, 2 errors."""
        if werror is None:
            werror = self.config.werror
        if self.errors:
            return 2
        if werror and self.warnings:
            return 1
        return 0

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        findings = []
        for f in self.findings:
            line = column = 0
            if self.source is not None and f.span.length:
                pos = self.source.position(f.span.start)
                line, column = pos.line, pos.column
            findings.append({
                "rule": f.rule,
                "code": f.code,
                "severity": _LEVELS[f.severity],
                "message": f.message,
                "net": f.net,
                "line": line,
                "column": column,
                "suppressed": f.suppressed,
            })
        report = {
            "schema": SCHEMA,
            "design": {
                "name": self.design_name,
                "nets": self.stats.get("nets", 0),
                "gates": self.stats.get("gates", 0),
                "connections": self.stats.get("connections", 0),
                "registers": self.stats.get("registers", 0),
            },
            "summary": {
                "findings": len(self.findings) - self.suppressed,
                "errors": self.errors,
                "warnings": self.warnings,
                "notes": self.notes,
                "suppressed": self.suppressed,
                "by_rule": self.by_rule(),
            },
            "findings": findings,
        }
        if self.prover is not None:
            report["prover"] = self.prover.to_dict()
        return report

    # -- renderers -----------------------------------------------------------

    def render_text(self, *, show_suppressed: bool = False) -> str:
        lines = []
        for f in self.findings:
            if f.suppressed and not show_suppressed:
                continue
            head = f"{_LEVELS[f.severity]}: [{f.rule}] {f.message}"
            if f.suppressed:
                head = f"(suppressed) {head}"
            if self.source is not None and f.span.length:
                pos = self.source.position(f.span.start)
                head = (f"{self.source.name}:{pos}: {head}\n"
                        f"{self.source.caret_diagram(f.span)}")
            lines.append(head)
        summary = (f"{self.design_name}: {self.errors} error(s), "
                   f"{self.warnings} warning(s), {self.notes} note(s)")
        if self.suppressed:
            summary += f", {self.suppressed} suppressed"
        if self.prover is not None:
            summary += (f"; prover: {self.prover.proved_exclusive} exclusive, "
                        f"{self.prover.proved_conflicting} conflicting, "
                        f"{self.prover.unknown} unknown "
                        f"of {len(self.prover.nets)} multi-driver net(s)")
        lines.append(summary)
        return "\n".join(lines)

    def render_json(self) -> str:
        report = self.to_dict()
        validate_lint_report(report)
        return json.dumps(report, indent=2, sort_keys=True) + "\n"

    def render_sarif(self) -> str:
        """Minimal SARIF 2.1.0: one run, one rule per registered rule,
        one result per non-suppressed finding."""
        used = {f.rule for f in self.findings}
        rules = [
            {
                "id": RULES[name].code,
                "name": name,
                "shortDescription": {"text": RULES[name].summary},
            }
            for name in sorted(used) if name in RULES
        ]
        results = []
        for f in self.findings:
            if f.suppressed:
                continue
            result: dict = {
                "ruleId": f.code or f.rule,
                "level": _LEVELS[f.severity],
                "message": {"text": f.message},
            }
            if self.source is not None and f.span.length:
                pos = self.source.position(f.span.start)
                result["locations"] = [{
                    "physicalLocation": {
                        "artifactLocation": {"uri": self.source.name},
                        "region": {"startLine": pos.line,
                                   "startColumn": pos.column},
                    }
                }]
            results.append(result)
        sarif = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "zeuslint",
                    "informationUri":
                        "https://example.invalid/zeus-reproduction",
                    "rules": rules,
                }},
                "results": results,
            }],
        }
        return json.dumps(sarif, indent=2, sort_keys=True) + "\n"


def write_lint_report(path: str, report: "LintReport") -> None:
    """Validate and write a report as ``zeus.lint/1`` JSON."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(report.render_json())


def validate_lint_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to ``zeus.lint/1``."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"lint report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"lint report: {where}.{key} must be {types}, "
                f"got {type(obj[key]).__name__}")
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("lint report must be a dict")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"lint report: schema must be {SCHEMA!r}, "
            f"got {report.get('schema')!r}")
    design = need(report, "design", dict, "report")
    need(design, "name", str, "design")
    for key in ("nets", "gates", "connections", "registers"):
        need(design, key, int, "design")

    summary = need(report, "summary", dict, "report")
    for key in ("findings", "errors", "warnings", "notes", "suppressed"):
        need(summary, key, int, "summary")
    by_rule = need(summary, "by_rule", dict, "summary")
    for rule, count in by_rule.items():
        if not isinstance(count, int):
            raise ValueError(
                f"lint report: summary.by_rule[{rule!r}] must be int")

    for f in need(report, "findings", list, "report"):
        need(f, "rule", str, "findings[]")
        need(f, "severity", str, "findings[]")
        if f["severity"] not in ("error", "warning", "note"):
            raise ValueError(
                f"lint report: bad severity {f['severity']!r}")
        need(f, "message", str, "findings[]")
        need(f, "line", int, "findings[]")
        need(f, "column", int, "findings[]")
        need(f, "suppressed", bool, "findings[]")

    if "prover" in report:
        prover = need(report, "prover", dict, "report")
        for key in ("nets_analyzed", "proved_exclusive",
                    "proved_conflicting", "unknown"):
            need(prover, key, int, "prover")
        for net in need(prover, "nets", list, "prover"):
            need(net, "net", str, "prover.nets[]")
            need(net, "drivers", int, "prover.nets[]")
            verdict = need(net, "verdict", str, "prover.nets[]")
            if verdict not in ("exclusive", "conflicting", "unknown"):
                raise ValueError(
                    f"lint report: bad prover verdict {verdict!r}")
            for pair in need(net, "pairs", list, "prover.nets[]"):
                need(pair, "a", int, "prover.nets[].pairs[]")
                need(pair, "b", int, "prover.nets[].pairs[]")
                need(pair, "verdict", str, "prover.nets[].pairs[]")
                need(pair, "reason", str, "prover.nets[].pairs[]")
