"""Inline lint suppression comments.

Zeus comments are lexer trivia (``<* ... *>``); the lexer records their
spans (see :mod:`repro.lang.lexer`) and the parser stashes them on
``Program.comments``.  A comment of the form ::

    <* lint: off *>                      suppress every rule
    <* lint: off write-only *>           suppress one rule
    <* lint: off write-only, dead-driver *>

suppresses findings anchored on the **line the comment starts on**; when
the comment is the only thing on its line, it applies to the **next
line** instead (the pragma-above-the-statement style).  ``zeuslint:`` is
accepted as an alias of ``lint:``.

Suppressed findings are not dropped: they stay in the report flagged
``suppressed`` (and are excluded from the error/warning counts and the
default text rendering), so ``--format json`` consumers can audit them.
"""

from __future__ import annotations

import re

from ..lang.source import SourceText, Span
from .model import Finding

_PRAGMA = re.compile(
    r"<\*\s*(?:zeus)?lint\s*:\s*off\b([^*]*)\*>", re.IGNORECASE)

#: Sentinel meaning "all rules" in a suppression set.
ALL_RULES = "*"


def parse_suppressions(
    source: SourceText, comments: list[Span]
) -> dict[int, set[str]]:
    """Map 1-based line number -> set of suppressed rule names
    (:data:`ALL_RULES` suppresses everything on that line)."""
    out: dict[int, set[str]] = {}
    for span in comments:
        text = source.snippet(span)
        m = _PRAGMA.match(text.strip())
        if m is None:
            continue
        rules = {r.strip() for r in re.split(r"[,\s]+", m.group(1)) if r.strip()}
        if not rules:
            rules = {ALL_RULES}
        line = source.position(span.start).line
        before = source.line_text(line)[: source.position(span.start).column - 1]
        if not before.strip():
            # The comment opens its line: it governs the next line.
            line += 1
        out.setdefault(line, set()).update(rules)
    return out


def apply_suppressions(
    findings: list[Finding],
    source: SourceText | None,
    comments: list[Span],
) -> int:
    """Mark suppressed findings in place; returns how many were hit."""
    if source is None or not comments:
        return 0
    by_line = parse_suppressions(source, comments)
    if not by_line:
        return 0
    count = 0
    for finding in findings:
        if not finding.span.length:
            continue
        line = source.position(finding.span.start).line
        rules = by_line.get(line)
        if rules and (ALL_RULES in rules or finding.rule in rules):
            finding.suppressed = True
            count += 1
    return count
