"""The lint pass registry.

Each pass is a function ``(ctx, config) -> list[Finding]`` registered
together with the :class:`~repro.lint.model.Rule` objects it can emit.
All passes share the one :class:`~repro.lint.context.LintContext`
traversal infrastructure; none walks the netlist on its own.

The registry order is the report order: the prover first (it is the
headline check), then the structural passes.
"""

from __future__ import annotations

import re
from typing import Callable

from ..core.values import Logic
from ..lang.errors import Severity
from .context import LintContext
from .model import Finding, LintConfig, Rule, register_rule
from .prover import Prover, ProverResult, eval_expr

# -- rule catalogue ----------------------------------------------------------

DRIVER_CONFLICT = register_rule(Rule(
    "driver-conflict", "ZL001", Severity.ERROR,
    "two drivers of one net are provably enabled together "
    "(a witness input assignment burns transistors)",
    paper="sections 3.2, 5, 8"))
DRIVER_UNPROVED = register_rule(Rule(
    "driver-unproved", "ZL002", Severity.WARNING,
    "driver exclusivity could not be proved; the runtime "
    "multi-assignment check remains the oracle",
    paper="sections 5, 8"))
UNDEF_REACH = register_rule(Rule(
    "undef-reachability", "ZL010", Severity.NOTE,
    "an output can see UNDEF from undriven signals or never-reset "
    "registers", paper="section 8"))
COMB_CYCLE = register_rule(Rule(
    "comb-cycle", "ZL020", Severity.ERROR,
    "combinational feedback loop not broken by a REG",
    paper="sections 1, 5"))
WRITE_ONLY = register_rule(Rule(
    "write-only", "ZL030", Severity.WARNING,
    "a signal is assigned but never read", paper="section 4.1"))
DEAD_DRIVER = register_rule(Rule(
    "dead-driver", "ZL031", Severity.WARNING,
    "a driver's enable condition is provably constant",
    paper="section 4.7"))
REG_NO_RESET = register_rule(Rule(
    "reg-no-reset", "ZL040", Severity.WARNING,
    "a register is never loaded with a constant, so it can only leave "
    "its initial UNDEF through data inputs", paper="section 5"))
FANOUT_LIMIT = register_rule(Rule(
    "fanout-limit", "ZL050", Severity.WARNING,
    "a net drives more consumers than the configured limit"))
DEPTH_LIMIT = register_rule(Rule(
    "logic-depth-limit", "ZL051", Severity.WARNING,
    "the combinational depth exceeds the configured limit"))


# -- the prover pass ---------------------------------------------------------

def driver_exclusivity_pass(
    ctx: LintContext, config: LintConfig,
    result_out: list[ProverResult] | None = None,
) -> list[Finding]:
    """Run the driver-exclusivity prover; one finding per conflicting or
    unproved net.  ``result_out`` (when given) receives the full
    :class:`ProverResult` for the report's ``prover`` section."""
    prover = Prover(ctx, config)
    result = prover.run()
    if result_out is not None:
        result_out.append(result)
    findings: list[Finding] = []
    for net in result.nets:
        span = ctx.span_of(net.ci)
        if net.verdict == "conflicting":
            pair = next(p for p in net.pairs if p.verdict == "conflicting")
            drvs = ctx.drivers_of[net.ci]
            witness = ", ".join(f"{k}={v}" for k, v in
                                sorted((pair.witness or {}).items()))
            findings.append(Finding(
                DRIVER_CONFLICT.name, Severity.ERROR,
                f"signal {net.net!r} is driven by {drvs[pair.a].describe(ctx)} "
                f"and {drvs[pair.b].describe(ctx)} at the same time under "
                f"{{{witness}}}; this would burn transistors",
                span, net.net,
                {"witness": pair.witness or {}, "verdict": net.verdict}))
        elif net.verdict == "unknown":
            unknown = [p for p in net.pairs if p.verdict == "unknown"]
            findings.append(Finding(
                DRIVER_UNPROVED.name, Severity.WARNING,
                f"cannot prove the {net.drivers} drivers of {net.net!r} "
                f"mutually exclusive ({len(unknown)} of {len(net.pairs)} "
                f"pair(s) unresolved: {unknown[0].reason})",
                span, net.net, {"verdict": net.verdict}))
    return findings


# -- structural passes -------------------------------------------------------

def comb_cycle_pass(ctx: LintContext, config: LintConfig) -> list[Finding]:
    """Report one combinational cycle with its full path and spans
    (the checker's acyclicity error, upgraded with the route)."""
    if ctx.topo_order is not None:
        return []
    cycle = ctx.cycle
    named = [ctx.display[ci] for ci in cycle]
    span = next((ctx.span_of(ci) for ci in cycle
                 if ctx.span_of(ci).length), ctx.span_of(cycle[0]))
    return [Finding(
        COMB_CYCLE.name, Severity.ERROR,
        "combinational feedback loop (not through a register): "
        + " -> ".join(named), span, named[0],
        {"cycle": named})]


def write_only_pass(ctx: LintContext, config: LintConfig) -> list[Finding]:
    """Locally declared signals that are assigned but never read.
    OUT/INOUT ports are excluded (driving them *is* their purpose), and
    ``==``-aliased nets are reported once per alias class."""
    findings = []
    for ci in sorted(ctx.driven - ctx.readers):
        if ctx.is_output[ci] or ctx.is_input[ci]:
            continue
        roles = ctx.roles[ci]
        if roles & {"formal_out", "pin_out", "formal_inout", "pin_inout"}:
            continue
        display = ctx.display[ci]
        if display.startswith("$"):
            continue  # synthetic helper nets never warn
        if ci in ctx.reg_q_of:
            what = f"register output {display!r}"
        else:
            what = f"signal {display!r}"
        findings.append(Finding(
            WRITE_ONLY.name, Severity.WARNING,
            f"{what} is assigned but never read",
            ctx.span_of(ci), display))
    return findings


def dead_driver_pass(ctx: LintContext, config: LintConfig) -> list[Finding]:
    """Enable conditions that fold to a constant: guard 0 never drives
    (dead code), guard 1 makes the IF vacuous (and the assignment
    effectively unconditional)."""
    prover = _shared_prover(ctx)
    findings = []
    for ci in range(ctx.n):
        for drv in ctx.drivers_of[ci]:
            if drv.uncond:
                continue
            folded = prover.fold_guard(drv)
            if folded is None and prover.guard_can_fire(drv) is False:
                folded = 0  # provably never 1 (e.g. AND(a, NOT a))
            if folded == 0:
                findings.append(Finding(
                    DEAD_DRIVER.name, Severity.WARNING,
                    f"driver of {ctx.display[ci]!r} "
                    f"({drv.describe(ctx)}) can never fire: its enable "
                    "condition is constant 0",
                    drv.span if drv.span.length else ctx.span_of(ci),
                    ctx.display[ci], {"constant": 0}))
            elif folded == 1:
                findings.append(Finding(
                    DEAD_DRIVER.name, Severity.WARNING,
                    f"driver of {ctx.display[ci]!r} "
                    f"({drv.describe(ctx)}) has a constant-1 enable "
                    "condition; the IF is vacuous",
                    drv.span if drv.span.length else ctx.span_of(ci),
                    ctx.display[ci], {"constant": 1}))
    return findings


def reg_has_reset(ctx: LintContext, reg) -> bool:
    """Heuristic reset detection: some driver of the data pin loads a
    defined constant (``IF RSET THEN r.in := 0`` elaborates to a guarded
    constant driver)."""
    for drv in ctx.drivers_of[ctx.idx(reg.d)]:
        if drv.const is not None and drv.const in (Logic.ZERO, Logic.ONE):
            return True
        if drv.src is not None:
            # A source that folds to a defined constant also counts.
            prover = _shared_prover(ctx)
            if eval_expr(prover.builder.expr(drv.src), {}) in (0, 1):
                return True
    return False


def _shared_prover(ctx: LintContext) -> Prover:
    """One memoized Prover per context for the helper queries."""
    prover = getattr(ctx, "_lint_shared_prover", None)
    if prover is None:
        prover = Prover(ctx)
        ctx._lint_shared_prover = prover
    return prover


def _generic_name(name: str) -> str:
    """Index-generalize an instance path: ``mem.ram[3][7]`` ->
    ``mem.ram[*][*]``.  Used to fold per-element findings on register
    and signal arrays into one finding per array."""
    return re.sub(r"\[\d+\]", "[*]", name)


def reg_no_reset_pass(ctx: LintContext, config: LintConfig) -> list[Finding]:
    # Group never-reset registers by index-generalized name so a
    # 16x8 register file yields one finding, not 128.
    groups: dict[str, list] = {}
    seen: set[int] = set()
    for reg in ctx.netlist.regs:
        qi = ctx.idx(reg.q)
        if qi in seen:
            continue
        seen.add(qi)
        if reg_has_reset(ctx, reg):
            continue
        name = reg.name or f"$reg{reg.id}"
        groups.setdefault(_generic_name(name), []).append(reg)
    findings = []
    for generic in sorted(groups):
        regs = groups[generic]
        what = (f"register {generic!r}" if len(regs) == 1
                else f"register array {generic!r} ({len(regs)} registers)")
        findings.append(Finding(
            REG_NO_RESET.name, Severity.WARNING,
            f"{what} is never loaded with a constant; it "
            "starts UNDEF and can only be initialized through its data "
            "inputs", regs[0].span, generic,
            {"registers": len(regs)}))
    return findings


def undef_reachability_pass(
    ctx: LintContext, config: LintConfig
) -> list[Finding]:
    """Forward-propagate UNDEF origins (read-but-undriven nets, outputs
    of never-reset registers) to the design's OUT ports."""
    origins: dict[int, str] = {}
    for ci in sorted(ctx.readers - ctx.driven):
        if not ctx.is_input[ci]:
            origins[ci] = "undriven"
    reset_cache: dict[int, bool] = {}
    for reg in ctx.netlist.regs:
        qi = ctx.idx(reg.q)
        if qi not in reset_cache:
            reset_cache[qi] = reg_has_reset(ctx, reg)
        if not reset_cache[qi]:
            origins.setdefault(qi, "no reset")
    if not origins:
        return []
    # BFS over the forward dependency edges from every origin at once,
    # remembering one origin per reached class.
    reached: dict[int, int] = {ci: ci for ci in origins}
    frontier = list(origins)
    while frontier:
        nxt: list[int] = []
        for ci in frontier:
            for dep in ctx.fanout_edges.get(ci, ()):
                if dep not in reached:
                    reached[dep] = reached[ci]
                    nxt.append(dep)
        frontier = nxt
    # One note per (index-generalized output, origin kind): a bussed
    # output reached per-bit collapses into a single finding.
    groups: dict[tuple[str, str], list[int]] = {}
    for ci in range(ctx.n):
        if not ctx.is_output[ci] or ci not in reached:
            continue
        key = (_generic_name(ctx.display[ci]), origins[reached[ci]])
        groups.setdefault(key, []).append(ci)
    findings = []
    for (generic, kind), members in sorted(groups.items()):
        first = members[0]
        origin = reached[first]
        what = (f"output {generic!r}" if len(members) == 1
                else f"output {generic!r} ({len(members)} bits)")
        findings.append(Finding(
            UNDEF_REACH.name, Severity.NOTE,
            f"{what} can observe UNDEF via "
            f"{ctx.display[origin]!r} ({kind})",
            ctx.span_of(first), generic,
            {"origin": ctx.display[origin], "kind": kind,
             "bits": len(members)}))
    return findings


def _shared_timing(ctx: LintContext):
    """One memoized unit-delay timing graph per context — the same
    engine ``zeusc timing`` runs, so depth findings cite the actual
    critical path the STA would report."""
    graph = getattr(ctx, "_lint_shared_timing", None)
    if graph is None:
        from ..timing.delay import UNIT
        from ..timing.graph import TimingGraph

        graph = TimingGraph(ctx, UNIT)
        ctx._lint_shared_timing = graph
    return graph


def limits_pass(ctx: LintContext, config: LintConfig) -> list[Finding]:
    """Configurable fan-out and logic-depth thresholds, computed by the
    shared timing engine (fan-out = wire load, depth = unit-delay
    arrival time)."""
    findings = []
    graph = _shared_timing(ctx)
    for ci, count in sorted(graph.fanout.items()):
        if count > config.max_fanout:
            findings.append(Finding(
                FANOUT_LIMIT.name, Severity.WARNING,
                f"net {ctx.display[ci]!r} drives {count} consumers "
                f"(limit {config.max_fanout})",
                ctx.span_of(ci), ctx.display[ci], {"fanout": count}))
    if graph.ok:
        depth = graph.worst_arrival
        if depth > config.max_depth:
            crit = graph.critical_path()
            deepest = crit[-1]
            named = [ctx.display[ci] for ci in crit
                     if not ctx.display[ci].split(".")[-1].startswith("$")]
            cite = " -> ".join(named if len(named) >= 2
                               else [ctx.display[ci] for ci in crit])
            findings.append(Finding(
                DEPTH_LIMIT.name, Severity.WARNING,
                f"combinational depth is {depth} unit delays "
                f"(limit {config.max_depth}); deepest net is "
                f"{ctx.display[deepest]!r}; critical path: {cite}",
                ctx.span_of(deepest), ctx.display[deepest],
                {"depth": depth, "critical_path": cite}))
    return findings


#: Registry: (pass name, function).  The prover pass is handled
#: specially by the runner (it also feeds the report's prover section).
PassFn = Callable[[LintContext, LintConfig], list[Finding]]
PASSES: list[tuple[str, PassFn]] = [
    ("comb-cycle", comb_cycle_pass),
    ("undef-reachability", undef_reachability_pass),
    ("write-only", write_only_pass),
    ("dead-driver", dead_driver_pass),
    ("reg-no-reset", reg_no_reset_pass),
    ("limits", limits_pass),
]
