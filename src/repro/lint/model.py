"""Data model of the ``zeuslint`` static-analysis framework.

A *rule* is something the linter can complain about (stable kebab-case
name plus a ``ZLxxx`` code); a *finding* is one concrete complaint,
anchored to a net and a source span; a *config* carries the per-rule
severity overrides and the numeric thresholds/budgets the passes and the
driver-exclusivity prover consume.

Severities reuse :class:`repro.lang.errors.Severity` so findings convert
losslessly into ordinary compiler diagnostics.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..lang.errors import Diagnostic, Severity
from ..lang.source import NO_SPAN, Span


@dataclass(frozen=True)
class Rule:
    """One lint rule: identity, default severity, one-line summary."""

    name: str  # stable kebab-case id, e.g. "driver-conflict"
    code: str  # short stable code, e.g. "ZL001"
    default_severity: Severity
    summary: str
    paper: str = ""  # paper section / type-rule table the rule enforces

    def __str__(self) -> str:
        return f"{self.code} {self.name}"


#: All registered rules by name (populated by :mod:`repro.lint.passes`).
RULES: dict[str, Rule] = {}


def register_rule(rule: Rule) -> Rule:
    if rule.name in RULES:
        raise ValueError(f"duplicate lint rule {rule.name!r}")
    RULES[rule.name] = rule
    return rule


@dataclass
class Finding:
    """One concrete lint complaint."""

    rule: str
    severity: Severity
    message: str
    span: Span = NO_SPAN
    net: str = ""  # display name of the anchor net, "" when design-wide
    data: dict = field(default_factory=dict)  # rule-specific extras
    suppressed: bool = False

    @property
    def code(self) -> str:
        rule = RULES.get(self.rule)
        return rule.code if rule else ""

    def to_diagnostic(self) -> Diagnostic:
        return Diagnostic(self.severity, f"[{self.rule}] {self.message}",
                          self.span, phase="lint")


_SEVERITY_NAMES = {
    "error": Severity.ERROR,
    "warning": Severity.WARNING,
    "note": Severity.NOTE,
}

#: Sentinel severity-name disabling a rule entirely.
OFF = "off"


@dataclass
class LintConfig:
    """Per-run lint configuration.

    ``severity`` maps rule name -> ``"error" | "warning" | "note" |
    "off"`` and overrides each rule's default.  The special key ``"all"``
    sets a baseline for every rule (explicit per-rule entries win).
    """

    severity: dict[str, str] = field(default_factory=dict)
    #: warn when a net drives more than this many consumers.
    max_fanout: int = 64
    #: warn when the combinational depth exceeds this many unit delays.
    max_depth: int = 128
    #: prover: largest guard-pair support (distinct cone variables) the
    #: bounded case split will enumerate.
    prover_max_support: int = 16
    #: prover: case-split node budget per driver pair.
    prover_budget: int = 20_000
    #: prover: most driver pairs examined per net (the rest go UNKNOWN).
    prover_max_pairs: int = 512
    #: treat warnings as errors for the exit-code contract.
    werror: bool = False

    def set_severity(self, rule: str, severity: str) -> None:
        if severity not in _SEVERITY_NAMES and severity != OFF:
            raise ValueError(f"unknown severity {severity!r}")
        if rule != "all" and rule not in RULES:
            raise ValueError(f"unknown lint rule {rule!r}")
        self.severity[rule] = severity

    def effective_severity(self, rule: Rule) -> Severity | None:
        """The severity findings of *rule* get, or None when disabled."""
        name = self.severity.get(rule.name, self.severity.get("all"))
        if name is None:
            return rule.default_severity
        if name == OFF:
            return None
        return _SEVERITY_NAMES[name]
