"""Shared graph infrastructure for all lint passes.

Every pass works on the elaborated semantics graph, and most need the
same handful of derived structures: canonical (``==``-merged) net
classes, the per-net driver lists, the reader sets, the combinational
dependency graph and its topological order (or the offending cycle),
fan-out counts and unit-delay levels.  :class:`LintContext` computes
each of these once, lazily, and caches it so a full lint run performs a
single traversal per structure regardless of how many passes consume it.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from functools import cached_property

from ..core.checker import dependency_graph
from ..core.elaborate import Design
from ..core.netlist import Gate, Netlist
from ..core.types import BOOLEAN
from ..core.values import Logic
from ..lang.source import NO_SPAN, Span


@dataclass(eq=False)
class DriverInfo:
    """One deduplicated driver of a canonical net class.

    ``cond``/``src`` are canonical class indices (not net ids); ``const``
    is set instead of ``src`` for constant drivers.  ``index`` is stable
    within the net's driver list and is what prover verdicts refer to.
    """

    index: int
    dst: int
    cond: int | None
    src: int | None
    const: Logic | None
    span: Span = NO_SPAN

    @property
    def uncond(self) -> bool:
        return self.cond is None

    def describe(self, ctx: "LintContext") -> str:
        what = (f"constant {self.const}" if self.const is not None
                else ctx.display[self.src])
        guard = "" if self.cond is None else f" when {ctx.display[self.cond]}"
        return f"{what}{guard}"


class LintContext:
    """Lazily computed, shared derived views of one elaborated design."""

    def __init__(self, design: Design):
        self.design = design
        self.netlist: Netlist = design.netlist
        find = self.netlist.find
        nets = self.netlist.nets
        self._canon = [find(n).id for n in nets]
        canon_ids = sorted(set(self._canon))
        self._index = {cid: i for i, cid in enumerate(canon_ids)}
        self.canon_ids = canon_ids
        self.n = len(canon_ids)

        # Class membership and display metadata.
        self.members = [[] for _ in range(self.n)]
        for net in nets:
            self.members[self._index[self._canon[net.id]]].append(net)
        self.display = [
            min((m.name for m in ms if not m.name.startswith("$")),
                default=ms[0].name)
            for ms in self.members
        ]
        self.is_boolean = [all(m.kind == BOOLEAN for m in ms)
                           for ms in self.members]
        self.is_input = [any(m.is_input for m in ms) for ms in self.members]
        self.is_output = [any(m.is_output for m in ms) for ms in self.members]
        self.roles = [{m.role for m in ms} for ms in self.members]
        self.spans = [
            next((m.span for m in ms if m.span is not NO_SPAN), NO_SPAN)
            for ms in self.members
        ]

    def idx(self, net) -> int:
        """Canonical class index of a :class:`~repro.core.netlist.Net`."""
        return self._index[self._canon[net.id]]

    # -- drivers and readers -------------------------------------------------

    @cached_property
    def drivers_of(self) -> list[list[DriverInfo]]:
        """Deduplicated drivers per class (``unique_conns`` semantics)."""
        out: list[list[DriverInfo]] = [[] for _ in range(self.n)]
        for conn in self.netlist.unique_conns():
            dst = self.idx(conn.dst)
            cond = self.idx(conn.cond) if conn.cond is not None else None
            out[dst].append(DriverInfo(len(out[dst]), dst, cond,
                                       self.idx(conn.src), None, conn.span))
        for cc in self.netlist.unique_const_conns():
            dst = self.idx(cc.dst)
            cond = self.idx(cc.cond) if cc.cond is not None else None
            out[dst].append(DriverInfo(len(out[dst]), dst, cond,
                                       None, cc.value, cc.span))
        return out

    @cached_property
    def gates_of(self) -> dict[int, list[Gate]]:
        """Gates whose output lands in each class (normally at most one)."""
        out: dict[int, list[Gate]] = defaultdict(list)
        for gate in self.netlist.gates:
            out[self.idx(gate.output)].append(gate)
        return dict(out)

    @cached_property
    def reg_q_of(self) -> dict[int, list]:
        """REGs whose ``q`` output lands in each class."""
        out: dict[int, list] = defaultdict(list)
        for reg in self.netlist.regs:
            out[self.idx(reg.q)].append(reg)
        return dict(out)

    @cached_property
    def readers(self) -> set[int]:
        """Classes consumed by anything: gate inputs, connection sources,
        guards, and register data pins."""
        read: set[int] = set()
        for gate in self.netlist.gates:
            read.update(self.idx(i) for i in gate.inputs)
        for conn in self.netlist.conns:
            read.add(self.idx(conn.src))
            if conn.cond is not None:
                read.add(self.idx(conn.cond))
        for cc in self.netlist.const_conns:
            if cc.cond is not None:
                read.add(self.idx(cc.cond))
        for reg in self.netlist.regs:
            read.add(self.idx(reg.d))
        return read

    @cached_property
    def driven(self) -> set[int]:
        """Classes receiving any value: drivers, gate or REG outputs."""
        out = {i for i, drvs in enumerate(self.drivers_of) if drvs}
        out.update(self.gates_of)
        out.update(self.reg_q_of)
        return out

    # -- dependency structure ------------------------------------------------

    @cached_property
    def deps(self) -> dict[int, set[int]]:
        """Combinational dependency edges over class indices
        (``deps[dst]`` = classes *dst* combinationally depends on)."""
        raw = dependency_graph(self.netlist)
        remap: dict[int, set[int]] = defaultdict(set)
        for dst, srcs in raw.items():
            di = self._index[dst]
            remap[di].update(self._index[s] for s in srcs)
        return dict(remap)

    @cached_property
    def fanout_edges(self) -> dict[int, list[int]]:
        """Forward adjacency: class -> classes that depend on it."""
        fwd: dict[int, list[int]] = defaultdict(list)
        for dst, srcs in self.deps.items():
            for src in srcs:
                fwd[src].append(dst)
        return dict(fwd)

    @cached_property
    def _topo(self) -> tuple[list[int] | None, list[int]]:
        """(topological order, []) when acyclic, else (None, a cycle)."""
        indegree = [0] * self.n
        for dst, srcs in self.deps.items():
            indegree[dst] = len(srcs)
        queue = [i for i in range(self.n) if indegree[i] == 0]
        order: list[int] = []
        while queue:
            i = queue.pop()
            order.append(i)
            for nxt in self.fanout_edges.get(i, ()):
                indegree[nxt] -= 1
                if indegree[nxt] == 0:
                    queue.append(nxt)
        if len(order) == self.n:
            return order, []
        stuck = {i for i in range(self.n) if indegree[i] > 0}
        return None, self._one_cycle(stuck)

    def _one_cycle(self, stuck: set[int]) -> list[int]:
        """One combinational cycle through the stuck region, closed
        (first element repeated last)."""
        node = next(iter(stuck))
        seen: dict[int, int] = {}
        path: list[int] = []
        while node not in seen:
            seen[node] = len(path)
            path.append(node)
            node = next(d for d in self.deps.get(node, ()) if d in stuck)
        return path[seen[node]:] + [node]

    @property
    def topo_order(self) -> list[int] | None:
        """Topological order of the classes, or None when cyclic."""
        return self._topo[0]

    @property
    def cycle(self) -> list[int]:
        """A witness combinational cycle ([] when the graph is acyclic)."""
        return self._topo[1]

    @cached_property
    def fanout(self) -> dict[int, int]:
        """Consumer count per class (gate inputs + sources + guards +
        register data pins)."""
        counts: dict[int, int] = defaultdict(int)
        for gate in self.netlist.gates:
            for inp in gate.inputs:
                counts[self.idx(inp)] += 1
        for conn in self.netlist.conns:
            counts[self.idx(conn.src)] += 1
            if conn.cond is not None:
                counts[self.idx(conn.cond)] += 1
        for cc in self.netlist.const_conns:
            if cc.cond is not None:
                counts[self.idx(cc.cond)] += 1
        for reg in self.netlist.regs:
            counts[self.idx(reg.d)] += 1
        return dict(counts)

    @cached_property
    def levels(self) -> dict[int, int] | None:
        """Unit-delay logic level per class (None when cyclic).
        Delegates to the shared timing-engine propagation — the same
        implementation behind ``netstats.logic_levels`` and the STA
        unit model."""
        from ..timing.graph import propagate_levels

        order = self.topo_order
        if order is None:
            return None
        return propagate_levels(order, self.deps)

    # -- convenience ---------------------------------------------------------

    def multi_driver_classes(self) -> list[int]:
        """Classes with two or more (deduplicated) explicit drivers --
        the driver-exclusivity prover's work list."""
        return [i for i, drvs in enumerate(self.drivers_of) if len(drvs) >= 2]

    def span_of(self, ci: int) -> Span:
        return self.spans[ci]
