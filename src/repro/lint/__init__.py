"""``zeuslint`` -- netlist-level static analysis for Zeus designs.

A pass-based framework over the elaborated semantics graph.  The
headline pass is the **driver-exclusivity prover**
(:mod:`repro.lint.prover`): for every net with two or more conditional
drivers it proves, per driver pair, whether both enables can be 1 in the
same cycle -- turning the paper's runtime "burning transistors" check
(sections 5, 8) into a compile-time verdict with a witness.  Around it,
a registry of structural passes (:mod:`repro.lint.passes`) shares one
:class:`~repro.lint.context.LintContext` traversal infrastructure.

Typical use::

    import repro
    from repro.lint import run_lint

    circuit = repro.compile_text(text, strict=False)
    report = run_lint(circuit)
    print(report.render_text())
    report.exit_code()          # 0 clean / 1 warnings+werror / 2 errors

CLI: ``zeusc lint FILE --format text|json|sarif`` (see
:mod:`repro.cli`); schema: ``zeus.lint/1`` (:mod:`repro.lint.report`).
"""

from __future__ import annotations

from ..core.elaborate import Design
from .context import LintContext
from .model import OFF, RULES, Finding, LintConfig, Rule
from .passes import PASSES, driver_exclusivity_pass
from .prover import NetResult, PairVerdict, Prover, ProverResult
from .report import (
    SCHEMA,
    LintReport,
    validate_lint_report,
    write_lint_report,
)
from .suppress import apply_suppressions

__all__ = [
    "Finding",
    "LintConfig",
    "LintContext",
    "LintReport",
    "NetResult",
    "OFF",
    "PairVerdict",
    "PASSES",
    "Prover",
    "ProverResult",
    "RULES",
    "Rule",
    "SCHEMA",
    "run_lint",
    "validate_lint_report",
    "write_lint_report",
]


def run_lint(target, config: LintConfig | None = None) -> LintReport:
    """Run every enabled lint pass over a compiled design.

    *target* is a :class:`repro.Circuit` or a
    :class:`~repro.core.elaborate.Design`.  Per-rule severities, the
    thresholds and the prover budgets come from *config* (defaults:
    :class:`~repro.lint.model.LintConfig`).
    """
    from ..obs.spans import span

    design: Design = getattr(target, "design", target)
    config = config or LintConfig()

    with span("lint", design=design.name):
        ctx = LintContext(design)
        findings: list[Finding] = []
        prover_result: ProverResult | None = None

        # The prover pass runs first and feeds the report's prover section.
        conflict_rule = RULES["driver-conflict"]
        unproved_rule = RULES["driver-unproved"]
        if (config.effective_severity(conflict_rule) is not None
                or config.effective_severity(unproved_rule) is not None):
            out: list[ProverResult] = []
            findings.extend(driver_exclusivity_pass(ctx, config, out))
            prover_result = out[0]

        for _name, pass_fn in PASSES:
            findings.extend(pass_fn(ctx, config))

        # Per-rule severity config: re-level or drop each finding.
        kept: list[Finding] = []
        for finding in findings:
            rule = RULES.get(finding.rule)
            if rule is None:
                kept.append(finding)
                continue
            severity = config.effective_severity(rule)
            if severity is None:
                continue
            finding.severity = severity
            kept.append(finding)

        # Inline suppression comments (lexer trivia).
        comments = getattr(design.program, "comments", [])
        apply_suppressions(kept, design.source, comments)

        report = LintReport(
            design_name=design.name,
            stats=design.netlist.stats(),
            findings=kept,
            prover=prover_result,
            config=config,
            source=design.source,
        )
    return report
