"""Comparison baselines: a Bryant-style switch-level MOS simulator and an
unchecked order-sensitive netlist interpreter (see DESIGN.md)."""

from .switchlevel import (
    SState,
    SwitchCircuit,
    SwitchSimulator,
    Transistor,
    build_ripple_adder,
)
from .transistorize import (
    TransistorizeError,
    TransistorizedDesign,
    TransistorizedSimulator,
    transistorize,
)
from .unchecked import UncheckedSimulator

__all__ = [
    "SState",
    "TransistorizeError",
    "TransistorizedDesign",
    "TransistorizedSimulator",
    "transistorize",
    "SwitchCircuit",
    "SwitchSimulator",
    "Transistor",
    "UncheckedSimulator",
    "build_ripple_adder",
]
