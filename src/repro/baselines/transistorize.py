"""Automatic translation of an elaborated Zeus design to transistors.

This is the bridge the paper gestures at with its MOS-level extension:
the *same* semantics graph, compiled to a CMOS transistor network and
run on the switch-level baseline.  It both validates the gate-level
semantics against an electrical model (co-simulation must agree) and
makes the E10 comparison apples-to-apples: one design, two abstraction
levels.

Mapping:

* gates -- standard CMOS cells (n-ary gates as 2-input trees; EQUAL as
  per-bit XNOR + AND tree; RANDOM is rejected);
* unconditional connections -- node aliasing (a wire);
* IF-guarded connections -- **transmission gates** (nmos + pmos with the
  inverted guard), the electrical reading of the paper's switch
  statement (section 4.4);
* guarded constant drivers -- transmission gates to the rails;
* REG -- boundary: ``out`` pins become externally forced nodes (driven
  from the register state each cycle), ``in`` pins are observed and
  latched by the co-simulation wrapper.  Charge retention on a floating
  ``in`` node naturally reproduces the "keeps its value" rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.elaborate import Design
from ..core.netlist import Net
from ..core.values import Logic
from .switchlevel import SState, SwitchCircuit, SwitchSimulator


class TransistorizeError(Exception):
    """The design uses a feature with no transistor mapping (RANDOM)."""


@dataclass
class TransistorizedDesign:
    circuit: SwitchCircuit
    #: canonical Zeus net id -> switch node index
    node_of: dict[int, int]
    design: Design
    stats: dict[str, int] = field(default_factory=dict)


def transistorize(design: Design) -> TransistorizedDesign:
    netlist = design.netlist
    find = netlist.find
    circuit = SwitchCircuit()
    node_of: dict[int, int] = {}

    def node(net: Net, *, is_input: bool = False) -> int:
        canon = find(net)
        if canon.id not in node_of:
            node_of[canon.id] = circuit.node(canon.name, is_input=is_input)
        return node_of[canon.id]

    # Inputs and register outputs are externally forced.
    for net in netlist.nets:
        canon = find(net)
        if canon.is_input:
            node(canon, is_input=True)
    for reg in netlist.regs:
        node_of.setdefault(
            find(reg.q).id, circuit.node(find(reg.q).name, is_input=True)
        )

    # Unconditional connections alias nodes: process first so gates and
    # transmission gates attach to the merged node.
    alias_parent: dict[int, int] = {}

    def alias_find(idx: int) -> int:
        while idx in alias_parent:
            idx = alias_parent[idx]
        return idx

    unconditional = [c for c in netlist.unique_conns() if c.cond is None]
    for conn in unconditional:
        a = node(conn.src)
        b = node(conn.dst)
        ra, rb = alias_find(a), alias_find(b)
        if ra != rb:
            # Prefer keeping input nodes as representatives.
            if circuit.is_input[rb] and not circuit.is_input[ra]:
                ra, rb = rb, ra
            alias_parent[rb] = ra

    def resolved(net: Net) -> int:
        return alias_find(node(net))

    for cc in netlist.unique_const_conns():
        rail = circuit.vdd if cc.value is Logic.ONE else circuit.gnd
        if cc.value not in (Logic.ONE, Logic.ZERO):
            raise TransistorizeError(
                f"constant {cc.value} has no electrical mapping"
            )
        dst = resolved(cc.dst)
        if cc.cond is None:
            if circuit.is_input[dst]:
                raise TransistorizeError(
                    f"constant drive onto forced node {circuit.names[dst]}"
                )
            alias_parent[dst] = rail
        else:
            _transmission_gate(circuit, resolved(cc.cond), rail, dst)

    # Guarded connections become transmission gates.
    for conn in netlist.unique_conns():
        if conn.cond is None:
            continue
        _transmission_gate(
            circuit, resolved(conn.cond), resolved(conn.src), resolved(conn.dst)
        )

    # Gates.
    for gate in netlist.gates:
        ins = [resolved(i) for i in gate.inputs]
        out = resolved(gate.output)
        _build_gate(circuit, gate.op, ins, out)

    tdesign = TransistorizedDesign(circuit, {}, design)
    # Re-resolve the final node per canonical net (post aliasing).
    for canon_id, idx in node_of.items():
        tdesign.node_of[canon_id] = alias_find(idx)
    tdesign.stats = {
        "transistors": circuit.transistor_count,
        "nodes": len(circuit.names),
        "gates": len(netlist.gates),
    }
    return tdesign


_INVERTER_CACHE_ATTR = "_zeus_not_cache"


def _inverted(circuit: SwitchCircuit, src: int) -> int:
    cache = getattr(circuit, _INVERTER_CACHE_ATTR, None)
    if cache is None:
        cache = {}
        setattr(circuit, _INVERTER_CACHE_ATTR, cache)
    if src not in cache:
        out = circuit.node(f"$inv{len(circuit.names)}")
        circuit.inverter(src, out)
        cache[src] = out
    return cache[src]


def _transmission_gate(circuit: SwitchCircuit, guard: int, src: int, dst: int) -> None:
    circuit.nmos(guard, src, dst)
    circuit.pmos(_inverted(circuit, guard), src, dst)


def _build_gate(circuit: SwitchCircuit, op: str, ins: list[int], out: int) -> None:
    if op == "RANDOM":
        raise TransistorizeError("RANDOM has no transistor mapping")
    if op == "NOT":
        circuit.inverter(ins[0], out)
        return
    if op == "EQUAL":
        half = len(ins) // 2
        bits = []
        for a, b in zip(ins[:half], ins[half:]):
            x = circuit.node(f"$xor{len(circuit.names)}")
            circuit.xor2(a, b, x)
            xn = circuit.node(f"$xnor{len(circuit.names)}")
            circuit.inverter(x, xn)
            bits.append(xn)
        _reduce_tree(circuit, "and2", bits, out)
        return
    cell = {
        "AND": "and2",
        "OR": "or2",
        "XOR": "xor2",
        "NAND": "and2",
        "NOR": "or2",
    }[op]
    if op in ("NAND", "NOR"):
        inner = circuit.node(f"$pre{len(circuit.names)}")
        _reduce_tree(circuit, cell, ins, inner)
        circuit.inverter(inner, out)
        return
    _reduce_tree(circuit, cell, ins, out)


def _reduce_tree(circuit: SwitchCircuit, cell: str, ins: list[int], out: int) -> None:
    build = getattr(circuit, cell)
    if len(ins) == 1:
        # A one-input reduction is a buffer: two inverters.
        mid = circuit.node(f"$buf{len(circuit.names)}")
        circuit.inverter(ins[0], mid)
        circuit.inverter(mid, out)
        return
    work = list(ins)
    while len(work) > 2:
        nxt = []
        for i in range(0, len(work) - 1, 2):
            t = circuit.node(f"$t{len(circuit.names)}")
            build(work[i], work[i + 1], t)
            nxt.append(t)
        if len(work) % 2:
            nxt.append(work[-1])
        work = nxt
    build(work[0], work[1], out)


class TransistorizedSimulator:
    """Cycle co-simulation wrapper: same poke/step/peek surface as the
    Zeus simulator, evaluated on the transistor network."""

    def __init__(self, design: Design, max_iterations: int = 400):
        self.t = transistorize(design)
        self.design = design
        self.netlist = design.netlist
        self.sim = SwitchSimulator(self.t.circuit, max_iterations=max_iterations)
        self._reg_state: dict[int, SState] = {}
        self.cycle = 0

    # -- mapping helpers -----------------------------------------------------

    def _nodes(self, path: str):
        signals = self.netlist.signals
        key = path if path in signals else f"{self.design.name}.{path}"
        nets = signals[key]
        find = self.netlist.find
        return [self.t.node_of[find(n).id] for n in nets]

    def poke(self, path: str, value) -> None:
        from ..core.simulator import _coerce_bits

        nodes = self._nodes(path)
        for idx, bit in zip(nodes, _coerce_bits(value, len(nodes), path)):
            self.sim.forced[idx] = _to_sstate(bit)

    def peek(self, path: str) -> list[SState]:
        return [self.sim.values[i] for i in self._nodes(path)]

    def peek_int(self, path: str) -> int | None:
        total = 0
        for i, v in enumerate(self.peek(path)):
            if v is SState.X:
                return None
            if v is SState.ONE:
                total |= 1 << i
        return total

    # -- the cycle -------------------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        find = self.netlist.find
        for _ in range(cycles):
            # Drive register outputs from the stored state.
            for reg in self.netlist.regs:
                qnode = self.t.node_of[find(reg.q).id]
                self.sim.forced[qnode] = self._reg_state.get(qnode, SState.X)
            self.sim.settle()
            # Latch: read each register's data node.
            for reg in self.netlist.regs:
                dnode = self.t.node_of[find(reg.d).id]
                qnode = self.t.node_of[find(reg.q).id]
                self._reg_state[qnode] = self.sim.values[dnode]
            self.cycle += 1

    @property
    def transistor_count(self) -> int:
        return self.t.circuit.transistor_count


def _to_sstate(bit: Logic) -> SState:
    if bit is Logic.ONE:
        return SState.ONE
    if bit is Logic.ZERO:
        return SState.ZERO
    return SState.X
