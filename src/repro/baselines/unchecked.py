"""An unchecked, order-sensitive netlist simulator baseline.

This is the strawman Zeus argues against (sections 1, 4.7): a simulator
in the DDL tradition that executes assignments *in textual order* with
last-writer-wins semantics and performs none of the Zeus safety checks:

* multiple drivers silently overwrite each other (where Zeus reports a
  power-ground hazard statically or at runtime);
* statement order changes results (where Zeus guarantees order
  irrelevance via dataflow firing);
* combinational feedback silently converges -- or doesn't -- within a
  bounded number of sweeps (where Zeus rejects the design statically).

It reuses the elaborated Zeus netlist, so experiment E9 can run the same
mutated program on both simulators and compare what each one notices.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.elaborate import Design
from ..core.netlist import Net
from ..core.types import BOOLEAN
from ..core.values import GATE_FUNCTIONS, Logic


@dataclass
class _Step:
    kind: str  # "gate" | "conn" | "const"
    payload: tuple


class UncheckedSimulator:
    """Sweep-based last-writer-wins evaluation of a Zeus netlist.

    ``sweeps`` controls how many in-order passes each cycle performs; a
    value of 1 mimics a strictly sequential RTL interpreter, larger
    values let values ripple through (but never with the guarantees of
    the Zeus firing rules).
    """

    def __init__(self, design: Design, sweeps: int = 1, seed: int = 0):
        import random

        self.design = design
        self.netlist = design.netlist
        self.sweeps = sweeps
        self.rng = random.Random(seed)
        find = self.netlist.find
        nets = self.netlist.nets
        self._canon = [find(n).id for n in nets]
        canon_ids = sorted(set(self._canon))
        self._index = {cid: i for i, cid in enumerate(canon_ids)}
        n = len(canon_ids)
        self.values: list[Logic] = [Logic.UNDEF] * n

        # Program: gates and connections interleaved in creation order
        # (approximated by concatenation -- the textual order of a naive
        # interpreter).
        self._steps: list[_Step] = []
        for g in self.netlist.gates:
            self._steps.append(
                _Step("gate", (g.op, [self._idx(i) for i in g.inputs], self._idx(g.output)))
            )
        for c in self.netlist.conns:
            self._steps.append(
                _Step(
                    "conn",
                    (
                        self._idx(c.src),
                        self._idx(c.dst),
                        self._idx(c.cond) if c.cond is not None else None,
                    ),
                )
            )
        for c in self.netlist.const_conns:
            self._steps.append(
                _Step(
                    "const",
                    (
                        c.value,
                        self._idx(c.dst),
                        self._idx(c.cond) if c.cond is not None else None,
                    ),
                )
            )
        self._reg_d = [self._idx(r.d) for r in self.netlist.regs]
        self._reg_q = [self._idx(r.q) for r in self.netlist.regs]
        self._reg_state = [Logic.UNDEF] * len(self.netlist.regs)
        self._pokes: dict[int, Logic] = {}
        self.cycle = 0
        #: Work counter: statement executions.
        self.executions = 0

    def _idx(self, net: Net) -> int:
        return self._index[self._canon[net.id]]

    # -- mirror of the Simulator poke/peek API -----------------------------

    def poke(self, path: str, value) -> None:
        from ..core.simulator import _coerce_bits

        nets = self._nets_of(path)
        for net, bit in zip(nets, _coerce_bits(value, len(nets), path)):
            self._pokes[self._idx(net)] = bit

    def peek(self, path: str) -> list[Logic]:
        return [self.values[self._idx(n)] for n in self._nets_of(path)]

    def peek_int(self, path: str) -> int | None:
        from ..core.values import num_of

        return num_of([v.to_boolean() for v in self.peek(path)])

    def _nets_of(self, path: str):
        signals = self.netlist.signals
        if path in signals:
            return signals[path]
        qualified = f"{self.design.name}.{path}"
        if qualified in signals:
            return signals[qualified]
        raise KeyError(f"unknown signal path {path!r}")

    # -- evaluation -----------------------------------------------------------

    def step(self, cycles: int = 1) -> None:
        for _ in range(cycles):
            self.evaluate()
            for ri, di in enumerate(self._reg_d):
                v = self.values[di]
                if v is not Logic.NOINFL:
                    self._reg_state[ri] = v
            self.cycle += 1

    def evaluate(self) -> None:
        n = len(self.values)
        self.values = [Logic.UNDEF] * n
        for i, v in self._pokes.items():
            self.values[i] = v
        for ri, qi in enumerate(self._reg_q):
            self.values[qi] = self._reg_state[ri]
        for _ in range(self.sweeps):
            for step in self._steps:
                self.executions += 1
                self._execute(step)
            # Re-force inputs and register outputs (a naive interpreter
            # would not let assignments clobber them either).
            for i, v in self._pokes.items():
                self.values[i] = v
            for ri, qi in enumerate(self._reg_q):
                self.values[qi] = self._reg_state[ri]

    def _execute(self, step: _Step) -> None:
        if step.kind == "gate":
            op, ins, out = step.payload
            if op == "RANDOM":
                self.values[out] = (
                    Logic.ONE if self.rng.random() < 0.5 else Logic.ZERO
                )
                return
            vals = [self.values[i].to_boolean() for i in ins]
            if op == "EQUAL":
                # One defined, differing bit position settles it to ZERO
                # even if other positions are undefined (section 8).
                half = len(vals) // 2
                result = Logic.ONE
                for x, y in zip(vals[:half], vals[half:]):
                    if x.is_defined and y.is_defined:
                        if x is not y:
                            result = Logic.ZERO
                            break
                    else:
                        result = Logic.UNDEF
                self.values[out] = result
                return
            result = GATE_FUNCTIONS[op](vals)
            self.values[out] = Logic.UNDEF if result is None else result
            return
        if step.kind == "conn":
            src, dst, cond = step.payload
            if cond is None or self.values[cond].to_boolean() is Logic.ONE:
                # Last writer wins -- no multi-driver detection.
                self.values[dst] = self.values[src]
            return
        value, dst, cond = step.payload
        if cond is None or self.values[cond].to_boolean() is Logic.ONE:
            self.values[dst] = value
