"""A switch-level MOS simulator baseline (Bryant 1981 style).

The paper claims (section 1) that "the semantics of Zeus imply a
simulator which is conceptually simpler than state-of-the-art
switch-level circuit simulators".  To measure that, this module
implements the kind of simulator Zeus is compared against: transistor
networks with node states {0, 1, X}, signal strengths (driven inputs
beat charged storage nodes), bidirectional conduction and relaxation to
a fixpoint.

The model (a faithful small subset of Bryant's):

* nodes are ``input`` (externally forced: VDD, GND, primary inputs) or
  ``storage`` (charge-retaining);
* transistors conduct by gate value: NMOS on gate 1, PMOS on gate 0;
  an X gate *may* conduct;
* each evaluation step partitions nodes into components connected by
  definitely-ON transistors, resolves each component to the strongest
  driven value (conflict -> X), then re-partitions including maybe-ON
  transistors -- if the optimistic and pessimistic results differ the
  node goes to X;
* steps repeat until a fixpoint (feedback needs iteration -- the
  structural reason this is heavier than the Zeus dataflow pass).

The work counters (``iterations``, ``component_scans``) feed experiment
E10 of EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum


class SState(Enum):
    """Switch-level node value."""

    ZERO = "0"
    ONE = "1"
    X = "X"

    def __str__(self) -> str:
        return self.value


def _merge(values: set[SState]) -> SState:
    if not values:
        return SState.X
    if len(values) == 1:
        return next(iter(values))
    return SState.X


@dataclass
class Transistor:
    kind: str  # "n" or "p"
    gate: int
    a: int
    b: int

    def conduction(self, gate_value: SState) -> str:
        """"on", "off" or "maybe" given the gate value."""
        if gate_value is SState.X:
            return "maybe"
        on = (self.kind == "n") == (gate_value is SState.ONE)
        return "on" if on else "off"


@dataclass
class SwitchCircuit:
    """A transistor netlist with named nodes."""

    names: list[str] = field(default_factory=list)
    is_input: list[bool] = field(default_factory=list)
    transistors: list[Transistor] = field(default_factory=list)
    by_name: dict[str, int] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.vdd = self.node("VDD", is_input=True)
        self.gnd = self.node("GND", is_input=True)

    def node(self, name: str, *, is_input: bool = False) -> int:
        if name in self.by_name:
            return self.by_name[name]
        idx = len(self.names)
        self.names.append(name)
        self.is_input.append(is_input)
        self.by_name[name] = idx
        return idx

    def nmos(self, gate: int, a: int, b: int) -> None:
        self.transistors.append(Transistor("n", gate, a, b))

    def pmos(self, gate: int, a: int, b: int) -> None:
        self.transistors.append(Transistor("p", gate, a, b))

    # -- standard CMOS cells -------------------------------------------------

    def inverter(self, inp: int, out: int) -> None:
        self.pmos(inp, self.vdd, out)
        self.nmos(inp, self.gnd, out)

    def nand2(self, a: int, b: int, out: int) -> None:
        mid = self.node(f"$n{len(self.names)}")
        self.pmos(a, self.vdd, out)
        self.pmos(b, self.vdd, out)
        self.nmos(a, out, mid)
        self.nmos(b, mid, self.gnd)

    def nor2(self, a: int, b: int, out: int) -> None:
        mid = self.node(f"$n{len(self.names)}")
        self.pmos(a, self.vdd, mid)
        self.pmos(b, mid, out)
        self.nmos(a, self.gnd, out)
        self.nmos(b, self.gnd, out)

    def and2(self, a: int, b: int, out: int) -> None:
        t = self.node(f"$n{len(self.names)}")
        self.nand2(a, b, t)
        self.inverter(t, out)

    def or2(self, a: int, b: int, out: int) -> None:
        t = self.node(f"$n{len(self.names)}")
        self.nor2(a, b, t)
        self.inverter(t, out)

    def xor2(self, a: int, b: int, out: int) -> None:
        na = self.node(f"$n{len(self.names)}")
        nb = self.node(f"$n{len(self.names)}")
        t1 = self.node(f"$n{len(self.names)}")
        t2 = self.node(f"$n{len(self.names)}")
        self.inverter(a, na)
        self.inverter(b, nb)
        self.and2(a, nb, t1)
        self.and2(na, b, t2)
        self.or2(t1, t2, out)

    @property
    def transistor_count(self) -> int:
        return len(self.transistors)


class SwitchSimulator:
    """Relaxation evaluation of a :class:`SwitchCircuit`."""

    def __init__(self, circuit: SwitchCircuit, max_iterations: int = 200):
        self.circuit = circuit
        self.max_iterations = max_iterations
        n = len(circuit.names)
        self.values: list[SState] = [SState.X] * n
        self.forced: dict[int, SState] = {
            circuit.vdd: SState.ONE,
            circuit.gnd: SState.ZERO,
        }
        # Work counters for the comparison experiment.
        self.iterations = 0
        self.component_scans = 0
        self._retained: list[SState] = list(self.values)
        self._adj: list[list[Transistor]] = [[] for _ in range(n)]
        for t in circuit.transistors:
            self._adj[t.a].append(t)
            self._adj[t.b].append(t)

    def poke(self, name: str, value: int | SState) -> None:
        idx = self.circuit.by_name[name]
        if not self.circuit.is_input[idx]:
            raise ValueError(f"{name!r} is not an input node")
        if isinstance(value, int):
            value = SState.ONE if value else SState.ZERO
        self.forced[idx] = value

    def peek(self, name: str) -> SState:
        return self.values[self.circuit.by_name[name]]

    def settle(self) -> int:
        """Evaluate to a fixpoint; returns the number of sweeps.

        Charge retention references the node value at the *start* of the
        settle call (the previous stable state): in the zero-delay ideal,
        conduction states change atomically, so transient glitches during
        relaxation must not stick to isolated (dynamic storage) nodes."""
        for idx, v in self.forced.items():
            self.values[idx] = v
        self._retained = list(self.values)
        for sweep in range(self.max_iterations):
            self.iterations += 1
            new = self._sweep()
            if new == self.values:
                return sweep + 1
            self.values = new
        return self.max_iterations

    def _sweep(self) -> list[SState]:
        values = self.values
        new = list(values)
        n = len(values)
        for node in range(n):
            if node in self.forced:
                new[node] = self.forced[node]
                continue
            sure = self._component(node, values, include_maybe=False)
            sure_driven = {
                self.forced[m] for m in sure if m in self.forced
            }
            optimistic = _merge(sure_driven) if sure_driven else None
            wide = self._component(node, values, include_maybe=True)
            wide_driven = {self.forced[m] for m in wide if m in self.forced}
            pessimistic = _merge(wide_driven) if wide_driven else None
            if optimistic is None and pessimistic is None:
                # Isolated: charge retention keeps the pre-settle value.
                new[node] = self._retained[node]
            elif optimistic == pessimistic and optimistic is not None:
                new[node] = optimistic
            elif optimistic is None:
                # Only maybe-connected to drivers: X unless charge agrees.
                new[node] = SState.X
            else:
                new[node] = SState.X if optimistic != pessimistic else optimistic
        return new

    def _component(
        self, start: int, values: list[SState], *, include_maybe: bool
    ) -> set[int]:
        self.component_scans += 1
        seen = {start}
        stack = [start]
        while stack:
            node = stack.pop()
            for t in self._adj[node]:
                mode = t.conduction(values[t.gate])
                if mode == "off" or (mode == "maybe" and not include_maybe):
                    continue
                other = t.b if t.a == node else t.a
                if other not in seen:
                    seen.add(other)
                    # A driven node clamps its region: record it as a
                    # driver of the component but do not conduct through
                    # it (its value is set by the source, not the path).
                    if other not in self.forced:
                        stack.append(other)
        return seen


def build_ripple_adder(width: int) -> tuple[SwitchCircuit, dict[str, list[str]]]:
    """A CMOS ripple-carry adder (for the E10 comparison): returns the
    circuit and the port name lists (a, b, s, plus cin/cout)."""
    c = SwitchCircuit()
    a = [c.node(f"a{i}", is_input=True) for i in range(width)]
    b = [c.node(f"b{i}", is_input=True) for i in range(width)]
    cin = c.node("cin", is_input=True)
    s = [c.node(f"s{i}") for i in range(width)]
    carry = cin
    for i in range(width):
        x1 = c.node(f"$x1_{i}")
        c.xor2(a[i], b[i], x1)
        c.xor2(x1, carry, s[i])
        g1 = c.node(f"$g1_{i}")
        g2 = c.node(f"$g2_{i}")
        c.and2(a[i], b[i], g1)
        c.and2(x1, carry, g2)
        nxt = c.node(f"c{i + 1}")
        c.or2(g1, g2, nxt)
        carry = nxt
    ports = {
        "a": [f"a{i}" for i in range(width)],
        "b": [f"b{i}" for i in range(width)],
        "s": [f"s{i}" for i in range(width)],
        "cin": ["cin"],
        "cout": [f"c{width}"],
    }
    return c, ports
