"""The Zeus standard distribution: the paper's example programs, the
extension circuits (AM2901, systolic stack, dictionary machine), and a
reusable block library."""

from . import extras, library, programs
from .extras import EXTRA_PROGRAMS
from .programs import ALL_PROGRAMS

__all__ = ["ALL_PROGRAMS", "EXTRA_PROGRAMS", "extras", "library", "programs"]
