"""Extension circuits for the language test cases the abstract lists:
"AM2901, dictionary machines, systolic stacks" (experiment E11).

The report does not give listings for these, so each is an original Zeus
program in the paper's style, exercising the same constructs:

* :data:`SYSTOLIC_STACK` -- a Guibas/Liang-style stack: a register array
  shifting under push/pop commands with occupancy bits;
* :data:`AM2901` -- a 4-bit ALU slice in the AM2901 tradition: a 16x4
  register file (NUM-addressed REG RAM), a Q register, operand source
  selection, eight ALU functions and destination control;
* :data:`DICTIONARY` -- a content-addressable dictionary machine in the
  Ottmann/Rosenberg/Stockmeyer spirit: keys stored at the leaves of a
  binary tree, a broadcast query, and a pipelined OR-reduction tree of
  registers (one level per cycle, throughput one query per cycle).
"""

from __future__ import annotations

from .programs import PRELUDE

SYSTOLIC_STACK = """
TYPE bo(n) = ARRAY [1..n] OF boolean;
reg(n) = ARRAY [1..n] OF REG;

stack(depth, width) = COMPONENT (IN push, pop: boolean; IN din: bo(width);
                                 OUT top: bo(width); OUT empty: boolean) IS
SIGNAL cell: ARRAY [1..depth] OF reg(width);
       occ: ARRAY [1..depth] OF REG;
{ ORDER lefttoright FOR i := 1 TO depth DO cell[i] END END }
BEGIN
    IF RSET THEN
        FOR i := 1 TO depth DO occ[i].in := 0 END;
    ELSE
        IF push THEN
            cell[1].in := din;
            occ[1].in := 1;
            FOR i := 2 TO depth DO
                cell[i].in := cell[i-1].out;
                occ[i].in := occ[i-1].out;
            END;
        END;
        IF pop THEN
            FOR i := 1 TO depth-1 DO
                cell[i].in := cell[i+1].out;
                occ[i].in := occ[i+1].out;
            END;
            cell[depth].in := BIN(0, width);
            occ[depth].in := 0;
        END;
    END;
    top := cell[1].out;
    empty := NOT occ[1].out
END;

SIGNAL stk: stack(8, 4);
"""


def systolic_stack(depth: int, width: int) -> str:
    return SYSTOLIC_STACK.replace("stack(8, 4)", f"stack({depth}, {width})")


AM2901 = PRELUDE + """
TYPE addc(n) = COMPONENT (IN a, b: bo(n); IN cin: boolean) : bo(n+1) IS
<* ripple sum with the carry as the extra top bit *>
SIGNAL s: bo(n+1);
       carry: ARRAY [1..n+1] OF boolean;
BEGIN
    carry[1] := cin;
    FOR i := 1 TO n DO
        carry[i+1] := OR(AND(a[i], b[i]), AND(XOR(a[i], b[i]), carry[i]));
        s[i] := XOR(XOR(a[i], b[i]), carry[i])
    END;
    s[n+1] := carry[n+1];
    RESULT s
END;

am2901 = COMPONENT (IN d: bo(4);            <* direct data input *>
                    IN aaddr, baddr: bo(4); <* register file addresses *>
                    IN src: bo(3);          <* operand source select *>
                    IN func: bo(3);         <* ALU function select *>
                    IN dest: bo(2);         <* destination control *>
                    OUT y: bo(4);
                    OUT cout, zero: boolean) IS
SIGNAL ram: ARRAY [0..15] OF ARRAY [1..4] OF REG;
       q: ARRAY [1..4] OF REG;
       a, b: ARRAY [1..4] OF multiplex;
       r, s: ARRAY [1..4] OF multiplex;
       rb, sb, f: bo(4);
       fc: ARRAY [1..5] OF multiplex;
       coutm: multiplex;
BEGIN
    a := ram[NUM(aaddr)].out;
    b := ram[NUM(baddr)].out;

    <* operand sources: 0 AQ, 1 AB, 2 ZQ, 3 ZB, 4 ZA, 5 DA, 6 DQ, 7 DZ *>
    IF EQUAL(src, BIN(0,3)) THEN r := a; s := q.out END;
    IF EQUAL(src, BIN(1,3)) THEN r := a; s := b END;
    IF EQUAL(src, BIN(2,3)) THEN r := BIN(0,4); s := q.out END;
    IF EQUAL(src, BIN(3,3)) THEN r := BIN(0,4); s := b END;
    IF EQUAL(src, BIN(4,3)) THEN r := BIN(0,4); s := a END;
    IF EQUAL(src, BIN(5,3)) THEN r := d; s := a END;
    IF EQUAL(src, BIN(6,3)) THEN r := d; s := q.out END;
    IF EQUAL(src, BIN(7,3)) THEN r := d; s := BIN(0,4) END;
    rb := r;
    sb := s;

    <* functions: 0 ADD, 1 SUBR (s-r), 2 SUBS (r-s), 3 OR, 4 AND,
       5 NOTRS (NOT r AND s), 6 EXOR, 7 EXNOR *>
    IF EQUAL(func, BIN(0,3)) THEN fc := addc[4](rb, sb, 0) END;
    IF EQUAL(func, BIN(1,3)) THEN fc := addc[4](NOT rb, sb, 1) END;
    IF EQUAL(func, BIN(2,3)) THEN fc := addc[4](rb, NOT sb, 1) END;
    IF EQUAL(func, BIN(3,3)) THEN fc := (OR(rb, sb), 0) END;
    IF EQUAL(func, BIN(4,3)) THEN fc := (AND(rb, sb), 0) END;
    IF EQUAL(func, BIN(5,3)) THEN fc := (AND(NOT rb, sb), 0) END;
    IF EQUAL(func, BIN(6,3)) THEN fc := (XOR(rb, sb), 0) END;
    IF EQUAL(func, BIN(7,3)) THEN fc := (NOT XOR(rb, sb), 0) END;
    f := fc[1..4];
    coutm := fc[5];
    cout := coutm;
    zero := EQUAL(f, BIN(0,4));
    y := f;

    <* destinations: 0 none, 1 Q := F, 2 RAM[B] := F, 3 both *>
    IF EQUAL(dest, BIN(1,2)) THEN q.in := f END;
    IF EQUAL(dest, BIN(2,2)) THEN ram[NUM(baddr)].in := f END;
    IF EQUAL(dest, BIN(3,2)) THEN
        q.in := f;
        ram[NUM(baddr)].in := f;
    END;
END;

SIGNAL alu: am2901;
"""


DICTIONARY = """
TYPE bo(n) = ARRAY [1..n] OF boolean;

ortree(n) = <* pipelined OR reduction, one register level per stage *>
COMPONENT (IN in: ARRAY [1..n] OF boolean; OUT out: boolean) IS
SIGNAL left, right: ortree(n DIV 2);
       r: REG;
BEGIN
    WHEN n = 1 THEN
        r(in[1], out)
    OTHERWISE
        left.in := in[1 .. n DIV 2];
        right.in := in[n DIV 2 + 1 .. n];
        r(OR(left.out, right.out), out)
    END
END;

dictionary(slots, abits, w) = <* content-addressable dictionary machine *>
COMPONENT (IN load, del: boolean; IN slot: bo(abits); IN key: bo(w);
           IN query: bo(w); OUT member: boolean) IS
TYPE reg(n) = ARRAY [1..n] OF REG;
SIGNAL store: ARRAY [0..slots-1] OF reg(w);
       valid: ARRAY [0..slots-1] OF REG;
       hit: ARRAY [1..slots] OF boolean;
       answer: ortree(slots);
BEGIN
    IF RSET THEN
        FOR i := 0 TO slots-1 DO valid[i].in := 0 END;
    ELSE
        IF load THEN
            store[NUM(slot)].in := key;
            valid[NUM(slot)].in := 1;
        END;
        IF del THEN
            valid[NUM(slot)].in := 0;
        END;
    END;
    FOR i := 1 TO slots DO
        hit[i] := AND(valid[i-1].out, EQUAL(store[i-1].out, query));
    END;
    answer.in := hit;
    member := answer.out
END;

SIGNAL dict: dictionary(8, 3, 6);
"""


def dictionary(slots: int, abits: int, w: int) -> str:
    return DICTIONARY.replace(
        "dictionary(8, 3, 6)", f"dictionary({slots}, {abits}, {w})"
    )


EXTRA_PROGRAMS: dict[str, str] = {
    "stack": SYSTOLIC_STACK,
    "am2901": AM2901,
    "dictionary": DICTIONARY,
}


#: An odd-even transposition sorting network (Kung 1979-style systolic
#: sorting): n combinational stages of compare-exchange cells over
#: multiplex stage arrays.
SORTER = PRELUDE + """
TYPE sorter(n, w) = COMPONENT (IN din: ARRAY [1..n] OF bo(w);
                               OUT dout: ARRAY [1..n] OF bo(w)) IS
SIGNAL stage: ARRAY [0..n] OF ARRAY [1..n] OF ARRAY [1..w] OF multiplex;
BEGIN
    FOR i := 1 TO n DO stage[0][i] := din[i] END;
    FOR t := 1 TO n DO
        FOR i := 1 TO n DO
            WHEN (i MOD 2 = t MOD 2) AND (i < n) THEN
                <* compare-exchange lead: pair (i, i+1) *>
                IF lt(stage[t-1][i+1], stage[t-1][i]) THEN
                    stage[t][i] := stage[t-1][i+1];
                    stage[t][i+1] := stage[t-1][i];
                ELSE
                    stage[t][i] := stage[t-1][i];
                    stage[t][i+1] := stage[t-1][i+1];
                END;
            OTHERWISEWHEN (i > 1) AND ((i-1) MOD 2 = t MOD 2) THEN
                <* trailing element: handled by its lead *>
            OTHERWISE
                stage[t][i] := stage[t-1][i];
            END;
        END;
    END;
    FOR i := 1 TO n DO dout[i] := stage[n][i] END;
END;

SIGNAL srt: sorter(4, 4);
"""


def sorter(n: int, w: int) -> str:
    return SORTER.replace("sorter(4, 4)", f"sorter({n}, {w})")


#: A transposed-form systolic FIR filter: the input broadcasts to every
#: tap cell, partial sums march toward the output one register per cell
#: -- y(t) = sum_j coef[j] * x(t - j) (mod 2^w).
FIR = PRELUDE + """
TYPE gated(w) = COMPONENT (IN xin: bo(w); IN c: boolean) : bo(w) IS
SIGNAL g: bo(w);
BEGIN
    FOR k := 1 TO w DO g[k] := AND(xin[k], c) END;
    RESULT g
END;

fir(taps, w) = COMPONENT (IN x: bo(w); IN coef: ARRAY [1..taps] OF boolean;
                          OUT y: bo(w)) IS
TYPE reg(n) = ARRAY [1..n] OF REG;
SIGNAL s: ARRAY [1..taps] OF reg(w);
{ ORDER righttoleft FOR i := 1 TO taps DO s[i] END END }
BEGIN
    IF RSET THEN
        FOR i := 1 TO taps DO s[i].in := BIN(0, w) END;
    ELSE
        FOR i := 1 TO taps-1 DO
            s[i].in := plus(s[i+1].out, gated[w](x, coef[i]));
        END;
        s[taps].in := gated[w](x, coef[taps]);
    END;
    y := s[1].out
END;

SIGNAL filt: fir(4, 8);
"""


def fir(taps: int, w: int) -> str:
    return FIR.replace("fir(4, 8)", f"fir({taps}, {w})")


EXTRA_PROGRAMS["sorter"] = SORTER
EXTRA_PROGRAMS["fir"] = FIR


#: A complete single-cycle accumulator computer in Zeus: program counter,
#: instruction and data memories (NUM-addressed REG RAMs), an 8-bit
#: accumulator and an 8-instruction ISA.  Opcode (bits 5..8 of the
#: instruction word) / operand (bits 1..4):
#:   0 NOP | 1 LDI imm | 2 LDA addr | 3 STA addr | 4 ADD addr
#:   5 SUB addr | 6 JMP addr | 7 JNZ addr | 8 HLT
TINYCPU = PRELUDE + """
TYPE reg(n) = ARRAY [1..n] OF REG;

tinycpu = COMPONENT (IN iload: boolean;      <* program-load mode *>
                     IN iaddr: bo(4);
                     IN idata: bo(8);
                     OUT accout: bo(8);
                     OUT pcout: bo(4);
                     OUT halted: boolean) IS
CONST nop = BIN(0,4); ldi = BIN(1,4); lda = BIN(2,4); sta = BIN(3,4);
      add = BIN(4,4); sub = BIN(5,4); jmp = BIN(6,4); jnz = BIN(7,4);
      hlt = BIN(8,4);
SIGNAL imem: ARRAY [0..15] OF reg(8);
       dmem: ARRAY [0..15] OF reg(8);
       pc: reg(4);
       acc: reg(8);
       halt: REG;
       instr: bo(8);
       op, arg: bo(4);
       running, accnz: boolean;
       memval: ARRAY [1..8] OF multiplex;
BEGIN
    instr := imem[NUM(pc.out)].out;
    op := instr[5..8];
    arg := instr[1..4];
    running := AND(NOT iload, NOT halt.out, NOT RSET);
    memval := dmem[NUM(arg)].out;
    accnz := NOT EQUAL(acc.out, BIN(0,8));

    IF RSET THEN
        pc.in := BIN(0,4);
        halt.in := 0;
        acc.in := BIN(0,8);
    END;
    IF iload THEN
        imem[NUM(iaddr)].in := idata;
    END;

    IF running THEN
        <* execute *>
        IF EQUAL(op, ldi) THEN acc.in := (arg, BIN(0,4)) END;
        IF EQUAL(op, lda) THEN acc.in := memval END;
        IF EQUAL(op, sta) THEN dmem[NUM(arg)].in := acc.out END;
        IF EQUAL(op, add) THEN acc.in := plus(acc.out, memval) END;
        IF EQUAL(op, sub) THEN acc.in := minus(acc.out, memval) END;
        IF EQUAL(op, hlt) THEN halt.in := 1 END;

        <* next pc: jumps win, everything else increments *>
        IF EQUAL(op, jmp) THEN pc.in := arg END;
        IF EQUAL(op, jnz) THEN
            IF accnz THEN pc.in := arg
            ELSE pc.in := plus(pc.out, BIN(1,4))
            END;
        END;
        IF AND(NOT EQUAL(op, jmp), NOT EQUAL(op, jnz)) THEN
            pc.in := plus(pc.out, BIN(1,4));
        END;
    END;

    accout := acc.out;
    pcout := pc.out;
    halted := halt.out
END;

SIGNAL cpu: tinycpu;
"""

EXTRA_PROGRAMS["tinycpu"] = TINYCPU


#: A tiny assembler for the TINYCPU ISA (mnemonic -> 8-bit word).
_CPU_OPCODES = {
    "NOP": 0, "LDI": 1, "LDA": 2, "STA": 3,
    "ADD": 4, "SUB": 5, "JMP": 6, "JNZ": 7, "HLT": 8,
}


def assemble(listing: str) -> list[int]:
    """Assemble 'MNEMONIC [operand]' lines (with ; comments and blank
    lines) into instruction words for the TINYCPU."""
    words: list[int] = []
    for raw in listing.strip().splitlines():
        line = raw.split(";")[0].strip()
        if not line:
            continue
        parts = line.split()
        op = _CPU_OPCODES[parts[0].upper()]
        arg = int(parts[1], 0) if len(parts) > 1 else 0
        if not 0 <= arg < 16:
            raise ValueError(f"operand out of range in {raw!r}")
        words.append((op << 4) | arg)
    if len(words) > 16:
        raise ValueError("program does not fit in 16 instruction words")
    return words
