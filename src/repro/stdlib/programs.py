"""The paper's example programs (section 10 and others), as Zeus sources.

Each constant is a complete compilable program.  Where the report's
listings contain obvious typos or elisions, we repair/reconstruct them and
say so here (the benchmark suite validates every repair functionally):

* ``ycard`` for the paper's ``yeard``/``ycard``/``yerd`` spelling drift;
  ``EQUAL(state.out, end)`` for ``EQUAL(state, end)``; the comparison
  signals ``scorelt22``/``scorege17`` are declared *multiplex* because
  they are assigned under the reset ELSE (a conditional assignment, which
  the paper's own type rules forbid for plain local booleans);
* the arithmetic helpers ``plus``/``minus``/``lt``/``ge`` the Blackjack
  listing marks as "available" are implemented as parameterized function
  components (ripple-carry / two's complement);
* ``tree``: added the missing ``.in`` selector in ``h[2*i+1]``; the
  recursive variant is rebuilt without the inconsistent ``preleaf`` layer
  (the paper's version wires n/2 leaves from an n/2-leaf subtree);
* ``patternmatch``: the accumulator body (elided in the report after
  ``IF RSET THEN tp.in := 1``) is reconstructed in the Foster/Kung style
  using exactly the report's register inventory (tp, l, x, r): the
  stationary ``tp`` accumulates AND(tp, OR(x, d)) and hands its value to
  the leftward-moving result stream when the end-of-pattern marker passes;
  the ``resultin := 0`` statement (an illegal assignment to a formal IN
  parameter) is dropped -- the testbench drives resultin with 0;
* ``routingnetwork``: ``bit(n)`` is ``ARRAY[1..n]`` (the report says
  ``[0..10]``), and the elided ``router`` body is a straight-through 2x2
  router, which makes the network compute exactly the recursive butterfly
  permutation the example is about.
"""

from __future__ import annotations

#: Shared prelude: bit vectors and ripple-carry arithmetic function
#: components (the "available" helpers of the Blackjack example).
PRELUDE = """
TYPE bo(n) = ARRAY [1..n] OF boolean;

plus(n) = COMPONENT (IN term1, term2: bo(n)) : bo(n) IS
SIGNAL s: bo(n);
       carry: ARRAY [1..n] OF boolean;
BEGIN
    carry[1] := 0;
    FOR i := 1 TO n-1 DO
        carry[i+1] := OR(AND(term1[i], term2[i]),
                         AND(XOR(term1[i], term2[i]), carry[i]))
    END;
    FOR i := 1 TO n DO
        s[i] := XOR(XOR(term1[i], term2[i]), carry[i])
    END;
    RESULT s
END;

minus(n) = COMPONENT (IN term1, term2: bo(n)) : bo(n) IS
SIGNAL s: bo(n);
       nb: bo(n);
       carry: ARRAY [1..n] OF boolean;
BEGIN
    nb := NOT term2;
    carry[1] := 1;
    FOR i := 1 TO n-1 DO
        carry[i+1] := OR(AND(term1[i], nb[i]),
                         AND(XOR(term1[i], nb[i]), carry[i]))
    END;
    FOR i := 1 TO n DO
        s[i] := XOR(XOR(term1[i], nb[i]), carry[i])
    END;
    RESULT s
END;

lt(n) = COMPONENT (IN term1, term2: bo(n)) : boolean IS
SIGNAL nb: bo(n);
       carry: ARRAY [1..n+1] OF boolean;
BEGIN
    nb := NOT term2;
    carry[1] := 1;
    FOR i := 1 TO n DO
        carry[i+1] := OR(AND(term1[i], nb[i]),
                         AND(XOR(term1[i], nb[i]), carry[i]))
    END;
    RESULT NOT carry[n+1]
END;

ge(n) = COMPONENT (IN term1, term2: bo(n)) : boolean IS
BEGIN
    RESULT NOT lt(term1, term2)
END;
"""

#: Section 3.2 / 10: half adder, full adder, ripple-carry adders.
ADDERS = """
TYPE bo(n) = ARRAY [1..n] OF boolean;

halfadder = COMPONENT (IN a, b: boolean; OUT cout, s: boolean) IS
BEGIN
    s := XOR(a, b);
    cout := AND(a, b)
END;

fulladder = COMPONENT (IN a, b, cin: boolean; OUT cout, s: boolean) IS
SIGNAL h1, h2: halfadder;
BEGIN
    h1(a, b, *, h2.a);
    h2(h1.s, cin, *, s);   <* the * indicates that no connection is made *>
    cout := OR(h1.cout, h2.cout)
END;

rippleCarry4 = COMPONENT (IN a, b: bo(4); IN cin: boolean;
                          OUT cout: boolean; OUT s: bo(4)) IS
SIGNAL add: ARRAY [1..4] OF fulladder;
       h: bo(5);
{ ORDER lefttoright FOR i := 1 TO 4 DO add[i] END END }
BEGIN
    SEQUENTIAL
        h[1] := cin;
        FOR i := 1 TO 4 DO SEQUENTIALLY
            add[i](a[i], b[i], h[i], h[i+1], s[i]);
        END;
        cout := h[5];
    END
END;

rippleCarry(length) = COMPONENT (IN a, b: ARRAY[1..length] OF boolean;
                                 IN cin: boolean; OUT cout: boolean;
                                 OUT s: ARRAY[1..length] OF boolean) IS
SIGNAL add: ARRAY [1..length] OF fulladder;
{ ORDER lefttoright FOR i := 1 TO length DO add[i] END END }
BEGIN
    SEQUENTIAL
        add[1](a[1], b[1], cin, add[2].cin, s[1]);
        FOR i := 2 TO length-1 DO SEQUENTIALLY
            add[i](a[i], b[i], *, add[i+1].cin, s[i]);
        END;
        add[length](a[length], b[length], *, cout, s[length]);
    END
END;

SIGNAL adder4: rippleCarry4;
SIGNAL adder: rippleCarry(4);
"""


def ripple_carry(width: int) -> str:
    """The ADDERS program with a top-level adder of the given width."""
    return ADDERS.replace("SIGNAL adder: rippleCarry(4);",
                          f"SIGNAL adder: rippleCarry({width});")


#: Section 10: the Blackjack finite state machine (typos repaired; see the
#: module docstring).  States: start -> read -> sum -> firstace -> test
#: -> (read | end); end emits stand/broke.
BLACKJACK = PRELUDE + """
CONST start = (0,0,0);
      read = (0,0,1);
      sum = (0,1,0);
      firstace = (0,1,1);
      test = (1,0,0);
      end = (1,0,1);
      zero5 = (0,0,0,0,0);
      ten = BIN(10,5);

TYPE reg(n) = ARRAY [1..n] OF REG;

blackjack = COMPONENT (IN ycard: boolean; IN value: bo(5);
                       OUT hit, broke, stand: boolean) IS
SIGNAL score, card: reg(5);
       ace: REG;
       state: reg(3);
       scorelt22, scorege17: multiplex;
BEGIN
    IF RSET THEN state.in := start
    ELSE
        scorelt22 := lt(score.out, BIN(22,5));
        scorege17 := ge(score.out, BIN(17,5));
        <* state = start *>
        IF EQUAL(state.out, start) THEN
            score.in := zero5;
            ace.in := 0;
            state.in := read
        END;
        <* state = read *>
        IF EQUAL(state.out, read) THEN
            card.in := value;
            hit := 1;
            IF ycard THEN state.in := sum END;
        END;
        <* state = sum *>
        IF EQUAL(state.out, sum) THEN
            score.in := plus(score.out, card.out);
            state.in := firstace
        END;
        <* state = firstace *>
        IF EQUAL(state.out, firstace) THEN
            state.in := test;
            IF AND(EQUAL(card.out, BIN(1,5)), NOT ace.out) THEN
                score.in := plus(score.out, ten);
                ace.in := 1;
            END;
        END;
        <* state = test *>
        IF EQUAL(state.out, test) THEN
            IF NOT scorege17 THEN state.in := read
            ELSIF scorelt22 THEN state.in := end
            ELSIF ace.out THEN
                <* state.in stays test *>
                score.in := minus(score.out, ten);
                ace.in := 0;
            ELSE state.in := end <* busted with no ace: report broke.
                The report's listing omits this arm, leaving the machine
                stuck in `test` whenever score >= 22 without an ace. *>
            END;
        END;
        <* state = end *>
        IF EQUAL(state.out, end) THEN
            IF scorelt22 THEN stand := 1 ELSE broke := 1 END;
            IF ycard THEN state.in := start ELSE state.in := end END;
        END;
    END
END;

SIGNAL bj: blackjack;
"""

#: Section 10: binary broadcast trees, iterative and recursive.
TREES = """
TYPE q = COMPONENT (IN in: boolean; OUT out1, out2: boolean) IS
BEGIN
    out1 := in;
    out2 := in
END;

tree(n) = <* n a power of 2, n >= 4 *>
COMPONENT (IN in: boolean; OUT leaf: ARRAY [1..n] OF boolean) IS
SIGNAL h: ARRAY [1..n-1] OF q;
BEGIN
    h[1].in := in;
    FOR i := 1 TO n DIV 2 - 1 DO
        h[i](*, h[2*i].in, h[2*i+1].in);
    END;
    FOR i := 1 TO n DIV 2 DO
        h[i + n DIV 2 - 1](*, leaf[2*i-1], leaf[2*i]);
    END;
END;

rtree(n) = <* n a power of two, n >= 2 *>
COMPONENT (IN in: boolean; OUT leaf: ARRAY [1..n] OF boolean) IS
SIGNAL left, right: rtree(n DIV 2);
       root: q;
{ ORDER toptobottom
    root;
    ORDER lefttoright left; right END;
  END }
BEGIN
    WHEN n > 2 THEN
        root(in, left.in, right.in);
        FOR i := 1 TO n DIV 2 DO
            leaf[i] := left.leaf[i];
            leaf[i + n DIV 2] := right.leaf[i]
        END
    OTHERWISE <* n = 2 *>
        root(in, leaf[1], leaf[2])
    END
END;

SIGNAL a: tree(8);
SIGNAL b: rtree(8);
"""


def trees(n: int) -> str:
    """The TREES program with both top trees sized *n* (a power of two)."""
    return TREES.replace("tree(8)", f"tree({n})").replace("rtree(8)", f"rtree({n})")


#: Section 10: the H-tree with linear layout area.  The leaf drives the
#: shared multiplex line only when selected, so a single leaf may answer.
HTREE = """
TYPE htree(n) = <* binary tree with n leafs, n a power of 4 or 1 *>
COMPONENT (IN in: boolean; out: multiplex) { BOTTOM in; out } IS
TYPE leaftype = COMPONENT (IN in: boolean; out: multiplex) { BOTTOM in; out } IS
BEGIN
    IF in THEN out := 1 END
END;
SIGNAL s: ARRAY [1..4] OF htree(n DIV 4);
       leaf: leaftype;
{ ORDER lefttoright
    ORDER toptobottom s[1]; flip90 s[3] END;
    ORDER toptobottom s[2]; flip90 s[4] END;
  END }
BEGIN
    WHEN n > 1 THEN
        FOR i := 1 TO 4 DO
            s[i].in := in;
            out == s[i].out
        END
    OTHERWISE
        leaf.in := in;
        out == leaf.out
    END
END;

SIGNAL a: htree(16);
"""


def htree(n: int) -> str:
    """HTREE with the top instance sized *n* (a power of 4, or 1)."""
    return HTREE.replace("htree(16)", f"htree({n})")


#: Section 3.2: the four-way multiplexor function component.
MUX4 = """
TYPE bo(n) = ARRAY [1..n] OF boolean;

mux4 = COMPONENT (IN d: bo(4); IN a: bo(2); IN g: boolean) : boolean IS
CONST bit2 = ( (0,0), (0,1), (1,0), (1,1) );
SIGNAL h: multiplex;
BEGIN
    FOR i := 1 TO 4 DO
        IF EQUAL(a, bit2[i]) THEN h := d[i] END
    END;
    RESULT AND(NOT g, h)
END;

mux4top = COMPONENT (IN d: bo(4); IN a: bo(2); IN g: boolean;
                     OUT y: boolean) IS
BEGIN
    y := mux4(d, a, g)
END;

SIGNAL m: mux4top;
"""

#: Section 5: a RAM built from REG with NUM-decoded addressing.
MEMORY = """
TYPE bo(n) = ARRAY [1..n] OF boolean;

memory(words, width, abits) = COMPONENT (IN addr: bo(abits);
                                         IN data: bo(width);
                                         IN we: boolean;
                                         OUT q: bo(width)) IS
SIGNAL ram: ARRAY [0..words-1] OF ARRAY [1..width] OF REG;
BEGIN
    IF we THEN ram[NUM(addr)].in := data END;
    q := ram[NUM(addr)].out
END;

SIGNAL mem: memory(16, 8, 4);
"""


def memory(words: int, width: int, abits: int) -> str:
    return MEMORY.replace(
        "memory(16, 8, 4)", f"memory({words}, {width}, {abits})"
    )


#: Section 4.2: the HISDL routing network translated to Zeus.  The router
#: body (elided in the report) is a straight-through 2x2 router, so the
#: network realises the recursive butterfly wiring permutation.
ROUTING = """
TYPE bit(n) = ARRAY [1..n] OF boolean;
channel(n) = ARRAY [0..n] OF bit(10);

router = COMPONENT (IN inport0, inport1: bit(10);
                    OUT outport0, outport1: bit(10)) IS
BEGIN
    outport0 := inport0;
    outport1 := inport1
END;

routingnetwork(n) =
COMPONENT (IN input: channel(n-1); OUT output: channel(n-1)) IS
SIGNAL top, bottom: routingnetwork(n DIV 2);
       <* this hardware is only generated if it is used in connection
          or assignment statements later on *>
       c: ARRAY [0..n DIV 2 - 1] OF router;
BEGIN
    WHEN n = 2 THEN <* 2*2 router *>
        c[0](input[0], input[1], output[0], output[1])
    OTHERWISE
        <* decompose the routing network into a column of 2*2 routers
           and two half-sized sub-networks top and bottom *>
        FOR i := 0 TO n DIV 2 - 1 DO
            c[i](input[2*i], input[2*i+1], top.input[i], bottom.input[i]);
            output[i] := top.output[i];
            output[i + n DIV 2] := bottom.output[i]
        END;
    END;
END;

SIGNAL net: routingnetwork(8);
"""


def routing(n: int) -> str:
    """ROUTING with a top network of *n* channels (a power of two)."""
    return ROUTING.replace("routingnetwork(8);", f"routingnetwork({n});")


#: Section 10: the Foster/Kung systolic pattern matcher (see the module
#: docstring for the accumulator reconstruction).
PATTERNMATCH = """
TYPE patternmatch(length) = <* length odd *>
COMPONENT (IN pattern, string, endofpattern, wild, resultin: boolean;
           OUT result, endout, stringout, wildout, patternout: boolean) IS

TYPE comparator = COMPONENT (IN pin, sin: boolean;
                             OUT pout, dout, sout: boolean) IS
SIGNAL p, s: REG;
BEGIN
    p(pin, pout);
    s(sin, sout);
    <* the AND could be deleted for the 2 letter alphabet case *>
    dout := AND(1, EQUAL(p.out, s.out));
END;

accumulator = COMPONENT (IN d, lin, xin, rin: boolean;
                         OUT lout, xout, rout: boolean) IS
SIGNAL tp <* temporary result *>, l, x, r: REG;
BEGIN
    l(lin, lout);
    x(xin, xout);
    rout := r.out;
    IF RSET THEN
        tp.in := 1;
        r.in := 0;
    ELSE
        IF l.out THEN
            <* the end-of-pattern marker is here: emit the accumulated
               match onto the leftward result stream and restart *>
            r.in := AND(tp.out, OR(x.out, d));
            tp.in := 1;
        ELSE
            r.in := rin;
            tp.in := AND(tp.out, OR(x.out, d));
        END;
    END;
END;

SIGNAL pe: ARRAY [1..length] OF COMPONENT (comp: comparator;
                                           acc: accumulator) IS
BEGIN
    acc.d := comp.dout
END;
{ ORDER lefttoright
    FOR i := 1 TO length DO
        ORDER toptobottom
            WITH pe[i] DO comp; acc END;
        END;
    END
  END }
BEGIN
    SEQUENTIAL
        <* Connections to outside *>
        WITH pe[1] DO
            comp.pin := pattern;
            acc.lin := endofpattern;
            acc.xin := wild;
            result := acc.rout;
            stringout := comp.sout;
        END;
        WITH pe[length] DO
            patternout := comp.pout;
            comp.sin := string;
            wildout := acc.xout;
            acc.rin := resultin;
            endout := acc.lout;
        END;
    END;
    <* Internal connections *>
    FOR i := 2 TO length-1 DO
        WITH pe[i] DO
            comp(pe[i-1].comp.pout, pe[i+1].comp.sout,
                 pe[i+1].comp.pin, *, pe[i-1].comp.sin);
            acc(*, pe[i-1].acc.lout, pe[i-1].acc.xout, pe[i+1].acc.rout,
                pe[i+1].acc.lin, pe[i+1].acc.xin, pe[i-1].acc.rin);
        END
    END
END;

SIGNAL match: patternmatch(3);
"""


def patternmatch(length: int) -> str:
    """PATTERNMATCH with *length* cells (odd, >= 3 for internal wiring)."""
    return PATTERNMATCH.replace(
        "patternmatch(3);", f"patternmatch({length});"
    )


#: Section 8: the semantics example component (Fig. c) used to exercise
#: the firing-order machinery.
SECTION8 = """
TYPE c = COMPONENT (IN a, b, c, x, y, rin: boolean;
                    OUT rout: boolean; out: multiplex) IS
SIGNAL r: REG;
BEGIN
    IF x THEN out := AND(a, b) END;
    IF y THEN out := c END;
    r(rin, rout)
END;

SIGNAL fig: c;
"""

#: Section 6.4: the chessboard built from virtual signals and layout
#: replacement.  Black and white cells differ in their pass-through logic
#: so replacement is observable in simulation.
CHESSBOARD = """
TYPE black = COMPONENT (IN top, left: boolean; OUT bottom, right: boolean) IS
BEGIN
    bottom := top;
    right := left
END;
white = COMPONENT (IN top, left: boolean; OUT bottom, right: boolean) IS
BEGIN
    bottom := NOT top;
    right := NOT left
END;

chessboard(n) = COMPONENT (IN tin: ARRAY [1..n] OF boolean;
                           IN lin: ARRAY [1..n] OF boolean;
                           OUT bout: ARRAY [1..n] OF boolean;
                           OUT rout: ARRAY [1..n] OF boolean) IS
SIGNAL m: ARRAY [1..n, 1..n] OF virtual;
{ ORDER toptobottom
    FOR i := 1 TO n DO
        ORDER lefttoright
            FOR j := 1 TO n DO
                WHEN odd(i+j) THEN m[i,j] = black
                OTHERWISE m[i,j] = white
                END;
            END;
        END;
    END;
  END
  }
BEGIN
    FOR j := 1 TO n DO m[1,j].top := tin[j] END;
    FOR i := 1 TO n DO m[i,1].left := lin[i] END;
    FOR i := 2 TO n DO
        FOR j := 1 TO n DO m[i,j].top := m[i-1,j].bottom END;
    END;
    FOR i := 1 TO n DO
        FOR j := 2 TO n DO m[i,j].left := m[i,j-1].right END;
    END;
    FOR j := 1 TO n DO bout[j] := m[n,j].bottom END;
    FOR i := 1 TO n DO rout[i] := m[i,n].right END;
END;

SIGNAL board: chessboard(4);
"""


def chessboard(n: int) -> str:
    return CHESSBOARD.replace("chessboard(4);", f"chessboard({n});")


#: A textbook false-path demonstrator for the timing analyzer: the
#: deep arm (the AND chain ``slow``) is selected into ``m1`` only when
#: ``s`` is 1, but ``m2`` reads ``m1`` only when ``s`` is 0 — the
#: complementary guards make every slow->m1->m2 path statically
#: non-sensitizable, so SAT pruning demotes the raw critical path and
#: the reported one goes through the fast arm instead.
FALSEPATH = """
TYPE falsepath = COMPONENT (IN a, b, c, d, s: boolean;
                            OUT y: boolean) IS
SIGNAL m1, m2: multiplex;
SIGNAL slow: boolean;
BEGIN
    slow := AND(a, AND(b, AND(c, AND(d, a))));
    IF s THEN m1 := slow END;
    IF NOT(s) THEN m1 := a END;
    IF NOT(s) THEN m2 := AND(m1, b) END;
    IF s THEN m2 := c END;
    y := OR(m2, d)
END;

SIGNAL fp: falsepath;
"""


#: All named programs, for the CLI and the test suite.
ALL_PROGRAMS: dict[str, str] = {
    "adders": ADDERS,
    "blackjack": BLACKJACK,
    "trees": TREES,
    "htree": HTREE,
    "mux4": MUX4,
    "memory": MEMORY,
    "routing": ROUTING,
    "patternmatch": PATTERNMATCH,
    "section8": SECTION8,
    "chessboard": CHESSBOARD,
    "falsepath": FALSEPATH,
}
