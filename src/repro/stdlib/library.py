"""A reusable Zeus component library.

Beyond the paper's own examples, a language release needs a standard
block library.  Each builder returns a complete, compilable Zeus program
whose top instance is the block at the requested size (Zeus constant
expressions have no exponentiation or log, so sizes that involve 2^n are
expanded by the generator -- exactly the "meta language computing
hardware" reading of section 4.2).

Blocks:

* ``decoder(n)``     -- n-bit address to 2^n one-hot lines;
* ``encoder(n)``     -- 2^n one-hot lines to n-bit index (priority);
* ``muxn(k, w)``     -- k-way multiplexor of w-bit words (NUM-indexed);
* ``counter(n)``     -- n-bit synchronous up counter with enable;
* ``shiftreg(n)``    -- serial-in/parallel-out shift register;
* ``parity(n)``      -- XOR reduction;
* ``ltu(n)``         -- unsigned comparator (from the PRELUDE);
* ``comparator(n)``  -- unsigned eq/lt/gt comparator;
* ``lfsr(n)``        -- Fibonacci linear feedback shift register
  (taps at n and n-1).
"""

from __future__ import annotations

from .programs import PRELUDE

def decoder(n: int) -> str:
    """n-bit address -> 2^n one-hot lines (generated per size)."""
    lines = 1 << n
    return PRELUDE + f"""
TYPE decoder = COMPONENT (IN a: bo({n});
                          OUT line: ARRAY [0..{lines - 1}] OF boolean) IS
BEGIN
    FOR i := 0 TO {lines - 1} DO
        line[i] := EQUAL(a, BIN(i, {n}))
    END;
END;
SIGNAL top: decoder;
"""


def encoder(n: int) -> str:
    """2^n one-hot (or priority) lines -> n-bit index + valid."""
    lines = 1 << n
    arms = []
    for i in range(lines - 1, -1, -1):
        kw = "IF" if i == lines - 1 else "ELSIF"
        arms.append(f"    {kw} line[{i}] THEN idx := BIN({i}, {n}); some := 1")
    body = "\n".join(arms)
    return PRELUDE + f"""
TYPE encoder = COMPONENT (IN line: ARRAY [0..{lines - 1}] OF boolean;
                          OUT valid: boolean; OUT a: bo({n})) IS
SIGNAL idx: ARRAY [1..{n}] OF multiplex;
       some: multiplex;
BEGIN
{body}
    END;
    a := idx;
    valid := AND(1, some)
END;
SIGNAL top: encoder;
"""


def muxn(k: int, w: int) -> str:
    bits = max(1, (k - 1).bit_length())
    return PRELUDE + f"""
TYPE muxn = COMPONENT (IN d: ARRAY [0..{k - 1}] OF bo({w});
                       IN sel: bo({bits}); OUT y: bo({w})) IS
SIGNAL h: ARRAY [1..{w}] OF multiplex;
BEGIN
    h := d[NUM(sel)];
    y := h
END;
SIGNAL top: muxn;
"""


def counter(n: int) -> str:
    return PRELUDE + f"""
TYPE reg(n) = ARRAY [1..n] OF REG;
counter = COMPONENT (IN en: boolean; OUT count: bo({n}); OUT carry: boolean) IS
SIGNAL r: reg({n});
BEGIN
    IF RSET THEN r.in := BIN(0, {n})
    ELSE
        IF en THEN r.in := plus(r.out, BIN(1, {n})) END;
    END;
    count := r.out;
    carry := EQUAL(r.out, NOT BIN(0, {n}))
END;
SIGNAL top: counter;
"""


def shiftreg(n: int) -> str:
    return PRELUDE + f"""
TYPE reg(n) = ARRAY [1..n] OF REG;
shiftreg = COMPONENT (IN din, en: boolean; OUT q: bo({n})) IS
SIGNAL r: reg({n});
BEGIN
    IF en THEN
        r[1].in := din;
        FOR i := 2 TO {n} DO r[i].in := r[i-1].out END;
    END;
    q := r.out
END;
SIGNAL top: shiftreg;
"""


def parity(n: int) -> str:
    return PRELUDE + f"""
TYPE paritychk = COMPONENT (IN a: bo({n}); OUT odd1: boolean) IS
SIGNAL acc: bo({n});
BEGIN
    acc[1] := a[1];
    FOR i := 2 TO {n} DO acc[i] := XOR(acc[i-1], a[i]) END;
    odd1 := acc[{n}]
END;
SIGNAL top: paritychk;
"""


def comparator(n: int) -> str:
    return PRELUDE + f"""
TYPE cmp = COMPONENT (IN a, b: bo({n}); OUT eq, ltu, gtu: boolean) IS
BEGIN
    eq := EQUAL(a, b);
    ltu := lt(a, b);
    gtu := AND(NOT lt(a, b), NOT EQUAL(a, b))
END;
SIGNAL top: cmp;
"""


def lfsr(n: int) -> str:
    if n < 2:
        raise ValueError("lfsr needs n >= 2")
    return PRELUDE + f"""
TYPE reg(n) = ARRAY [1..n] OF REG;
lfsr = COMPONENT (IN en: boolean; OUT state: bo({n})) IS
SIGNAL r: reg({n});
BEGIN
    IF RSET THEN r.in := BIN(1, {n})
    ELSE
        IF en THEN
            r[1].in := XOR(r[{n}].out, r[{n - 1}].out);
            FOR i := 2 TO {n} DO r[i].in := r[i-1].out END;
        END;
    END;
    state := r.out
END;
SIGNAL top: lfsr;
"""


#: Program builders by block name, each taking a size.
BLOCKS = {
    "decoder": decoder,
    "encoder": encoder,
    "counter": counter,
    "shiftreg": shiftreg,
    "parity": parity,
    "comparator": comparator,
    "lfsr": lfsr,
}
