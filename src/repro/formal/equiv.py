"""Sequential equivalence checking by miter construction.

:func:`check_equivalence` builds both designs' frame encodings in one
shared :class:`ExprFactory`, renaming primary-input variables through
the ``input_key`` hook so both sides read the *same* variables — the
classic miter, minus the XOR tree: the "bad" expression is an OR of
``differs`` comparators over the paired OUT-pin bits, asked frame by
frame like any other BMC property and closed with k-induction on the
product machine.

Verdicts (surfaced by ``zeusc equiv`` as PROVED-EQUIVALENT /
COUNTEREXAMPLE / UNKNOWN):

* ``proved`` — every OUT pin agrees on every cycle, for all
  fully-defined primary inputs (the comparator is not Kleene-monotone,
  so proofs quantify over defined stimuli — the same vectors
  :mod:`repro.analysis.equiv` samples, all of them);
* ``counterexample`` — a concrete stimulus trace, replayed through
  both simulators to a confirmed OUT-pin mismatch before it is
  reported;
* ``unknown`` — out of budget/depth, or a design defeats the encoder.

This is the subsystem that *proves* the paper's section-10 equivalence
claims (rippleCarry4 vs. rippleCarry(4), iterative vs. recursive
trees) instead of sampling them.
"""

from __future__ import annotations

from .bmc import FormalConfig, _STATE_DOMAIN, _induction_loop
from .encode import EncodeError, Encoder
from .replay import replay_equiv
from .report import Counterexample, ProofReport, PropertyResult
from .solver import (
    BudgetExceeded,
    ExprFactory,
    SolverStats,
    solve,
    support_of,
)


def _interface(ctx) -> tuple[dict[str, list], dict[str, list]]:
    ins = {p.name: p.nets for p in ctx.netlist.ports if p.mode == "IN"}
    outs = {p.name: p.nets for p in ctx.netlist.ports if p.mode == "OUT"}
    return ins, outs


def _match_interfaces(ctx_a, ctx_b):
    ins_a, outs_a = _interface(ctx_a)
    ins_b, outs_b = _interface(ctx_b)
    shape_a = {n: len(nets) for n, nets in ins_a.items()}
    shape_b = {n: len(nets) for n, nets in ins_b.items()}
    if shape_a != shape_b:
        raise ValueError(
            f"input interfaces differ: {shape_a} vs {shape_b}")
    wide_a = {n: len(nets) for n, nets in outs_a.items()}
    wide_b = {n: len(nets) for n, nets in outs_b.items()}
    if wide_a != wide_b:
        raise ValueError(
            f"output interfaces differ: {wide_a} vs {wide_b}")
    return ins_a, ins_b, outs_a, outs_b


def _rel_name(ctx, ci: int) -> str:
    """Interface-relative display name (strip the top signal's own
    instance prefix) so both designs key e.g. an implicit RSET alike."""
    name = ctx.display[ci]
    return name.split(".", 1)[1] if "." in name else name


def _input_keyer(ctx, ins: dict[str, list]):
    """ci -> shared variable label.  Port bits key as (pin, bit); any
    other primary input keys as (relative name, -1)."""
    labels: dict[int, tuple] = {}
    for name, nets in ins.items():
        for i, net in enumerate(nets):
            labels[ctx.idx(net)] = (name, i)

    def input_key(ci: int, t: int) -> tuple:
        label = labels.get(ci)
        if label is None:
            label = (_rel_name(ctx, ci), -1)
            labels[ci] = label
        return ("in", label, t)

    return input_key, labels


def _shared_trace(witness: dict, depth: int, ins: dict[str, list],
                  encoders: list[Encoder]) -> list[dict[str, list[int]]]:
    """Per-frame pokes over the shared interface: every IN port at full
    width, plus any non-port primary inputs either side referenced
    (unassigned bits poke to 0; completion is sound, see bmc)."""
    ports = sorted((name, len(nets)) for name, nets in ins.items())
    scalars = sorted({
        key[1][0]
        for enc in encoders
        for key, kind in enc.var_kinds.items()
        if kind == "input" and key[1][1] == -1})
    frames: list[dict[str, list[int]]] = []
    for t in range(depth + 1):
        frame = {
            name: [witness.get(("in", (name, i), t), 0)
                   for i in range(width)]
            for name, width in ports
        }
        for name in scalars:
            frame[name] = [witness.get(("in", (name, -1), t), 0)]
        frames.append(frame)
    return frames


def check_equivalence(a, b,
                      config: FormalConfig | None = None) -> ProofReport:
    """Prove or refute cycle-for-cycle OUT-pin equivalence of two
    compiled circuits with matching interfaces."""
    from ..obs.spans import span

    cfg = config or FormalConfig()
    report = ProofReport("equiv",
                         [(a.name, a.stats()), (b.name, b.stats())],
                         cfg.to_dict())
    with span("formal", design=f"{a.name}~{b.name}", mode="equiv"):
        _equiv_into(a, b, cfg, report)
    return report


def _equiv_into(a, b, cfg: FormalConfig, report: ProofReport) -> None:
    from ..lint.context import LintContext

    stats = report.stats
    ctx_a, ctx_b = LintContext(a.design), LintContext(b.design)
    ins_a, ins_b, outs_a, outs_b = _match_interfaces(ctx_a, ctx_b)
    out_names = sorted(outs_a)
    factory = ExprFactory()

    def encoders(init: str) -> tuple[Encoder, Encoder]:
        pair = []
        for scope, ctx, ins in (("a", ctx_a, ins_a), ("b", ctx_b, ins_b)):
            input_key, _ = _input_keyer(ctx, ins)
            pair.append(Encoder(
                ctx, factory, init=init, max_nodes=cfg.max_nodes,
                input_key=input_key,
                rand_key=lambda gid, t, s=scope: ("rand", (s, gid), t),
                reg_key=lambda ci, s=scope: ("reg", (s, ci))))
        return pair[0], pair[1]

    def miter(enc_a: Encoder, enc_b: Encoder):
        def bad(t: int) -> list[tuple]:
            # One obligation per OUT bit: each SAT question carries one
            # comparator cone, not the union over the interface.
            diffs = []
            for name in out_names:
                for na, nb in zip(outs_a[name], outs_b[name]):
                    d = factory.differs(
                        enc_a.peek(ctx_a.idx(na), t),
                        enc_b.peek(ctx_b.idx(nb), t))
                    if d is not factory.FALSE:
                        diffs.append(d)
            return diffs
        return bad

    try:
        enc_a, enc_b = encoders("undef")
        bad = miter(enc_a, enc_b)
    except EncodeError as exc:
        report.results = [PropertyResult("equivalent", "unknown",
                                         reason=str(exc))]
        return

    sequential = bool(a.netlist.regs) or bool(b.netlist.regs)
    depth = cfg.depth if sequential else 0
    clean_to = -1
    for t in range(depth + 1):
        try:
            obligations = bad(t)
        except EncodeError as exc:
            report.results = [PropertyResult("equivalent", "unknown",
                                             "bmc", clean_to,
                                             reason=str(exc))]
            return
        for expr in obligations:
            try:
                witness = solve((expr,), support=support_of(expr),
                                budget=cfg.budget, stats=stats)
            except BudgetExceeded:
                report.results = [PropertyResult(
                    "equivalent", "unknown", "bmc", clean_to,
                    reason=f"solver budget of {cfg.budget} exhausted at "
                           f"frame {t}")]
                report.clauses = factory.node_count
                return
            if witness is not None:
                report.results = [_refute(a, b, out_names, ins_a, enc_a,
                                          enc_b, t, witness, clean_to)]
                report.clauses = factory.node_count
                return
        clean_to = t

    result = None
    if not sequential:
        result = PropertyResult(
            "equivalent", "proved", "combinational", clean_to,
            reason="stateless designs: one frame covers every cycle "
                   "(over fully-defined inputs)")
    elif cfg.induction:
        k = _product_induction(encoders, miter, depth, cfg, stats)
        if k is not None:
            result = PropertyResult("equivalent", "proved",
                                    "k-induction", clean_to, k=k)
    if result is None:
        result = PropertyResult(
            "equivalent", "unknown", "bmc", clean_to,
            reason=f"no mismatch up to depth {depth}; "
                   "induction inconclusive")
    report.results = [result]
    report.clauses = factory.node_count


def _refute(a, b, out_names, ins: dict, enc_a: Encoder, enc_b: Encoder,
            t: int, witness: dict, clean_to: int) -> PropertyResult:
    uncontrolled = [
        key for key in witness
        if enc_a.var_kinds.get(key, enc_b.var_kinds.get(key, "input"))
        != "input"]
    if uncontrolled:
        return PropertyResult(
            "equivalent", "unknown", "bmc", clean_to,
            reason="mismatch requires uncontrollable state "
                   f"({len(uncontrolled)} RANDOM variable(s)); "
                   "no replayable stimulus")
    frames = _shared_trace(witness, t, ins, [enc_a, enc_b])
    confirmed, detail = replay_equiv(a, b, out_names, frames)
    cex = Counterexample(t, frames, confirmed, detail)
    if not confirmed:
        return PropertyResult(
            "equivalent", "unknown", "bmc", clean_to,
            reason=f"solver witness did not replay: {detail}",
            counterexample=cex)
    return PropertyResult("equivalent", "counterexample", "bmc", t,
                          counterexample=cex)


def _product_induction(encoders, miter, depth: int, cfg: FormalConfig,
                       stats: SolverStats) -> int | None:
    """k-induction over the product machine: from arbitrary register
    states on both sides, k mismatch-free cycles force a
    mismatch-free cycle k+1."""
    try:
        enc_a, enc_b = encoders("free")
        bad = miter(enc_a, enc_b)
        bads = [bad(t) for t in range(depth + 1)]
    except EncodeError:
        return None
    reg_keys = {key for enc in (enc_a, enc_b)
                for key, kind in enc.var_kinds.items() if kind == "reg"}

    def reg_domains(support):
        return {key: _STATE_DOMAIN for key in support if key in reg_keys}

    return _induction_loop(bads, depth, cfg, stats, reg_domains)
