"""The shared SAT core of the formal-verification stack.

This module is the solver the whole proof stack stands on: the lint
driver-exclusivity prover (:mod:`repro.lint.prover`), the bounded model
checker (:mod:`repro.formal.bmc`) and the sequential equivalence checker
(:mod:`repro.formal.equiv`) all encode their questions into one
expression language and discharge them through one bounded DPLL search.
It was extracted from the PR-3 prover and extended with the node kinds a
*sequential* encoding needs (multiplex buses, REG latches, amplifiers,
miter comparators).

Expression language — nested tuples, structurally interned when built
through :class:`ExprFactory`:

``("const", v)``
    A constant; ``v`` in ``{0, 1, "U", "Z"}`` ("U" = UNDEF, "Z" = the
    high-impedance NOINFL state, legal only on multiplex nets).
``("var", key)``
    A free variable (primary input, register state, RANDOM source, or a
    net the encoder cannot model).  Variables range over the *defined*
    values {0, 1} unless a solver domain says otherwise.
``("gate", op, args)``
    A predefined gate; semantics come from
    :data:`repro.core.values.NETLIST_GATE_FUNCTIONS` — the same table
    the simulator evaluates, so prover and simulator cannot disagree on
    a single gate.
``("amp", e)``
    The implicit multiplex->boolean amplifier (section 3.2): "Z" reads
    as "U", everything else passes through.
``("bus", ((guard, src), ...))``
    Multiplex resolution over conditional drivers, mirroring the
    runtime rule exactly: a guard of 0 contributes nothing, a guard of
    "U" poisons the net to "U" (maybe-drive), two or more driving
    (non-"Z") contributions give "U", one gives its value, none gives
    "Z".
``("latch", d, prev)``
    One REG timestep: the new state is ``d`` unless ``d`` is "Z", in
    which case the register keeps ``prev``.
``("conflict", ((guard, src), ...))``
    1 iff two or more drivers *definitely* contribute a driving value —
    the exact condition under which the runtime multi-driver check
    fires.  Never "U": this node is a property, not a signal.
``("differs", a, b)``
    Miter comparator: 1 iff the two operand values differ (where "U"
    differs from 0 and 1).  Never "U".
``("isundef", e)``
    1 iff the operand is "U".  Never "U".

Partial evaluation returns ``None`` when the value still depends on
unassigned variables; everything short-circuits exactly like the
section-8 firing rules, which is what makes the case split prune.

Soundness notes.  The gate/bus/latch/amp fragment is Kleene-monotone:
an expression that evaluates to 1 under a partial two-valued assignment
evaluates to 1 under every runtime refinement (UNDEF inputs can never
*create* a 1), so an UNSAT verdict over {0,1} assignments of the
support really does cover all runtime behaviours — this is what makes
``conflict`` refutations complete even against undefined inputs.
``differs`` and ``isundef`` are *not* monotone (UNDEF inputs can make
two designs differ), so proofs about them quantify over fully-defined
primary inputs only; the BMC/equiv layers state that contract in their
verdicts.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.values import Logic, NETLIST_GATE_FUNCTIONS

_TRUE = ("const", 1)
_FALSE = ("const", 0)
_UNDEF = ("const", "U")
_NOINFL = ("const", "Z")

_LOGIC_TO_VAL = {Logic.ZERO: 0, Logic.ONE: 1, Logic.UNDEF: "U"}

#: Solver value -> Logic for gate evaluation.  "Z" amplifies to UNDEF on
#: the way into a gate input (defensive: factory-built gates amp their
#: arguments already).
_TO_LOGIC = {0: Logic.ZERO, 1: Logic.ONE, "U": Logic.UNDEF,
             "Z": Logic.UNDEF, None: None}
_FROM_LOGIC = {Logic.ZERO: 0, Logic.ONE: 1, Logic.UNDEF: "U", None: None}


def apply_op(op: str, vals: list):
    """Evaluate one gate over solver values {0, 1, "U", None}.

    Routed through :data:`NETLIST_GATE_FUNCTIONS` — the simulator's own
    gate table — so the solver can never disagree with the runtime on a
    single gate (the cross-check test in tests/test_formal.py holds this
    invariant over the full value lattice).
    """
    fn = NETLIST_GATE_FUNCTIONS.get(op)
    if fn is None:
        raise ValueError(f"solver cannot model gate op {op!r}")
    return _FROM_LOGIC[fn([_TO_LOGIC[v] for v in vals])]


# ---------------------------------------------------------------------------
# Evaluation under a partial assignment.
# ---------------------------------------------------------------------------


def eval_expr(expr: tuple, asn: dict, memo: dict | None = None):
    """Evaluate under a partial two-valued assignment.

    Returns 0, 1, ``"U"`` (undefined at runtime), ``"Z"`` (floating
    multiplex), or None (still depends on unassigned variables).
    Short-circuits exactly like the section-8 firing rules, which is
    what makes the case split prune well."""
    if memo is None:
        memo = {}
    return _eval(expr, asn, memo)


def _eval(e: tuple, asn: dict, memo: dict):
    tag = e[0]
    if tag == "const":
        return e[1]
    if tag == "var":
        return asn.get(e[1])
    key = id(e)
    if key in memo:
        return memo[key]
    if tag == "gate":
        out = apply_op(e[1], [_eval(a, asn, memo) for a in e[2]])
    elif tag == "amp":
        v = _eval(e[1], asn, memo)
        out = "U" if v == "Z" else v
    elif tag == "latch":
        d = _eval(e[1], asn, memo)
        if d is None:
            out = None
        elif d == "Z":
            out = _eval(e[2], asn, memo)
        else:
            out = d
    elif tag == "bus":
        out = _eval_bus(e[1], asn, memo)
    elif tag == "conflict":
        out = _eval_conflict(e[1], asn, memo)
    elif tag == "differs":
        a = _eval(e[1], asn, memo)
        b = _eval(e[2], asn, memo)
        out = None if (a is None or b is None) else (1 if a != b else 0)
    elif tag == "isundef":
        v = _eval(e[1], asn, memo)
        out = None if v is None else (1 if v == "U" else 0)
    else:
        raise ValueError(f"solver cannot evaluate node tag {tag!r}")
    memo[key] = out
    return out


def _eval_bus(pairs: tuple, asn: dict, memo: dict):
    """Multiplex resolution, mirroring the levelized OPC_CLASS rule:
    guard 0 -> no contribution; guard not fully 1 ("U"/"Z") -> the net
    is "U" regardless of every source (maybe-drive poisons); >= 2
    driving contributions -> "U"; one -> its value; none -> "Z"."""
    driving = None
    count = 0
    unknown = False
    for g, s in pairs:
        gv = _eval(g, asn, memo)
        if gv == 0:
            continue
        if gv in ("U", "Z"):
            return "U"
        if gv is None:
            # The guard may yet settle to "U" (poison) — everything
            # about this net is open until it does.
            unknown = True
            continue
        # gv == 1
        sv = _eval(s, asn, memo)
        if sv == "Z":
            continue
        if sv is None:
            unknown = True
            continue
        count += 1
        driving = sv
    if count >= 2:
        return "U"
    if unknown:
        return None
    if count == 1:
        return driving
    return "Z"


def _eval_conflict(pairs: tuple, asn: dict, memo: dict):
    """1 iff >= 2 drivers definitely contribute a driving value.  A
    guard of "U" never counts (maybe-drive poisons the value but the
    runtime multi-driver check does not fire on it)."""
    definite = 0
    possible = 0
    for g, s in pairs:
        gv = _eval(g, asn, memo)
        if gv in (0, "U", "Z"):
            continue
        sv = _eval(s, asn, memo)
        if sv == "Z":
            continue
        if gv == 1 and sv is not None:
            definite += 1
        else:  # guard or source still unknown
            possible += 1
    if definite >= 2:
        return 1
    if definite + possible < 2:
        return 0
    return None


def children_of(e: tuple) -> tuple:
    """Immediate sub-expressions of a node, for generic traversal."""
    tag = e[0]
    if tag in ("const", "var"):
        return ()
    if tag == "gate":
        return e[2]
    if tag in ("amp", "isundef"):
        return (e[1],)
    if tag in ("latch", "differs"):
        return (e[1], e[2])
    if tag in ("bus", "conflict"):
        return tuple(x for pair in e[1] for x in pair)
    raise ValueError(f"solver cannot traverse node tag {tag!r}")


def support_of(expr: tuple, memo: dict | None = None) -> tuple:
    """All var keys reachable from *expr*, in deterministic order."""
    if memo is not None:
        cached = memo.get(id(expr))
        if cached is not None:
            return cached
    out: list[tuple] = []
    seen_vars: set[tuple] = set()
    seen_nodes: set[int] = set()
    stack = [expr]
    while stack:
        e = stack.pop()
        if id(e) in seen_nodes:
            continue
        seen_nodes.add(id(e))
        if e[0] == "var":
            if e[1] not in seen_vars:
                seen_vars.add(e[1])
                out.append(e[1])
        else:
            stack.extend(children_of(e))
    out.sort()
    result = tuple(out)
    if memo is not None:
        memo[id(expr)] = result
    return result


# ---------------------------------------------------------------------------
# Interning + folding factory.
# ---------------------------------------------------------------------------


def _can_float(e: tuple) -> bool:
    """Can this expression evaluate to "Z"?  Only buses (all drivers
    off) and the NOINFL constant; every other node is boolean-domain."""
    return e[0] == "bus" or e == _NOINFL


class ExprFactory:
    """Builds structurally-interned, constant-folded expressions.

    Interning makes structural equality pointer equality, which is what
    lets the id-keyed evaluation memo deduplicate shared cones — the
    lever that keeps k-cycle unrollings tractable.  The count of
    distinct interned nodes is reported as the ``clauses`` solver
    metric in ``zeus.proof/1``."""

    def __init__(self):
        self._intern: dict[tuple, tuple] = {}
        for node in (_TRUE, _FALSE, _UNDEF, _NOINFL):
            self._intern[node] = node

    TRUE = _TRUE
    FALSE = _FALSE
    UNDEF = _UNDEF
    NOINFL = _NOINFL

    @property
    def node_count(self) -> int:
        return len(self._intern)

    def _n(self, node: tuple) -> tuple:
        return self._intern.setdefault(node, node)

    def const(self, v) -> tuple:
        return self._n(("const", v))

    def var(self, key) -> tuple:
        return self._n(("var", key))

    def gate(self, op: str, args) -> tuple:
        args = tuple(args)
        folded = apply_op(
            op, [a[1] if a[0] == "const" else None for a in args])
        if folded is not None:
            return self.const(folded)
        if op in ("AND", "OR"):
            ident = 1 if op == "AND" else 0
            kept: list[tuple] = []
            for a in args:
                if a == ("const", ident) or a in kept:
                    continue
                kept.append(a)
            if len(kept) == 1:
                return kept[0]
            args = tuple(kept)
        elif op == "NOT":
            a = args[0]
            if a[0] == "gate" and a[1] == "NOT":
                return a[2][0]
        return self._n(("gate", op, args))

    def not_(self, e: tuple) -> tuple:
        return self.gate("NOT", (e,))

    def and_(self, args) -> tuple:
        args = tuple(args)
        if not args:
            return _TRUE
        if len(args) == 1:
            return args[0]
        return self.gate("AND", args)

    def or_(self, args) -> tuple:
        args = tuple(args)
        if not args:
            return _FALSE
        if len(args) == 1:
            return args[0]
        return self.gate("OR", args)

    def amp(self, e: tuple) -> tuple:
        if e[0] == "const":
            return self.const("U" if e[1] == "Z" else e[1])
        if not _can_float(e):
            return e
        return self._n(("amp", e))

    def latch(self, d: tuple, prev: tuple) -> tuple:
        if d[0] == "const":
            return prev if d[1] == "Z" else d
        if not _can_float(d):
            return d
        return self._n(("latch", d, prev))

    def bus(self, pairs) -> tuple:
        kept: list[tuple] = []
        for g, s in pairs:
            if g[0] == "const":
                if g[1] == 0:
                    continue
                if g[1] in ("U", "Z"):
                    # A maybe-driving guard poisons the value to "U" no
                    # matter what the other drivers do.
                    return _UNDEF
                g = _TRUE
                if s == _NOINFL:
                    continue
            kept.append((g, s))
        if not kept:
            return _NOINFL
        if len(kept) == 1 and kept[0][0] is _TRUE:
            return kept[0][1]
        definite = sum(1 for g, s in kept
                       if g is _TRUE and not _can_float(s))
        if definite >= 2:
            return _UNDEF
        return self._n(("bus", tuple(kept)))

    def conflict(self, pairs) -> tuple:
        kept: list[tuple] = []
        definite = 0
        for g, s in pairs:
            if g[0] == "const" and g[1] in (0, "U", "Z"):
                continue
            if s == _NOINFL:
                continue
            if g[0] == "const" and not _can_float(s):
                definite += 1
            kept.append((g, s))
        if definite >= 2:
            return _TRUE
        if len(kept) < 2:
            return _FALSE
        return self._n(("conflict", tuple(kept)))

    def differs(self, a: tuple, b: tuple) -> tuple:
        if a is b or a == b:
            return _FALSE
        if a[0] == "const" and b[0] == "const":
            return _TRUE if a[1] != b[1] else _FALSE
        return self._n(("differs", a, b))

    def isundef(self, e: tuple) -> tuple:
        if e[0] == "const":
            return _TRUE if e[1] == "U" else _FALSE
        if e[0] in ("conflict", "differs", "isundef"):
            return _FALSE
        return self._n(("isundef", e))


# ---------------------------------------------------------------------------
# Cone extraction over a lint/semantics context (unchanged from PR 3).
# ---------------------------------------------------------------------------


class ConeBuilder:
    """Builds boolean expressions for net classes by tracing the gate
    cone back to *support variables*: primary inputs, register outputs,
    RANDOM sources, and nets the builder cannot model precisely
    (multi-driven, cyclic, or oversized cones).

    ``ctx`` is duck-typed (any object with the
    :class:`repro.lint.context.LintContext` surface: ``is_input``,
    ``reg_q_of``, ``gates_of``, ``drivers_of``, ``idx``)."""

    def __init__(self, ctx, max_nodes: int = 5000):
        self.ctx = ctx
        self.max_nodes = max_nodes
        self.nodes = 0
        self._memo: dict[int, tuple] = {}
        self._building: set[int] = set()
        #: var key -> kind: input | reg | random | opaque | cyclic | undriven
        self.var_kinds: dict[tuple, str] = {}
        self._support_memo: dict[int, tuple] = {}

    # -- construction --------------------------------------------------------

    def expr(self, ci: int) -> tuple:
        cached = self._memo.get(ci)
        if cached is not None:
            return cached
        if ci in self._building:
            return self._var(("net", ci), "cyclic")
        self._building.add(ci)
        try:
            e = self._build(ci)
        finally:
            self._building.discard(ci)
        self._memo[ci] = e
        return e

    def _var(self, key: tuple, kind: str) -> tuple:
        self.var_kinds.setdefault(key, kind)
        return ("var", key)

    def _build(self, ci: int) -> tuple:
        ctx = self.ctx
        if ctx.is_input[ci]:
            return self._var(("net", ci), "input")
        if ci in ctx.reg_q_of:
            return self._var(("net", ci), "reg")
        gates = ctx.gates_of.get(ci, [])
        drivers = ctx.drivers_of[ci]
        if len(gates) == 1 and not drivers:
            return self._gate_expr(gates[0])
        if not gates and len(drivers) == 1 and drivers[0].uncond:
            drv = drivers[0]
            if drv.const is not None:
                val = _LOGIC_TO_VAL.get(drv.const)
                # A NOINFL constant reads as UNDEF through the implicit
                # amplifier (section 3.2), and UNDEF can never become 1.
                return ("const", val if val is not None else "U")
            return self.expr(drv.src)
        if not gates and not drivers:
            return self._var(("net", ci), "undriven")
        return self._var(("net", ci), "opaque")

    def _gate_expr(self, gate) -> tuple:
        if gate.op == "RANDOM":
            return self._var(("rand", gate.id), "random")
        self.nodes += 1
        if self.nodes > self.max_nodes:
            return self._var(("net", self.ctx.idx(gate.output)), "opaque")
        args = tuple(self.expr(self.ctx.idx(i)) for i in gate.inputs)
        return ("gate", gate.op, args)

    # -- support -------------------------------------------------------------

    def support(self, expr: tuple) -> tuple:
        """All var keys reachable from *expr*, in deterministic order."""
        return support_of(expr, self._support_memo)


# ---------------------------------------------------------------------------
# Guard-structure helpers shared by the pattern layer of the lint prover.
# ---------------------------------------------------------------------------


def and_factors(e: tuple) -> list[tuple]:
    """Flatten an AND-tree into its conjunction factors."""
    if e[0] == "gate" and e[1] == "AND":
        out: list[tuple] = []
        for a in e[2]:
            out.extend(and_factors(a))
        return out
    return [e]


def literal_of(e: tuple):
    """(key, polarity) for ``v`` / ``NOT v`` factors, else None."""
    if e[0] == "var":
        return (e[1], True)
    if e[0] == "gate" and e[1] == "NOT" and e[2][0][0] == "var":
        return (e[2][0][1], False)
    return None


def equal_const_map(e: tuple) -> dict | None:
    """For an EQUAL factor, map each non-constant operand expression to
    the constant it is compared against (positions where exactly one
    side is a 0/1 constant)."""
    if e[0] != "gate" or e[1] != "EQUAL":
        return None
    args = e[2]
    half = len(args) // 2
    out: dict = {}
    for x, y in zip(args[:half], args[half:]):
        for a, b in ((x, y), (y, x)):
            if b[0] == "const" and b[1] in (0, 1) and a[0] != "const":
                out[a] = b[1]
    return out


# ---------------------------------------------------------------------------
# The bounded DPLL case split.
# ---------------------------------------------------------------------------


class BudgetExceeded(Exception):
    """The case-split node budget ran out before a verdict."""


@dataclass
class SolverStats:
    """Cumulative search-effort counters for one proof run.  Reported
    in ``zeus.proof/1`` and the ``formal`` section of zeus.metrics/1."""

    decisions: int = 0      # variable branch points explored
    nodes: int = 0          # search-tree nodes visited
    sat_calls: int = 0      # individual solve() invocations
    budget_exhausted: bool = False


_DEFAULT_DOMAIN = (1, 0)


def _var_refs(exprs) -> dict:
    """How many distinct parent nodes reference each variable.  Drives
    the branching order: frequently-referenced variables settle more of
    the expression per decision, so they branch first."""
    counts: dict = {}
    seen: set[int] = set()
    stack = []
    for e in exprs:
        if e[0] == "var":
            counts[e[1]] = counts.get(e[1], 0) + 1
        else:
            stack.append(e)
    while stack:
        e = stack.pop()
        if id(e) in seen:
            continue
        seen.add(id(e))
        for c in children_of(e):
            if c[0] == "var":
                counts[c[1]] = counts.get(c[1], 0) + 1
            else:
                stack.append(c)
    return counts


def solve(targets, blockers=(), support=(), *, budget: int = 20_000,
          domains: dict | None = None,
          stats: SolverStats | None = None) -> dict | None:
    """DPLL-style search for an assignment under which every *target*
    evaluates to 1 and no *blocker* does.

    Returns a (possibly partial) witness assignment, or None: UNSAT
    over all assignments drawing each support variable from its domain
    (``domains[key]``, default ``(1, 0)``).  For the monotone node
    fragment, UNSAT over {0, 1} extends to every runtime behaviour (see
    the module docstring).  *blockers* make k-induction expressible:
    "no bad state in frames 0..k-1 (blockers), bad in frame k (target)".

    Raises :class:`BudgetExceeded` when the node budget runs out.
    """
    targets = tuple(targets)
    blockers = tuple(blockers)
    support = tuple(support)
    if len(support) > 1:
        counts = _var_refs(targets + blockers)
        pos = {v: i for i, v in enumerate(support)}
        support = tuple(sorted(
            support, key=lambda v: (-counts.get(v, 0), pos[v])))
    domains = domains or {}
    asn: dict = {}
    nodes = 0
    if stats is not None:
        stats.sat_calls += 1

    def rec() -> dict | None:
        nonlocal nodes
        nodes += 1
        if nodes > budget:
            if stats is not None:
                stats.nodes += nodes
                stats.budget_exhausted = True
            raise BudgetExceeded
        settled = True
        for t in targets:
            v = eval_expr(t, asn)
            if v in (0, "U", "Z"):
                return None
            if v is None:
                settled = False
        for b in blockers:
            v = eval_expr(b, asn)
            if v == 1:
                return None
            if v is None:
                settled = False
        if settled:
            return dict(asn)
        var = next((v for v in support if v not in asn), None)
        if var is None:
            return None
        if stats is not None:
            stats.decisions += 1
        for val in domains.get(var, _DEFAULT_DOMAIN):
            asn[var] = val
            hit = rec()
            if hit is not None:
                return hit
            del asn[var]
        return None

    try:
        return rec()
    finally:
        if stats is not None and nodes <= budget:
            stats.nodes += nodes


def cosat(ga: tuple, gb: tuple, support, *, budget: int = 20_000,
          stats: SolverStats | None = None) -> dict | None:
    """Search for an assignment with ``ga = gb = 1`` (the PR-3 prover's
    co-satisfiability question, kept as the lint-facing entry point)."""
    return solve((ga, gb), support=support, budget=budget, stats=stats)
