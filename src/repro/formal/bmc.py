"""Bounded model checking with k-induction over the unrolled design.

:func:`prove` checks safety properties of one circuit:

``"no-conflict"``
    The runtime multiplex multi-driver check never fires (the lint
    prover's question, asked of the *whole reachable state space*
    instead of per driver pair).  Refutations are complete against
    undefined inputs too (the conflict encoding is Kleene-monotone).
``"out-defined:<pin>"``
    The named OUT pin never reads UNDEF (or floating).  Proofs
    quantify over *fully-defined* primary inputs — an undefined input
    trivially undefines most outputs, so the interesting question is
    whether defined stimuli can.
``"assert:<path>"``
    The signal at *path* (any probe path the simulator accepts) is 1
    every cycle, under the same defined-inputs contract — the small
    user-assertion surface of the prove API.

Verdicts per property: ``proved`` (combinational exhaustion or
k-induction), ``counterexample`` (with a replayed primary-input
stimulus trace), or ``unknown`` (bounded-clean to the configured depth,
out of budget, or the design defeats the encoder).

The BMC loop asks one SAT question per frame ("bad at cycle t?") so a
shallow counterexample never pays for a deep unrolling; frames share
structure through the interning factory, which is what keeps k-cycle
unrollings of register designs tractable.
"""

from __future__ import annotations

from dataclasses import dataclass

from .encode import EncodeError, Encoder, input_groups, out_ports
from .replay import replay_property
from .report import Counterexample, ProofReport, PropertyResult
from .solver import (
    BudgetExceeded,
    ExprFactory,
    SolverStats,
    eval_expr,
    solve,
    support_of,
)

#: Register-state variables in the inductive step range over the full
#: boolean-read domain (a register can hold UNDEF).
_STATE_DOMAIN = (1, 0, "U")


@dataclass
class FormalConfig:
    """Knobs shared by ``zeusc prove`` and ``zeusc equiv``."""

    depth: int = 8          # BMC unrolling bound (frames 0..depth)
    budget: int = 100_000   # DPLL node budget per SAT question
    induction: bool = True  # attempt k-induction after a clean BMC
    max_nodes: int = 200_000  # encoder net-frame budget

    def to_dict(self) -> dict:
        return {"depth": self.depth, "budget": self.budget,
                "induction": self.induction}


def default_properties(circuit) -> list[str]:
    """The standing obligations: no multi-driver conflict, every OUT
    pin defined."""
    props = ["no-conflict"]
    props += [f"out-defined:{p.name}"
              for p in circuit.netlist.ports if p.mode == "OUT"]
    return props


def _bad_builder(prop: str, enc: Encoder):
    """frame -> list of "the property is violated here" obligations
    (one per multi-driver net / pin bit).  Obligations are solved as
    separate SAT questions so each question's support stays the cone of
    one net, not the union over the whole design."""
    ctx = enc.ctx
    f = enc.f
    kind, _, arg = prop.partition(":")
    if kind == "no-conflict":
        classes = ctx.multi_driver_classes()
        return lambda t: [enc.conflict(ci, t) for ci in classes]
    if kind == "out-defined":
        for name, cis in out_ports(ctx):
            if name == arg:
                return lambda t: [f.isundef(f.amp(enc.net(ci, t)))
                                  for ci in cis]
        raise ValueError(f"no OUT pin {arg!r} for property {prop!r}")
    if kind == "assert":
        nets = _resolve_path(ctx, arg)
        cis = [ctx.idx(n) for n in nets]
        return lambda t: [f.differs(f.amp(enc.net(ci, t)), f.TRUE)
                          for ci in cis]
    raise ValueError(
        f"unknown property {prop!r} (want no-conflict, "
        "out-defined:<pin>, or assert:<path>)")


def _resolve_path(ctx, path: str) -> list:
    signals = ctx.netlist.signals
    for candidate in (path, f"{ctx.netlist.name}.{path}"):
        if candidate in signals:
            return signals[candidate]
    try:
        return ctx.netlist.port(path).nets
    except KeyError:
        raise ValueError(f"unknown signal path {path!r}") from None


def _witness_trace(ctx, witness: dict, depth: int,
                   groups=None) -> list[dict[str, list[int]]]:
    """Expand a (partial) witness into full per-frame input pokes.
    Unassigned input bits are poked to 0 — sound, because a target that
    evaluates to 1 under the partial assignment is 1 under every
    completion."""
    if groups is None:
        groups = input_groups(ctx)
    return [
        {path: [witness.get(("in", ci, t), 0) for ci in cis]
         for path, cis in groups}
        for t in range(depth + 1)
    ]


def _uncontrollable(enc: Encoder, witness: dict) -> list[tuple]:
    return [key for key in witness
            if enc.var_kinds.get(key) not in (None, "input")]


def prove(circuit, properties: list[str] | None = None,
          config: FormalConfig | None = None) -> ProofReport:
    """Run BMC (+ k-induction) over *circuit* for each property."""
    from ..obs.spans import span

    cfg = config or FormalConfig()
    props = list(properties) if properties else default_properties(circuit)
    report = ProofReport("prove", [(circuit.name, circuit.stats())],
                         cfg.to_dict())
    with span("formal", design=circuit.name, mode="prove",
              properties=len(props)):
        _prove_into(circuit, props, cfg, report)
    return report


def _prove_into(circuit, props: list[str], cfg: FormalConfig,
                report: ProofReport) -> None:
    from ..lint.context import LintContext

    stats = report.stats
    ctx = LintContext(circuit.design)
    factory = ExprFactory()
    try:
        enc = Encoder(ctx, factory, init="undef", max_nodes=cfg.max_nodes)
    except EncodeError as exc:
        report.results = [PropertyResult(p, "unknown", reason=str(exc))
                          for p in props]
        return
    sequential = bool(circuit.netlist.regs)
    depth = cfg.depth if sequential else 0
    for prop in props:
        report.results.append(
            _check_property(circuit, ctx, enc, factory, prop, depth,
                            sequential, cfg, stats))
    report.clauses = factory.node_count


def _check_property(circuit, ctx, enc: Encoder, factory: ExprFactory,
                    prop: str, depth: int, sequential: bool,
                    cfg: FormalConfig, stats: SolverStats) -> PropertyResult:
    bad = _bad_builder(prop, enc)  # bad property names raise ValueError
    clean_to = -1
    for t in range(depth + 1):
        try:
            obligations = [b for b in bad(t) if b is not factory.FALSE]
        except EncodeError as exc:
            return PropertyResult(prop, "unknown", "bmc", clean_to,
                                  reason=str(exc))
        for b in obligations:
            try:
                witness = solve((b,), support=support_of(b),
                                budget=cfg.budget, stats=stats)
            except BudgetExceeded:
                return PropertyResult(
                    prop, "unknown", "bmc", clean_to,
                    reason=f"solver budget of {cfg.budget} exhausted at "
                           f"frame {t}")
            if witness is not None:
                return _refute(circuit, ctx, enc, prop, t, witness,
                               clean_to)
        clean_to = t
    if not sequential:
        return PropertyResult(
            prop, "proved", "combinational", clean_to,
            reason="stateless design: one frame covers every cycle")
    if cfg.induction:
        k = _induction(ctx, factory, prop, depth, cfg, stats)
        if k is not None:
            return PropertyResult(prop, "proved", "k-induction",
                                  clean_to, k=k)
    return PropertyResult(
        prop, "unknown", "bmc", clean_to,
        reason=f"no counterexample up to depth {depth}; "
               "induction inconclusive")


def _refute(circuit, ctx, enc: Encoder, prop: str, t: int, witness: dict,
            clean_to: int) -> PropertyResult:
    uncontrolled = _uncontrollable(enc, witness)
    if uncontrolled:
        return PropertyResult(
            prop, "unknown", "bmc", clean_to,
            reason="satisfiable only through uncontrollable state "
                   f"({len(uncontrolled)} RANDOM/opaque variable(s)); "
                   "no replayable stimulus")
    frames = _witness_trace(ctx, witness, t)
    confirmed, detail = replay_property(circuit, prop, frames)
    cex = Counterexample(t, frames, confirmed, detail)
    if not confirmed:
        return PropertyResult(
            prop, "unknown", "bmc", clean_to,
            reason=f"solver witness did not replay: {detail}",
            counterexample=cex)
    return PropertyResult(prop, "counterexample", "bmc", t,
                          counterexample=cex)


def _induction(ctx, factory: ExprFactory, prop: str, depth: int,
               cfg: FormalConfig, stats: SolverStats) -> int | None:
    """Try to close the proof with k-induction: from *any* register
    state (free over {1, 0, UNDEF}), k clean cycles force a clean
    cycle k+1.  Sound together with the BMC base case (clean to
    ``depth`` >= k from the real initial state).  Returns the proving
    k, or None."""
    try:
        enc = Encoder(ctx, factory, init="free", max_nodes=cfg.max_nodes)
        bad = _bad_builder(prop, enc)
        bads = [[b for b in bad(t) if b is not factory.FALSE]
                for t in range(depth + 1)]
    except (EncodeError, ValueError):
        return None
    def reg_domains(support):
        return {key: _STATE_DOMAIN for key in support
                if enc.var_kinds.get(key) == "reg"}
    return _induction_loop(bads, depth, cfg, stats, reg_domains)


def _induction_loop(bads, depth: int, cfg: FormalConfig,
                    stats: SolverStats, reg_domains) -> int | None:
    """Shared k-loop: UNSAT for every frame-k obligation, given every
    frame-<k obligation blocked, closes the proof at k."""
    for k in range(1, depth + 1):
        targets = bads[k]
        if not targets:
            return k
        blockers = [b for frame in bads[:k] for b in frame]
        failed = False
        for target in targets:
            support = sorted(
                {v for e in (target, *blockers) for v in support_of(e)})
            try:
                witness = solve((target,), blockers, support,
                                budget=cfg.budget,
                                domains=reg_domains(support),
                                stats=stats)
            except BudgetExceeded:
                return None
            if witness is not None:
                failed = True
                break
        if not failed:
            return k
    return None


__all__ = [
    "FormalConfig",
    "default_properties",
    "prove",
    "eval_expr",
]
