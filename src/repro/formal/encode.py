"""Frame-indexed encoding of the elaborated semantics graph.

:class:`Encoder` turns the REG-cut semantics graph (as exposed by
:class:`repro.lint.context.LintContext`) into solver expressions: one
expression per (net class, frame).  A *frame* is one clock cycle of the
unrolled transition relation:

* frame-0 register outputs are ``UNDEF`` ("reading an unwritten
  register"), matching the simulator's initial state — or free
  variables over {1, 0, "U"} for the inductive step of k-induction;
* a register output at frame ``t > 0`` is a ``latch`` node over its
  data cone at frame ``t - 1`` (NOINFL keeps the old value);
* primary inputs, RANDOM sources become per-frame variables;
* multi-driver nets become ``bus`` nodes that resolve multiplex
  contributions exactly like the runtime.

Every construction goes through one shared :class:`ExprFactory`, so two
encoders (the equivalence miter) share structure and, via the
``input_key`` hook, share the very same primary-input variables.

The encoder refuses (with :class:`EncodeError`) anything whose cycle
semantics are order-dependent or unsupported — combinational cycles,
nets with multiple producers (gate + driver, two gates, two REGs), and
INOUT-style pins that are both primary input and internally driven.
Callers degrade such designs to an UNKNOWN verdict; the simulator stays
the oracle.
"""

from __future__ import annotations

from ..core.values import Logic
from .solver import ExprFactory

#: Constant-driver value in the solver domain.  Unlike the lint cone
#: builder (which models the value *through* the implicit amplifier),
#: a bus member keeps NOINFL as the floating "Z" — resolution needs it.
_CONST_VAL = {Logic.ZERO: 0, Logic.ONE: 1, Logic.UNDEF: "U",
              Logic.NOINFL: "Z"}


class EncodeError(Exception):
    """The design has no order-independent frame encoding."""


class Encoder:
    """Builds per-frame expressions for net classes of one design.

    ``ctx`` is duck-typed with the :class:`LintContext` surface.  The
    ``input_key`` / ``rand_key`` / ``reg_key`` hooks let the
    equivalence checker rename variables so both sides of a miter draw
    the same primary inputs.
    """

    def __init__(self, ctx, factory: ExprFactory | None = None, *,
                 init: str = "undef", max_nodes: int = 200_000,
                 input_key=None, rand_key=None, reg_key=None):
        if ctx.topo_order is None:
            path = " -> ".join(ctx.display[c] for c in ctx.cycle)
            raise EncodeError(f"combinational cycle: {path}")
        assert init in ("undef", "free")
        self.ctx = ctx
        self.f = factory if factory is not None else ExprFactory()
        self.init = init
        self.max_nodes = max_nodes
        self.nodes = 0
        #: var key -> kind: input | reg | random
        self.var_kinds: dict[tuple, str] = {}
        self._memo: dict[tuple[int, int], tuple] = {}
        self._input_key = input_key or (lambda ci, t: ("in", ci, t))
        self._rand_key = rand_key or (lambda gid, t: ("rand", gid, t))
        self._reg_key = reg_key or (lambda ci: ("reg", ci))

    def _var(self, key: tuple, kind: str) -> tuple:
        self.var_kinds.setdefault(key, kind)
        return self.f.var(key)

    # -- per-frame net values ------------------------------------------------

    def net(self, ci: int, t: int) -> tuple:
        """The class value at frame *t* (raw multiplex domain: may be
        "Z"; consumers amplify, exactly like the simulator)."""
        key = (ci, t)
        e = self._memo.get(key)
        if e is None:
            self.nodes += 1
            if self.nodes > self.max_nodes:
                raise EncodeError(
                    f"encoding exceeds {self.max_nodes} net-frames")
            e = self._build(ci, t)
            self._memo[key] = e
        return e

    def _build(self, ci: int, t: int) -> tuple:
        ctx = self.ctx
        f = self.f
        gates = ctx.gates_of.get(ci, [])
        drivers = ctx.drivers_of[ci]
        regs = ctx.reg_q_of.get(ci, [])
        if ctx.is_input[ci]:
            if gates or drivers or regs:
                raise EncodeError(
                    f"{ctx.display[ci]!r} is a primary input with internal "
                    "drivers (INOUT); cycle semantics are poke-dependent")
            return self._var(self._input_key(ci, t), "input")
        if regs:
            if len(regs) > 1 or gates or drivers:
                raise EncodeError(
                    f"{ctx.display[ci]!r} has multiple producers")
            reg = regs[0]
            if t == 0:
                if self.init == "free":
                    return self._var(self._reg_key(ci), "reg")
                # Reading a register that was never written gives UNDEF.
                return f.UNDEF
            return f.latch(self.net(ctx.idx(reg.d), t - 1),
                           self.net(ci, t - 1))
        if gates:
            if len(gates) > 1 or drivers:
                raise EncodeError(
                    f"{ctx.display[ci]!r} has multiple producers")
            gate = gates[0]
            if gate.op == "RANDOM":
                return self._var(self._rand_key(gate.id, t), "random")
            args = tuple(f.amp(self.net(ctx.idx(i), t))
                         for i in gate.inputs)
            return f.gate(gate.op, args)
        if not drivers:
            return f.NOINFL  # a free net floats
        if len(drivers) == 1 and drivers[0].uncond:
            return self._source(drivers[0], t)
        return f.bus(tuple((self._guard(d, t), self._source(d, t))
                           for d in drivers))

    def _guard(self, d, t: int) -> tuple:
        if d.cond is None:
            return self.f.TRUE
        # Guards are boolean reads: NOINFL amplifies to UNDEF, which the
        # bus treats as maybe-driving (poison), like the runtime.
        return self.f.amp(self.net(d.cond, t))

    def _source(self, d, t: int) -> tuple:
        if d.const is not None:
            return self.f.const(_CONST_VAL[d.const])
        return self.net(d.src, t)

    # -- derived expressions -------------------------------------------------

    def peek(self, ci: int, t: int) -> tuple:
        """The class value as ``Simulator.peek`` reports it: boolean
        signals read through the implicit amplifier."""
        e = self.net(ci, t)
        return self.f.amp(e) if self.ctx.is_boolean[ci] else e

    def conflict(self, ci: int, t: int) -> tuple:
        """1 iff the runtime multi-driver check fires on this class at
        frame *t* (>= 2 definite driving contributions)."""
        return self.f.conflict(
            tuple((self._guard(d, t), self._source(d, t))
                  for d in self.ctx.drivers_of[ci]))


# ---------------------------------------------------------------------------
# Interface helpers shared by the BMC and equivalence front ends.
# ---------------------------------------------------------------------------


def input_groups(ctx) -> list[tuple[str, list[int]]]:
    """Pokeable primary-input groups of a design as ``(poke path,
    [class index per bit])``, IN ports first (whole-port pokes, bit
    order = port net order), then any remaining primary-input classes
    (e.g. an implicit RSET) by display name."""
    groups: list[tuple[str, list[int]]] = []
    covered: set[int] = set()
    for p in ctx.netlist.ports:
        if p.mode != "IN":
            continue
        cis = [ctx.idx(n) for n in p.nets]
        groups.append((p.name, cis))
        covered.update(cis)
    for ci in range(ctx.n):
        if not ctx.is_input[ci] or ci in covered:
            continue
        # INOUT-style pins (input AND internally driven, e.g. a
        # multiplex OUT) are not solver variables; poking them would
        # inject a phantom driver the solver never modelled.
        if ctx.drivers_of[ci] or ci in ctx.gates_of or ci in ctx.reg_q_of:
            continue
        groups.append((ctx.display[ci], [ci]))
    return groups


def out_ports(ctx) -> list[tuple[str, list[int]]]:
    """OUT ports as ``(pin name, [class index per bit])``."""
    return [(p.name, [ctx.idx(n) for n in p.nets])
            for p in ctx.netlist.ports if p.mode == "OUT"]
