"""Proof reporting: the versioned ``zeus.proof/1`` schema.

Like ``zeus.lint/1`` and ``zeus.metrics/1``, the JSON shape is versioned
and :func:`validate_proof_report` is its executable definition:

.. code-block:: none

    {
      "schema": "zeus.proof/1",
      "mode": "prove" | "equiv",
      "designs": [{"name", "nets", "gates", "connections",
                   "registers"}],
      "config": {"depth", "budget", "induction"},
      "solver": {"clauses",          # interned expression nodes
                 "decisions", "nodes", "sat_calls",
                 "budget_exhausted", "depth_reached"},
      "verdict": "proved" | "counterexample" | "unknown",
      "results": [{
        "property", "verdict", "method", "depth_checked", "reason",
        "k"?,                          # k-induction proofs only
        "counterexample"?: {
          "cycle",
          "frames": [{poke path: [bits, LSB first]}, ...],
          "replay": {"confirmed", "detail"}
        }
      }]
    }

``solver.clauses`` counts distinct interned expression nodes — the
structural-sharing analogue of CNF clause count for this non-clausal
encoding.  Every counterexample carries a full primary-input stimulus
(``frames[t]`` is poked before cycle ``t``) and the outcome of
re-running it through the levelized simulator.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from .solver import SolverStats

SCHEMA = "zeus.proof/1"

#: Worst-first verdict order for aggregation.
_VERDICT_RANK = {"counterexample": 0, "unknown": 1, "proved": 2}


@dataclass
class Counterexample:
    """A refutation as a replayable primary-input stimulus."""

    cycle: int
    #: per-frame pokes: poke path -> bit list (LSB first, port order).
    frames: list[dict[str, list[int]]]
    replay_confirmed: bool = False
    replay_detail: str = ""

    def to_dict(self) -> dict:
        return {
            "cycle": self.cycle,
            "frames": [dict(f) for f in self.frames],
            "replay": {"confirmed": self.replay_confirmed,
                       "detail": self.replay_detail},
        }


@dataclass
class PropertyResult:
    """Verdict for one property (or one equivalence miter)."""

    prop: str
    verdict: str  # "proved" | "counterexample" | "unknown"
    method: str = ""  # "combinational" | "bmc" | "k-induction" | ""
    depth_checked: int = -1
    k: int | None = None
    reason: str = ""
    counterexample: Counterexample | None = None

    def to_dict(self) -> dict:
        d = {
            "property": self.prop,
            "verdict": self.verdict,
            "method": self.method,
            "depth_checked": self.depth_checked,
            "reason": self.reason,
        }
        if self.k is not None:
            d["k"] = self.k
        if self.counterexample is not None:
            d["counterexample"] = self.counterexample.to_dict()
        return d


@dataclass
class ProofReport:
    """The result of one ``zeusc prove`` / ``zeusc equiv`` run."""

    mode: str  # "prove" | "equiv"
    designs: list[tuple[str, dict]]  # (name, netlist stats)
    config: dict  # {"depth", "budget", "induction"}
    results: list[PropertyResult] = field(default_factory=list)
    stats: SolverStats = field(default_factory=SolverStats)
    clauses: int = 0

    @property
    def verdict(self) -> str:
        """Worst verdict over all results ("proved" when empty)."""
        return min((r.verdict for r in self.results),
                   key=_VERDICT_RANK.__getitem__, default="proved")

    @property
    def depth_reached(self) -> int:
        return max((r.depth_checked for r in self.results), default=-1)

    @property
    def proved(self) -> int:
        return sum(1 for r in self.results if r.verdict == "proved")

    @property
    def refuted(self) -> int:
        return sum(1 for r in self.results
                   if r.verdict == "counterexample")

    @property
    def unknown(self) -> int:
        return sum(1 for r in self.results if r.verdict == "unknown")

    def exit_code(self, werror: bool = False) -> int:
        """The ``zeusc`` exit-code contract: 2 on any refutation, 1 on
        any UNKNOWN under ``--werror``, else 0."""
        if self.refuted:
            return 2
        if werror and self.unknown:
            return 1
        return 0

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "schema": SCHEMA,
            "mode": self.mode,
            "designs": [
                {
                    "name": name,
                    "nets": stats.get("nets", 0),
                    "gates": stats.get("gates", 0),
                    "connections": stats.get("connections", 0),
                    "registers": stats.get("registers", 0),
                }
                for name, stats in self.designs
            ],
            "config": dict(self.config),
            "solver": {
                "clauses": self.clauses,
                "decisions": self.stats.decisions,
                "nodes": self.stats.nodes,
                "sat_calls": self.stats.sat_calls,
                "budget_exhausted": self.stats.budget_exhausted,
                "depth_reached": self.depth_reached,
            },
            "verdict": self.verdict,
            "results": [r.to_dict() for r in self.results],
        }

    # -- renderers -----------------------------------------------------------

    def _verdict_label(self, verdict: str) -> str:
        if self.mode == "equiv" and verdict == "proved":
            return "PROVED-EQUIVALENT"
        return {"proved": "PROVED", "counterexample": "COUNTEREXAMPLE",
                "unknown": "UNKNOWN"}[verdict]

    def render_text(self) -> str:
        names = " ~ ".join(name for name, _ in self.designs)
        lines = [f"{self.mode} {names} "
                 f"(depth {self.config.get('depth')}, "
                 f"budget {self.config.get('budget')})"]
        for r in self.results:
            head = f"{r.prop:<24} {self._verdict_label(r.verdict)}"
            if r.verdict == "proved":
                how = r.method
                if r.k is not None:
                    how += f", k={r.k}"
                head += f"  ({how})"
            elif r.verdict == "counterexample" and r.counterexample:
                cex = r.counterexample
                status = ("confirmed" if cex.replay_confirmed
                          else "NOT confirmed")
                head += f"  at cycle {cex.cycle} (replay: {status})"
            elif r.reason:
                head += f"  ({r.reason})"
            lines.append(head)
            if r.verdict == "counterexample" and r.counterexample:
                for t, frame in enumerate(r.counterexample.frames):
                    pokes = " ".join(
                        f"{path}={''.join(str(b) for b in bits)}"
                        for path, bits in sorted(frame.items()))
                    lines.append(f"    cycle {t}: {pokes}")
                if r.counterexample.replay_detail:
                    lines.append(
                        f"    replay: {r.counterexample.replay_detail}")
        lines.append(
            f"summary: {len(self.results)} propert"
            f"{'y' if len(self.results) == 1 else 'ies'}: "
            f"{self.proved} proved, {self.refuted} refuted, "
            f"{self.unknown} unknown; solver: {self.clauses} clauses, "
            f"{self.stats.decisions} decisions, "
            f"depth {max(self.depth_reached, 0)}")
        return "\n".join(lines)

    def render_json(self) -> str:
        report = self.to_dict()
        validate_proof_report(report)
        return json.dumps(report, indent=2, sort_keys=True) + "\n"


def write_proof_report(path: str, report: "ProofReport") -> None:
    """Validate and write a report as ``zeus.proof/1`` JSON."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(report.render_json())


def validate_proof_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to ``zeus.proof/1``."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"proof report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"proof report: {where}.{key} must be {types}, "
                f"got {type(obj[key]).__name__}")
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("proof report must be a dict")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"proof report: schema must be {SCHEMA!r}, "
            f"got {report.get('schema')!r}")
    if report.get("mode") not in ("prove", "equiv"):
        raise ValueError(
            f"proof report: bad mode {report.get('mode')!r}")
    designs = need(report, "designs", list, "report")
    if not designs:
        raise ValueError("proof report: designs must be non-empty")
    for d in designs:
        need(d, "name", str, "designs[]")
        for key in ("nets", "gates", "connections", "registers"):
            need(d, key, int, "designs[]")

    config = need(report, "config", dict, "report")
    need(config, "depth", int, "config")
    need(config, "budget", int, "config")
    need(config, "induction", bool, "config")

    solver = need(report, "solver", dict, "report")
    for key in ("clauses", "decisions", "nodes", "sat_calls",
                "depth_reached"):
        need(solver, key, int, "solver")
    need(solver, "budget_exhausted", bool, "solver")

    verdict = need(report, "verdict", str, "report")
    if verdict not in ("proved", "counterexample", "unknown"):
        raise ValueError(f"proof report: bad verdict {verdict!r}")

    for r in need(report, "results", list, "report"):
        need(r, "property", str, "results[]")
        v = need(r, "verdict", str, "results[]")
        if v not in ("proved", "counterexample", "unknown"):
            raise ValueError(f"proof report: bad result verdict {v!r}")
        need(r, "method", str, "results[]")
        need(r, "depth_checked", int, "results[]")
        need(r, "reason", str, "results[]")
        if "k" in r and not isinstance(r["k"], int):
            raise ValueError("proof report: results[].k must be int")
        if v == "counterexample":
            cex = need(r, "counterexample", dict, "results[]")
            need(cex, "cycle", int, "results[].counterexample")
            frames = need(cex, "frames", list, "results[].counterexample")
            for frame in frames:
                if not isinstance(frame, dict):
                    raise ValueError(
                        "proof report: counterexample frames must be dicts")
                for path, bits in frame.items():
                    if not isinstance(bits, list) or not all(
                            b in (0, 1) for b in bits):
                        raise ValueError(
                            f"proof report: frame[{path!r}] must be a "
                            "0/1 bit list")
            replay = need(cex, "replay", dict, "results[].counterexample")
            need(replay, "confirmed", bool, "replay")
            need(replay, "detail", str, "replay")
