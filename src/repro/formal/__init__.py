"""zeusprove: the SAT-based formal verification subsystem.

Three layers over one shared solver core:

* :mod:`repro.formal.solver` — the expression language, the
  four-valued evaluator (routed through the simulator's own gate
  table), and the bounded DPLL.  The lint driver-exclusivity prover
  runs on this exact core.
* :mod:`repro.formal.encode` — frame-indexed unrolling of the REG-cut
  semantics graph (buses, latches, amplifiers) with structural
  interning.
* :mod:`repro.formal.bmc` / :mod:`repro.formal.equiv` — bounded model
  checking with k-induction, and miter-based sequential equivalence;
  every refutation is replayed through the real simulator
  (:mod:`repro.formal.replay`) before it is reported, and results ship
  as the versioned ``zeus.proof/1`` schema
  (:mod:`repro.formal.report`).

Quickstart::

    import repro
    from repro.formal import check_equivalence, prove

    a = repro.compile_text(RIPPLE4_TEXT)
    b = repro.compile_text(RIPPLE_N_TEXT)
    report = check_equivalence(a, b)
    assert report.verdict == "proved"

    report = prove(a, ["no-conflict", "out-defined:s"])
"""

from .solver import (  # noqa: F401  (import order: solver has no deps)
    BudgetExceeded,
    ConeBuilder,
    ExprFactory,
    SolverStats,
    apply_op,
    cosat,
    eval_expr,
    solve,
    support_of,
)
from .encode import EncodeError, Encoder, input_groups, out_ports  # noqa: F401
from .report import (  # noqa: F401
    SCHEMA,
    Counterexample,
    ProofReport,
    PropertyResult,
    validate_proof_report,
    write_proof_report,
)
from .bmc import FormalConfig, default_properties, prove  # noqa: F401
from .equiv import check_equivalence  # noqa: F401

__all__ = [
    "BudgetExceeded",
    "ConeBuilder",
    "Counterexample",
    "EncodeError",
    "Encoder",
    "ExprFactory",
    "FormalConfig",
    "ProofReport",
    "PropertyResult",
    "SCHEMA",
    "SolverStats",
    "apply_op",
    "check_equivalence",
    "cosat",
    "default_properties",
    "eval_expr",
    "input_groups",
    "out_ports",
    "prove",
    "solve",
    "support_of",
    "validate_proof_report",
    "write_proof_report",
]
