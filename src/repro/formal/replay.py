"""Counterexample replay: the differential guarantee of the prover.

Every refutation the BMC or equivalence checker emits is a concrete
primary-input stimulus trace.  Before a COUNTEREXAMPLE verdict is
reported, the trace is re-run through the real :class:`Simulator`
(lenient mode, levelized when possible) and the claimed violation or
mismatch must actually occur — the same witness-replay discipline the
PR-3 lint prover established.  A trace that does not reproduce
downgrades the verdict to UNKNOWN with the replay detail attached, so a
solver bug can never surface as a confirmed refutation.
"""

from __future__ import annotations

from ..core.values import Logic


def _poke_frame(sim, frame: dict[str, list[int]]) -> None:
    for path, bits in frame.items():
        sim.poke(path, [Logic.from_bit(b) for b in bits])


def replay_property(circuit, prop: str,
                    frames: list[dict[str, list[int]]]) -> tuple[bool, str]:
    """Replay a BMC counterexample for *prop*; returns
    ``(confirmed, detail)``.  The violation is checked at the final
    frame's cycle (the cycle the solver refuted)."""
    sim = circuit.simulator(strict=False)
    for frame in frames:
        _poke_frame(sim, frame)
        sim.step()
    last = len(frames) - 1
    kind, _, arg = prop.partition(":")
    if kind == "no-conflict":
        hits = [v for v in sim.violations if v.cycle == last]
        if hits:
            return True, str(hits[0])
        return False, f"no multi-driver violation at cycle {last}"
    if kind == "out-defined":
        vals = sim.peek(arg)
        bad = [i + 1 for i, v in enumerate(vals) if not v.is_defined]
        if bad:
            shown = ", ".join(str(b) for b in bad)
            return True, f"{arg}[{shown}] undefined at cycle {last}"
        return False, f"{arg} fully defined at cycle {last}"
    if kind == "assert":
        vals = sim.peek(arg)
        bad = [i + 1 for i, v in enumerate(vals) if v is not Logic.ONE]
        if bad:
            shown = ", ".join(f"{arg}[{b}]={vals[b - 1]}" for b in bad)
            return True, f"assertion fails at cycle {last}: {shown}"
        return False, f"{arg} holds at cycle {last}"
    return False, f"cannot replay property kind {kind!r}"


def replay_equiv(a, b, outs: list[str],
                 frames: list[dict[str, list[int]]]) -> tuple[bool, str]:
    """Replay an equivalence counterexample against both circuits;
    returns ``(confirmed, detail)``.  Both simulators receive the same
    pokes (interface paths are shared); any OUT-pin difference at the
    final cycle confirms the mismatch."""
    sim_a = a.simulator(strict=False)
    sim_b = b.simulator(strict=False)
    for frame in frames:
        _poke_frame(sim_a, frame)
        _poke_frame(sim_b, frame)
        sim_a.step()
        sim_b.step()
    last = len(frames) - 1
    for pin in outs:
        left = [str(v) for v in sim_a.peek(pin)]
        right = [str(v) for v in sim_b.peek(pin)]
        if left != right:
            return True, (f"{pin} differs at cycle {last}: "
                          f"{left} vs {right}")
    return False, f"all OUT pins agree at cycle {last}"
