"""Chrome trace-event export (Perfetto / ``chrome://tracing``).

Turns one zeusc run into a trace-event JSON object with two process
tracks:

* **pid 1 — compile**: one ``ph:"X"`` complete slice per recorded
  compile span (lex / parse / elaborate / check / schedule), nested by
  the span stack, at real wall-clock timestamps;
* **pid 2 — simulate**: one ``ph:"X"`` slice per simulated cycle plus
  ``ph:"C"`` counter tracks (``firings``, ``gate_evals`` [gate+driver
  work], ``violations``) sampled at each cycle boundary.

The simulator does not timestamp individual cycles (that would defeat
the hot loop), so the sim track divides the measured sim wall time
evenly across cycles — slice *widths* are an average, slice *contents*
(the counters) are exact per-cycle numbers from
:class:`~repro.obs.metrics.SimMetrics`.  Timestamps are microseconds,
as the format requires; the sim track starts where the compile track
ends.

:func:`validate_chrome_trace` checks the invariants Perfetto needs
(every event has ``ph``/``name``/``ts``; ``X`` events carry ``dur``;
counter args are numeric) and is the contract the tests pin down.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .spans import SpanRegistry

if TYPE_CHECKING:
    from ..core.simulator import Simulator

#: Synthetic per-cycle slice width (µs) when no wall time was measured.
DEFAULT_CYCLE_US = 10.0

PID_COMPILE = 1
PID_SIM = 2


def chrome_trace(
    registry: SpanRegistry | None = None,
    sim: "Simulator | None" = None,
    *,
    elapsed: float | None = None,
    max_cycles: int = 100_000,
) -> dict:
    """Assemble the trace-event JSON object.  *elapsed* is the measured
    sim wall time in seconds (divided evenly across cycles); *max_cycles*
    caps the per-cycle slices so a huge run cannot produce an unloadable
    file (the counter totals still cover every cycle)."""
    events: list[dict] = []
    t = 0.0

    if registry is not None and registry.spans:
        events.append(_meta(PID_COMPILE, "process_name", "zeusc compile"))
        events.append(_meta(PID_COMPILE, "thread_name", "phases", tid=1))
        t0 = min(sp.start for sp in registry.spans)
        for sp in registry.spans:
            events.append(
                {
                    "ph": "X",
                    "pid": PID_COMPILE,
                    "tid": 1,
                    "name": sp.name,
                    "cat": "compile",
                    "ts": (sp.start - t0) * 1e6,
                    "dur": sp.duration * 1e6,
                    "args": {"path": sp.path, **sp.meta},
                }
            )
            t = max(t, (sp.start - t0 + sp.duration) * 1e6)

    if sim is not None and sim.metrics.enabled and sim.metrics.cycles:
        m = sim.metrics
        events.append(_meta(PID_SIM, "process_name", "zeus sim"))
        events.append(_meta(PID_SIM, "thread_name", f"{sim.engine} engine", tid=1))
        cycle_us = (
            elapsed * 1e6 / m.cycles
            if elapsed is not None and elapsed > 0
            else DEFAULT_CYCLE_US
        )
        viols_by_cycle: dict[int, int] = {}
        for v in sim.violations:
            viols_by_cycle[v.cycle] = viols_by_cycle.get(v.cycle, 0) + 1
        shown = min(m.cycles, max_cycles)
        for c in range(shown):
            ts = t + c * cycle_us
            events.append(
                {
                    "ph": "X",
                    "pid": PID_SIM,
                    "tid": 1,
                    "name": f"cycle {c}",
                    "cat": "sim",
                    "ts": ts,
                    "dur": cycle_us,
                    "args": {
                        "firings": m.firings_per_cycle[c],
                        "work": m.steps_per_cycle[c],
                    },
                }
            )
            events.append(_counter(ts, "firings", m.firings_per_cycle[c]))
            events.append(_counter(ts, "gate_evals", m.steps_per_cycle[c]))
            events.append(
                _counter(ts, "violations", viols_by_cycle.get(c, 0))
            )

    trace = {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {"generator": "zeusc profile --chrome"},
    }
    return trace


def _meta(pid: int, name: str, value: str, tid: int = 0) -> dict:
    return {
        "ph": "M",
        "pid": pid,
        "tid": tid,
        "ts": 0,
        "name": name,
        "args": {"name": value},
    }


def _counter(ts: float, name: str, value: int) -> dict:
    return {
        "ph": "C",
        "pid": PID_SIM,
        "tid": 0,
        "ts": ts,
        "name": name,
        "args": {name: value},
    }


def write_chrome_trace(path: str, trace: dict) -> None:
    """Validate and write trace-event JSON."""
    validate_chrome_trace(trace)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(trace, f)
        f.write("\n")


def validate_chrome_trace(trace: dict) -> None:
    """Raise ``ValueError`` unless *trace* is well-formed trace-event
    JSON: a dict with a ``traceEvents`` list whose entries all carry
    ``ph``/``name``/``ts`` (``X`` slices also ``dur``; ``C`` counters
    numeric args)."""
    if not isinstance(trace, dict):
        raise ValueError("chrome trace must be a JSON object")
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        raise ValueError("chrome trace: traceEvents must be a list")
    for i, ev in enumerate(events):
        where = f"traceEvents[{i}]"
        if not isinstance(ev, dict):
            raise ValueError(f"chrome trace: {where} must be an object")
        for key, types in (("ph", str), ("name", str), ("ts", (int, float))):
            if not isinstance(ev.get(key), types):
                raise ValueError(
                    f"chrome trace: {where}.{key} missing or not {types}"
                )
        if ev["ph"] == "X" and not isinstance(ev.get("dur"), (int, float)):
            raise ValueError(f"chrome trace: {where} X slice needs dur")
        if ev["ph"] == "C":
            args = ev.get("args")
            if not isinstance(args, dict) or not args:
                raise ValueError(
                    f"chrome trace: {where} counter needs args"
                )
            for k, v in args.items():
                if not isinstance(v, (int, float)):
                    raise ValueError(
                        f"chrome trace: {where} counter arg {k!r} must "
                        "be numeric"
                    )
