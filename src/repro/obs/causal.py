"""The causal "why" explainer.

``explain(sim, path, cycle)`` answers *why is this net UNDEF /
violating / 1 at cycle C* by walking the flight-recorder records
backward through the netlist fan-in, keeping only the inputs that were
*responsible* for each value under the section-8 firing rules:

* an AND that settled to 0 is explained by its 0 inputs alone (the
  short-circuit firing rule: the other inputs never mattered);
* an OR that settled to 1 is explained by its 1 inputs;
* an EQUAL that settled to 0 is explained by the first defined,
  differing operand pair;
* a conditional driver whose guard was 0 contributed nothing — it shows
  up only when the question is "why does nothing drive this net";
* a driver whose guard was UNDEF *may* drive, which poisons the
  destination — the guard, not the source, is the cause;
* a multiplex conflict names every driver that actually drove, each
  with its guard and source;
* a REG output is explained by the ``in`` value at the most recent
  cycle that latched (scanning recorded cycles backward), or by the
  initial-UNDEF rule when no latch is in the window.

The result is the minimal causal cone, memoized on ``(net class,
cycle)`` so reconvergent fan-in is expanded once (later references are
marked ``shared``), bounded by ``max_nodes``.  Render it as a text
tree, DOT, or embed it in a ``zeus.trace/1`` report
(:mod:`repro.obs.export`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from ..core.values import Logic
from ..lang.errors import SimulationError

if TYPE_CHECKING:
    from ..core.simulator import Simulator

#: Walk budget: expansion stops (nodes marked ``truncated``) once this
#: many distinct (class, cycle) nodes exist.
DEFAULT_MAX_NODES = 500


@dataclass
class CauseNode:
    """One node of the causal cone: *net* held *value* at *cycle*
    because of *reason*, which in turn happened because of *children*."""

    net: str
    cycle: int
    value: str
    reason: str
    children: list["CauseNode"] = field(default_factory=list)
    #: True when this (net, cycle) was already expanded elsewhere in the
    #: cone (reconvergent fan-in); children live at the first reference.
    shared: bool = False
    #: True when the max_nodes budget stopped expansion below here.
    truncated: bool = False

    def to_dict(self) -> dict:
        d = {
            "net": self.net,
            "cycle": self.cycle,
            "value": self.value,
            "reason": self.reason,
        }
        if self.shared:
            d["shared"] = True
        if self.truncated:
            d["truncated"] = True
        if self.children:
            d["children"] = [c.to_dict() for c in self.children]
        return d


@dataclass
class Explanation:
    """The causal cone for one ``(path, cycle)`` question."""

    path: str
    cycle: int
    #: the observed value, with boolean peek amplification (what
    #: ``sim.peek(path)`` would have shown at that cycle).
    value: str
    engine: str
    roots: list[CauseNode]
    node_count: int
    truncated: bool

    # -- text tree -----------------------------------------------------

    def render_text(self) -> str:
        lines = [
            f"why is {self.path} = {self.value} at cycle {self.cycle}?  "
            f"({self.engine} engine, {self.node_count} node(s)"
            + (", truncated)" if self.truncated else ")")
        ]
        for ri, root in enumerate(self.roots):
            last_root = ri == len(self.roots) - 1
            self._render_node(root, "", last_root, lines)
        return "\n".join(lines)

    def _render_node(
        self, node: CauseNode, prefix: str, last: bool, lines: list[str]
    ) -> None:
        branch = "`-- " if last else "|-- "
        tags = ""
        if node.shared:
            tags = "  [see above]"
        elif node.truncated:
            tags = "  [...]"
        lines.append(
            f"{prefix}{branch}{node.net} @ {node.cycle} = {node.value}"
            f"  <- {node.reason}{tags}"
        )
        child_prefix = prefix + ("    " if last else "|   ")
        for i, child in enumerate(node.children):
            self._render_node(
                child, child_prefix, i == len(node.children) - 1, lines
            )

    # -- DOT -----------------------------------------------------------

    def render_dot(self) -> str:
        """Graphviz digraph; reconvergent fan-in merges into one node,
        edges point from cause to effect."""
        nodes: dict[tuple[str, int], tuple[str, str]] = {}
        edges: set[tuple[tuple[str, int], tuple[str, int]]] = set()

        def visit(n: CauseNode) -> None:
            key = (n.net, n.cycle)
            if key not in nodes or not n.shared:
                nodes.setdefault(key, (n.value, n.reason))
            for c in n.children:
                edges.add(((c.net, c.cycle), key))
                visit(c)

        for r in self.roots:
            visit(r)
        ids = {key: f"n{i}" for i, key in enumerate(sorted(nodes))}
        out = [
            "digraph causal_cone {",
            "  rankdir=BT;",
            '  node [shape=box, fontname="monospace"];',
            f'  label="{_dot_escape(self.path)} @ cycle {self.cycle}";',
        ]
        for key, (value, reason) in sorted(nodes.items()):
            net, cyc = key
            label = _dot_escape(f"{net} @ {cyc} = {value}\n{reason}")
            out.append(f'  {ids[key]} [label="{label}"];')
        for src, dst in sorted(edges):
            out.append(f"  {ids[src]} -> {ids[dst]};")
        out.append("}")
        return "\n".join(out)

    def to_dict(self) -> dict:
        return {
            "target": {
                "path": self.path,
                "cycle": self.cycle,
                "value": self.value,
            },
            "engine": self.engine,
            "node_count": self.node_count,
            "truncated": self.truncated,
            "tree": [r.to_dict() for r in self.roots],
        }


def _dot_escape(s: str) -> str:
    return s.replace("\\", "\\\\").replace('"', '\\"').replace("\n", "\\n")


def explain(
    sim: "Simulator",
    path: str,
    cycle: int,
    *,
    max_nodes: int = DEFAULT_MAX_NODES,
) -> Explanation:
    """Build the causal cone for *path* at *cycle* from *sim*'s flight
    recorder.  Raises :class:`SimulationError` when the simulator has no
    flight recorder, and KeyError when the path is unknown or the cycle
    is outside the recorded window."""
    if sim.flight is None:
        raise SimulationError(
            "causal explanation needs a flight recorder: construct the "
            "simulator with flight=N (or zeusc sim --flight N)"
        )
    return _Explainer(sim, max_nodes).run(path, cycle)


class _Explainer:
    def __init__(self, sim: "Simulator", max_nodes: int):
        self.sim = sim
        self.flight = sim.flight
        self.max_nodes = max_nodes
        self.memo: dict[tuple[int, int], CauseNode] = {}
        self.count = 0
        self.truncated = False

    def run(self, path: str, cycle: int) -> Explanation:
        sim = self.sim
        nets = sim.nets_of(path)  # KeyError on unknown path
        self.flight.snapshot(cycle)  # KeyError outside the window
        shown = self.flight.peek(path, cycle)
        value = (
            str(shown[0])
            if len(shown) == 1
            else "[" + ", ".join(str(v) for v in shown) + "]"
        )
        roots = []
        for k, net in enumerate(nets):
            node = self.visit(sim._idx(net), cycle)
            if len(nets) > 1:
                node.reason = f"bit [{k + 1}]: {node.reason}"
            roots.append(node)
        return Explanation(
            path,
            cycle,
            value,
            sim.engine,
            roots,
            self.count,
            self.truncated,
        )

    # -- the walk ------------------------------------------------------

    def _value(self, i: int, cycle: int) -> Logic | None:
        return self.flight.snapshot(cycle).values[i]

    def visit(self, i: int, cycle: int) -> CauseNode:
        """The cause node for class *i* at *cycle* (memoized; a repeat
        reference returns a childless ``shared`` stub)."""
        key = (i, cycle)
        prior = self.memo.get(key)
        if prior is not None:
            return CauseNode(
                prior.net, prior.cycle, prior.value, prior.reason, shared=True
            )
        sim = self.sim
        raw = self._value(i, cycle)
        value = str(raw) if raw is not None else "(never fired)"
        node = CauseNode(sim._display[i], cycle, value, "")
        self.memo[key] = node
        self.count += 1
        if self.count >= self.max_nodes:
            node.reason = "walk budget exhausted"
            node.truncated = True
            self.truncated = True
            return node
        self._expand(node, i, cycle, raw)
        return node

    def _expand(
        self, node: CauseNode, i: int, cycle: int, raw: Logic | None
    ) -> None:
        sim = self.sim
        producers = self.flight.producers()[i]
        if not producers:
            node.reason = "no producer (undriven)"
            return
        reasons = []
        for kind, detail in producers:
            if kind == "input":
                reasons.append(self._explain_input(node, i, cycle))
            elif kind == "free":
                reasons.append(
                    "free net: no driver, fires its NOINFL default"
                )
            elif kind == "gate":
                reasons.append(self._explain_gate(node, detail, cycle, raw))
            elif kind == "register":
                reasons.append(self._explain_register(node, detail, cycle))
            elif kind == "drivers":
                reasons.append(
                    self._explain_drivers(node, i, detail, cycle, raw)
                )
        node.reason = "; ".join(r for r in reasons if r)

    def _explain_input(self, node: CauseNode, i: int, cycle: int) -> str:
        rec = self.flight.snapshot(cycle)
        if i in rec.pokes:
            return f"primary input, poked to {rec.pokes[i]}"
        return "primary input, not poked this cycle (UNDEF default)"

    def _explain_gate(
        self, node: CauseNode, gi: int, cycle: int, raw: Logic | None
    ) -> str:
        sim = self.sim
        op = sim._gates[gi].op
        ins = sim._gate_in[gi]
        if op == "RANDOM":
            return "RANDOM source (seed-driven, no data inputs)"
        vals = [self._value(j, cycle) for j in ins]
        bvals = [v.to_boolean() if v is not None else None for v in vals]
        picked, why = _responsible_inputs(op, bvals, raw)
        for j in picked:
            node.children.append(self.visit(ins[j], cycle))
        return f"{op} gate: {why}"

    def _explain_register(self, node: CauseNode, ri: int, cycle: int) -> str:
        sim = self.sim
        fl = self.flight
        reg = sim.netlist.regs[ri]
        name = reg.name or f"$reg{reg.id}"
        di = sim._reg_d[ri]
        first = fl.first_cycle
        latch_cycle = None
        for c in range(cycle - 1, first - 1, -1):
            d = fl.snapshot(c).values[di]
            if d is not None and d is not Logic.NOINFL:
                latch_cycle = c
                break
        if latch_cycle is None:
            if first > 0 or fl.dropped:
                return (
                    f"REG {name}: no latch in the recorded window "
                    f"(cycles {first}..{cycle}; earlier history dropped)"
                )
            return (
                f"REG {name}: never latched a driving value "
                "(initial contents are UNDEF)"
            )
        node.children.append(self.visit(di, latch_cycle))
        return f"REG {name}: holds the value latched at cycle {latch_cycle}"

    def _explain_drivers(
        self,
        node: CauseNode,
        i: int,
        dis: tuple,
        cycle: int,
        raw: Logic | None,
    ) -> str:
        sim = self.sim
        rec = self.flight.snapshot(cycle)
        active: list[int] = []  # guard 1 (or unconditional)
        maybe: list[int] = []  # guard UNDEF
        off: list[int] = []  # guard 0
        for di in dis:
            drv = sim._drivers[di]
            if drv.cond is None:
                active.append(di)
                continue
            cv = rec.values[drv.cond]
            cb = cv.to_boolean() if cv is not None else None
            if cb is Logic.ZERO:
                off.append(di)
            elif cb is Logic.ONE:
                active.append(di)
            else:
                maybe.append(di)

        def describe(di: int) -> str:
            drv = sim._drivers[di]
            src = (
                f"constant {drv.const}"
                if drv.const is not None
                else sim._display[drv.src]
            )
            guard = (
                f"guard {sim._display[drv.cond]}"
                if drv.cond is not None
                else "unconditional"
            )
            return f"{src} ({guard})"

        # Conflict: more than one driver actually drove a (0,1,UNDEF)
        # value.  Name every one of them -- this is the multiplex
        # double-drive diagnosis.
        driving = [
            di
            for di in active
            if self._driver_value(di, rec) not in (None, Logic.NOINFL)
        ]
        conflicted = any(v.net == node.net for v in rec.violations)
        if conflicted and len(driving) > 1:
            for di in driving:
                self._add_driver_children(node, di, cycle)
            names = ", ".join(describe(di) for di in driving)
            return (
                f"MULTIPLEX CONFLICT: {len(driving)} drivers drove "
                f"simultaneously -- {names} -- result forced to UNDEF"
            )
        if maybe:
            # Undefined guards poison the net no matter what the sources
            # hold: the guards are the cause.
            for di in maybe:
                drv = sim._drivers[di]
                node.children.append(self.visit(drv.cond, cycle))
            names = ", ".join(describe(di) for di in maybe)
            return (
                f"{len(maybe)} driver(s) with an UNDEF guard may drive "
                f"({names}): value poisoned to UNDEF"
            )
        if driving:
            for di in driving:
                self._add_driver_children(node, di, cycle)
            names = ", ".join(describe(di) for di in driving)
            return f"driven by {names}"
        if active:
            # Guards passed but every source was NOINFL.
            for di in active:
                self._add_driver_children(node, di, cycle)
            return (
                f"{len(active)} enabled driver(s) passed NOINFL "
                "(source has no influence)"
            )
        # Nothing drives: explain why each guard was off.
        for di in off:
            drv = sim._drivers[di]
            node.children.append(self.visit(drv.cond, cycle))
        return (
            f"all {len(off)} conditional driver(s) off (guards 0): "
            "no influence"
        )

    def _driver_value(self, di: int, rec) -> Logic | None:
        drv = self.sim._drivers[di]
        if drv.const is not None:
            return drv.const
        return rec.values[drv.src]

    def _add_driver_children(
        self, node: CauseNode, di: int, cycle: int
    ) -> None:
        drv = self.sim._drivers[di]
        if drv.cond is not None:
            node.children.append(self.visit(drv.cond, cycle))
        if drv.src is not None:
            node.children.append(self.visit(drv.src, cycle))
        else:
            node.children.append(
                CauseNode(
                    f"(const {drv.const})",
                    cycle,
                    str(drv.const),
                    "constant drive",
                )
            )


def _responsible_inputs(
    op: str, bvals: list[Logic | None], out: Logic | None
) -> tuple[list[int], str]:
    """Which gate input positions were responsible for *out*, plus a
    one-line reason, under the section-8 short-circuit firing rules."""
    n = len(bvals)
    every = list(range(n))

    def where(pred) -> list[int]:
        return [j for j in range(n) if pred(bvals[j])]

    if op == "NOT":
        return every, "output is the inverted input"
    if out is None:
        return every, "never fired (inputs incomplete)"
    if op in ("AND", "NAND"):
        zero_out = Logic.ZERO if op == "AND" else Logic.ONE
        if out is zero_out:
            picked = where(lambda v: v is Logic.ZERO)
            return picked, f"{len(picked)} input(s) at 0 short-circuit it"
        if out in (Logic.ZERO, Logic.ONE):
            return every, "all inputs are 1"
        picked = where(lambda v: v is not Logic.ONE)
        return picked, (
            f"no 0 input, but {len(picked)} input(s) undefined"
        )
    if op in ("OR", "NOR"):
        one_out = Logic.ONE if op == "OR" else Logic.ZERO
        if out is one_out:
            picked = where(lambda v: v is Logic.ONE)
            return picked, f"{len(picked)} input(s) at 1 short-circuit it"
        if out in (Logic.ZERO, Logic.ONE):
            return every, "all inputs are 0"
        picked = where(lambda v: v is not Logic.ZERO)
        return picked, (
            f"no 1 input, but {len(picked)} input(s) undefined"
        )
    if op == "XOR":
        if out in (Logic.ZERO, Logic.ONE):
            return every, "parity of all inputs"
        picked = where(lambda v: v is not None and not v.is_defined)
        return picked, f"{len(picked)} input(s) undefined"
    if op == "EQUAL":
        half = n // 2
        if out is Logic.ZERO:
            for j in range(half):
                x, y = bvals[j], bvals[half + j]
                if (
                    x is not None
                    and y is not None
                    and x.is_defined
                    and y.is_defined
                    and x is not y
                ):
                    return [j, half + j], (
                        f"operand position {j + 1} differs "
                        f"({x} vs {y}): settles the comparison to 0"
                    )
            return every, "operands differ"
        if out is Logic.ONE:
            return every, "all operand positions equal"
        picked = []
        for j in range(half):
            x, y = bvals[j], bvals[half + j]
            if x is None or y is None or not (x.is_defined and y.is_defined):
                picked.extend([j, half + j])
        return picked, "undefined operand position(s) leave it undecided"
    return every, f"{op} over its inputs"
