"""The cycle-level flight recorder.

The paper's section-8 dataflow semantics make every net value the result
of a discrete firing event, so a simulator over that semantics can
record *why* every value is what it is — not just what it is.  The
flight recorder is the event store that makes that possible: a bounded
ring buffer of per-cycle :class:`CycleRecord` snapshots that every
engine (dataflow, levelized, batched) feeds through the shared
``Simulator.step`` loop.

Design constraints, in order:

* **near-zero cost when disabled** — a simulator constructed without
  ``flight=`` pays exactly one ``is not None`` test per cycle;
* **bounded memory when enabled** — the ring holds at most ``capacity``
  cycles; older records are dropped (and counted in :attr:`dropped`)
  so arbitrarily long runs cannot leak;
* **engine-independent** — the record is taken after the combinational
  pass and the register latch, from state every engine maintains
  (the value array, the register file, the poke table, the violation
  list).  On the batched engine the recorder observes lane 0 — the
  scalar-comparable view, matching ``peek``/``Trace`` — while
  violations keep their lane tags for all lanes.

What one :class:`CycleRecord` holds:

* ``values`` — the post-evaluate value of every net class (a firing
  event per non-None entry; the *cause* of each firing is static — the
  class's producer in the semantics graph — and is resolved by
  :meth:`FlightRecorder.events` / :mod:`repro.obs.causal`);
* ``regs`` — the register file after the cycle's latch;
* ``pokes`` — the primary-input pokes in force this cycle;
* ``violations`` — the multiplex-conflict violations this cycle raised
  (with lane tags on the batched engine).

:mod:`repro.obs.causal` walks these records backward through the
netlist fan-in to answer "why is this net UNDEF / violating / 1 at
cycle C"; ``zeus.trace/1`` (:mod:`repro.obs.export`) serialises them.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterator

from ..core.values import Logic

if TYPE_CHECKING:
    from ..core.simulator import Simulator, Violation


@dataclass
class CycleRecord:
    """One cycle's flight-recorder snapshot."""

    __slots__ = ("cycle", "values", "regs", "pokes", "violations")

    cycle: int
    #: post-evaluate value per net class (None = never fired this cycle,
    #: possible only on unchecked cyclic designs).
    values: list
    #: register file *after* this cycle's latch (lane 0 on batched).
    regs: list
    #: class index -> poked Logic value in force this cycle (lane 0).
    pokes: dict
    #: the Violation objects this cycle raised (all lanes).
    violations: list


@dataclass
class FlightEvent:
    """One derived event: a firing, latch, poke or violation."""

    cycle: int
    kind: str  # "fire" | "latch" | "poke" | "violation"
    net: str
    value: str
    cause: str = ""
    lane: int | None = None
    values: list[str] = field(default_factory=list)

    def to_dict(self) -> dict:
        d = {
            "cycle": self.cycle,
            "kind": self.kind,
            "net": self.net,
            "value": self.value,
        }
        if self.cause:
            d["cause"] = self.cause
        if self.lane is not None:
            d["lane"] = self.lane
        if self.values:
            d["values"] = list(self.values)
        return d


class FlightRecorder:
    """A bounded ring buffer of per-cycle simulator snapshots.

    Construct with a cycle capacity and hand it to a simulator
    (``Simulator(design, flight=recorder)`` or the shorthand
    ``flight=N``).  The simulator calls :meth:`bind` once and
    :meth:`record` after each full clock cycle; everything else is the
    read side.
    """

    def __init__(self, capacity: int = 256):
        if capacity < 1:
            raise ValueError(
                f"flight recorder needs capacity >= 1, got {capacity}"
            )
        self.capacity = capacity
        self.records: deque[CycleRecord] = deque(maxlen=capacity)
        #: cycles that fell off the ring (recorded then evicted).
        self.dropped = 0
        #: False pauses recording (the step hook then costs one extra
        #: attribute test per cycle; no record is taken).
        self.enabled = True
        self._sim: "Simulator | None" = None
        #: static producer map: class index -> (kind, detail) list,
        #: built lazily by :meth:`producers`.
        self._producers: list[list[tuple[str, object]]] | None = None

    # -- write side (called by the simulator) --------------------------

    def bind(self, sim: "Simulator") -> None:
        """Attach to *sim* (called from ``Simulator.__init__``).

        Rebinding to a different simulator drops everything recorded
        for the previous one: snapshots, the dropped counter, and the
        cached producer map (which indexes the *old* netlist — resolving
        causes through it would mislabel every event)."""
        if self._sim is not None and self._sim is not sim:
            self.records.clear()
            self.dropped = 0
            self._producers = None
        self._sim = sim

    def record(self, sim: "Simulator", new_violations: list) -> None:
        """Snapshot the cycle that just completed (post-latch)."""
        if not self.enabled:
            return
        if sim.lanes is not None:
            if sim._values_stale:
                sim._materialize_lane0()
            from ..core.batched import lane_value

            regs = [
                lane_value(sim._breg0[ri], sim._breg1[ri], 0)
                for ri in range(len(sim._breg0))
            ]
            pokes = {
                i: lane_value(p0, p1, 0)
                for i, (p0, p1, pm) in sim._bpokes.items()
                if pm & 1
            }
        else:
            regs = list(sim._reg_state)
            pokes = dict(sim._pokes)
        if len(self.records) == self.capacity:
            self.dropped += 1
        self.records.append(
            CycleRecord(
                sim.cycle, list(sim.values), regs, pokes, list(new_violations)
            )
        )

    def reset(self) -> None:
        """Drop every recorded cycle (a fresh run; see ``reset_state``):
        the ring, the derived event stream window, the dropped counter,
        and the cached producer map all go -- nothing recorded before
        the reset can leak into a later explain window."""
        self.records.clear()
        self.dropped = 0
        self._producers = None

    # -- read side ------------------------------------------------------

    @property
    def sim(self) -> "Simulator":
        if self._sim is None:
            raise RuntimeError("flight recorder is not bound to a simulator")
        return self._sim

    @property
    def first_cycle(self) -> int | None:
        """Oldest recorded cycle (None when empty)."""
        return self.records[0].cycle if self.records else None

    @property
    def last_cycle(self) -> int | None:
        """Newest recorded cycle (None when empty)."""
        return self.records[-1].cycle if self.records else None

    def __len__(self) -> int:
        return len(self.records)

    def cycles(self) -> range:
        """The recorded cycle window as a range."""
        if not self.records:
            return range(0)
        return range(self.records[0].cycle, self.records[-1].cycle + 1)

    def snapshot(self, cycle: int) -> CycleRecord:
        """The record of *cycle*; KeyError when outside the window
        (never simulated, or already evicted from the ring)."""
        if not self.records:
            raise KeyError(
                f"flight recorder is empty (no cycles recorded); "
                f"cannot inspect cycle {cycle}"
            )
        first = self.records[0].cycle
        last = self.records[-1].cycle
        if not first <= cycle <= last:
            raise KeyError(
                f"cycle {cycle} is outside the recorded window "
                f"[{first}..{last}] "
                f"({self.dropped} older cycle(s) dropped from the ring)"
            )
        rec = self.records[cycle - first]
        assert rec.cycle == cycle
        return rec

    def peek(self, path: str, cycle: int) -> list[Logic]:
        """The recorded value of *path* at *cycle*, with the same
        boolean NOINFL-to-UNDEF amplification as ``Simulator.peek``
        (so it is directly comparable to a :class:`Trace` sample)."""
        from ..core.types import BOOLEAN

        sim = self.sim
        rec = self.snapshot(cycle)
        out: list[Logic] = []
        for net in sim.nets_of(path):
            v = rec.values[sim._idx(net)]
            if v is None:
                v = Logic.UNDEF
            if net.kind == BOOLEAN:
                v = v.to_boolean()
            out.append(v)
        return out

    # -- static cause resolution ----------------------------------------

    def producers(self) -> list[list[tuple[str, object]]]:
        """Per class: its producers in the semantics graph, as
        ``(kind, detail)`` pairs — ``("gate", gate_index)``,
        ``("drivers", (driver_index, ...))``, ``("register", reg_index)``,
        ``("input", None)``, ``("free", None)``.  A checked schedulable
        design has exactly one producer per class; the dataflow oracle
        also runs designs where classes carry several."""
        if self._producers is None:
            sim = self.sim
            n = len(sim._canon_ids)
            prod: list[list[tuple[str, object]]] = [[] for _ in range(n)]
            for gi, out in enumerate(sim._gate_out):
                prod[out].append(("gate", gi))
            for ci in range(n):
                if sim._drivers_of[ci]:
                    prod[ci].append(("drivers", tuple(sim._drivers_of[ci])))
            for ri, qi in enumerate(sim._reg_q):
                prod[qi].append(("register", ri))
            for i in range(n):
                if sim._is_input[i] and not sim._drivers_of[i]:
                    prod[i].append(("input", None))
            for i in sim._free:
                prod[i].append(("free", None))
            self._producers = prod
        return self._producers

    def _cause(self, i: int) -> str:
        """A short static cause label for class *i*'s firings."""
        sim = self.sim
        parts = []
        for kind, detail in self.producers()[i]:
            if kind == "gate":
                gi = detail
                parts.append(f"{sim._gates[gi].op} gate")
            elif kind == "drivers":
                parts.append(f"{len(detail)} driver(s)")
            elif kind == "register":
                reg = sim.netlist.regs[detail]
                parts.append(f"REG {reg.name or '$reg%d' % reg.id}")
            elif kind == "input":
                parts.append("primary input")
            else:
                parts.append("free default")
        return " + ".join(parts)

    def events(
        self, cycle: int | None = None, *, include_synthetic: bool = True
    ) -> Iterator[FlightEvent]:
        """Derive the event stream: firings (with their static cause),
        pokes, register latches, and violations.  *cycle* limits to one
        cycle; ``include_synthetic=False`` drops elaborator-synthesized
        ``$``-nets (gate outputs etc.) from the firing events."""
        sim = self.sim
        display = sim._display
        recs = (
            [self.snapshot(cycle)] if cycle is not None else list(self.records)
        )
        for rec in recs:
            for i, v in rec.pokes.items():
                yield FlightEvent(
                    rec.cycle, "poke", display[i], str(v), "testbench poke"
                )
            for i, v in enumerate(rec.values):
                if v is None:
                    continue
                name = display[i]
                if not include_synthetic and name.split(".")[-1].startswith("$"):
                    continue
                yield FlightEvent(rec.cycle, "fire", name, str(v), self._cause(i))
            for ri, di in enumerate(sim._reg_d):
                d = rec.values[di]
                if d is not None and d is not Logic.NOINFL:
                    reg = sim.netlist.regs[ri]
                    yield FlightEvent(
                        rec.cycle,
                        "latch",
                        reg.name or f"$reg{reg.id}",
                        str(d),
                        "REG stored a driving value at cycle end",
                    )
            for viol in rec.violations:
                yield FlightEvent(
                    rec.cycle,
                    "violation",
                    viol.net,
                    str(Logic.UNDEF),
                    "multiple (0,1,UNDEF) assignments",
                    lane=viol.lane,
                    values=[str(v) for v in viol.values],
                )

    def describe(self) -> str:
        window = self.cycles()
        span = (
            f"cycles {window.start}..{window.stop - 1}" if window else "empty"
        )
        return (
            f"flight recorder: {len(self.records)}/{self.capacity} cycles "
            f"({span}, {self.dropped} dropped)"
        )
