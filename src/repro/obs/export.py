"""Machine-readable metrics export (the ``zeus.metrics/1`` schema).

A report is a plain JSON object:

.. code-block:: none

    {
      "schema": "zeus.metrics/1",
      "design": {"name", "nets", "gates", "connections", "registers"},
      "compile": {                      # omitted if no spans captured
        "phases":      {name: inclusive seconds, ...},
        "self_phases": {name: exclusive seconds, ...},
        "spans":       [{name, path, start, duration_s, depth}, ...]
      },
      "sim": {                          # omitted if no simulation ran
        "engine",                       # "levelized"|"dataflow"|"batched"
        "cycles", "firings", "firings_per_cycle_avg", "gate_evals",
        "driver_evals", "propagation_steps", "latches", "violations",
        "peak_cycle", "peak_cycle_firings",
        "firings_by_cycle": [...], "steps_by_cycle": [...],
        "nets":  [{"name", "toggles", "fires"}, ...],
        "gates": [{"name", "evals", "fires"}, ...],
        "batched": {                    # present on the batched engine
          "lanes",                      # stimulus lanes per pass
          "lane_cycles",                # lanes * cycles evaluated
          "fast_path"                   # true = bit-parallel schedule,
        }                               # false = per-lane fallback
      },
      "lint": {                         # omitted if lint did not run
        "errors", "warnings", "notes", "suppressed",
        "by_rule": {rule: count},
        "prover": {"nets_analyzed", "proved_exclusive",
                   "proved_conflicting", "unknown"}   # omitted if off
      },
      "formal": {                       # omitted if zeusprove did not run
        "mode",                         # "prove" | "equiv"
        "verdict",                      # "proved"|"counterexample"|"unknown"
        "properties", "proved", "refuted", "unknown",
        "solver": {"clauses", "decisions", "nodes", "sat_calls",
                   "depth_reached", "budget_exhausted"}
      },
      "timing": {                       # omitted if zeustime did not run
        "model",                        # "unit" | "fanout"
        "worst_arrival", "min_clock_period",     # null: no registers
        "paths_reported", "paths_pruned", "violations",
        "solver": {"sat_calls", "decisions", "nodes",
                   "budget_exhausted"}
      },
      "wall": {"elapsed_s", "cycles_per_s"},  # omitted without timing
      "service": {                      # zeusd only (see repro.service)
        "uptime_s",
        "requests": {"total", "errors", "shed",
                     "by_endpoint": {endpoint: count}},
        "cache":    {"entries", "capacity", "hits", "misses",
                     "evictions", "hit_rate"},
        "pool":     {"workers", "queue_depth", "max_queue", "active",
                     "submitted", "completed", "timeouts", "shed"},
        "sessions": {"open",
                     "muxes": [{"design", "lanes", "occupied"}, ...]}
      }
    }

A service report (from ``zeusd``'s ``GET /v1/metrics``) describes the
daemon rather than one design, so ``design`` is optional exactly when
``service`` is present; :func:`service_metrics_report` builds one.

:func:`validate_report` is the schema's executable definition — the
docs, the tests and the CLI all go through it.

This module also defines the ``zeus.trace/1`` schema: the serialised
form of a flight-recorder window (:mod:`repro.obs.flight`), optionally
carrying a causal explanation (:mod:`repro.obs.causal`):

.. code-block:: none

    {
      "schema": "zeus.trace/1",
      "design": {"name", "nets", "gates", "connections", "registers"},
      "engine",                         # "levelized"|"dataflow"|"batched"
      "lanes",                          # int | null (scalar engines)
      "window": {"first", "last",       # recorded cycle range (null/empty)
                 "capacity", "recorded", "dropped"},
      "events": [                       # time-ordered
        {"cycle", "kind",               # "fire"|"latch"|"poke"|"violation"
         "net", "value",               # value as "0"|"1"|"UNDEF"|"NOINFL"
         "cause"?,                     # static producer / event cause
         "lane"?,                      # violations on the batched engine
         "values"?},                   # the conflicting drive values
      ],
      "explanation"?: {                 # from `zeusc explain`
        "target": {"path", "cycle", "value"},
        "engine", "node_count", "truncated",
        "tree": [{ "net", "cycle", "value", "reason",
                   "shared"?, "truncated"?, "children"? }, ...]
      }
    }

:func:`validate_trace_report` is its executable definition.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .spans import SpanRegistry

if TYPE_CHECKING:
    from .. import Circuit
    from ..core.simulator import Simulator

SCHEMA = "zeus.metrics/1"
TRACE_SCHEMA = "zeus.trace/1"

#: Values a trace event may carry (stringified Logic, or the
#: never-fired marker used by causal nodes).
_LOGIC_NAMES = ("0", "1", "UNDEF", "NOINFL")
_EVENT_KINDS = ("fire", "latch", "poke", "violation")


def metrics_report(
    circuit: "Circuit",
    sim: "Simulator | None" = None,
    registry: SpanRegistry | None = None,
    *,
    elapsed: float | None = None,
    top: int | None = None,
    lint=None,
    formal=None,
    timing=None,
) -> dict:
    """Assemble the full ``zeus.metrics/1`` report dict."""
    stats = circuit.netlist.stats()
    report: dict = {
        "schema": SCHEMA,
        "design": {
            "name": circuit.name,
            "nets": stats.get("nets", 0),
            "gates": stats.get("gates", 0),
            "connections": stats.get("connections", 0),
            "registers": stats.get("registers", 0),
        },
    }
    if registry is not None and registry.spans:
        report["compile"] = {
            "phases": registry.phase_totals(),
            "self_phases": registry.self_times(),
            "spans": registry.to_dicts(),
        }
    if sim is not None and sim.metrics.enabled:
        report["sim"] = sim.metrics.to_dict(top=top)
    if lint is not None:
        section = {
            "errors": lint.errors,
            "warnings": lint.warnings,
            "notes": lint.notes,
            "suppressed": lint.suppressed,
            "by_rule": lint.by_rule(),
        }
        if lint.prover is not None:
            section["prover"] = {
                "nets_analyzed": len(lint.prover.nets),
                "proved_exclusive": lint.prover.proved_exclusive,
                "proved_conflicting": lint.prover.proved_conflicting,
                "unknown": lint.prover.unknown,
            }
        report["lint"] = section
    if formal is not None:
        report["formal"] = {
            "mode": formal.mode,
            "verdict": formal.verdict,
            "properties": len(formal.results),
            "proved": formal.proved,
            "refuted": formal.refuted,
            "unknown": formal.unknown,
            "solver": {
                "clauses": formal.clauses,
                "decisions": formal.stats.decisions,
                "nodes": formal.stats.nodes,
                "sat_calls": formal.stats.sat_calls,
                "depth_reached": formal.depth_reached,
                "budget_exhausted": formal.stats.budget_exhausted,
            },
        }
    if timing is not None:
        report["timing"] = {
            "model": timing.model_name,
            "worst_arrival": timing.worst_arrival,
            "min_clock_period": timing.min_clock_period,
            "paths_reported": len(timing.paths),
            "paths_pruned": len(timing.pruned),
            "violations": len(timing.violations),
            "solver": {
                "sat_calls": timing.solver.sat_calls,
                "decisions": timing.solver.decisions,
                "nodes": timing.solver.nodes,
                "budget_exhausted": timing.solver.budget_exhausted,
            },
        }
    if elapsed is not None:
        cycles = sim.metrics.cycles if sim is not None else 0
        report["wall"] = {
            "elapsed_s": elapsed,
            "cycles_per_s": (cycles / elapsed) if elapsed > 0 else 0.0,
        }
    return report


def service_metrics_report(
    service: dict, registry: SpanRegistry | None = None
) -> dict:
    """Assemble a ``zeus.metrics/1`` report describing a running
    ``zeusd`` daemon (the *service* section comes from
    :meth:`repro.service.server.ZeusDaemon.stats`); *registry* adds the
    daemon's recent request spans as a ``compile`` section."""
    report: dict = {"schema": SCHEMA, "service": service}
    if registry is not None and registry.spans:
        report["compile"] = {
            "phases": registry.phase_totals(),
            "self_phases": registry.self_times(),
            "spans": registry.to_dicts(),
        }
    return report


def write_metrics(path: str, report: dict) -> None:
    """Validate and write a report as JSON."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to the documented
    ``zeus.metrics/1`` shape."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"metrics report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"metrics report: {where}.{key} must be "
                f"{types}, got {type(obj[key]).__name__}"
            )
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("metrics report must be a dict")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"metrics report: schema must be {SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    if "design" in report or "service" not in report:
        design = need(report, "design", dict, "report")
        need(design, "name", str, "design")
        for key in ("nets", "gates", "connections", "registers"):
            need(design, key, int, "design")

    if "service" in report:
        service = need(report, "service", dict, "report")
        need(service, "uptime_s", (int, float), "service")
        requests = need(service, "requests", dict, "service")
        for key in ("total", "errors", "shed"):
            need(requests, key, int, "service.requests")
        by_endpoint = need(requests, "by_endpoint", dict,
                           "service.requests")
        for ep, count in by_endpoint.items():
            if not isinstance(count, int):
                raise ValueError(
                    f"metrics report: service.requests.by_endpoint"
                    f"[{ep!r}] must be int"
                )
        cache = need(service, "cache", dict, "service")
        for key in ("entries", "capacity", "hits", "misses", "evictions"):
            need(cache, key, int, "service.cache")
        need(cache, "hit_rate", (int, float), "service.cache")
        pool = need(service, "pool", dict, "service")
        for key in ("workers", "queue_depth", "max_queue", "active",
                    "submitted", "completed", "timeouts", "shed"):
            need(pool, key, int, "service.pool")
        sessions = need(service, "sessions", dict, "service")
        need(sessions, "open", int, "service.sessions")
        for mux in need(sessions, "muxes", list, "service.sessions"):
            need(mux, "design", str, "service.sessions.muxes[]")
            need(mux, "lanes", int, "service.sessions.muxes[]")
            need(mux, "occupied", int, "service.sessions.muxes[]")

    if "compile" in report:
        comp = need(report, "compile", dict, "report")
        phases = need(comp, "phases", dict, "compile")
        for name, dur in phases.items():
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"metrics report: compile.phases[{name!r}] must be a "
                    f"non-negative number"
                )
        for sp in need(comp, "spans", list, "compile"):
            need(sp, "name", str, "compile.spans[]")
            need(sp, "duration_s", (int, float), "compile.spans[]")

    if "sim" in report:
        sim = need(report, "sim", dict, "report")
        for key in ("cycles", "firings", "gate_evals", "driver_evals",
                    "propagation_steps", "latches", "violations",
                    "peak_cycle", "peak_cycle_firings"):
            need(sim, key, int, "sim")
        need(sim, "firings_per_cycle_avg", (int, float), "sim")
        if "engine" in sim:
            need(sim, "engine", str, "sim")
        if len(need(sim, "firings_by_cycle", list, "sim")) != sim["cycles"]:
            raise ValueError(
                "metrics report: sim.firings_by_cycle length must equal "
                "sim.cycles"
            )
        need(sim, "steps_by_cycle", list, "sim")
        for net in need(sim, "nets", list, "sim"):
            need(net, "name", str, "sim.nets[]")
            need(net, "toggles", int, "sim.nets[]")
            need(net, "fires", int, "sim.nets[]")
        for gate in need(sim, "gates", list, "sim"):
            need(gate, "name", str, "sim.gates[]")
            need(gate, "evals", int, "sim.gates[]")
            need(gate, "fires", int, "sim.gates[]")
        if "batched" in sim:
            batched = need(sim, "batched", dict, "sim")
            need(batched, "lanes", int, "sim.batched")
            need(batched, "lane_cycles", int, "sim.batched")
            need(batched, "fast_path", bool, "sim.batched")
            if batched["lanes"] < 1:
                raise ValueError(
                    "metrics report: sim.batched.lanes must be >= 1"
                )

    if "lint" in report:
        lint = need(report, "lint", dict, "report")
        for key in ("errors", "warnings", "notes", "suppressed"):
            need(lint, key, int, "lint")
        by_rule = need(lint, "by_rule", dict, "lint")
        for rule, count in by_rule.items():
            if not isinstance(count, int):
                raise ValueError(
                    f"metrics report: lint.by_rule[{rule!r}] must be int"
                )
        if "prover" in lint:
            prover = need(lint, "prover", dict, "lint")
            for key in ("nets_analyzed", "proved_exclusive",
                        "proved_conflicting", "unknown"):
                need(prover, key, int, "lint.prover")

    if "formal" in report:
        formal = need(report, "formal", dict, "report")
        if formal.get("mode") not in ("prove", "equiv"):
            raise ValueError(
                f"metrics report: bad formal.mode {formal.get('mode')!r}")
        if formal.get("verdict") not in ("proved", "counterexample",
                                         "unknown"):
            raise ValueError(
                "metrics report: bad formal.verdict "
                f"{formal.get('verdict')!r}")
        for key in ("properties", "proved", "refuted", "unknown"):
            need(formal, key, int, "formal")
        solver = need(formal, "solver", dict, "formal")
        for key in ("clauses", "decisions", "nodes", "sat_calls",
                    "depth_reached"):
            need(solver, key, int, "formal.solver")
        need(solver, "budget_exhausted", bool, "formal.solver")

    if "timing" in report:
        timing = need(report, "timing", dict, "report")
        need(timing, "model", str, "timing")
        need(timing, "worst_arrival", (int, float), "timing")
        if not isinstance(timing.get("min_clock_period"),
                          (int, float, type(None))):
            raise ValueError(
                "metrics report: timing.min_clock_period must be a "
                "number or null")
        for key in ("paths_reported", "paths_pruned", "violations"):
            need(timing, key, int, "timing")
        solver = need(timing, "solver", dict, "timing")
        for key in ("sat_calls", "decisions", "nodes"):
            need(solver, key, int, "timing.solver")
        need(solver, "budget_exhausted", bool, "timing.solver")

    if "wall" in report:
        wall = need(report, "wall", dict, "report")
        need(wall, "elapsed_s", (int, float), "wall")
        need(wall, "cycles_per_s", (int, float), "wall")


# -- zeus.trace/1 ------------------------------------------------------------


def trace_report(
    circuit: "Circuit",
    sim: "Simulator",
    *,
    explanation=None,
    include_synthetic: bool = False,
    max_events: int | None = None,
) -> dict:
    """Assemble a ``zeus.trace/1`` report from *sim*'s flight recorder
    (raises :class:`~repro.lang.errors.SimulationError` without one).

    Elaborator-synthesized ``$``-net firings are dropped unless
    *include_synthetic*; *max_events* truncates the event list (oldest
    first) for huge windows."""
    from ..lang.errors import SimulationError

    fl = sim.flight
    if fl is None:
        raise SimulationError(
            "trace export needs a flight recorder: construct the "
            "simulator with flight=N (or zeusc sim --flight N)"
        )
    stats = circuit.netlist.stats()
    events = [
        ev.to_dict()
        for ev in fl.events(include_synthetic=include_synthetic)
    ]
    truncated_events = 0
    if max_events is not None and len(events) > max_events:
        truncated_events = len(events) - max_events
        events = events[:max_events]
    report: dict = {
        "schema": TRACE_SCHEMA,
        "design": {
            "name": circuit.name,
            "nets": stats.get("nets", 0),
            "gates": stats.get("gates", 0),
            "connections": stats.get("connections", 0),
            "registers": stats.get("registers", 0),
        },
        "engine": sim.engine,
        "lanes": sim.lanes,
        "window": {
            "first": fl.first_cycle,
            "last": fl.last_cycle,
            "capacity": fl.capacity,
            "recorded": len(fl),
            "dropped": fl.dropped,
        },
        "events": events,
    }
    if truncated_events:
        report["window"]["truncated_events"] = truncated_events
    if explanation is not None:
        report["explanation"] = explanation.to_dict()
    return report


def write_trace(path: str, report: dict) -> None:
    """Validate and write a ``zeus.trace/1`` report as JSON."""
    validate_trace_report(report)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def validate_trace_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to the documented
    ``zeus.trace/1`` shape."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"trace report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"trace report: {where}.{key} must be "
                f"{types}, got {type(obj[key]).__name__}"
            )
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("trace report must be a dict")
    if report.get("schema") != TRACE_SCHEMA:
        raise ValueError(
            f"trace report: schema must be {TRACE_SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    design = need(report, "design", dict, "report")
    need(design, "name", str, "design")
    for key in ("nets", "gates", "connections", "registers"):
        need(design, key, int, "design")
    need(report, "engine", str, "report")
    if "lanes" not in report or not (
        report["lanes"] is None or isinstance(report["lanes"], int)
    ):
        raise ValueError("trace report: lanes must be int or null")

    window = need(report, "window", dict, "report")
    for key in ("capacity", "recorded", "dropped"):
        if need(window, key, int, "window") < 0:
            raise ValueError(f"trace report: window.{key} must be >= 0")
    for key in ("first", "last"):
        if key not in window or not (
            window[key] is None or isinstance(window[key], int)
        ):
            raise ValueError(
                f"trace report: window.{key} must be int or null"
            )
    if (window["first"] is None) != (window["recorded"] == 0):
        raise ValueError(
            "trace report: window.first is null exactly when nothing "
            "was recorded"
        )

    prev_cycle = None
    for ev in need(report, "events", list, "report"):
        cyc = need(ev, "cycle", int, "events[]")
        if prev_cycle is not None and cyc < prev_cycle:
            raise ValueError("trace report: events must be time-ordered")
        prev_cycle = cyc
        if need(ev, "kind", str, "events[]") not in _EVENT_KINDS:
            raise ValueError(
                f"trace report: bad event kind {ev['kind']!r}"
            )
        need(ev, "net", str, "events[]")
        if need(ev, "value", str, "events[]") not in _LOGIC_NAMES:
            raise ValueError(
                f"trace report: bad event value {ev['value']!r}"
            )
        if "lane" in ev and not isinstance(ev["lane"], int):
            raise ValueError("trace report: events[].lane must be int")
        if "values" in ev:
            for v in need(ev, "values", list, "events[]"):
                if v not in _LOGIC_NAMES:
                    raise ValueError(
                        f"trace report: bad conflict value {v!r}"
                    )

    if "explanation" in report:
        expl = need(report, "explanation", dict, "report")
        target = need(expl, "target", dict, "explanation")
        need(target, "path", str, "explanation.target")
        need(target, "cycle", int, "explanation.target")
        need(target, "value", str, "explanation.target")
        need(expl, "engine", str, "explanation")
        need(expl, "node_count", int, "explanation")
        need(expl, "truncated", bool, "explanation")

        def check_node(node: dict, where: str) -> None:
            need(node, "net", str, where)
            need(node, "cycle", int, where)
            need(node, "value", str, where)
            need(node, "reason", str, where)
            for child in node.get("children", []):
                check_node(child, where + ".children[]")

        for node in need(expl, "tree", list, "explanation"):
            check_node(node, "explanation.tree[]")
