"""Machine-readable metrics export (the ``zeus.metrics/1`` schema).

A report is a plain JSON object:

.. code-block:: none

    {
      "schema": "zeus.metrics/1",
      "design": {"name", "nets", "gates", "connections", "registers"},
      "compile": {                      # omitted if no spans captured
        "phases":      {name: inclusive seconds, ...},
        "self_phases": {name: exclusive seconds, ...},
        "spans":       [{name, path, start, duration_s, depth}, ...]
      },
      "sim": {                          # omitted if no simulation ran
        "engine",                       # "levelized"|"dataflow"|"batched"
        "cycles", "firings", "firings_per_cycle_avg", "gate_evals",
        "driver_evals", "propagation_steps", "latches", "violations",
        "peak_cycle", "peak_cycle_firings",
        "firings_by_cycle": [...], "steps_by_cycle": [...],
        "nets":  [{"name", "toggles", "fires"}, ...],
        "gates": [{"name", "evals", "fires"}, ...],
        "batched": {                    # present on the batched engine
          "lanes",                      # stimulus lanes per pass
          "lane_cycles",                # lanes * cycles evaluated
          "fast_path"                   # true = bit-parallel schedule,
        }                               # false = per-lane fallback
      },
      "lint": {                         # omitted if lint did not run
        "errors", "warnings", "notes", "suppressed",
        "by_rule": {rule: count},
        "prover": {"nets_analyzed", "proved_exclusive",
                   "proved_conflicting", "unknown"}   # omitted if off
      },
      "formal": {                       # omitted if zeusprove did not run
        "mode",                         # "prove" | "equiv"
        "verdict",                      # "proved"|"counterexample"|"unknown"
        "properties", "proved", "refuted", "unknown",
        "solver": {"clauses", "decisions", "nodes", "sat_calls",
                   "depth_reached", "budget_exhausted"}
      },
      "wall": {"elapsed_s", "cycles_per_s"}   # omitted without timing
    }

:func:`validate_report` is the schema's executable definition — the
docs, the tests and the CLI all go through it.
"""

from __future__ import annotations

import json
from typing import TYPE_CHECKING

from .spans import SpanRegistry

if TYPE_CHECKING:
    from .. import Circuit
    from ..core.simulator import Simulator

SCHEMA = "zeus.metrics/1"


def metrics_report(
    circuit: "Circuit",
    sim: "Simulator | None" = None,
    registry: SpanRegistry | None = None,
    *,
    elapsed: float | None = None,
    top: int | None = None,
    lint=None,
    formal=None,
) -> dict:
    """Assemble the full ``zeus.metrics/1`` report dict."""
    stats = circuit.netlist.stats()
    report: dict = {
        "schema": SCHEMA,
        "design": {
            "name": circuit.name,
            "nets": stats.get("nets", 0),
            "gates": stats.get("gates", 0),
            "connections": stats.get("connections", 0),
            "registers": stats.get("registers", 0),
        },
    }
    if registry is not None and registry.spans:
        report["compile"] = {
            "phases": registry.phase_totals(),
            "self_phases": registry.self_times(),
            "spans": registry.to_dicts(),
        }
    if sim is not None and sim.metrics.enabled:
        report["sim"] = sim.metrics.to_dict(top=top)
    if lint is not None:
        section = {
            "errors": lint.errors,
            "warnings": lint.warnings,
            "notes": lint.notes,
            "suppressed": lint.suppressed,
            "by_rule": lint.by_rule(),
        }
        if lint.prover is not None:
            section["prover"] = {
                "nets_analyzed": len(lint.prover.nets),
                "proved_exclusive": lint.prover.proved_exclusive,
                "proved_conflicting": lint.prover.proved_conflicting,
                "unknown": lint.prover.unknown,
            }
        report["lint"] = section
    if formal is not None:
        report["formal"] = {
            "mode": formal.mode,
            "verdict": formal.verdict,
            "properties": len(formal.results),
            "proved": formal.proved,
            "refuted": formal.refuted,
            "unknown": formal.unknown,
            "solver": {
                "clauses": formal.clauses,
                "decisions": formal.stats.decisions,
                "nodes": formal.stats.nodes,
                "sat_calls": formal.stats.sat_calls,
                "depth_reached": formal.depth_reached,
                "budget_exhausted": formal.stats.budget_exhausted,
            },
        }
    if elapsed is not None:
        cycles = sim.metrics.cycles if sim is not None else 0
        report["wall"] = {
            "elapsed_s": elapsed,
            "cycles_per_s": (cycles / elapsed) if elapsed > 0 else 0.0,
        }
    return report


def write_metrics(path: str, report: dict) -> None:
    """Validate and write a report as JSON."""
    validate_report(report)
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")


def validate_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to the documented
    ``zeus.metrics/1`` shape."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"metrics report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"metrics report: {where}.{key} must be "
                f"{types}, got {type(obj[key]).__name__}"
            )
        return obj[key]

    if not isinstance(report, dict):
        raise ValueError("metrics report must be a dict")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"metrics report: schema must be {SCHEMA!r}, "
            f"got {report.get('schema')!r}"
        )
    design = need(report, "design", dict, "report")
    need(design, "name", str, "design")
    for key in ("nets", "gates", "connections", "registers"):
        need(design, key, int, "design")

    if "compile" in report:
        comp = need(report, "compile", dict, "report")
        phases = need(comp, "phases", dict, "compile")
        for name, dur in phases.items():
            if not isinstance(dur, (int, float)) or dur < 0:
                raise ValueError(
                    f"metrics report: compile.phases[{name!r}] must be a "
                    f"non-negative number"
                )
        for sp in need(comp, "spans", list, "compile"):
            need(sp, "name", str, "compile.spans[]")
            need(sp, "duration_s", (int, float), "compile.spans[]")

    if "sim" in report:
        sim = need(report, "sim", dict, "report")
        for key in ("cycles", "firings", "gate_evals", "driver_evals",
                    "propagation_steps", "latches", "violations",
                    "peak_cycle", "peak_cycle_firings"):
            need(sim, key, int, "sim")
        need(sim, "firings_per_cycle_avg", (int, float), "sim")
        if "engine" in sim:
            need(sim, "engine", str, "sim")
        if len(need(sim, "firings_by_cycle", list, "sim")) != sim["cycles"]:
            raise ValueError(
                "metrics report: sim.firings_by_cycle length must equal "
                "sim.cycles"
            )
        need(sim, "steps_by_cycle", list, "sim")
        for net in need(sim, "nets", list, "sim"):
            need(net, "name", str, "sim.nets[]")
            need(net, "toggles", int, "sim.nets[]")
            need(net, "fires", int, "sim.nets[]")
        for gate in need(sim, "gates", list, "sim"):
            need(gate, "name", str, "sim.gates[]")
            need(gate, "evals", int, "sim.gates[]")
            need(gate, "fires", int, "sim.gates[]")
        if "batched" in sim:
            batched = need(sim, "batched", dict, "sim")
            need(batched, "lanes", int, "sim.batched")
            need(batched, "lane_cycles", int, "sim.batched")
            need(batched, "fast_path", bool, "sim.batched")
            if batched["lanes"] < 1:
                raise ValueError(
                    "metrics report: sim.batched.lanes must be >= 1"
                )

    if "lint" in report:
        lint = need(report, "lint", dict, "report")
        for key in ("errors", "warnings", "notes", "suppressed"):
            need(lint, key, int, "lint")
        by_rule = need(lint, "by_rule", dict, "lint")
        for rule, count in by_rule.items():
            if not isinstance(count, int):
                raise ValueError(
                    f"metrics report: lint.by_rule[{rule!r}] must be int"
                )
        if "prover" in lint:
            prover = need(lint, "prover", dict, "lint")
            for key in ("nets_analyzed", "proved_exclusive",
                        "proved_conflicting", "unknown"):
                need(prover, key, int, "lint.prover")

    if "formal" in report:
        formal = need(report, "formal", dict, "report")
        if formal.get("mode") not in ("prove", "equiv"):
            raise ValueError(
                f"metrics report: bad formal.mode {formal.get('mode')!r}")
        if formal.get("verdict") not in ("proved", "counterexample",
                                         "unknown"):
            raise ValueError(
                "metrics report: bad formal.verdict "
                f"{formal.get('verdict')!r}")
        for key in ("properties", "proved", "refuted", "unknown"):
            need(formal, key, int, "formal")
        solver = need(formal, "solver", dict, "formal")
        for key in ("clauses", "decisions", "nodes", "sat_calls",
                    "depth_reached"):
            need(solver, key, int, "formal.solver")
        need(solver, "budget_exhausted", bool, "formal.solver")

    if "wall" in report:
        wall = need(report, "wall", dict, "report")
        need(wall, "elapsed_s", (int, float), "wall")
        need(wall, "cycles_per_s", (int, float), "wall")
