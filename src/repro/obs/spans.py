"""Compile-phase spans: a lightweight nestable timer API.

The compile pipeline (lex -> parse -> elaborate -> check) reports where
time goes through a process-wide :class:`SpanRegistry`.  Each phase
wraps itself in ``with span("name"):`` and the registry records a
:class:`Span` with its wall-clock duration and nesting path, e.g.
``compile/parse`` or ``compile/parse/lex``.

The registry is bounded (a deque) so long-running processes cannot leak
memory, and it can be disabled entirely (``REGISTRY.enabled = False``)
in which case ``span()`` degenerates to a near-free null context.

Typical use::

    from repro.obs import REGISTRY

    REGISTRY.reset()
    repro.compile_text(text)
    print(REGISTRY.render())            # phase timing table
    totals = REGISTRY.phase_totals()    # {"lex": 0.0003, ...}
"""

from __future__ import annotations

import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed region.  ``path`` encodes nesting (``a/b/c``)."""

    name: str
    path: str
    start: float
    duration: float = 0.0
    depth: int = 0
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
        }
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class SpanRegistry:
    """A process-wide collector of :class:`Span` records.

    ``maxlen`` bounds memory; the oldest spans are dropped first.  The
    registry is intentionally simple (no thread-local stacks): the
    compile pipeline is synchronous, and concurrent compiles should use
    private registries via :meth:`scoped`.
    """

    def __init__(self, maxlen: int = 10_000):
        self.enabled = True
        self.spans: deque[Span] = deque(maxlen=maxlen)
        self._stack: list[Span] = []

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span | None]:
        """Time a region.  Yields the live :class:`Span` (or None when
        the registry is disabled) so callers may attach metadata."""
        if not self.enabled:
            yield None
            return
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent else name
        sp = Span(
            name=name,
            path=path,
            start=time.perf_counter(),
            depth=len(self._stack),
            meta=meta,
        )
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - sp.start
            self._stack.pop()
            self.spans.append(sp)

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()

    @contextmanager
    def scoped(self) -> Iterator["SpanRegistry"]:
        """Temporarily swap in a fresh registry as the module default —
        lets a caller capture exactly one compile's spans without racing
        other users of the global registry."""
        global REGISTRY
        fresh = SpanRegistry(maxlen=self.spans.maxlen or 10_000)
        prev = REGISTRY
        REGISTRY = fresh
        try:
            yield fresh
        finally:
            REGISTRY = prev

    # -- reporting ---------------------------------------------------------

    def phase_totals(self) -> dict[str, float]:
        """Total inclusive duration per span *name*, in seconds."""
        totals: dict[str, float] = {}
        for sp in self.spans:
            totals[sp.name] = totals.get(sp.name, 0.0) + sp.duration
        return totals

    def self_times(self) -> dict[str, float]:
        """Exclusive (self) duration per span name: inclusive time minus
        the time spent in directly nested child spans."""
        child_time: dict[str, float] = {}
        for sp in self.spans:
            if "/" in sp.path:
                parent_path = sp.path.rsplit("/", 1)[0]
                child_time[parent_path] = (
                    child_time.get(parent_path, 0.0) + sp.duration
                )
        out: dict[str, float] = {}
        for sp in self.spans:
            self_t = sp.duration - child_time.get(sp.path, 0.0)
            out[sp.name] = out.get(sp.name, 0.0) + self_t
        return out

    def to_dicts(self) -> list[dict]:
        return [sp.to_dict() for sp in self.spans]

    def render(self) -> str:
        """A phase timing table (one row per span, in completion order)."""
        if not self.spans:
            return "(no spans recorded)"
        ordered = sorted(self.spans, key=lambda s: s.start)
        width = max(len("  " * s.depth + s.name) for s in ordered)
        rows = []
        for sp in ordered:
            label = "  " * sp.depth + sp.name
            rows.append(f"{label:<{width}}  {sp.duration * 1e3:9.3f} ms")
        return "\n".join(rows)


#: The process-wide default registry used by the compile pipeline.
REGISTRY = SpanRegistry()


@contextmanager
def span(name: str, **meta) -> Iterator[Span | None]:
    """Record *name* on the current default registry (see
    :data:`REGISTRY`; :meth:`SpanRegistry.scoped` can swap it)."""
    with REGISTRY.span(name, **meta) as sp:
        yield sp
