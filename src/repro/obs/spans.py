"""Compile-phase spans: a lightweight nestable timer API.

The compile pipeline (lex -> parse -> elaborate -> check) reports where
time goes through a process-wide :class:`SpanRegistry`.  Each phase
wraps itself in ``with span("name"):`` and the registry records a
:class:`Span` with its wall-clock duration and nesting path, e.g.
``compile/parse`` or ``compile/parse/lex``.

The registry is bounded (a deque) so long-running processes cannot leak
memory, and it can be disabled entirely (``REGISTRY.enabled = False``)
in which case ``span()`` degenerates to a near-free null context.

Typical use::

    from repro.obs import REGISTRY

    REGISTRY.reset()
    repro.compile_text(text)
    print(REGISTRY.render())            # phase timing table
    totals = REGISTRY.phase_totals()    # {"lex": 0.0003, ...}

Library embedders (and the future zeusd service) should not share the
process-wide :data:`REGISTRY`: pass a private registry instead, either
explicitly (``compile_text(text, registry=my_reg)``) or by activating it
for a region (``with use_registry(my_reg): ...``).  The active registry
is tracked in a :mod:`contextvars` variable, so concurrent compiles in
different threads or asyncio tasks record into their own registries
without racing.
"""

from __future__ import annotations

import contextvars
import time
from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator


@dataclass
class Span:
    """One timed region.  ``path`` encodes nesting (``a/b/c``)."""

    name: str
    path: str
    start: float
    duration: float = 0.0
    depth: int = 0
    meta: dict = field(default_factory=dict)

    def to_dict(self) -> dict:
        d = {
            "name": self.name,
            "path": self.path,
            "start": self.start,
            "duration_s": self.duration,
            "depth": self.depth,
        }
        if self.meta:
            d["meta"] = dict(self.meta)
        return d


class SpanRegistry:
    """A process-wide collector of :class:`Span` records.

    ``maxlen`` bounds memory; the oldest spans are dropped first.  The
    registry is safe to *share* between threads: the open-span stack
    that computes nesting paths is context-local (each thread or asyncio
    context nests independently) and the record deque's appends are
    atomic, so concurrent compiles recording into one registry never
    corrupt each other's paths.  They do interleave in ``spans`` —
    callers that want one compile's spans in isolation should still pass
    a private registry (``compile_text(..., registry=...)``).
    """

    def __init__(self, maxlen: int = 10_000):
        self.enabled = True
        self.spans: deque[Span] = deque(maxlen=maxlen)
        # One open-span stack per (context, registry): a fresh thread
        # starts with an empty context, so its first span sees depth 0
        # regardless of what other threads are mid-compile on.
        self._stack_var: contextvars.ContextVar[list[Span] | None] = (
            contextvars.ContextVar("zeus_span_stack", default=None)
        )

    @property
    def _stack(self) -> list[Span]:
        st = self._stack_var.get()
        if st is None:
            st = []
            self._stack_var.set(st)
        return st

    # -- recording ---------------------------------------------------------

    @contextmanager
    def span(self, name: str, **meta) -> Iterator[Span | None]:
        """Time a region.  Yields the live :class:`Span` (or None when
        the registry is disabled) so callers may attach metadata."""
        if not self.enabled:
            yield None
            return
        parent = self._stack[-1] if self._stack else None
        path = f"{parent.path}/{name}" if parent else name
        sp = Span(
            name=name,
            path=path,
            start=time.perf_counter(),
            depth=len(self._stack),
            meta=meta,
        )
        self._stack.append(sp)
        try:
            yield sp
        finally:
            sp.duration = time.perf_counter() - sp.start
            self._stack.pop()
            self.spans.append(sp)

    def reset(self) -> None:
        self.spans.clear()
        self._stack.clear()

    @contextmanager
    def scoped(self) -> Iterator["SpanRegistry"]:
        """Temporarily swap in a fresh registry as the module default —
        lets a caller capture exactly one compile's spans without racing
        other users of the global registry."""
        global REGISTRY
        fresh = SpanRegistry(maxlen=self.spans.maxlen or 10_000)
        prev = REGISTRY
        REGISTRY = fresh
        try:
            yield fresh
        finally:
            REGISTRY = prev

    # -- reporting ---------------------------------------------------------

    def phase_totals(self) -> dict[str, float]:
        """Total inclusive duration per span *name*, in seconds."""
        totals: dict[str, float] = {}
        for sp in self.spans:
            totals[sp.name] = totals.get(sp.name, 0.0) + sp.duration
        return totals

    def self_times(self) -> dict[str, float]:
        """Exclusive (self) duration per span name: inclusive time minus
        the time spent in directly nested child spans."""
        child_time: dict[str, float] = {}
        for sp in self.spans:
            if "/" in sp.path:
                parent_path = sp.path.rsplit("/", 1)[0]
                child_time[parent_path] = (
                    child_time.get(parent_path, 0.0) + sp.duration
                )
        out: dict[str, float] = {}
        for sp in self.spans:
            self_t = sp.duration - child_time.get(sp.path, 0.0)
            out[sp.name] = out.get(sp.name, 0.0) + self_t
        return out

    def to_dicts(self) -> list[dict]:
        return [sp.to_dict() for sp in self.spans]

    def render(self) -> str:
        """A phase timing table (one row per span, in completion order)."""
        if not self.spans:
            return "(no spans recorded)"
        ordered = sorted(self.spans, key=lambda s: s.start)
        width = max(len("  " * s.depth + s.name) for s in ordered)
        rows = []
        for sp in ordered:
            label = "  " * sp.depth + sp.name
            rows.append(f"{label:<{width}}  {sp.duration * 1e3:9.3f} ms")
        return "\n".join(rows)


#: The process-wide default registry used by the compile pipeline.
REGISTRY = SpanRegistry()

#: The contextually active registry (None = fall back to REGISTRY).
#: Context-local, so threads / asyncio tasks can each activate a private
#: registry without racing each other (or the global).
_ACTIVE: contextvars.ContextVar[SpanRegistry | None] = contextvars.ContextVar(
    "zeus_span_registry", default=None
)


def current_registry() -> SpanRegistry:
    """The registry ``span()`` records into right now: the innermost
    :func:`use_registry` registry of this context, else the process-wide
    :data:`REGISTRY`."""
    return _ACTIVE.get() or REGISTRY


@contextmanager
def use_registry(registry: SpanRegistry) -> Iterator[SpanRegistry]:
    """Make *registry* the active span collector for this context.

    Unlike :meth:`SpanRegistry.scoped` (which swaps the module global and
    therefore races concurrent users), activation is context-local:
    every thread or asyncio task sees only its own activation.
    """
    token = _ACTIVE.set(registry)
    try:
        yield registry
    finally:
        _ACTIVE.reset(token)


@contextmanager
def span(
    name: str, *, registry: SpanRegistry | None = None, **meta
) -> Iterator[Span | None]:
    """Record *name* on *registry*, or on the contextually active one
    (see :func:`use_registry` and :data:`REGISTRY`).  An explicit
    *registry* also becomes the active registry inside the block, so
    nested spans land in the same place."""
    if registry is None:
        with current_registry().span(name, **meta) as sp:
            yield sp
    else:
        with use_registry(registry):
            with registry.span(name, **meta) as sp:
                yield sp
