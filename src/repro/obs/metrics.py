"""Simulator activity metrics (the paper's firing events, counted).

A :class:`SimMetrics` object hangs off every
:class:`~repro.core.simulator.Simulator` as ``sim.metrics``.  Collection
is off by default (``Simulator(metrics=True)`` enables it) so the hot
firing loop pays only a boolean test per event when disabled.

What is counted, per the section-8 dataflow semantics:

* **firings** — every net-class firing event (one per class per cycle at
  most), totalled and per cycle;
* **net activity** — per class: fire count and *toggle* count (the fired
  value differs from the previous cycle's — the classic switching
  activity measure);
* **gate activity** — per gate: real evaluation attempts (``_try_gate``
  calls on a not-yet-fired gate in the dataflow engine, one evaluation
  per gate per cycle in the levelized engine) and output firings;
* **propagation steps** — worklist pops per cycle (the event-driven
  analogue of a relaxation simulator's settle iterations);
* **latches** — registers that stored a new driving value at cycle end;
* **violations** — runtime multi-drive ("burning") events;
* **peak cycle** — the cycle with the most firings.

The optional ``firing_log`` preserves the old ``record_firing=True``
behaviour: an ordered ``(display_name, value)`` event list.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

if TYPE_CHECKING:
    from ..core.values import Logic


class SimMetrics:
    """Activity counters for one simulator instance."""

    def __init__(
        self,
        net_names: list[str],
        gate_labels: list[str],
        *,
        enabled: bool = False,
        keep_firing_log: bool = False,
    ):
        self.enabled = enabled
        self.keep_firing_log = keep_firing_log
        self.net_names = net_names
        self.gate_labels = gate_labels
        self.reset()
        #: which engine produced the counters ("levelized"/"dataflow"/
        #: "batched"); set by the owning Simulator, survives reset().
        self.engine = "dataflow"
        #: lane count on the batched engine (None on scalar engines);
        #: set by the owning Simulator, survives reset().
        self.lanes: int | None = None
        #: True when the batched engine runs the bit-parallel schedule,
        #: False on its per-lane dataflow fallback, None on scalar
        #: engines; set by the owning Simulator, survives reset().
        self.fast_path: bool | None = None
        #: codegen plane backend ("int"/"numpy"), None off the codegen
        #: engine; set by the owning Simulator, survives reset().
        self.backend: str | None = None

    def reset(self) -> None:
        n, g = len(self.net_names), len(self.gate_labels)
        self.cycles = 0
        self.firings = 0
        self.gate_evals = 0
        self.driver_evals = 0
        self.latches = 0
        self.violations = 0
        #: total lanes evaluated (lanes * cycles on the batched engine).
        self.lane_cycles = 0
        self.firings_per_cycle: list[int] = []
        self.steps_per_cycle: list[int] = []
        self.net_fires = [0] * n
        self.net_toggles = [0] * n
        self.gate_eval_counts = [0] * g
        self.gate_fire_counts = [0] * g
        self.firing_log: list[tuple[str, "Logic"]] = []

    # -- derived views -----------------------------------------------------

    @property
    def propagation_steps(self) -> int:
        """Total worklist work: gate plus driver evaluation attempts
        (the event-driven analogue of settle iterations)."""
        return self.gate_evals + self.driver_evals

    @property
    def peak_cycle(self) -> tuple[int, int]:
        """``(cycle_index, firings)`` of the busiest cycle (-1, 0 if no
        cycles ran)."""
        if not self.firings_per_cycle:
            return (-1, 0)
        best = max(range(len(self.firings_per_cycle)),
                   key=self.firings_per_cycle.__getitem__)
        return (best, self.firings_per_cycle[best])

    def top_nets(self, n: int = 10) -> list[tuple[str, int, int]]:
        """The *n* hottest net classes by toggle count:
        ``(name, toggles, fires)``, synthetic ``$``-nets included."""
        order = sorted(
            range(len(self.net_fires)),
            key=lambda i: (self.net_toggles[i], self.net_fires[i]),
            reverse=True,
        )
        return [
            (self.net_names[i], self.net_toggles[i], self.net_fires[i])
            for i in order[:n]
        ]

    def top_gates(self, n: int = 10) -> list[tuple[str, int, int]]:
        """The *n* hottest gates by evaluation attempts:
        ``(label, evals, fires)``."""
        order = sorted(
            range(len(self.gate_eval_counts)),
            key=lambda i: (self.gate_eval_counts[i], self.gate_fire_counts[i]),
            reverse=True,
        )
        return [
            (self.gate_labels[i], self.gate_eval_counts[i],
             self.gate_fire_counts[i])
            for i in order[:n]
        ]

    def summary(self) -> dict:
        """Scalar roll-up (JSON-friendly)."""
        peak_cycle, peak_firings = self.peak_cycle
        return {
            "cycles": self.cycles,
            "firings": self.firings,
            "firings_per_cycle_avg": (
                self.firings / self.cycles if self.cycles else 0.0
            ),
            "gate_evals": self.gate_evals,
            "driver_evals": self.driver_evals,
            "propagation_steps": self.propagation_steps,
            "latches": self.latches,
            "violations": self.violations,
            "peak_cycle": peak_cycle,
            "peak_cycle_firings": peak_firings,
        }

    def to_dict(self, top: int | None = None) -> dict:
        """Full machine-readable report section (``zeus.metrics/1``).

        *top* caps the per-net / per-gate tables to the hottest entries
        (None = all)."""
        nets = self.top_nets(top if top is not None else len(self.net_fires))
        gates = self.top_gates(
            top if top is not None else len(self.gate_labels)
        )
        report = {
            **self.summary(),
            "engine": self.engine,
            "firings_by_cycle": list(self.firings_per_cycle),
            "steps_by_cycle": list(self.steps_per_cycle),
            "nets": [
                {"name": name, "toggles": t, "fires": f}
                for name, t, f in nets
            ],
            "gates": [
                {"name": name, "evals": e, "fires": f}
                for name, e, f in gates
            ],
        }
        if self.lanes is not None:
            report["batched"] = {
                "lanes": self.lanes,
                "lane_cycles": self.lane_cycles,
                "fast_path": bool(self.fast_path),
            }
            if self.backend is not None:
                report["batched"]["backend"] = self.backend
        return report

    def render(self, top: int = 10) -> str:
        """Human-readable activity report (the ``zeusc profile`` body)."""
        s = self.summary()
        engine = self.engine
        if self.lanes is not None:
            mode = "bit-parallel" if self.fast_path else "per-lane fallback"
            if self.backend is not None:
                mode += f", {self.backend} planes"
            engine = f"{engine} ({self.lanes} lanes, {mode})"
        lines = [
            f"engine            : {engine}",
            f"cycles            : {s['cycles']}",
            f"net firings       : {s['firings']} "
            f"({s['firings_per_cycle_avg']:.1f}/cycle)",
            f"gate evaluations  : {s['gate_evals']}",
            f"driver evaluations: {s['driver_evals']}",
            f"propagation steps : {s['propagation_steps']}",
            f"register latches  : {s['latches']}",
            f"violations        : {s['violations']}",
            f"peak cycle        : #{s['peak_cycle']} "
            f"({s['peak_cycle_firings']} firings)",
        ]
        if self.lanes is not None:
            lines.insert(2, f"lane cycles       : {self.lane_cycles}")
        hot_nets = [x for x in self.top_nets(top) if x[1] or x[2]]
        if hot_nets:
            lines.append(f"hottest nets (top {len(hot_nets)}):")
            width = max(len(n) for n, _, _ in hot_nets)
            for name, tog, fires in hot_nets:
                lines.append(
                    f"  {name:<{width}}  toggles {tog:>6}  fires {fires:>6}"
                )
        hot_gates = [x for x in self.top_gates(top) if x[1]]
        if hot_gates:
            lines.append(f"hottest gates (top {len(hot_gates)}):")
            width = max(len(n) for n, _, _ in hot_gates)
            for name, ev, fires in hot_gates:
                lines.append(
                    f"  {name:<{width}}  evals {ev:>7}  fires {fires:>6}"
                )
        return "\n".join(lines)
