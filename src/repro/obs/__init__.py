"""repro.obs -- the observability layer.

Two generations:

* :mod:`repro.obs.spans` -- compile-phase wall-clock spans (lex, parse,
  elaborate, check) collected on a process-wide registry, or a private
  one via :func:`use_registry` / ``compile_text(..., registry=...)``;
* :mod:`repro.obs.metrics` -- simulator activity counters (firing
  events, net toggles, gate evaluations, latches, violations) hanging
  off every :class:`~repro.core.simulator.Simulator` as ``sim.metrics``;
* :mod:`repro.obs.flight` -- the cycle-level flight recorder: a bounded
  ring of per-cycle events (firings with causes, latches, pokes,
  violations) fed by all four engines (``Simulator(..., flight=N)``);
* :mod:`repro.obs.causal` -- the "why" explainer: walks recorded
  firings backward through netlist fan-in to the minimal causal cone
  for ``(net, cycle)``;
* :mod:`repro.obs.chrometrace` -- Chrome trace-event export (compile
  spans + per-cycle slices + counter tracks) for Perfetto.

:mod:`repro.obs.export` serialises the counters as ``zeus.metrics/1``
and the flight recorder / explainer as ``zeus.trace/1`` -- both
versioned JSON schemas consumed by ``zeusc profile``, ``zeusc sim
--trace-out`` and ``zeusc explain``.
"""

from .causal import CauseNode, Explanation, explain
from .chrometrace import (
    chrome_trace,
    validate_chrome_trace,
    write_chrome_trace,
)
from .export import (
    SCHEMA,
    TRACE_SCHEMA,
    metrics_report,
    service_metrics_report,
    trace_report,
    validate_report,
    validate_trace_report,
    write_metrics,
    write_trace,
)
from .flight import CycleRecord, FlightEvent, FlightRecorder
from .metrics import SimMetrics
from .spans import (
    REGISTRY,
    Span,
    SpanRegistry,
    current_registry,
    span,
    use_registry,
)

__all__ = [
    "REGISTRY",
    "SCHEMA",
    "TRACE_SCHEMA",
    "CauseNode",
    "CycleRecord",
    "Explanation",
    "FlightEvent",
    "FlightRecorder",
    "SimMetrics",
    "Span",
    "SpanRegistry",
    "chrome_trace",
    "current_registry",
    "explain",
    "metrics_report",
    "service_metrics_report",
    "span",
    "trace_report",
    "use_registry",
    "validate_chrome_trace",
    "validate_report",
    "validate_trace_report",
    "write_chrome_trace",
    "write_metrics",
    "write_trace",
]
