"""repro.obs -- the observability layer.

Two halves:

* :mod:`repro.obs.spans` -- compile-phase wall-clock spans (lex, parse,
  elaborate, check) collected on a process-wide registry;
* :mod:`repro.obs.metrics` -- simulator activity counters (firing
  events, net toggles, gate evaluations, latches, violations) hanging
  off every :class:`~repro.core.simulator.Simulator` as ``sim.metrics``.

:mod:`repro.obs.export` serialises both as the versioned
``zeus.metrics/1`` JSON schema consumed by ``zeusc profile`` and the
``--metrics FILE`` flag.
"""

from .export import SCHEMA, metrics_report, validate_report, write_metrics
from .metrics import SimMetrics
from .spans import REGISTRY, Span, SpanRegistry, span

__all__ = [
    "REGISTRY",
    "SCHEMA",
    "SimMetrics",
    "Span",
    "SpanRegistry",
    "metrics_report",
    "span",
    "validate_report",
    "write_metrics",
]
