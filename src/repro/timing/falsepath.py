"""SAT-backed false-path pruning and witness replay.

A reported worst path is only interesting if a transition can actually
propagate along it.  This module builds, per path, the classic *static
sensitization* conditions — every side input of every gate on the path
must hold its non-controlling value, every multiplex arm on the path
must be the one enabled — as expressions over the shared solver cone
builder (:class:`repro.formal.solver.ConeBuilder`, the exact encoder
the lint driver-exclusivity prover uses), and discharges them through
the shared bounded DPLL:

* **UNSAT** (with every condition *exact*): no primary-input/register
  assignment sensitizes the path — it is proved false and demoted; the
  enumerator pulls the next-worst candidate.
* **SAT**: the witness assignment is replayed through the real
  simulator, :mod:`repro.formal.replay`-style: two one-cycle runs with
  the startpoint poked 0 then 1 under the witness's side-input values
  must flip the endpoint between two *defined* values.  Only a
  confirmed replay reports ``confirmed``; a witness that needs
  uncontrollable variables (register state, RANDOM, opaque cones)
  reports ``witness-unreplayed``.

Soundness contract: conditions are *necessary* for static single-path
sensitization over defined input assignments, and they are only
trusted for pruning when every edge produced an **exact** condition.
Edges with value-dependent timing (guard arcs, unconditional sibling
drivers that may float, opcodes without a sensitization rule) mark the
path inexact: it is reported ``assumed`` and never pruned — erring on
the side of reporting a pessimistic (longer) clock period, never an
optimistic one.
"""

from __future__ import annotations

from ..core.values import Logic
from ..formal.encode import input_groups
from ..formal.solver import (
    BudgetExceeded,
    ConeBuilder,
    ExprFactory,
    SolverStats,
    solve,
)
from .paths import TimingPath

#: Gate ops whose sensitization needs no side condition: NOT (single
#: input) and XOR (any single-input flip always flips the output).
_UNCONDITIONED = ("NOT", "XOR")


class PathChecker:
    """Classifies candidate critical paths for one design."""

    def __init__(self, ctx, *, budget: int = 20_000,
                 max_cone: int = 5_000):
        self.ctx = ctx
        self.budget = budget
        self.f = ExprFactory()
        self.builder = ConeBuilder(ctx, max_nodes=max_cone)
        self.stats = SolverStats()
        self._may_float_memo: dict[int, bool] = {}
        #: input class -> (poke path, bit index, port width)
        self._input_map: dict[int, tuple[str, int, int]] = {}
        for path, cis in input_groups(ctx):
            for bit, ci in enumerate(cis):
                self._input_map.setdefault(ci, (path, bit, len(cis)))

    # -- floating analysis ---------------------------------------------------

    def may_float(self, ci: int) -> bool:
        """Can this class ever resolve to NOINFL (no driver wins)?
        Conservative: cycles and anything unproven answer True."""
        memo = self._may_float_memo
        if ci in memo:
            return memo[ci]
        memo[ci] = True  # cycle guard: assume floating until proven
        ctx = self.ctx
        if ctx.is_input[ci] or ci in ctx.reg_q_of or ci in ctx.gates_of:
            memo[ci] = False
            return False
        drvs = ctx.drivers_of[ci]
        if not drvs or any(d.cond is not None for d in drvs):
            return True  # undriven, or all guards may be 0
        for d in drvs:
            if d.const is not None:
                if d.const is not Logic.NOINFL:
                    memo[ci] = False
                    return False
            elif not self.may_float(d.src):
                memo[ci] = False
                return False
        return True

    # -- sensitization conditions --------------------------------------------

    def conditions(self, path: TimingPath) -> tuple[list, bool, str]:
        """(conditions, exact, detail): solver expressions that must all
        be 1 for the path to be statically sensitized.  ``exact`` False
        means some edge has value-dependent timing the conditions do
        not capture — the path must not be pruned."""
        conds: list = []
        exact = True
        detail = ""
        for edge in path.edges:
            if edge.kind == "gate":
                ok = self._gate_conditions(edge, conds)
                if not ok:
                    exact, detail = False, (
                        f"no sensitization rule for {edge.gate.op}")
            elif edge.kind == "drive":
                ok, why = self._drive_conditions(edge, conds)
                if not ok:
                    exact, detail = False, why
            else:  # guard arc: value-dependent timing, never pruned
                exact, detail = False, "path times through a guard arc"
        return conds, exact, detail

    def _gate_conditions(self, edge, conds: list) -> bool:
        gate, pos = edge.gate, edge.pos
        op = gate.op
        if op in _UNCONDITIONED:
            return True
        expr = lambda net: self.builder.expr(self.ctx.idx(net))  # noqa: E731
        if op in ("AND", "NAND"):
            conds.extend(expr(inp) for j, inp in enumerate(gate.inputs)
                         if j != pos)
            return True
        if op in ("OR", "NOR"):
            conds.extend(self.f.not_(expr(inp))
                         for j, inp in enumerate(gate.inputs) if j != pos)
            return True
        if op == "EQUAL":
            # EQUAL(a, b): inputs are the two operand buses
            # concatenated; a flip of pair k propagates iff every
            # other pair compares equal.
            half = len(gate.inputs) // 2
            if half * 2 != len(gate.inputs):
                return False
            k = pos % half
            for j in range(half):
                if j == k:
                    continue
                conds.append(self.f.gate("EQUAL", (
                    expr(gate.inputs[j]), expr(gate.inputs[half + j]))))
            return True
        return False  # RANDOM or future ops: no rule, stay inexact

    def _drive_conditions(self, edge, conds: list) -> tuple[bool, str]:
        ctx = self.ctx
        drv = edge.driver
        if ctx.gates_of.get(edge.dst):
            # Gate output + explicit driver on one net: the runtime
            # value is producer-order dependent; do not prune.
            return False, (
                f"{ctx.display[edge.dst]!r} mixes a gate and drivers")
        if drv.cond is not None:
            conds.append(self.builder.expr(drv.cond))
        for other in ctx.drivers_of[edge.dst]:
            if other is drv:
                continue
            if other.cond is not None:
                # The competing arm must be off (a 1 guard would
                # poison the net to UNDEF, a U guard likewise; over
                # defined assignments "off" is exactly guard = 0).
                conds.append(self.f.not_(self.builder.expr(other.cond)))
            elif other.const is Logic.NOINFL:
                continue  # contributes nothing, ever
            elif other.const is not None or not self.may_float(other.src):
                # A second definite driver: the net is UNDEF no matter
                # what our arm does — no transition propagates.
                conds.append(self.f.FALSE)
            else:
                return False, (
                    f"sibling driver of {ctx.display[edge.dst]!r} may "
                    "float; exclusivity is value-dependent")
        return True, ""

    # -- classification ------------------------------------------------------

    def classify(self, circuit, path: TimingPath) -> TimingPath:
        """Fill ``path.sensitization``/``reason``/``witness``/replay in
        place and return it.  Verdicts: ``proved-false`` (prunable),
        ``confirmed`` (SAT + simulator replay), ``witness-unreplayed``
        (SAT, witness needs uncontrollable state), ``assumed``
        (inexact conditions or solver budget)."""
        conds, exact, detail = self.conditions(path)
        if not exact:
            path.sensitization = "assumed"
            path.reason = detail
            return path
        if any(c == self.f.FALSE for c in conds):
            path.sensitization = "proved-false"
            path.reason = "a definite sibling driver poisons the path"
            return path
        support: list = []
        seen: set = set()
        for c in conds:
            for key in self.builder.support(c):
                if key not in seen:
                    seen.add(key)
                    support.append(key)
        try:
            witness = solve(conds, support=tuple(support),
                            budget=self.budget, stats=self.stats)
        except BudgetExceeded:
            path.sensitization = "assumed"
            path.reason = f"solver budget ({self.budget} nodes) exhausted"
            return path
        if witness is None:
            path.sensitization = "proved-false"
            path.reason = ("side-input conditions are UNSAT: no input/"
                           "register assignment sensitizes the path")
            return path
        path.witness = dict(witness)
        confirmed, why = self._replay(circuit, path, witness)
        if confirmed:
            path.sensitization = "confirmed"
            path.replay_confirmed = True
        else:
            path.sensitization = "witness-unreplayed"
            path.replay_confirmed = False
        path.reason = why
        path.replay_detail = why
        return path

    # -- witness replay ------------------------------------------------------

    def _replay(self, circuit, path: TimingPath,
                witness: dict) -> tuple[bool, str]:
        ctx = self.ctx
        start_info = self._input_map.get(path.start)
        if start_info is None:
            kind = ("register output"
                    if path.start in ctx.reg_q_of else "internal net")
            return False, (f"startpoint {ctx.display[path.start]!r} is a "
                           f"{kind}, not a pokeable primary input")
        for key, _val in witness.items():
            kind = self.builder.var_kinds.get(key, "opaque")
            if kind != "input":
                return False, (f"witness constrains a {kind} variable "
                               f"({self._var_name(key)})")
            ci = key[1]
            if ci != path.start and ci not in self._input_map:
                return False, (f"witness input {ctx.display[ci]!r} has no "
                               "poke path")
        values = {}  # endpoint value per startpoint polarity
        end_net = ctx.members[path.end][0]
        for bit in (0, 1):
            sim = circuit.simulator(strict=False)
            frame: dict[str, list[int]] = {}
            for ci, (pp, pos, width) in self._input_map.items():
                frame.setdefault(pp, [0] * width)
            for key, val in witness.items():
                ci = key[1]
                if ci == path.start:
                    continue  # the toggled bit overrides any constraint
                pp, pos, _w = self._input_map[ci]
                frame[pp][pos] = val if val in (0, 1) else 0
            pp, pos, _w = self._input_map[path.start]
            frame[pp][pos] = bit
            for sig, bits in frame.items():
                sim.poke(sig, [Logic.from_bit(b) for b in bits])
            sim.step()
            v = sim.values[sim._idx(end_net)]
            if v is Logic.NOINFL or v is None:
                v = Logic.UNDEF
            values[bit] = v
        v0, v1 = values[0], values[1]
        if v0.is_defined and v1.is_defined and v0 is not v1:
            return True, (f"replay: {ctx.display[path.end]!r} flips "
                          f"{v0} -> {v1} when "
                          f"{ctx.display[path.start]!r} flips 0 -> 1")
        return False, (f"replay: {ctx.display[path.end]!r} reads "
                       f"{v0} / {v1}; the transition did not propagate")

    def _var_name(self, key) -> str:
        if key[0] == "net":
            return self.ctx.display[key[1]]
        return f"$rand{key[1]}"

    def witness_names(self, witness: dict) -> dict[str, int]:
        """A witness keyed by display names, for reports."""
        return {self._var_name(k): v for k, v in sorted(
            witness.items(), key=lambda kv: str(kv[0]))}
