"""The timing graph: one levelized propagation, three consumers.

This module owns the repo's single implementation of topological
level/arrival propagation over the REG-cut combinational graph.
:func:`propagate_levels` is the unit-delay special case that
``analysis.netstats.logic_levels`` and ``LintContext.levels`` delegate
to; :class:`TimingGraph` generalizes it to a configurable delay model
(:mod:`repro.timing.delay`) with per-edge provenance, which is what the
k-worst path enumerator (:mod:`repro.timing.paths`) and the SAT
false-path pruner (:mod:`repro.timing.falsepath`) walk.

The graph is built over the duck-typed :class:`~repro.lint.context.
LintContext` surface (canonical net classes, ``gates_of``,
``drivers_of``, ``topo_order``), exactly like the formal encoder, so
STA, lint and the prover all see the same structure.  Edge kinds:

``gate``
    Gate input -> gate output, annotated with the gate and the input
    position (the sensitization conditions depend on both).
``drive``
    Connection source -> destination (a plain copy or one arm of a
    multiplex bus), annotated with the :class:`DriverInfo`.
``guard``
    Enable condition -> destination of a conditional driver.  A guard
    toggle really does re-time the output, so guards are timing arcs,
    but their sensitization is value-dependent and never SAT-pruned.

Register outputs and primary inputs have no in-edges: they are the
startpoints, exactly as in the unit-delay levelization the checker has
always used.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.netlist import Gate


def propagate_levels(order, deps, edge_delay=None):
    """Topological level/arrival propagation.

    ``order`` is a topological order of node ids, ``deps[n]`` the ids
    *n* depends on.  Without *edge_delay* this is the classic
    unit-delay levelization (sources level 0, each edge adds one) —
    the one implementation behind ``netstats.logic_levels``,
    ``LintContext.levels`` and the unit timing model.  With
    *edge_delay* (a ``(node, pred) -> number`` callable) it computes
    arrival times ``arrival[n] = max(arrival[p] + edge_delay(n, p))``.
    """
    out: dict = {}
    if edge_delay is None:
        for n in order:
            preds = deps.get(n, ())
            out[n] = 1 + max((out[p] for p in preds), default=-1)
    else:
        for n in order:
            preds = deps.get(n, ())
            out[n] = max((out[p] + edge_delay(n, p) for p in preds),
                         default=0)
    return out


@dataclass(eq=False)
class TimingEdge:
    """One timing arc into class ``dst`` from class ``src``.  ``gate``/
    ``pos`` annotate gate arcs; ``driver`` (a :class:`DriverInfo`)
    annotates drive and guard arcs."""

    src: int
    dst: int
    kind: str  # "gate" | "drive" | "guard"
    gate: Gate | None = None
    pos: int | None = None  # gate input position
    driver: object | None = None

    def describe(self, ctx) -> str:
        if self.kind == "gate":
            return f"gate {self.gate.op}"
        return self.kind


class TimingGraph:
    """Arrival/required/slack analysis of one elaborated design.

    ``ctx`` is duck-typed with the :class:`LintContext` surface;
    ``model`` a :class:`~repro.timing.delay.DelayModel`.  Under the
    unit model the arrival times are *exactly* the unit-delay logic
    levels (the regression test pins this on the whole stdlib corpus).
    """

    def __init__(self, ctx, model):
        self.ctx = ctx
        self.model = model
        self.edges_in: list[list[TimingEdge]] = [[] for _ in range(ctx.n)]
        for ci, gates in ctx.gates_of.items():
            for gate in gates:
                for pos, inp in enumerate(gate.inputs):
                    self.edges_in[ci].append(TimingEdge(
                        ctx.idx(inp), ci, "gate", gate=gate, pos=pos))
        for ci, drvs in enumerate(ctx.drivers_of):
            for drv in drvs:
                if drv.src is not None:
                    self.edges_in[ci].append(TimingEdge(
                        drv.src, ci, "drive", driver=drv))
                if drv.cond is not None:
                    self.edges_in[ci].append(TimingEdge(
                        drv.cond, ci, "guard", driver=drv))
        self._arrival: list | None = None
        self._arrival_edge: list[TimingEdge | None] = [None] * ctx.n

    # -- structure -----------------------------------------------------------

    @property
    def ok(self) -> bool:
        """False when the design has a combinational cycle (no STA)."""
        return self.ctx.topo_order is not None

    @property
    def cycle(self) -> list[int]:
        return self.ctx.cycle

    @property
    def fanout(self) -> dict[int, int]:
        """Consumer counts, shared with the lint fanout-limit pass."""
        return self.ctx.fanout

    def edge_delay(self, edge: TimingEdge):
        return self.model.edge_delay(edge, self.fanout.get(edge.src, 0))

    def start_kind(self, ci: int) -> str:
        """Startpoint classification: ``in`` (primary input), ``reg``
        (register output), or ``net`` (constant/undriven source)."""
        if self.ctx.is_input[ci]:
            return "in"
        if ci in self.ctx.reg_q_of:
            return "reg"
        return "net"

    @property
    def startpoints(self) -> list[int]:
        """Classes with no timing in-edges (arrival 0 sources)."""
        return [ci for ci in range(self.ctx.n) if not self.edges_in[ci]]

    @property
    def endpoints(self) -> list[tuple[int, str]]:
        """(class, kind) timing endpoints: every register data pin
        (kind ``reg``) and every primary-output class (kind ``out``);
        a class that is both reports as ``reg`` (the clock constraint
        is the stronger one)."""
        seen: dict[int, str] = {}
        for reg in self.ctx.netlist.regs:
            seen.setdefault(self.ctx.idx(reg.d), "reg")
        for ci in range(self.ctx.n):
            if self.ctx.is_output[ci]:
                seen.setdefault(ci, "out")
        return sorted(seen.items())

    # -- arrival times -------------------------------------------------------

    @property
    def arrival(self) -> list | None:
        """Per-class arrival time (None when cyclic).  Index = class
        index; unit model gives exactly the unit-delay levels."""
        if self._arrival is None:
            order = self.ctx.topo_order
            if order is None:
                return None
            arr = [0] * self.ctx.n
            for ci in order:
                best = 0
                best_edge = None
                for edge in self.edges_in[ci]:
                    t = arr[edge.src] + self.edge_delay(edge)
                    if best_edge is None or t > best:
                        best = t
                        best_edge = edge
                if best_edge is not None:
                    arr[ci] = best
                    self._arrival_edge[ci] = best_edge
            self._arrival = arr
        return self._arrival

    @property
    def worst_arrival(self):
        """The maximum arrival over all classes — under the unit model
        this equals ``netstats.logic_depth`` exactly."""
        arr = self.arrival
        if arr is None:
            return None
        return max(arr, default=0)

    def critical_path(self) -> list[int]:
        """Classes along one worst-arrival path, source first (the
        timing-engine version of ``netstats.critical_path``)."""
        arr = self.arrival
        if arr is None or not arr:
            return []
        node = max(range(len(arr)), key=arr.__getitem__)
        path = [node]
        while self._arrival_edge[node] is not None:
            node = self._arrival_edge[node].src
            path.append(node)
        path.reverse()
        return path

    # -- required times and slack --------------------------------------------

    def required(self, clock=None) -> dict[int, object]:
        """Per-class required time against *clock* (default: the worst
        endpoint arrival, i.e. zero slack on the critical path).
        Classes on no path to an endpoint get ``None``."""
        arr = self.arrival
        if arr is None:
            return {}
        order = self.ctx.topo_order
        ends = self.endpoints
        if clock is None:
            clock = max((arr[ci] for ci, _ in ends), default=self.worst_arrival)
        req: list = [None] * self.ctx.n
        for ci, _kind in ends:
            req[ci] = clock
        for ci in reversed(order):
            r = req[ci]
            if r is None:
                continue
            for edge in self.edges_in[ci]:
                t = r - self.edge_delay(edge)
                if req[edge.src] is None or t < req[edge.src]:
                    req[edge.src] = t
        return {ci: r for ci, r in enumerate(req)}

    def slack(self, clock=None) -> dict[int, object]:
        """Per-class slack = required - arrival (``None`` off-path)."""
        arr = self.arrival
        if arr is None:
            return {}
        req = self.required(clock)
        return {ci: (None if req[ci] is None else req[ci] - arr[ci])
                for ci in range(self.ctx.n)}
