"""``zeustime``: static timing analysis with SAT false-path pruning.

The subsystem layers (each module usable on its own):

- :mod:`.graph` — the timing graph + the repo's single levelized
  arrival-propagation implementation (``netstats.logic_levels`` and
  ``LintContext.levels`` delegate here);
- :mod:`.delay` — configurable delay models (``unit`` default, so
  every historical depth number is reproduced bit-for-bit; ``fanout``
  for per-opcode + wire-load estimates);
- :mod:`.paths` — exact k-worst path enumeration, worst first;
- :mod:`.falsepath` — SAT sensitization checks over the shared
  ``formal.solver`` cone encoder: proved-false paths are demoted and
  the enumerator pulls the next candidate; SAT witnesses replay
  through the real simulator before a path reports ``confirmed``;
- :mod:`.report` — the versioned ``zeus.timing/1`` schema.

:func:`analyze_timing` is the front door the CLI, metrics exporter and
tests share.
"""

from __future__ import annotations

from .delay import FANOUT, GATE_DELAYS, MODELS, UNIT, DelayModel, get_model
from .falsepath import PathChecker
from .graph import TimingEdge, TimingGraph, propagate_levels
from .paths import EnumStats, TimingPath, enumerate_paths
from .report import (
    SCHEMA,
    TimingReport,
    validate_timing_report,
    write_timing_report,
)

__all__ = [
    "DelayModel", "UNIT", "FANOUT", "MODELS", "GATE_DELAYS", "get_model",
    "TimingGraph", "TimingEdge", "propagate_levels",
    "TimingPath", "enumerate_paths", "EnumStats", "PathChecker",
    "TimingReport", "validate_timing_report", "write_timing_report",
    "SCHEMA", "analyze_timing",
]


def _hops(ctx, graph: TimingGraph, p: TimingPath) -> list[dict]:
    """Net-by-net rendering with path-local arrival at every hop."""
    hops = [{"net": ctx.display[p.nets[0]], "arrival": 0,
             "through": "start"}]
    t = 0
    for edge, ci in zip(p.edges, p.nets[1:]):
        t = t + graph.edge_delay(edge)
        hops.append({"net": ctx.display[ci], "arrival": t,
                     "through": edge.describe(ctx)})
    return hops


def _path_dict(ctx, graph: TimingGraph, p: TimingPath, clock,
               checker: PathChecker | None) -> dict:
    d = {
        "startpoint": ctx.display[p.start],
        "endpoint": ctx.display[p.end],
        "kind": p.kind,
        "delay": p.delay,
        "slack": (clock - p.delay) if clock is not None else None,
        "sensitization": p.sensitization,
        "reason": p.reason,
        "nets": _hops(ctx, graph, p),
    }
    if p.witness is not None and checker is not None:
        d["witness"] = checker.witness_names(p.witness)
    if p.replay_confirmed is not None:
        d["replay"] = {"confirmed": p.replay_confirmed,
                       "detail": p.replay_detail}
    return d


def analyze_timing(circuit, *, model="unit", clock=None, k: int = 4,
                   sat: bool = True, budget: int = 20_000,
                   max_pops: int = 20_000,
                   max_sat: int = 200) -> TimingReport:
    """Run STA over a compiled circuit and return a
    :class:`TimingReport`.

    Enumerates candidate paths worst-first; with *sat* (the default)
    each candidate's sensitization conditions go through the shared
    bounded solver — proved-false paths land in ``report.pruned`` and
    enumeration continues until the *k* worst **true** paths are in
    hand and the min-clock-period bound (the worst true
    register-endpoint path) is confirmed.  ``max_pops`` bounds the
    enumerator and ``max_sat`` the number of SAT classifications per
    run; when either trips, remaining candidates report ``assumed``
    (never optimistic).
    """
    from ..obs.spans import span

    dm = get_model(model)
    from ..lint.context import LintContext  # lazy: lint imports .graph

    with span("timing", design=circuit.name, model=dm.name):
        ctx = LintContext(circuit.design)
        graph = TimingGraph(ctx, dm)
        report = TimingReport(
            design=circuit.name, stats=circuit.stats(),
            model_name=dm.name, wire_factor=dm.wire_factor, clock=clock)
        if not graph.ok:
            report.cycle = [ctx.display[ci] for ci in graph.cycle]
            return report
        report.worst_arrival = graph.worst_arrival
        report.startpoints = len(graph.startpoints)
        endpoints = graph.endpoints
        report.endpoints = len(endpoints)
        arr = graph.arrival
        reg_arrivals = [arr[ci] for ci, kind in endpoints
                        if kind == "reg"]
        has_regs = bool(reg_arrivals)
        checker = PathChecker(ctx, budget=budget) if sat else None

        min_clock = None
        min_clock_exact = True
        true_paths: list[TimingPath] = []
        examined = 0
        exhausted = True  # generator ran dry (all paths seen)
        enum_stats = EnumStats()
        for p in enumerate_paths(graph, max_pops=max_pops,
                                 stats=enum_stats):
            examined += 1
            if checker is not None and checker.stats.sat_calls < max_sat:
                checker.classify(circuit, p)
            elif checker is not None:
                p.reason = f"per-run SAT call limit ({max_sat}) reached"
            else:
                p.reason = "SAT pruning disabled"
            if p.is_false:
                report.pruned.append({
                    "startpoint": ctx.display[p.start],
                    "endpoint": ctx.display[p.end],
                    "kind": p.kind,
                    "delay": p.delay,
                    "reason": p.reason,
                })
                continue
            if min_clock is None and p.end_kind == "reg":
                min_clock = p.delay  # worst-first: first true = worst
            if len(true_paths) < k:
                true_paths.append(p)
            if len(true_paths) >= k and (min_clock is not None
                                         or not has_regs):
                exhausted = False  # stopped on purpose, not dry
                break
        else:
            # The generator stopped: either the heap ran dry (every
            # path seen) or the pop budget tripped with candidates
            # still queued — assume the raw arrival bound in the
            # latter case (pessimistic, never optimistic).
            if enum_stats.budget_tripped and has_regs \
                    and min_clock is None:
                min_clock = max(reg_arrivals)
                min_clock_exact = False
        if (has_regs and min_clock is None and exhausted
                and not enum_stats.budget_tripped):
            # Every register-endpoint path was enumerated and proved
            # false: no combinational path constrains the clock.
            min_clock = 0
        report.min_clock_period = min_clock
        report.min_clock_exact = min_clock_exact
        report.paths_examined = examined
        report.paths = [_path_dict(ctx, graph, p, clock, checker)
                        for p in true_paths]
        if checker is not None:
            report.solver = checker.stats
        return report
