"""Timing reporting: the versioned ``zeus.timing/1`` schema.

Like ``zeus.lint/1`` and ``zeus.proof/1``, the JSON shape is versioned
and :func:`validate_timing_report` is its executable definition:

.. code-block:: none

    {
      "schema": "zeus.timing/1",
      "design": {"name", "nets", "gates", "connections", "registers"},
      "model": {"name", "wire_factor"},
      "clock": number | null,          # --clock constraint, if any
      "summary": {
        "worst_arrival",               # raw max arrival (logic depth
                                       #   under the unit model)
        "min_clock_period",            # worst *true* register-endpoint
                                       #   path delay (null: no regs)
        "min_clock_exact",             # false when enumeration stopped
                                       #   before confirming the bound
        "worst_slack",                 # min over reported true paths
        "startpoints", "endpoints",
        "paths_reported", "paths_pruned", "paths_examined",
        "violations",                  # true paths slower than clock
        "cycle"?: [net names]          # combinational cycle: no STA
      },
      "solver": {"sat_calls", "decisions", "nodes",
                 "budget_exhausted"},
      "paths": [{                      # k worst true paths, worst first
        "startpoint", "endpoint", "kind",   # "in2reg", "reg2out", ...
        "delay", "slack",              # slack null without --clock
        "sensitization",   # "confirmed" | "assumed" |
                           #   "witness-unreplayed"
        "reason",
        "witness"?: {input name: bit},
        "replay"?: {"confirmed", "detail"},
        "nets": [{"net", "arrival", "through"}]   # source first
      }],
      "pruned": [{                     # SAT-proved false paths
        "startpoint", "endpoint", "kind", "delay", "reason"
      }]
    }

``paths[].nets[].through`` names the arc into that net (``gate AND``,
``drive``, ``guard``); the first entry's ``through`` is ``"start"``.
SARIF output follows the lint shape with one synthetic rule,
``timing-violation`` (ZT001), one result per violating true path.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..formal.solver import SolverStats

SCHEMA = "zeus.timing/1"

#: SARIF rule for clock violations.
VIOLATION_CODE = "ZT001"


@dataclass
class TimingReport:
    """The result of one ``zeusc timing`` run."""

    design: str
    stats: dict  # netlist.stats()
    model_name: str
    wire_factor: float
    clock: object = None  # number | None
    worst_arrival: object = 0
    min_clock_period: object = None
    min_clock_exact: bool = True
    startpoints: int = 0
    endpoints: int = 0
    paths_examined: int = 0
    cycle: list | None = None  # net names when combinational cycle
    paths: list = field(default_factory=list)  # path dicts, worst first
    pruned: list = field(default_factory=list)  # pruned path dicts
    solver: SolverStats = field(default_factory=SolverStats)

    @property
    def violations(self) -> list:
        if self.clock is None:
            return []
        return [p for p in self.paths if p["delay"] > self.clock]

    @property
    def worst_slack(self):
        slacks = [p["slack"] for p in self.paths if p["slack"] is not None]
        return min(slacks, default=None)

    def exit_code(self) -> int:
        """The ``zeusc`` contract: 1 when a true path violates the
        clock constraint, else 0 (2 is the loader's, not ours)."""
        return 1 if self.violations else 0

    # -- serialization -------------------------------------------------------

    def to_dict(self) -> dict:
        summary = {
            "worst_arrival": self.worst_arrival,
            "min_clock_period": self.min_clock_period,
            "min_clock_exact": self.min_clock_exact,
            "worst_slack": self.worst_slack,
            "startpoints": self.startpoints,
            "endpoints": self.endpoints,
            "paths_reported": len(self.paths),
            "paths_pruned": len(self.pruned),
            "paths_examined": self.paths_examined,
            "violations": len(self.violations),
        }
        if self.cycle is not None:
            summary["cycle"] = list(self.cycle)
        return {
            "schema": SCHEMA,
            "design": {
                "name": self.design,
                "nets": self.stats.get("nets", 0),
                "gates": self.stats.get("gates", 0),
                "connections": self.stats.get("connections", 0),
                "registers": self.stats.get("registers", 0),
            },
            "model": {"name": self.model_name,
                      "wire_factor": self.wire_factor},
            "clock": self.clock,
            "summary": summary,
            "solver": {
                "sat_calls": self.solver.sat_calls,
                "decisions": self.solver.decisions,
                "nodes": self.solver.nodes,
                "budget_exhausted": self.solver.budget_exhausted,
            },
            "paths": [dict(p) for p in self.paths],
            "pruned": [dict(p) for p in self.pruned],
        }

    # -- renderers -----------------------------------------------------------

    @staticmethod
    def _num(x) -> str:
        if x is None:
            return "-"
        if isinstance(x, float):
            return f"{x:g}"
        return str(x)

    def render_text(self) -> str:
        n = self._num
        lines = [
            f"timing {self.design} (model {self.model_name}): "
            f"{self.stats.get('gates', 0)} gates, "
            f"{self.stats.get('registers', 0)} registers, "
            f"{self.startpoints} startpoints, "
            f"{self.endpoints} endpoints"]
        if self.cycle is not None:
            lines.append(
                "combinational cycle — no timing analysis possible:")
            lines.append("  " + " -> ".join(self.cycle))
            return "\n".join(lines)
        lines.append(
            f"worst arrival {n(self.worst_arrival)}"
            + (f", min clock period {n(self.min_clock_period)}"
               f"{'' if self.min_clock_exact else ' (bound, not confirmed)'}"
               if self.min_clock_period is not None
               else ", no register endpoints")
            + (f", clock constraint {n(self.clock)}"
               if self.clock is not None else ""))
        for rank, p in enumerate(self.paths, 1):
            mark = ""
            if self.clock is not None and p["delay"] > self.clock:
                mark = "  VIOLATED"
            slack = (f", slack {n(p['slack'])}"
                     if p["slack"] is not None else "")
            lines.append(
                f"path #{rank} [{p['kind']}] delay {n(p['delay'])}"
                f"{slack}  ({p['sensitization']}){mark}")
            for hop in p["nets"]:
                lines.append(
                    f"    {n(hop['arrival']):>6}  {hop['net']}"
                    + (f"  <- {hop['through']}"
                       if hop["through"] != "start" else "  (startpoint)"))
            if p.get("witness"):
                pokes = " ".join(f"{k}={v}"
                                 for k, v in sorted(p["witness"].items()))
                lines.append(f"    witness: {pokes}")
            if p["reason"]:
                lines.append(f"    {p['reason']}")
        for p in self.pruned:
            lines.append(
                f"pruned [{p['kind']}] delay {n(p['delay'])}  "
                f"{p['startpoint']} -> {p['endpoint']}: {p['reason']}")
        vio = len(self.violations)
        lines.append(
            f"summary: {len(self.paths)} true path"
            f"{'' if len(self.paths) == 1 else 's'} reported, "
            f"{len(self.pruned)} pruned as false, "
            f"{self.paths_examined} examined; "
            f"solver: {self.solver.sat_calls} calls, "
            f"{self.solver.decisions} decisions"
            + (f"; {vio} VIOLATION{'' if vio == 1 else 'S'} of clock "
               f"{n(self.clock)}" if self.clock is not None and vio else ""))
        return "\n".join(lines)

    def render_json(self) -> str:
        report = self.to_dict()
        validate_timing_report(report)
        return json.dumps(report, indent=2, sort_keys=True) + "\n"

    def render_sarif(self) -> str:
        """Minimal SARIF 2.1.0, lint-shaped: one rule
        (``timing-violation``), one result per true path slower than
        the clock constraint (no constraint -> no results)."""
        results = []
        for p in self.violations:
            results.append({
                "ruleId": VIOLATION_CODE,
                "level": "error",
                "message": {"text": (
                    f"{p['kind']} path {p['startpoint']} -> "
                    f"{p['endpoint']} takes {self._num(p['delay'])} "
                    f"(clock {self._num(self.clock)}, "
                    f"sensitization {p['sensitization']})")},
            })
        sarif = {
            "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
            "version": "2.1.0",
            "runs": [{
                "tool": {"driver": {
                    "name": "zeustime",
                    "informationUri":
                        "https://example.invalid/zeus-reproduction",
                    "rules": [{
                        "id": VIOLATION_CODE,
                        "name": "timing-violation",
                        "shortDescription": {"text": (
                            "a sensitizable path exceeds the clock "
                            "constraint")},
                    }],
                }},
                "results": results,
            }],
        }
        return json.dumps(sarif, indent=2, sort_keys=True) + "\n"


def write_timing_report(path: str, report: "TimingReport") -> None:
    """Validate and write a report as ``zeus.timing/1`` JSON."""
    with open(path, "w", encoding="utf-8") as f:
        f.write(report.render_json())


_SENSITIZATIONS = ("confirmed", "assumed", "witness-unreplayed")


def validate_timing_report(report: dict) -> None:
    """Raise ``ValueError`` unless *report* conforms to
    ``zeus.timing/1``."""

    def need(obj: dict, key: str, types, where: str):
        if key not in obj:
            raise ValueError(f"timing report: missing {where}.{key}")
        if not isinstance(obj[key], types):
            raise ValueError(
                f"timing report: {where}.{key} must be {types}, "
                f"got {type(obj[key]).__name__}")
        return obj[key]

    num = (int, float)
    opt_num = (int, float, type(None))
    if not isinstance(report, dict):
        raise ValueError("timing report must be a dict")
    if report.get("schema") != SCHEMA:
        raise ValueError(
            f"timing report: schema must be {SCHEMA!r}, "
            f"got {report.get('schema')!r}")

    design = need(report, "design", dict, "report")
    need(design, "name", str, "design")
    for key in ("nets", "gates", "connections", "registers"):
        need(design, key, int, "design")

    model = need(report, "model", dict, "report")
    need(model, "name", str, "model")
    need(model, "wire_factor", num, "model")

    need(report, "clock", opt_num, "report")

    summary = need(report, "summary", dict, "report")
    need(summary, "worst_arrival", num, "summary")
    need(summary, "min_clock_period", opt_num, "summary")
    need(summary, "min_clock_exact", bool, "summary")
    need(summary, "worst_slack", opt_num, "summary")
    for key in ("startpoints", "endpoints", "paths_reported",
                "paths_pruned", "paths_examined", "violations"):
        need(summary, key, int, "summary")
    if "cycle" in summary and not (
            isinstance(summary["cycle"], list)
            and all(isinstance(s, str) for s in summary["cycle"])):
        raise ValueError("timing report: summary.cycle must be a "
                         "list of net names")

    solver = need(report, "solver", dict, "report")
    for key in ("sat_calls", "decisions", "nodes"):
        need(solver, key, int, "solver")
    need(solver, "budget_exhausted", bool, "solver")

    for p in need(report, "paths", list, "report"):
        need(p, "startpoint", str, "paths[]")
        need(p, "endpoint", str, "paths[]")
        need(p, "kind", str, "paths[]")
        need(p, "delay", num, "paths[]")
        need(p, "slack", opt_num, "paths[]")
        sens = need(p, "sensitization", str, "paths[]")
        if sens not in _SENSITIZATIONS:
            raise ValueError(
                f"timing report: bad sensitization {sens!r}")
        need(p, "reason", str, "paths[]")
        if "witness" in p:
            wit = p["witness"]
            if not isinstance(wit, dict) or not all(
                    isinstance(k, str) and v in (0, 1)
                    for k, v in wit.items()):
                raise ValueError(
                    "timing report: paths[].witness must map input "
                    "names to 0/1 bits")
        if "replay" in p:
            replay = need(p, "replay", dict, "paths[]")
            need(replay, "confirmed", bool, "paths[].replay")
            need(replay, "detail", str, "paths[].replay")
        nets = need(p, "nets", list, "paths[]")
        if not nets:
            raise ValueError("timing report: paths[].nets is empty")
        for hop in nets:
            need(hop, "net", str, "paths[].nets[]")
            need(hop, "arrival", num, "paths[].nets[]")
            need(hop, "through", str, "paths[].nets[]")

    for p in need(report, "pruned", list, "report"):
        need(p, "startpoint", str, "pruned[]")
        need(p, "endpoint", str, "pruned[]")
        need(p, "kind", str, "pruned[]")
        need(p, "delay", num, "pruned[]")
        need(p, "reason", str, "pruned[]")

    if summary["paths_reported"] != len(report["paths"]):
        raise ValueError(
            "timing report: summary.paths_reported disagrees with paths")
    if summary["paths_pruned"] != len(report["pruned"]):
        raise ValueError(
            "timing report: summary.paths_pruned disagrees with pruned")
