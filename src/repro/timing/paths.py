"""K-worst path enumeration over the timing graph.

Best-first backward search: the heap holds *partial* paths — a suffix
from some head class down to an endpoint — keyed by the exact total
delay of the best completion, ``arrival[head] + suffix_delay``.
Because ``arrival[head]`` is precisely the longest prefix ending at
*head*, the key is an exact (not heuristic) bound, so completed paths
pop in non-increasing total-delay order: the first k completions are
the k worst paths, full stop.  This is what lets the false-path layer
prune a path and keep pulling — the next pop is always the next-worst
candidate.

Paths are structural objects (net classes + the edges between them),
cheap enough that enumerating a few thousand candidates on the paper
corpus is instant; ``max_pops`` bounds the search on pathological
designs (reconvergent meshes have exponentially many paths).
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass

from .graph import TimingEdge, TimingGraph


@dataclass
class EnumStats:
    """Filled in by :func:`enumerate_paths` when its generator returns.

    ``budget_tripped`` distinguishes "the heap ran dry" (every path was
    seen) from "``max_pops`` stopped the search with candidates still
    queued" — the caller must stay pessimistic in the latter case.
    Only valid once the generator is exhausted; a caller that breaks
    out early never reads it.
    """

    pops: int = 0
    budget_tripped: bool = False


@dataclass
class TimingPath:
    """One complete startpoint -> endpoint path."""

    start: int
    end: int
    end_kind: str  # "reg" | "out"
    delay: object  # int (unit model) or float
    #: edges source-to-sink; nets has one more entry than edges.
    edges: list[TimingEdge]
    nets: list[int]
    #: "in2reg" | "reg2reg" | "reg2out" | "in2out" | "net2reg" | ...
    kind: str = ""
    #: filled by the false-path layer.
    sensitization: str = "assumed"
    reason: str = ""
    witness: dict | None = None
    replay_confirmed: bool | None = None
    replay_detail: str = ""
    slack: object = None

    @property
    def is_false(self) -> bool:
        return self.sensitization == "proved-false"

    def render(self, ctx, hide_synthetic: bool = True) -> str:
        """The path as a net chain, source first."""
        names = [ctx.display[ci] for ci in self.nets]
        if hide_synthetic:
            kept = [n for n in names if not n.split(".")[-1].startswith("$")]
            if len(kept) >= 2:
                names = kept
        return " -> ".join(names)


def enumerate_paths(graph: TimingGraph, *, max_pops: int = 20_000,
                    stats: EnumStats | None = None):
    """Yield complete paths in non-increasing delay order, worst first.

    Generator so the caller (the false-path pruner) can stop as soon as
    it has k *true* paths.  Raises nothing on budget exhaustion — it
    simply stops, recording ``stats.budget_tripped`` (``max_pops``
    counts heap pops of *partial* suffixes, so the caller cannot infer
    exhaustion from the number of complete paths yielded); the caller
    reads ``graph`` arrivals for the assumed bound on anything not
    enumerated.
    """
    arr = graph.arrival
    if arr is None:
        return
    heap: list = []
    counter = 0
    for ci, kind in graph.endpoints:
        # Suffixes grow head-ward as linked tuples (edge, rest).
        heapq.heappush(heap, (-arr[ci], counter, ci, kind, 0, None))
        counter += 1
    pops = 0
    while heap and pops < max_pops:
        neg, _, head, end_kind, suffix_delay, suffix = heapq.heappop(heap)
        pops += 1
        in_edges = graph.edges_in[head]
        if not in_edges:
            edges = []
            node = suffix
            while node is not None:
                edges.append(node[0])
                node = node[1]
            nets = [head] + [e.dst for e in edges]
            start_kind = graph.start_kind(head)
            yield TimingPath(
                start=head,
                end=nets[-1],
                end_kind=end_kind,
                delay=-neg,
                edges=edges,
                nets=nets,
                kind=f"{start_kind}2{end_kind}",
            )
            continue
        for edge in in_edges:
            d = graph.edge_delay(edge)
            total = suffix_delay + d
            heapq.heappush(heap, (
                -(arr[edge.src] + total), counter, edge.src, end_kind,
                total, (edge, suffix)))
            counter += 1
    if stats is not None:
        stats.pops = pops
        stats.budget_tripped = bool(heap)
