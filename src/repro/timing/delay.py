"""Delay models for the static timing analyzer.

Two built-in models:

``unit``
    Every timing arc costs exactly 1 (an int).  Arrival times are then
    *identical* to the unit-delay logic levels the repo has always
    reported (``netstats.logic_depth``, lint ZL051), which keeps every
    pre-existing depth number reproducible — the default.

``fanout``
    A coarse technology proxy: each arc costs the *gate delay* of the
    receiving element (per-opcode, XOR/EQUAL cost more than NAND/NOR,
    inverters less) plus a wire-delay estimate proportional to the
    fan-out of the driving net beyond its first consumer (every extra
    consumer loads the wire).  Numbers are floats in "inverter units";
    they are deliberately round — the point is relative path ordering,
    not SPICE accuracy.

Models are duck-typed on ``edge_delay(edge, src_fanout) -> number``;
custom models only need that method and a ``name``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

#: Per-opcode gate delays for the fanout model, in inverter units.
#: Monotone in the gate's CMOS series-stack depth: NOT < NAND/NOR <
#: AND/OR (an extra inverting stage) < XOR/EQUAL (two stages + both
#: polarities of every input).
GATE_DELAYS: dict[str, float] = {
    "NOT": 1.0,
    "NAND": 1.5,
    "NOR": 1.5,
    "AND": 2.0,
    "OR": 2.0,
    "XOR": 3.0,
    "EQUAL": 3.0,
    "RANDOM": 1.0,
}


@dataclass(frozen=True)
class DelayModel:
    """A configurable arc-delay model.

    ``gate_delays`` maps opcodes to delays (``default_gate`` covers the
    rest); ``drive_delay`` prices a connection arc (the pass gate of a
    multiplex arm or a plain copy), ``guard_delay`` the enable arc of a
    conditional driver; ``wire_factor`` scales the fan-out-derived wire
    term ``wire_factor * max(0, fanout(src) - 1)`` added to every arc.
    """

    name: str = "unit"
    gate_delays: dict = field(default_factory=dict)
    default_gate: float = 1
    drive_delay: float = 1
    guard_delay: float = 1
    wire_factor: float = 0.0

    def edge_delay(self, edge, src_fanout: int):
        if edge.kind == "gate":
            base = self.gate_delays.get(edge.gate.op, self.default_gate)
        elif edge.kind == "guard":
            base = self.guard_delay
        else:
            base = self.drive_delay
        wire = self.wire_factor * max(0, src_fanout - 1)
        return base + wire if wire else base


#: The default: integer unit delays, bit-for-bit the historical levels.
UNIT = DelayModel(name="unit")

#: Per-opcode gate delays + fan-out wire estimates.
FANOUT = DelayModel(
    name="fanout",
    gate_delays=dict(GATE_DELAYS),
    default_gate=2.0,
    drive_delay=1.0,
    guard_delay=1.0,
    wire_factor=0.25,
)

MODELS: dict[str, DelayModel] = {"unit": UNIT, "fanout": FANOUT}


def get_model(name) -> DelayModel:
    """Resolve a model by name (or pass a DelayModel through)."""
    if isinstance(name, DelayModel):
        return name
    try:
        return MODELS[name]
    except KeyError:
        raise ValueError(
            f"unknown delay model {name!r}; choose from "
            f"{sorted(MODELS)}") from None
