"""The content-hash compile cache.

A request's design is identified by the SHA-256 of everything that can
change the compile's outcome: the front-end version (a new compiler
release must never serve stale graphs), the strictness mode, the
requested top-level signal, and the source text itself.  Two requests
with the same key get the same :class:`CacheEntry` -- the elaborated
:class:`~repro.Circuit` plus, once any simulator has been built from it,
the levelized :class:`~repro.core.schedule.Schedule`.  Both are
immutable after construction (the design graph is never mutated by
simulation; the schedule is a frozen compilation of it), so entries are
shared read-only across threads and requests without copying.

Entries are evicted least-recently-used once ``capacity`` is reached.
All cache operations take one small lock; compilation itself runs
outside it (two racing misses on one key compile twice and the second
insert wins -- wasted work, never wrong results).
"""

from __future__ import annotations

import hashlib
import threading
import time
from collections import OrderedDict

from .. import Circuit, __version__, compile_text
from ..core.simulator import Simulator

#: Version fragment of the cache key: bump __version__ and every key
#: changes, so a new front-end never serves graphs elaborated by an
#: old one.
FRONTEND_VERSION = __version__


def cache_key(
    source: str, top: str | None = None, strict: bool = True
) -> str:
    """The content hash identifying one compile's full input."""
    h = hashlib.sha256()
    for part in (FRONTEND_VERSION, top or "", "1" if strict else "0"):
        h.update(part.encode("utf-8"))
        h.update(b"\0")
    h.update(source.encode("utf-8"))
    return h.hexdigest()


class CacheEntry:
    """One cached compile: the circuit, its key, and (lazily) the
    levelized schedule shared by every simulator over the design."""

    __slots__ = ("key", "circuit", "compile_s", "_schedule", "_lock")

    def __init__(self, key: str, circuit: Circuit, compile_s: float):
        self.key = key
        self.circuit = circuit
        self.compile_s = compile_s
        self._schedule = None
        self._lock = threading.Lock()

    def simulator(self, **kwargs) -> Simulator:
        """A fresh simulator over the cached design, reusing the cached
        schedule (and capturing it from the first construction): repeat
        simulations of a cached design skip the levelizing pass too."""
        sim = Simulator(
            self.circuit.design, schedule=self._schedule, **kwargs
        )
        if self._schedule is None and sim._schedule is not None:
            with self._lock:
                if self._schedule is None:
                    self._schedule = sim._schedule
        return sim


class CompileCache:
    """A bounded, thread-safe, LRU content-hash cache of compiles."""

    def __init__(self, capacity: int = 128):
        if capacity < 1:
            raise ValueError("cache capacity must be >= 1")
        self.capacity = capacity
        self._entries: OrderedDict[str, CacheEntry] = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0
        self.evictions = 0

    def __len__(self) -> int:
        return len(self._entries)

    def lookup(self, key: str) -> CacheEntry | None:
        """The entry for *key*, freshened to most-recently-used."""
        with self._lock:
            entry = self._entries.get(key)
            if entry is None:
                self.misses += 1
                return None
            self._entries.move_to_end(key)
            self.hits += 1
            return entry

    def insert(self, entry: CacheEntry) -> CacheEntry:
        """Insert (or re-insert) an entry, evicting the LRU past
        capacity.  On a racing double-compile the existing entry wins
        (its schedule may already be captured)."""
        with self._lock:
            existing = self._entries.get(entry.key)
            if existing is not None:
                self._entries.move_to_end(entry.key)
                return existing
            self._entries[entry.key] = entry
            while len(self._entries) > self.capacity:
                self._entries.popitem(last=False)
                self.evictions += 1
            return entry

    def get_or_compile(
        self,
        source: str,
        top: str | None = None,
        *,
        strict: bool = True,
        name: str = "<service>",
        registry=None,
    ) -> tuple[CacheEntry, bool]:
        """The service's compile front door: ``(entry, was_hit)``.

        Compilation errors propagate to the caller (and are *not*
        cached: a transient failure should not poison the key)."""
        key = cache_key(source, top, strict)
        entry = self.lookup(key)
        if entry is not None:
            return entry, True
        t0 = time.perf_counter()
        circuit = compile_text(
            source, top, name=name, strict=strict, registry=registry
        )
        entry = CacheEntry(key, circuit, time.perf_counter() - t0)
        return self.insert(entry), False

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()

    def stats(self) -> dict:
        with self._lock:
            total = self.hits + self.misses
            return {
                "entries": len(self._entries),
                "capacity": self.capacity,
                "hits": self.hits,
                "misses": self.misses,
                "evictions": self.evictions,
                "hit_rate": (self.hits / total) if total else 0.0,
            }
