"""``zeusd`` -- the asyncio compile-and-simulate daemon.

A deliberately small HTTP/1.1 server over raw :mod:`asyncio` streams
(no ``http.server``, no third-party framework): requests and responses
are JSON bodies, long sims stream as chunked NDJSON.  The endpoints:

.. code-block:: none

    GET  /v1/health                    liveness + version
    GET  /v1/metrics                   zeus.metrics/1 service report
    POST /v1/compile                   {source, top?, strict?}
    POST /v1/lint                      {source, top?, strict?, werror?}
    POST /v1/sim                       {source, cycles?, pokes?, watch?,
                                        seed?, engine?}  (long runs are
                                        sharded to the process pool)
    POST /v1/sim/stream                same body; chunked NDJSON, one
                                       line per cycle (live tail)
    POST /v1/prove                     {source, props?, depth?, budget?,
                                        induction?}   -> process pool
    POST /v1/equiv                     {source, source2, top?, top2?,
                                        depth?, budget?} -> process pool
    POST /v1/timing                    {source, model?, clock?, paths?,
                                        sat?, budget?} -> process pool
    POST /v1/session/open              {source, top?, seed?} -> lane lease
    GET  /v1/session/<id>              session status
    POST /v1/session/<id>/poke         {path, value}
    POST /v1/session/<id>/unpoke       {path}
    POST /v1/session/<id>/peek         {path}
    POST /v1/session/<id>/step         {cycles?}
    POST /v1/session/<id>/registers    {}
    DELETE /v1/session/<id>            release the lane
    POST /v1/cache/clear               drop every cached compile

Error contract: compile failures are HTTP 400 with the ``zeus.error/1``
payload (the CLI's ``--format json`` renderer); a saturated worker pool
is 503 with a ``Retry-After`` header; a blown per-request deadline is
504; unknown routes are 404.

Concurrency model: the event loop owns all bookkeeping; CPU-bound work
leaves it -- SAT obligations and long sims to the process pool, session
stepping to a thread via ``asyncio.to_thread`` (lanes of one mux are
advanced by a single *elected* stepper task that coalesces every
waiting session into shared bit-parallel passes; see
:meth:`ZeusDaemon._step_session`).  Each request records its spans on a
private :class:`~repro.obs.spans.SpanRegistry` (``use_registry``), then
folds them into the daemon's bounded recent-spans ring for
``/v1/metrics``.
"""

from __future__ import annotations

import asyncio
import itertools
import json
import time

from .. import __version__
from ..lang import SourceText
from ..lang.errors import ZeusError, error_payload
from ..obs.export import service_metrics_report, validate_report
from ..obs.spans import SpanRegistry, use_registry
from . import jobs
from .cache import CompileCache, cache_key
from .pool import PoolSaturated, PoolTimeout, ShardPool
from .sessions import LaneMux, SessionError

_MAX_BODY = 8 << 20
_MAX_HEADERS = 64

#: Sim requests beyond this many cycles leave the event loop for the
#: process pool (tunable per daemon).
DEFAULT_LONG_SIM_CYCLES = 20_000


class _HttpError(Exception):
    """An error with a ready-made HTTP response."""

    def __init__(self, status: int, payload: dict, headers=None):
        super().__init__(payload.get("error", str(status)))
        self.status = status
        self.payload = payload
        self.headers = headers or {}


class _MuxState:
    """One design's mux plus its asyncio coordination state."""

    __slots__ = ("mux", "lock", "want", "event", "stepping")

    def __init__(self, mux: LaneMux):
        self.mux = mux
        self.lock = asyncio.Lock()
        self.want: dict = {}
        self.event = asyncio.Event()
        self.stepping = False


_STATUS_TEXT = {
    200: "OK", 400: "Bad Request", 404: "Not Found",
    405: "Method Not Allowed", 408: "Request Timeout",
    413: "Payload Too Large", 500: "Internal Server Error",
    503: "Service Unavailable", 504: "Gateway Timeout",
}


class ZeusDaemon:
    """The daemon: cache + pool + session muxes behind HTTP JSON."""

    def __init__(
        self,
        *,
        host: str = "127.0.0.1",
        port: int = 0,
        workers: int | None = None,
        lanes: int = 16,
        cache_size: int = 128,
        max_queue: int | None = None,
        timeout: float = 60.0,
        long_sim_cycles: int = DEFAULT_LONG_SIM_CYCLES,
    ):
        self.host = host
        self.port = port
        self.lanes = lanes
        self.long_sim_cycles = long_sim_cycles
        self.cache = CompileCache(cache_size)
        self.pool = ShardPool(workers, max_queue=max_queue, timeout=timeout)
        self.registry = SpanRegistry(maxlen=2_000)
        self._muxes: dict[str, _MuxState] = {}
        self._sessions: dict[str, tuple] = {}
        self._session_ids = itertools.count(1)
        self._requests = {"total": 0, "errors": 0, "shed": 0}
        self._by_endpoint: dict[str, int] = {}
        self._started = time.monotonic()
        self._server: asyncio.AbstractServer | None = None
        self._conns: set = set()

    # -- lifecycle -------------------------------------------------------

    async def start(self) -> None:
        self._server = await asyncio.start_server(
            self._handle_conn, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._started = time.monotonic()

    async def serve_forever(self) -> None:
        if self._server is None:
            await self.start()
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        # Hang up idle keep-alive connections so their handler tasks
        # see EOF and finish before the loop tears down (otherwise
        # asyncio logs their cancellation).
        for writer in list(self._conns):
            writer.close()
        await asyncio.sleep(0)
        self.pool.shutdown()

    def stats(self) -> dict:
        """The ``service`` section of the zeus.metrics/1 report."""
        return {
            "uptime_s": time.monotonic() - self._started,
            "requests": {
                "total": self._requests["total"],
                "errors": self._requests["errors"],
                "shed": self._requests["shed"],
                "by_endpoint": dict(sorted(self._by_endpoint.items())),
            },
            "cache": self.cache.stats(),
            "pool": self.pool.stats(),
            "sessions": {
                "open": len(self._sessions),
                "muxes": [
                    {
                        "design": st.mux.circuit.name,
                        "lanes": st.mux.lanes,
                        "occupied": st.mux.occupied,
                    }
                    for st in self._muxes.values()
                ],
            },
        }

    # -- HTTP plumbing ---------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        self._conns.add(writer)
        try:
            while True:
                request = await self._read_request(reader)
                if request is None:
                    break
                method, path, headers, body = request
                keep = headers.get("connection", "").lower() != "close"
                done = await self._dispatch(
                    method, path, body, writer, keep
                )
                await writer.drain()
                if not keep or done == "close":
                    break
        except (
            ConnectionError,
            asyncio.IncompleteReadError,
            asyncio.LimitOverrunError,
        ):
            pass
        finally:
            self._conns.discard(writer)
            writer.close()
            try:
                await writer.wait_closed()
            except ConnectionError:
                pass

    async def _read_request(self, reader):
        line = await reader.readline()
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError:
            raise ConnectionError("malformed request line")
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            line = await reader.readline()
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        else:
            raise ConnectionError("too many headers")
        length = int(headers.get("content-length", "0") or "0")
        if length > _MAX_BODY:
            raise ConnectionError("body too large")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path, headers, body

    def _send(
        self, writer, status: int, payload: dict,
        headers: dict | None = None, keep: bool = True,
    ) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        lines = [
            f"HTTP/1.1 {status} {_STATUS_TEXT.get(status, 'Unknown')}",
            "Content-Type: application/json",
            f"Content-Length: {len(body)}",
            f"Connection: {'keep-alive' if keep else 'close'}",
        ]
        for name, value in (headers or {}).items():
            lines.append(f"{name}: {value}")
        writer.write(
            ("\r\n".join(lines) + "\r\n\r\n").encode("ascii") + body
        )

    async def _dispatch(
        self, method: str, path: str, body: bytes, writer, keep: bool
    ):
        endpoint = f"{method} {path.split('?', 1)[0]}"
        self._requests["total"] += 1
        registry = SpanRegistry()
        try:
            with use_registry(registry):
                with registry.span("request", endpoint=endpoint):
                    return await self._route(
                        method, path, body, writer, keep, registry
                    )
        except _HttpError as exc:
            self._requests["errors"] += 1
            if exc.status == 503:
                self._requests["shed"] += 1
            self._send(writer, exc.status, exc.payload, exc.headers, keep)
        except Exception as exc:  # noqa: BLE001 -- the last-resort 500
            self._requests["errors"] += 1
            self._send(
                writer, 500,
                {"error": f"{type(exc).__name__}: {exc}"}, None, keep,
            )
        finally:
            # Collapse the route key so per-session paths aggregate.
            parts = endpoint.split("/")
            if len(parts) > 3 and parts[2] == "session":
                parts[3] = "*"
            key = "/".join(parts)
            self._by_endpoint[key] = self._by_endpoint.get(key, 0) + 1
            self.registry.spans.extend(registry.spans)

    async def _route(
        self, method, path, body, writer, keep, registry
    ):
        path = path.split("?", 1)[0]
        if path == "/v1/health" and method == "GET":
            self._send(writer, 200, {
                "status": "ok",
                "version": __version__,
                "uptime_s": time.monotonic() - self._started,
            }, None, keep)
            return None
        if path == "/v1/metrics" and method == "GET":
            report = service_metrics_report(self.stats(), self.registry)
            validate_report(report)
            self._send(writer, 200, report, None, keep)
            return None
        if path == "/v1/cache/clear" and method == "POST":
            self.cache.clear()
            self._send(writer, 200, {"cleared": True}, None, keep)
            return None

        request = self._json_body(body) if method in ("POST", "PUT") else {}

        if path == "/v1/compile" and method == "POST":
            payload = await self._compile(request, registry)
        elif path == "/v1/lint" and method == "POST":
            payload = await self._lint(request, registry)
        elif path == "/v1/sim" and method == "POST":
            payload = await self._sim(request, registry)
        elif path == "/v1/sim/stream" and method == "POST":
            return await self._sim_stream(request, writer, keep)
        elif path == "/v1/prove" and method == "POST":
            payload = await self._prove(request)
        elif path == "/v1/equiv" and method == "POST":
            payload = await self._equiv(request)
        elif path == "/v1/timing" and method == "POST":
            payload = await self._timing(request)
        elif path == "/v1/session/open" and method == "POST":
            payload = await self._session_open(request)
        elif path.startswith("/v1/session/"):
            payload = await self._session_request(method, path, request)
        else:
            raise _HttpError(404, {"error": f"no route {method} {path}"})
        self._send(writer, 200, payload, None, keep)
        return None

    def _json_body(self, body: bytes) -> dict:
        if not body:
            return {}
        try:
            request = json.loads(body)
        except json.JSONDecodeError as exc:
            raise _HttpError(400, {"error": f"bad JSON body: {exc}"})
        if not isinstance(request, dict):
            raise _HttpError(400, {"error": "JSON body must be an object"})
        return request

    # -- compile-path endpoints -----------------------------------------

    def _entry(self, request: dict, registry, *, field: str = "source",
               top_field: str = "top"):
        source = request.get(field)
        if not isinstance(source, str):
            raise _HttpError(
                400, {"error": f"missing or non-string {field!r}"}
            )
        top = request.get(top_field)
        strict = bool(request.get("strict", True))
        try:
            return self.cache.get_or_compile(
                source, top, strict=strict, registry=registry
            )
        except ZeusError as exc:
            raise _HttpError(
                400, error_payload(exc, SourceText(source, "<request>"))
            ) from None

    async def _compile(self, request: dict, registry) -> dict:
        entry, hit = self._entry(request, registry)
        circuit = entry.circuit
        return {
            "design": {"name": circuit.name, **circuit.stats()},
            "key": entry.key,
            "cached": hit,
            "compile_s": entry.compile_s,
            "diagnostics": [
                {
                    "severity": d.severity.value,
                    "message": d.message,
                    "phase": d.phase,
                }
                for d in circuit.diagnostics.diagnostics
            ],
        }

    async def _lint(self, request: dict, registry) -> dict:
        from ..lint import LintConfig, run_lint

        entry, hit = self._entry(request, registry)
        config = LintConfig(werror=bool(request.get("werror", False)))
        report = await asyncio.to_thread(run_lint, entry.circuit, config)
        return {
            "cached": hit,
            "report": json.loads(report.render_json()),
            "exit_code": report.exit_code(),
        }

    async def _sim(self, request: dict, registry) -> dict:
        cycles = int(request.get("cycles", 8))
        if cycles < 0:
            raise _HttpError(400, {"error": "cycles must be >= 0"})
        pokes = request.get("pokes", [])
        watch = request.get("watch", [])
        seed = int(request.get("seed", 0))
        engine = str(request.get("engine", "auto"))
        if cycles > self.long_sim_cycles:
            # Long runs are real compute: shard them.
            return await self._pooled(
                jobs.sim_job,
                request.get("source", ""), request.get("top"),
                bool(request.get("strict", True)), cycles,
                [tuple(p) for p in pokes], list(watch), seed, engine,
                timeout=request.get("timeout"),
            )
        entry, hit = self._entry(request, registry)

        def run() -> dict:
            sim = entry.simulator(strict=False, seed=seed, engine=engine)
            plan = sorted(
                (int(c), str(p), v) for c, p, v in pokes
            )
            applied = 0
            for t in range(cycles):
                while applied < len(plan) and plan[applied][0] <= t:
                    sim.poke(plan[applied][1], plan[applied][2])
                    applied += 1
                sim.step()
            names = watch or [
                p.name for p in entry.circuit.netlist.ports
            ]
            return {
                "design": entry.circuit.name,
                "engine": sim.engine,
                "cached": hit,
                "cycles": cycles,
                "signals": {
                    path: [str(b) for b in sim.peek(path)]
                    for path in names
                },
                "violations": [
                    {"cycle": v.cycle, "net": v.net,
                     "values": [str(x) for x in v.values]}
                    for v in sim.violations
                ],
            }

        try:
            return await asyncio.to_thread(run)
        except (ZeusError, KeyError, ValueError) as exc:
            raise self._runtime_error(exc) from None

    async def _sim_stream(self, request: dict, writer, keep: bool):
        """Chunked NDJSON: one line per cycle with the watched values,
        then a summary line -- a WebSocket-style live tail over plain
        HTTP/1.1 (curl -N shows cycles as they happen)."""
        cycles = int(request.get("cycles", 8))
        watch = request.get("watch", [])
        seed = int(request.get("seed", 0))
        engine = str(request.get("engine", "auto"))
        pokes = sorted(
            (int(c), str(p), v) for c, p, v in request.get("pokes", [])
        )
        entry, _hit = self._entry(request, None)
        try:
            sim = entry.simulator(strict=False, seed=seed, engine=engine)
            names = watch or [
                p.name for p in entry.circuit.netlist.ports
            ]
            for path in names:
                sim.nets_of(path)  # validate before the 200 goes out
        except (ZeusError, KeyError, ValueError) as exc:
            raise self._runtime_error(exc) from None

        writer.write(
            b"HTTP/1.1 200 OK\r\n"
            b"Content-Type: application/x-ndjson\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"Connection: close\r\n\r\n"
        )

        def chunk(obj: dict) -> bytes:
            data = (json.dumps(obj, sort_keys=True) + "\n").encode()
            return f"{len(data):x}\r\n".encode() + data + b"\r\n"

        applied = 0
        for t in range(cycles):
            while applied < len(pokes) and pokes[applied][0] <= t:
                sim.poke(pokes[applied][1], pokes[applied][2])
                applied += 1
            await asyncio.to_thread(sim.step)
            writer.write(chunk({
                "cycle": t,
                "signals": {
                    path: [str(b) for b in sim.peek(path)]
                    for path in names
                },
            }))
            await writer.drain()
        writer.write(chunk({
            "done": True,
            "cycles": cycles,
            "violations": [
                {"cycle": v.cycle, "net": v.net,
                 "values": [str(x) for x in v.values]}
                for v in sim.violations
            ],
        }))
        writer.write(b"0\r\n\r\n")
        await writer.drain()
        return "close"

    # -- pool endpoints --------------------------------------------------

    async def _pooled(self, fn, /, *args, timeout=None):
        try:
            return await self.pool.run(
                fn, *args,
                timeout=float(timeout) if timeout is not None else None,
            )
        except PoolSaturated as exc:
            raise _HttpError(
                503,
                {"error": str(exc), "retry_after": exc.retry_after},
                {"Retry-After": f"{max(1, round(exc.retry_after))}"},
            ) from None
        except PoolTimeout as exc:
            raise _HttpError(504, {"error": str(exc)}) from None
        except ZeusError as exc:
            raise _HttpError(400, error_payload(exc)) from None

    def _source_of(self, request: dict, field: str = "source") -> str:
        source = request.get(field)
        if not isinstance(source, str):
            raise _HttpError(
                400, {"error": f"missing or non-string {field!r}"}
            )
        return source

    async def _prove(self, request: dict) -> dict:
        return await self._pooled(
            jobs.prove_job,
            self._source_of(request), request.get("top"),
            bool(request.get("strict", True)),
            request.get("props"),
            int(request.get("depth", 8)),
            int(request.get("budget", 100_000)),
            bool(request.get("induction", True)),
            timeout=request.get("timeout"),
        )

    async def _equiv(self, request: dict) -> dict:
        return await self._pooled(
            jobs.equiv_job,
            self._source_of(request), request.get("top"),
            self._source_of(request, "source2"), request.get("top2"),
            bool(request.get("strict", True)),
            int(request.get("depth", 8)),
            int(request.get("budget", 100_000)),
            bool(request.get("induction", True)),
            timeout=request.get("timeout"),
        )

    async def _timing(self, request: dict) -> dict:
        return await self._pooled(
            jobs.timing_job,
            self._source_of(request), request.get("top"),
            bool(request.get("strict", True)),
            str(request.get("model", "unit")),
            request.get("clock"),
            int(request.get("paths", 4)),
            bool(request.get("sat", True)),
            int(request.get("budget", 20_000)),
            int(request.get("max_sat", 200)),
            timeout=request.get("timeout"),
        )

    # -- session endpoints ----------------------------------------------

    async def _session_open(self, request: dict) -> dict:
        source = self._source_of(request)
        top = request.get("top")
        strict = bool(request.get("strict", True))
        seed = int(request.get("seed", 0))
        engine = str(request.get("engine", "batched"))
        if engine not in ("batched", "codegen"):
            raise _HttpError(
                400, {"error": "session engine must be batched|codegen"}
            )
        key = cache_key(source, top, strict)
        state = self._muxes.get(key)
        if state is None:
            try:
                entry, _hit = self.cache.get_or_compile(
                    source, top, strict=strict
                )
            except ZeusError as exc:
                raise _HttpError(
                    400,
                    error_payload(exc, SourceText(source, "<request>")),
                ) from None
            mux = await asyncio.to_thread(
                LaneMux, entry.circuit,
                lanes=self.lanes, engine=engine, cache_entry=entry,
            )
            state = self._muxes.setdefault(key, _MuxState(mux))
        async with state.lock:
            try:
                session = state.mux.attach(seed)
            except SessionError as exc:
                raise _HttpError(
                    503, {"error": str(exc)}, {"Retry-After": "1"}
                ) from None
        sid = f"s{next(self._session_ids)}"
        self._sessions[sid] = (session, state)
        return {
            "session": sid,
            "design": state.mux.circuit.name,
            "lane": session.lane,
            "lanes": state.mux.lanes,
            "seed": seed,
        }

    def _session_of(self, sid: str):
        try:
            return self._sessions[sid]
        except KeyError:
            raise _HttpError(
                404, {"error": f"no session {sid!r}"}
            ) from None

    async def _session_request(
        self, method: str, path: str, request: dict
    ) -> dict:
        parts = path.split("/")  # ['', 'v1', 'session', sid, verb?]
        sid = parts[3]
        verb = parts[4] if len(parts) > 4 else ""
        session, state = self._session_of(sid)

        if method == "DELETE" and not verb:
            async with state.lock:
                state.mux.detach(session)
            state.want.pop(session, None)
            del self._sessions[sid]
            return {"session": sid, "detached": True}

        if method == "GET" and not verb:
            return {
                "session": sid,
                "design": state.mux.circuit.name,
                "lane": session.lane,
                "cycle": session.cycle,
                "violations": len(session.violations),
            }

        if method != "POST":
            raise _HttpError(405, {"error": f"{method} not allowed here"})

        if verb == "poke":
            async with state.lock:
                try:
                    session.poke(
                        str(request.get("path", "")), request.get("value")
                    )
                except (ZeusError, KeyError, ValueError, TypeError) as exc:
                    raise self._runtime_error(exc) from None
            return {"session": sid, "poked": request.get("path")}

        if verb == "unpoke":
            async with state.lock:
                try:
                    session.unpoke(str(request.get("path", "")))
                except (ZeusError, KeyError, ValueError) as exc:
                    raise self._runtime_error(exc) from None
            return {"session": sid, "unpoked": request.get("path")}

        if verb == "peek":
            sig = str(request.get("path", ""))
            async with state.lock:
                try:
                    bits = session.peek(sig)
                    value = session.peek_int(sig)
                except (ZeusError, KeyError, ValueError) as exc:
                    raise self._runtime_error(exc) from None
            return {
                "session": sid,
                "path": sig,
                "bits": [str(b) for b in bits],
                "value": value,
                "cycle": session.cycle,
            }

        if verb == "registers":
            async with state.lock:
                regs = session.registers()
            return {
                "session": sid,
                "registers": {k: str(v) for k, v in regs.items()},
            }

        if verb == "step":
            cycles = int(request.get("cycles", 1))
            if cycles < 0:
                raise _HttpError(400, {"error": "cycles must be >= 0"})
            before = len(session.violations)
            await self._step_session(state, session, cycles)
            return {
                "session": sid,
                "cycle": session.cycle,
                "violations": [
                    {"cycle": v.cycle, "net": v.net,
                     "values": [str(x) for x in v.values]}
                    for v in session.violations[before:]
                ],
            }

        raise _HttpError(404, {"error": f"no session verb {verb!r}"})

    async def _step_session(self, state: _MuxState, session, cycles: int):
        """The coalescing stepper.  Every task adds its session's cycle
        debt to ``state.want``; the first task becomes the *stepper* and
        loops single-cycle bit-parallel passes over whichever sessions
        currently owe cycles (joiners coalesce into the running pass
        stream mid-flight); the others wait for their debt to drain.
        One pass moves every waiting session, so N concurrent steppers
        of one design cost one levelized pass per cycle, not N."""
        if cycles <= 0:
            return
        state.want[session] = state.want.get(session, 0) + cycles
        if state.stepping:
            while session in state.want:
                event = state.event
                await event.wait()
            return
        state.stepping = True
        try:
            while state.want:
                batch = {s: 1 for s in state.want}
                async with state.lock:
                    await asyncio.to_thread(state.mux.step_many, batch)
                for s in list(state.want):
                    state.want[s] -= 1
                    if state.want[s] <= 0:
                        del state.want[s]
                # Pulse the waiters, re-arm, then yield so joiners can
                # enqueue before the next pass.
                state.event.set()
                state.event = asyncio.Event()
                await asyncio.sleep(0)
        finally:
            state.stepping = False
            state.event.set()
            state.event = asyncio.Event()

    @staticmethod
    def _runtime_error(exc) -> _HttpError:
        if isinstance(exc, ZeusError):
            return _HttpError(400, error_payload(exc))
        what = exc.args[0] if exc.args else exc
        if isinstance(exc, KeyError) and not (
            isinstance(what, str) and " " in what
        ):
            what = f"unknown signal {what!r}"
        return _HttpError(400, {"error": str(what)})


def main(argv=None) -> int:
    """``python -m repro.service.server`` -- standalone entry point
    (the CLI's ``zeusc serve`` forwards here)."""
    import argparse

    ap = argparse.ArgumentParser(
        prog="zeusd", description="Zeus compile-and-simulate daemon"
    )
    ap.add_argument("--host", default="127.0.0.1")
    ap.add_argument("--port", type=int, default=8471)
    ap.add_argument("--workers", type=int, default=None,
                    help="process-pool shards (default: one per CPU)")
    ap.add_argument("--lanes", type=int, default=16,
                    help="sim-session lanes per design (default 16)")
    ap.add_argument("--cache-size", type=int, default=128,
                    help="compile-cache capacity (default 128)")
    ap.add_argument("--max-queue", type=int, default=None,
                    help="pool backlog before shedding (default 2x workers)")
    ap.add_argument("--timeout", type=float, default=60.0,
                    help="per-request pool deadline in seconds")
    args = ap.parse_args(argv)

    daemon = ZeusDaemon(
        host=args.host, port=args.port, workers=args.workers,
        lanes=args.lanes, cache_size=args.cache_size,
        max_queue=args.max_queue, timeout=args.timeout,
    )

    async def _serve():
        await daemon.start()
        print(f"zeusd listening on http://{daemon.host}:{daemon.port}")
        try:
            await daemon.serve_forever()
        finally:
            await daemon.stop()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
