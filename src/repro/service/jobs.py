"""Picklable job bodies for the :class:`~repro.service.pool.ShardPool`.

Each job is a plain top-level function taking only picklable arguments
(source text + options) and returning a plain dict (the rendered
report).  Jobs compile *in the worker process* -- shipping an elaborated
graph across the process boundary would cost more than re-elaborating,
and each worker keeps its own warm :data:`_WORKER_CACHE` so repeated
obligations on one design pay the compile once per shard, not per
request.

Compile failures raise :class:`~repro.lang.errors.ZeusError` in the
worker; the exception pickles back to the server, which renders it as
a structured ``zeus.error/1`` payload.
"""

from __future__ import annotations

import json

#: Per-worker compile cache (content-hash -> Circuit), populated
#: lazily in each shard process.
_WORKER_CACHE: dict = {}
_WORKER_CACHE_MAX = 32


def _worker_compile(source: str, top: str | None, strict: bool):
    from .. import compile_text
    from .cache import cache_key

    key = cache_key(source, top, strict)
    circuit = _WORKER_CACHE.get(key)
    if circuit is None:
        circuit = compile_text(source, top, strict=strict)
        if len(_WORKER_CACHE) >= _WORKER_CACHE_MAX:
            _WORKER_CACHE.pop(next(iter(_WORKER_CACHE)))
        _WORKER_CACHE[key] = circuit
    return circuit


def prove_job(
    source: str,
    top: str | None,
    strict: bool,
    props: list[str] | None,
    depth: int,
    budget: int,
    induction: bool,
) -> dict:
    """BMC + k-induction in a shard; returns the ``zeus.proof/1``
    report dict plus the CLI exit code."""
    from ..formal import FormalConfig, prove

    circuit = _worker_compile(source, top, strict)
    config = FormalConfig(depth=depth, budget=budget, induction=induction)
    report = prove(circuit, props or None, config)
    return {
        "report": json.loads(report.render_json()),
        "exit_code": report.exit_code(),
    }


def equiv_job(
    source_a: str,
    top_a: str | None,
    source_b: str,
    top_b: str | None,
    strict: bool,
    depth: int,
    budget: int,
    induction: bool,
) -> dict:
    """Sequential-equivalence miter in a shard."""
    from ..formal import FormalConfig, check_equivalence

    a = _worker_compile(source_a, top_a, strict)
    b = _worker_compile(source_b, top_b, strict)
    config = FormalConfig(depth=depth, budget=budget, induction=induction)
    report = check_equivalence(a, b, config)
    return {
        "report": json.loads(report.render_json()),
        "exit_code": report.exit_code(),
    }


def timing_job(
    source: str,
    top: str | None,
    strict: bool,
    model: str,
    clock: float | None,
    paths: int,
    sat: bool,
    budget: int,
    max_sat: int,
) -> dict:
    """SAT-pruned static timing analysis in a shard; returns the
    ``zeus.timing/1`` report dict plus the CLI exit code."""
    from ..timing import analyze_timing

    circuit = _worker_compile(source, top, strict)
    report = analyze_timing(
        circuit, model=model, clock=clock, k=paths, sat=sat,
        budget=budget, max_sat=max_sat,
    )
    return {
        "report": json.loads(report.render_json()),
        "exit_code": report.exit_code(),
    }


def sim_job(
    source: str,
    top: str | None,
    strict: bool,
    cycles: int,
    pokes: list,
    watch: list[str],
    seed: int,
    engine: str,
) -> dict:
    """A long scalar sim in a shard: run the cycles, return the final
    watched values and the recorded violations."""
    circuit = _worker_compile(source, top, strict)
    sim = circuit.simulator(strict=False, seed=seed, engine=engine)
    poke_plan = sorted(
        (int(cycle), str(path), value) for cycle, path, value in pokes
    )
    applied = 0
    for t in range(cycles):
        while applied < len(poke_plan) and poke_plan[applied][0] <= t:
            _, path, value = poke_plan[applied]
            sim.poke(path, value)
            applied += 1
        sim.step()
    watch = watch or [p.name for p in circuit.netlist.ports]
    return {
        "design": circuit.name,
        "engine": sim.engine,
        "cycles": cycles,
        "signals": {
            path: [str(b) for b in sim.peek(path)] for path in watch
        },
        "violations": [
            {"cycle": v.cycle, "net": v.net,
             "values": [str(x) for x in v.values]}
            for v in sim.violations
        ],
    }
