"""The session multiplexer: user sim sessions as lanes of one shared
batched simulator.

The batched engine's lane-isolation contract (every lane behaves
exactly like a private scalar run with that lane's seed) means N users
simulating the *same* design do not need N simulators: a
:class:`LaneMux` owns one batched/codegen simulator per design and
leases lanes to :class:`SimSession` objects as they attach.  Stepping
happens through :meth:`Simulator.step_lanes`, which advances only the
lanes that asked to move -- sessions at different cycle counts coexist
on one plane set, and sessions that step *together* in one call share a
single bit-parallel pass (the aggregate-throughput win the service
banks on).

Sessions re-map the shared simulator's observations into their own
frame: cycle numbers are the session's private count (the underlying
``sim.cycle`` advances whenever *any* lane steps), and violations are
re-stamped accordingly with ``lane=None`` -- from the user's point of
view they own a whole scalar simulator.

The mux itself is not thread-safe; ``zeusd`` serializes access per mux
with an asyncio lock (see :mod:`repro.service.server`).  It *is* safe
to run different muxes on different threads.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from ..core.simulator import Simulator, Violation
from ..lang.errors import SimulationError

if TYPE_CHECKING:
    from .. import Circuit


class SessionError(SimulationError):
    """A session-protocol error: no free lane, detached handle, etc."""


class SimSession:
    """One leased lane, presented as a private simulator."""

    __slots__ = ("mux", "lane", "seed", "cycle", "violations", "_open")

    def __init__(self, mux: "LaneMux", lane: int, seed: int):
        self.mux = mux
        self.lane = lane
        self.seed = seed
        self.cycle = 0
        self.violations: list[Violation] = []
        self._open = True

    def _check_open(self) -> None:
        if not self._open:
            raise SessionError("session is detached")

    def poke(self, path: str, value) -> None:
        self._check_open()
        self.mux.sim.poke_lane(path, self.lane, value)

    def unpoke(self, path: str) -> None:
        self._check_open()
        self.mux.sim.unpoke_lane(path, self.lane)

    def peek(self, path: str):
        self._check_open()
        return self.mux.sim.peek_lane(path, self.lane)

    def peek_int(self, path: str) -> int | None:
        self._check_open()
        return self.mux.sim.peek_lane_int(path, self.lane)

    def registers(self) -> dict:
        self._check_open()
        return self.mux.sim.registers(lane=self.lane)

    def step(self, cycles: int = 1) -> list[Violation]:
        """Advance this session alone (other sessions stay frozen).
        Concurrent steppers should batch through
        :meth:`LaneMux.step_many` instead to share passes."""
        self._check_open()
        return self.mux.step_many({self: cycles})

    def detach(self) -> None:
        self.mux.detach(self)


class LaneMux:
    """One shared batched simulator, its lanes leased to sessions."""

    def __init__(
        self,
        circuit: "Circuit",
        *,
        lanes: int = 16,
        engine: str = "batched",
        schedule=None,
        cache_entry=None,
    ):
        if cache_entry is not None:
            self.sim = cache_entry.simulator(
                strict=False, engine=engine, lanes=lanes
            )
        else:
            self.sim = Simulator(
                circuit.design,
                strict=False,
                engine=engine,
                lanes=lanes,
                schedule=schedule,
            )
        self.circuit = circuit
        self.lanes = lanes
        self._free = list(range(lanes - 1, -1, -1))  # lease lane 0 first
        self._by_lane: dict[int, SimSession] = {}

    # -- leasing ---------------------------------------------------------

    @property
    def occupied(self) -> int:
        return len(self._by_lane)

    @property
    def sessions(self) -> list[SimSession]:
        return list(self._by_lane.values())

    def attach(self, seed: int = 0) -> SimSession:
        """Lease a fresh lane seeded like a private scalar run with
        *seed*; raises :class:`SessionError` when the mux is full."""
        if not self._free:
            raise SessionError(
                f"no free lane (all {self.lanes} lanes are leased)"
            )
        lane = self._free.pop()
        self.sim.reset_lane(lane, seed=seed)
        session = SimSession(self, lane, seed)
        self._by_lane[lane] = session
        return session

    def detach(self, session: SimSession) -> None:
        """Release a session's lane (idempotent).  The lane is scrubbed
        on release -- a mid-run detach leaves its neighbors' planes,
        registers and rng streams untouched, because nothing but the
        lane's own bits is written."""
        if not session._open:
            return
        session._open = False
        del self._by_lane[session.lane]
        # Scrub pokes/planes now so a poisoned lane never leaks into
        # the next lease even if that lease forgets to reset.
        self.sim.reset_lane(session.lane)
        self._free.append(session.lane)

    # -- stepping --------------------------------------------------------

    def step_many(
        self, want: "dict[SimSession, int]"
    ) -> list[Violation]:
        """Advance each session by its requested cycle count, sharing
        bit-parallel passes: one pass per round moves every session
        that still has cycles to run.  Returns the new violations
        (already re-stamped into session frames, in step order); they
        are also appended to each session's ``violations``."""
        remaining: dict[int, int] = {}
        for session, cycles in want.items():
            session._check_open()
            if session.mux is not self:
                raise SessionError("session belongs to a different mux")
            if cycles > 0:
                remaining[session.lane] = cycles
        out: list[Violation] = []
        while remaining:
            mask = 0
            for lane in remaining:
                mask |= 1 << lane
            fresh = self.sim.step_lanes(mask, 1)
            for v in fresh:
                session = self._by_lane[v.lane]
                stamped = Violation(
                    session.cycle, v.net, list(v.values), lane=None
                )
                session.violations.append(stamped)
                out.append(stamped)
            done = []
            for lane in remaining:
                self._by_lane[lane].cycle += 1
                remaining[lane] -= 1
                if remaining[lane] == 0:
                    done.append(lane)
            for lane in done:
                del remaining[lane]
        return out

    def step_all(self, cycles: int = 1) -> list[Violation]:
        """Advance every attached session *cycles* cycles in lockstep
        (the cheapest shape: every pass moves every session)."""
        return self.step_many(
            {s: cycles for s in self._by_lane.values()}
        )
