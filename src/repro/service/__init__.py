"""repro.service -- ``zeusd``, the Zeus compile-and-simulate daemon.

The paper's toolchain is a single-user batch compiler; this package
grows it into shared infrastructure that serves many concurrent users
over HTTP JSON APIs (``zeusc serve``).  Three load-bearing pieces:

* :mod:`repro.service.cache` -- the content-hash compile cache: identical
  source text never re-lexes/parses/elaborates; a cache entry holds the
  elaborated design *and* the levelized schedule, shared read-only by
  every simulator spawned from it;
* :mod:`repro.service.pool` -- the process-pool shard layer for SAT
  obligations (prove / timing) and long scalar sims, with per-request
  timeouts and a bounded queue that sheds load with 503 + Retry-After
  instead of piling up;
* :mod:`repro.service.sessions` -- the session multiplexer: independent
  user sim sessions are mapped onto *lanes* of one shared batched
  simulator per design hash, so N users of one design cost one
  levelized pass per cycle instead of N (the batched engine's
  lane-isolation contract makes each lane bit-identical to a private
  scalar run).

:mod:`repro.service.server` is the asyncio daemon itself (stdlib
``asyncio`` streams; no ``http.server``), and
:mod:`repro.service.client` a small blocking client used by the tests,
the CI smoke job and ``benchmarks/bench_service.py``.
"""

from .cache import CacheEntry, CompileCache, cache_key
from .client import ZeusClient, serve_in_thread
from .pool import PoolSaturated, PoolTimeout, ShardPool
from .server import ZeusDaemon
from .sessions import LaneMux, SessionError, SimSession

__all__ = [
    "CacheEntry",
    "CompileCache",
    "LaneMux",
    "PoolSaturated",
    "PoolTimeout",
    "SessionError",
    "ShardPool",
    "SimSession",
    "ZeusClient",
    "ZeusDaemon",
    "cache_key",
    "serve_in_thread",
]
