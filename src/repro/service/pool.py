"""The process-pool shard layer.

SAT obligations (prove / equiv / timing classification) and long scalar
sims are CPU-bound pure Python: running them on the daemon's event loop
would freeze every other request, and running them on threads would
still serialize on the GIL.  The :class:`ShardPool` runs them on a
``concurrent.futures.ProcessPoolExecutor`` -- one shard per CPU by
default -- through :meth:`ShardPool.run`, an awaitable with:

* a **bounded queue**: once ``max_queue`` jobs are in flight the pool
  sheds load by raising :class:`PoolSaturated` (the server maps it to
  HTTP 503 with a Retry-After hint) instead of letting latency grow
  without bound;
* a **per-request timeout**: a job that exceeds its deadline raises
  :class:`PoolTimeout` (HTTP 504) and its future is cancelled; a worker
  already executing it runs to completion but its result is dropped, so
  a stuck obligation cannot wedge the request path.

Jobs must be top-level picklable callables -- see
:mod:`repro.service.jobs`.
"""

from __future__ import annotations

import asyncio
import os
import threading
from concurrent.futures import ProcessPoolExecutor


class PoolSaturated(Exception):
    """The bounded queue is full; retry after ``retry_after`` seconds."""

    def __init__(self, retry_after: float):
        super().__init__(
            f"worker pool saturated; retry after {retry_after:.0f}s"
        )
        self.retry_after = retry_after


class PoolTimeout(Exception):
    """A job exceeded its per-request deadline."""

    def __init__(self, timeout: float):
        super().__init__(f"job exceeded its {timeout:.0f}s deadline")
        self.timeout = timeout


class ShardPool:
    """A bounded, lazily started process pool of compute shards."""

    def __init__(
        self,
        workers: int | None = None,
        *,
        max_queue: int | None = None,
        timeout: float = 60.0,
        retry_after: float = 1.0,
    ):
        self.workers = workers or os.cpu_count() or 1
        # Default headroom: twice the shard count may wait before the
        # pool starts shedding.
        self.max_queue = (
            max_queue if max_queue is not None else self.workers * 2
        )
        self.timeout = timeout
        self.retry_after = retry_after
        self._executor: ProcessPoolExecutor | None = None
        self._lock = threading.Lock()
        self.pending = 0
        self.submitted = 0
        self.completed = 0
        self.timeouts = 0
        self.shed = 0

    def _get_executor(self) -> ProcessPoolExecutor:
        # Lazy: `zeusc serve` should not fork workers it never uses,
        # and tests that only exercise the cache/mux never pay for it.
        with self._lock:
            if self._executor is None:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers
                )
            return self._executor

    async def run(self, fn, /, *args, timeout: float | None = None):
        """Run ``fn(*args)`` on a shard; await its result.

        Raises :class:`PoolSaturated` immediately when the queue is
        full, :class:`PoolTimeout` when the deadline passes first.
        """
        with self._lock:
            if self.pending >= self.workers + self.max_queue:
                self.shed += 1
                raise PoolSaturated(self.retry_after)
            self.pending += 1
            self.submitted += 1
        deadline = timeout if timeout is not None else self.timeout
        try:
            future = self._get_executor().submit(fn, *args)
            try:
                return await asyncio.wait_for(
                    asyncio.wrap_future(future), deadline
                )
            except (asyncio.TimeoutError, TimeoutError):
                future.cancel()
                with self._lock:
                    self.timeouts += 1
                raise PoolTimeout(deadline) from None
        finally:
            with self._lock:
                self.pending -= 1
                self.completed += 1

    def run_sync(self, fn, /, *args, timeout: float | None = None):
        """Blocking variant of :meth:`run` (tests, benchmarks)."""
        with self._lock:
            if self.pending >= self.workers + self.max_queue:
                self.shed += 1
                raise PoolSaturated(self.retry_after)
            self.pending += 1
            self.submitted += 1
        deadline = timeout if timeout is not None else self.timeout
        try:
            future = self._get_executor().submit(fn, *args)
            try:
                return future.result(deadline)
            except TimeoutError:
                future.cancel()
                with self._lock:
                    self.timeouts += 1
                raise PoolTimeout(deadline) from None
        finally:
            with self._lock:
                self.pending -= 1
                self.completed += 1

    def stats(self) -> dict:
        with self._lock:
            return {
                "workers": self.workers,
                "queue_depth": max(0, self.pending - self.workers),
                "max_queue": self.max_queue,
                "active": min(self.pending, self.workers),
                "submitted": self.submitted,
                "completed": self.completed,
                "timeouts": self.timeouts,
                "shed": self.shed,
            }

    def shutdown(self) -> None:
        with self._lock:
            executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)
