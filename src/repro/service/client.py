"""A small blocking client for ``zeusd`` (tests, CI smoke, benchmarks).

Built on :mod:`http.client` (the daemon itself is pure asyncio; the
*clients* in tests and benchmarks are plain threads, where a blocking
connection is the simplest correct thing).  One :class:`ZeusClient`
holds one keep-alive connection -- create one per thread.

:func:`serve_in_thread` boots a daemon on an ephemeral port inside a
background thread and tears it down on exit::

    with serve_in_thread(lanes=8) as daemon:
        client = ZeusClient(daemon.port)
        status, body = client.compile(SOURCE)
"""

from __future__ import annotations

import asyncio
import http.client
import json
import threading
from contextlib import contextmanager

from .server import ZeusDaemon


class ZeusClient:
    """One keep-alive JSON-over-HTTP connection to a daemon."""

    def __init__(self, port: int, host: str = "127.0.0.1",
                 timeout: float = 120.0):
        self.host = host
        self.port = port
        self._conn = http.client.HTTPConnection(host, port, timeout=timeout)

    def close(self) -> None:
        self._conn.close()

    def request(
        self, method: str, path: str, body: dict | None = None
    ) -> tuple[int, dict]:
        """One round-trip; returns ``(status, parsed_json)``."""
        payload = None
        headers = {}
        if body is not None:
            payload = json.dumps(body).encode("utf-8")
            headers["Content-Type"] = "application/json"
        try:
            self._conn.request(method, path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        except (http.client.HTTPException, ConnectionError):
            # One reconnect: the server may have closed an idle
            # keep-alive connection under us.
            self._conn.close()
            self._conn.request(method, path, payload, headers)
            response = self._conn.getresponse()
            data = response.read()
        if response.headers.get("Connection", "").lower() == "close":
            self._conn.close()
        return response.status, json.loads(data) if data else {}

    # -- convenience wrappers -------------------------------------------

    def health(self):
        return self.request("GET", "/v1/health")

    def metrics(self):
        return self.request("GET", "/v1/metrics")

    def compile(self, source: str, **options):
        return self.request(
            "POST", "/v1/compile", {"source": source, **options}
        )

    def lint(self, source: str, **options):
        return self.request(
            "POST", "/v1/lint", {"source": source, **options}
        )

    def sim(self, source: str, **options):
        return self.request(
            "POST", "/v1/sim", {"source": source, **options}
        )

    def prove(self, source: str, **options):
        return self.request(
            "POST", "/v1/prove", {"source": source, **options}
        )

    def timing(self, source: str, **options):
        return self.request(
            "POST", "/v1/timing", {"source": source, **options}
        )

    def open_session(self, source: str, **options):
        return self.request(
            "POST", "/v1/session/open", {"source": source, **options}
        )

    def session(self, sid: str, verb: str = "", body: dict | None = None,
                method: str = "POST"):
        path = f"/v1/session/{sid}" + (f"/{verb}" if verb else "")
        return self.request(method, path, body if body is not None else {})

    def close_session(self, sid: str):
        return self.request("DELETE", f"/v1/session/{sid}")

    def stream_sim(self, source: str, **options):
        """Run ``/v1/sim/stream`` and yield each NDJSON line as a dict.
        Uses a dedicated connection (the stream closes it)."""
        conn = http.client.HTTPConnection(
            self.host, self.port, timeout=120.0
        )
        try:
            conn.request(
                "POST", "/v1/sim/stream",
                json.dumps({"source": source, **options}).encode("utf-8"),
                {"Content-Type": "application/json"},
            )
            response = conn.getresponse()
            if response.status != 200:
                yield json.loads(response.read() or b"{}")
                return
            # http.client undoes the chunking; read line-delimited JSON.
            buffer = b""
            while True:
                chunk = response.read(4096)
                if not chunk:
                    break
                buffer += chunk
                while b"\n" in buffer:
                    line, _, buffer = buffer.partition(b"\n")
                    if line.strip():
                        yield json.loads(line)
            if buffer.strip():
                yield json.loads(buffer)
        finally:
            conn.close()


class _DaemonThread:
    """A daemon running its own event loop in a background thread."""

    def __init__(self, **kwargs):
        self.daemon = ZeusDaemon(**kwargs)
        self._loop: asyncio.AbstractEventLoop | None = None
        self._started = threading.Event()
        self._stop: asyncio.Event | None = None
        self._thread = threading.Thread(
            target=self._run, name="zeusd", daemon=True
        )

    @property
    def port(self) -> int:
        return self.daemon.port

    def _run(self) -> None:
        asyncio.run(self._main())

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop = asyncio.Event()
        await self.daemon.start()
        self._started.set()
        try:
            await self._stop.wait()
        finally:
            await self.daemon.stop()

    def start(self) -> None:
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise RuntimeError("zeusd failed to start within 30s")

    def stop(self) -> None:
        if self._loop is not None and self._stop is not None:
            self._loop.call_soon_threadsafe(self._stop.set)
        self._thread.join(timeout=30)


@contextmanager
def serve_in_thread(**daemon_kwargs):
    """Boot a daemon on an ephemeral port in a background thread; yield
    it (``.daemon`` is the :class:`ZeusDaemon`, ``.port`` the bound
    port); always torn down on exit."""
    runner = _DaemonThread(port=0, **daemon_kwargs)
    runner.start()
    try:
        yield runner
    finally:
        runner.stop()
