"""``zeusc`` -- the Zeus command-line driver.

Subcommands:

* ``check FILE``     -- parse, elaborate and run all static checks;
* ``lint FILE``      -- the ``zeuslint`` pass framework: the driver-
  exclusivity prover plus the structural passes, with per-rule severity
  overrides (``-W``/``-E``/``--disable``) and text/json/sarif output;
* ``stats FILE``     -- netlist statistics after elaboration;
* ``sim FILE``       -- simulate N cycles with optional pokes, print
  the requested signals per cycle (or write a VCD); ``--flight N``
  records the last N cycles in the flight recorder and ``--trace-out``
  dumps the window as ``zeus.trace/1`` JSON;
* ``explain FILE``   -- causal "why" explanation: simulate with the
  flight recorder on and walk ``--net X --cycle C`` backward through
  the recorded firings to the minimal causal cone (text tree, DOT, or
  ``zeus.trace/1`` JSON);
* ``profile FILE``   -- compile-phase timings (lex/parse/elaborate/
  check) plus simulator activity: firing statistics, cycles/sec, and
  the top-N hottest nets and gates; ``--chrome FILE`` exports the run
  as Chrome trace-event JSON for Perfetto;
* ``layout FILE``    -- compute and print the floorplan;
* ``analyze FILE``   -- logic depth, critical path, fan-out statistics;
* ``timing FILE``    -- zeustime static timing analysis: configurable
  delay model (``--model unit|fanout``), min clock period, k-worst
  true critical paths with SAT false-path pruning and witness replay
  (text, ``zeus.timing/1`` JSON, or SARIF);
* ``prove FILE``     -- zeusprove bounded model checking with
  k-induction: multi-drive conflicts, OUT-pin definedness, and
  ``assert:<path>`` user properties, every refutation replayed through
  the simulator (text or ``zeus.proof/1`` JSON);
* ``equiv A B``      -- zeusprove sequential equivalence of two designs
  over matched interfaces (PROVED-EQUIVALENT / COUNTEREXAMPLE /
  UNKNOWN), optionally cross-checked by random co-simulation;
* ``dot FILE``       -- export the semantics graph as Graphviz DOT;
* ``emit-verilog FILE`` -- export the elaborated design as structural
  Verilog (gate primitives + ``zeus_dff`` register idiom) with a
  ``zeus.interchange/1`` manifest carrying the name maps;
* ``import-verilog FILE`` -- read a structural-Verilog netlist
  (including ISCAS85/89-style files) back into a Zeus semantics graph
  and report its shape;
* ``examples``       -- list the bundled paper programs (usable with
  ``--builtin NAME`` instead of FILE everywhere).

``check``, ``lint``, ``sim``, ``analyze``, ``timing``, ``profile``,
``prove`` and ``equiv`` accept ``--metrics FILE`` to dump a machine-readable
``zeus.metrics/1`` JSON report (compile-phase spans, design stats,
and -- where a simulation or proof ran -- the activity counters and
solver statistics).  See ``docs/INTERNALS.md``, "Observability".

Exit codes follow one contract everywhere: 0 clean, 1 warnings or
UNKNOWN verdicts under ``--werror`` or a ``timing --clock`` constraint
violated by a true path, 2 errors -- including parse and elaboration
failures (every subcommand) and refuted properties (``prove``/``equiv``
counterexamples).
"""

from __future__ import annotations

import argparse
import sys
import time

from . import Circuit, ZeusError, compile_text
from .core.simulator import ENGINES
from .core.trace import Trace
from .obs import metrics_report, write_metrics
from .obs import spans as _spans
from .stdlib import programs


def _load(args: argparse.Namespace) -> Circuit:
    if args.builtin:
        try:
            text = programs.ALL_PROGRAMS[args.builtin]
        except KeyError:
            raise SystemExit(
                f"unknown builtin {args.builtin!r}; run 'zeusc examples'"
            )
        name = args.builtin
    else:
        if not args.file:
            raise SystemExit("a FILE or --builtin NAME is required")
        with open(args.file, "r", encoding="utf-8") as f:
            text = f.read()
        name = args.file
    try:
        return compile_text(
            text, top=args.top, name=name, strict=not args.lenient
        )
    except ZeusError as exc:
        # Keep the failing source on the exception so --format json
        # error payloads can carry line/column positions.
        exc.source_text = text
        exc.source_name = name
        raise


def _report_error(args: argparse.Namespace, exc: ZeusError) -> int:
    """The exit-2 contract with a machine face: ``--format json``
    subcommands emit the ``zeus.error/1`` payload (the same renderer
    zeusd uses) on stdout/-o; everything else keeps the one-line
    stderr message."""
    import json

    from .lang import SourceText
    from .lang.errors import error_payload

    if getattr(args, "format", None) == "json":
        source = None
        if getattr(exc, "source_text", None) is not None:
            source = SourceText(exc.source_text, exc.source_name)
        text = json.dumps(
            error_payload(exc, source), indent=2, sort_keys=True
        ) + "\n"
        output = getattr(args, "output", None)
        if output:
            with open(output, "w", encoding="utf-8") as f:
                f.write(text)
            print(f"wrote {output}")
        else:
            print(text, end="")
    print(f"error: {exc}", file=sys.stderr)
    return 2


def _add_common(p: argparse.ArgumentParser) -> None:
    p.add_argument("file", nargs="?", help="Zeus source file")
    p.add_argument("--builtin", help="use a bundled paper program instead")
    p.add_argument("--top", help="top-level signal to instantiate")
    p.add_argument(
        "--lenient", action="store_true",
        help="collect check errors instead of failing on the first",
    )


def _add_metrics(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--metrics", metavar="FILE",
        help="write a zeus.metrics/1 JSON report to FILE",
    )


def _add_pokes(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--poke", action="append", default=[],
        metavar="SIG=VAL[@CYCLE]",
        help="drive SIG with VAL (int) from CYCLE on (default cycle 0)",
    )


def _add_engine(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--engine", choices=ENGINES, default="auto",
        help="simulation engine: levelized fast path, dataflow firing, "
             "or auto (levelized when the design can be scheduled)",
    )


def _add_flight(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--flight", type=int, default=None, metavar="N",
        help="record the last N cycles in the flight recorder",
    )
    p.add_argument(
        "--trace-out", metavar="FILE",
        help="write the recorded window as zeus.trace/1 JSON "
             "(implies --flight over the whole run)",
    )


def _add_formal(p: argparse.ArgumentParser) -> None:
    p.add_argument("--depth", type=int, default=8, metavar="K",
                   help="BMC unrolling bound in cycles (default 8)")
    p.add_argument("--budget", type=int, default=100_000, metavar="N",
                   help="solver node budget per SAT question (default 100000)")
    p.add_argument("--no-induction", action="store_true",
                   help="skip the k-induction attempt after a clean BMC")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="report format (default text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--werror", action="store_true",
                   help="exit 1 on UNKNOWN verdicts")


def _parse_pokes(specs: list[str]) -> list[tuple[int, str, int]]:
    pokes: list[tuple[int, str, int]] = []
    for spec in specs:
        sig, _, val = spec.partition("=")
        cycle = 0
        if "@" in val:
            val, _, cyc = val.partition("@")
            cycle = int(cyc)
        pokes.append((cycle, sig, int(val, 0)))
    return pokes


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="zeusc", description="Zeus HDL compiler/simulator (1983 reproduction)"
    )
    sub = parser.add_subparsers(dest="cmd", required=True)

    p = sub.add_parser("check", help="run all static checks")
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--werror", action="store_true",
                   help="exit 1 when there are warnings")

    p = sub.add_parser(
        "lint", help="static analysis: driver-exclusivity prover + passes"
    )
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format (default text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("-W", "--warn", action="append", default=[],
                   metavar="RULE[=SEV]",
                   help="set RULE's severity (default warning); SEV is "
                        "error|warning|note|off; RULE may be 'all'")
    p.add_argument("-E", "--error", action="append", default=[],
                   metavar="RULE", help="promote RULE to an error")
    p.add_argument("--disable", action="append", default=[],
                   metavar="RULE", help="turn RULE off")
    p.add_argument("--werror", action="store_true",
                   help="exit 1 when there are warnings")
    p.add_argument("--max-fanout", type=int, metavar="N",
                   help="fanout-limit threshold (default 64)")
    p.add_argument("--max-depth", type=int, metavar="N",
                   help="logic-depth-limit threshold (default 128)")
    p.add_argument("--prover-budget", type=int, metavar="N",
                   help="case-split node budget per driver pair")
    p.add_argument("--show-suppressed", action="store_true",
                   help="include suppressed findings in text output")
    p.add_argument("--list-rules", action="store_true",
                   help="list the registered lint rules and exit")

    p = sub.add_parser("stats", help="netlist statistics")
    _add_common(p)

    p = sub.add_parser("sim", help="simulate")
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--cycles", type=int, default=8)
    _add_pokes(p)
    p.add_argument(
        "--watch", action="append", default=[], metavar="SIG",
        help="signals to print per cycle (default: all ports)",
    )
    p.add_argument("--vcd", help="write a VCD file of the watched signals")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument(
        "--batch", metavar="FILE",
        help="batched bit-parallel sweep: JSON stimulus "
             '({"lanes": N, "pokes": {sig: value-or-per-lane-list}}), '
             "one lane per stimulus, all lanes in one run",
    )
    p.add_argument(
        "--lanes", type=int, default=None, metavar="N",
        help="lane count for --engine batched (default: from --batch, "
             "else 64)",
    )
    _add_engine(p)
    _add_flight(p)

    p = sub.add_parser(
        "explain",
        help="causal 'why' explanation of a net value at a cycle",
    )
    _add_common(p)
    p.add_argument("--net", required=True, metavar="SIG",
                   help="the signal to explain")
    p.add_argument("--cycle", type=int, required=True, metavar="C",
                   help="the cycle to explain it at")
    p.add_argument("--cycles", type=int, default=None,
                   help="cycles to simulate (default: CYCLE+1)")
    _add_pokes(p)
    p.add_argument("--seed", type=int, default=0)
    _add_engine(p)
    p.add_argument("--flight", type=int, default=None, metavar="N",
                   help="flight-recorder capacity in cycles "
                        "(default: the whole run)")
    p.add_argument("--max-nodes", type=int, default=500, metavar="N",
                   help="causal-cone walk budget (default 500)")
    p.add_argument("--format", choices=("text", "dot", "json"),
                   default="text",
                   help="text tree, Graphviz DOT, or zeus.trace/1 JSON")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the explanation to FILE instead of stdout")

    p = sub.add_parser(
        "profile",
        help="compile-phase timings and simulation activity profile",
    )
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--cycles", type=int, default=64,
                   help="cycles to simulate (default 64)")
    _add_pokes(p)
    p.add_argument("--top-n", type=int, default=10, metavar="N",
                   help="hottest nets/gates to list (default 10)")
    p.add_argument("--seed", type=int, default=0)
    _add_engine(p)
    p.add_argument("--chrome", metavar="FILE",
                   help="write the run as Chrome trace-event JSON "
                        "(load in Perfetto / chrome://tracing)")

    p = sub.add_parser("layout", help="compute the floorplan")
    _add_common(p)
    p.add_argument("--svg", help="write the floorplan as SVG")

    p = sub.add_parser("analyze", help="netlist analysis report")
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--cone", metavar="SIG",
                   help="print the cone of influence of a signal")

    p = sub.add_parser(
        "timing",
        help="zeustime: static timing analysis with SAT false-path "
             "pruning",
    )
    _add_common(p)
    _add_metrics(p)
    p.add_argument("--model", default="unit",
                   choices=("unit", "fanout"),
                   help="delay model: unit (historical logic levels, "
                        "default) or fanout (per-opcode gate delays + "
                        "wire-load estimates)")
    p.add_argument("--paths", type=int, default=4, metavar="K",
                   help="true critical paths to report (default 4)")
    p.add_argument("--clock", type=float, default=None, metavar="T",
                   help="clock-period constraint; exit 1 when a true "
                        "path exceeds it")
    p.add_argument("--format", choices=("text", "json", "sarif"),
                   default="text", help="report format (default text)")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")
    p.add_argument("--no-sat", action="store_true",
                   help="skip SAT false-path pruning (every path "
                        "reports 'assumed')")
    p.add_argument("--budget", type=int, default=20_000, metavar="N",
                   help="solver node budget per path (default 20000)")
    p.add_argument("--max-sat", type=int, default=200, metavar="N",
                   help="SAT classifications per run (default 200)")

    p = sub.add_parser(
        "prove",
        help="zeusprove: bounded model checking with k-induction",
    )
    _add_common(p)
    _add_metrics(p)
    _add_formal(p)
    p.add_argument(
        "--prop", action="append", default=[], metavar="PROP",
        help="property to check: no-conflict, out-defined:<pin>, or "
             "assert:<path>; repeatable (default: no-conflict plus "
             "out-defined for every OUT pin)",
    )

    p = sub.add_parser(
        "equiv",
        help="zeusprove: sequential equivalence of two designs",
    )
    p.add_argument("file", nargs="?", help="first Zeus source file")
    p.add_argument("file2", nargs="?", help="second Zeus source file")
    p.add_argument("--builtin", help="bundled program for the first design")
    p.add_argument("--builtin2", help="bundled program for the second design")
    p.add_argument("--top", help="top-level signal of the first design")
    p.add_argument("--top2", help="top-level signal of the second design")
    p.add_argument("--lenient", action="store_true",
                   help="collect check errors instead of failing on the first")
    _add_metrics(p)
    _add_formal(p)
    p.add_argument(
        "--sample", type=int, metavar="N",
        help="also cross-check with N random co-simulation vectors",
    )
    p.add_argument("--seed", type=int, default=0,
                   help="seed for --sample vector generation (default 0)")

    p = sub.add_parser("dot", help="export the semantics graph as DOT")
    _add_common(p)
    p.add_argument("-o", "--output", help="output file (default: stdout)")
    p.add_argument("--no-synthetic", action="store_true",
                   help="hide elaborator-synthesized helper nets")

    p = sub.add_parser(
        "emit-verilog",
        help="export the design as structural Verilog + "
             "zeus.interchange/1 manifest",
    )
    _add_common(p)
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the Verilog to FILE instead of stdout")
    p.add_argument("--manifest", metavar="FILE",
                   help="write the zeus.interchange/1 manifest JSON to FILE")
    p.add_argument("--module", metavar="NAME",
                   help="emitted module name (default: <design>_mod)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text prints the Verilog; json prints one object "
                        "with both the Verilog and the manifest")

    p = sub.add_parser(
        "import-verilog",
        help="read a structural-Verilog netlist into a Zeus "
             "semantics graph",
    )
    p.add_argument("file", help="Verilog source file")
    p.add_argument("--top", metavar="MODULE",
                   help="top module (default: the uninstantiated one)")
    p.add_argument("--format", choices=("text", "json"), default="text",
                   help="text prints a shape summary; json prints the "
                        "identity zeus.interchange/1 manifest")
    p.add_argument("-o", "--output", metavar="FILE",
                   help="write the report to FILE instead of stdout")

    p = sub.add_parser(
        "serve",
        help="zeusd: serve compile/lint/sim/prove/timing over HTTP "
             "(content-hash compile cache, process-pool SAT shards, "
             "lane-multiplexed sim sessions)",
    )
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8471)
    p.add_argument("--workers", type=int, default=None, metavar="N",
                   help="process-pool shards (default: one per CPU)")
    p.add_argument("--lanes", type=int, default=16, metavar="L",
                   help="sim-session lanes per design (default 16)")
    p.add_argument("--cache-size", type=int, default=128, metavar="N",
                   help="compile-cache capacity (default 128)")
    p.add_argument("--max-queue", type=int, default=None, metavar="N",
                   help="pool backlog before 503 shedding "
                        "(default 2x workers)")
    p.add_argument("--timeout", type=float, default=60.0, metavar="S",
                   help="per-request pool deadline (default 60s)")

    sub.add_parser("examples", help="list bundled paper programs")

    args = parser.parse_args(argv)

    if args.cmd == "serve":
        from .service.server import main as serve_main

        serve_argv = [
            "--host", args.host, "--port", str(args.port),
            "--lanes", str(args.lanes),
            "--cache-size", str(args.cache_size),
            "--timeout", str(args.timeout),
        ]
        if args.workers is not None:
            serve_argv += ["--workers", str(args.workers)]
        if args.max_queue is not None:
            serve_argv += ["--max-queue", str(args.max_queue)]
        return serve_main(serve_argv)

    if args.cmd == "examples":
        for name in sorted(programs.ALL_PROGRAMS):
            print(name)
        return 0

    if args.cmd == "lint" and args.list_rules:
        from .lint import RULES

        for rule in sorted(RULES.values(), key=lambda r: r.code):
            line = (f"{rule.code}  {rule.name:<20} "
                    f"{rule.default_severity.name.lower():<8} {rule.summary}")
            if rule.paper:
                line += f" [paper {rule.paper}]"
            print(line)
        return 0

    # Capture this invocation's compile-phase spans on a private
    # registry (the process-wide REGISTRY is left untouched, so library
    # embedders running zeusc in-process do not race it).
    registry = _spans.SpanRegistry()
    with _spans.use_registry(registry):
        return _dispatch(args, registry)


def _dispatch(args: argparse.Namespace, registry) -> int:
    if args.cmd == "equiv":
        return _equiv(args, registry)
    if args.cmd == "import-verilog":
        return _import_verilog(args)

    try:
        circuit = _load(args)
    except ZeusError as exc:
        # Every subcommand follows the exit-code contract: a design that
        # fails to parse/elaborate/check is an error, never a traceback
        # (and never a silent 1 that looks like mere warnings).
        return _report_error(args, exc)

    if args.cmd == "check":
        for diag in circuit.diagnostics.diagnostics:
            print(diag.render(circuit.design.source))
        errors = len(circuit.diagnostics.errors)
        warnings = len(circuit.diagnostics.warnings)
        print(f"{circuit.name}: {errors} error(s), {warnings} warning(s)")
        if args.metrics:
            write_metrics(args.metrics, metrics_report(circuit, registry=registry))
            print(f"wrote {args.metrics}")
        if errors:
            return 2
        if args.werror and warnings:
            return 1
        return 0

    if args.cmd == "lint":
        return _lint(args, circuit, registry)

    if args.cmd == "stats":
        print(circuit.netlist.describe())
        for port in circuit.netlist.ports:
            print(f"  {port.mode:>5} {port.name} [{len(port.nets)} bits]")
        return 0

    if args.cmd == "layout":
        plan = circuit.layout()
        print(f"{circuit.name}: {plan.width} x {plan.height} "
              f"(area {plan.area}, {plan.leaf_count()} cells)")
        print(plan.render_text())
        if args.svg:
            with open(args.svg, "w", encoding="utf-8") as f:
                f.write(plan.render_svg())
            print(f"wrote {args.svg}")
        return 0

    if args.cmd == "analyze":
        from .analysis import cone_of_influence, critical_path, summary

        info = summary(circuit.netlist)
        for key, value in info.items():
            print(f"{key:>16}: {value}")
        path = critical_path(circuit.netlist)
        named = [p for p in path if not p.split(".")[-1].startswith("$")]
        print(f"{'critical path':>16}: " + " -> ".join(named))
        if args.cone:
            nets = circuit.netlist.signals.get(args.cone)
            if nets is None:
                nets = circuit.netlist.signals.get(f"{circuit.name}.{args.cone}")
            if not nets:
                print(f"error: unknown signal {args.cone!r}", file=sys.stderr)
                return 1
            cone = sorted(cone_of_influence(circuit.netlist, nets[0]))
            named = [c for c in cone if not c.split(".")[-1].startswith("$")]
            print(f"{'cone of ' + args.cone:>16}: {', '.join(named)}")
        if args.metrics:
            write_metrics(args.metrics, metrics_report(circuit, registry=registry))
            print(f"wrote {args.metrics}")
        return 0

    if args.cmd == "dot":
        from .analysis import to_dot

        text = to_dot(circuit.netlist, include_synthetic=not args.no_synthetic)
        if args.output:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(text)
            print(f"wrote {args.output}")
        else:
            print(text, end="")
        return 0

    if args.cmd == "emit-verilog":
        return _emit_verilog(args, circuit)

    if args.cmd == "timing":
        return _timing(args, circuit, registry)

    if args.cmd == "prove":
        return _prove(args, circuit, registry)

    if args.cmd == "profile":
        return _guard_runtime(lambda: _profile(args, circuit, registry))

    if args.cmd == "explain":
        return _guard_runtime(lambda: _explain(args, circuit, registry))

    return _guard_runtime(lambda: _sim(args, circuit, registry))


def _guard_runtime(thunk) -> int:
    """Run a simulating subcommand body under the exit-code contract: a
    runtime failure (strict-mode violation, unknown poke/watch signal)
    is an error -- report it, exit 2, never a traceback."""
    try:
        return thunk()
    except ZeusError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except ValueError as exc:
        # Bad stimulus shapes (lane-count mismatches, over-wide poke
        # values) surface as ValueError from the simulator layer.
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except KeyError as exc:
        # The simulator raises KeyError with a full message for unknown
        # poke/peek/watch paths; bare keys get a generic wrapper.
        what = exc.args[0] if exc.args else exc
        if not (isinstance(what, str) and " " in what):
            what = f"unknown signal {what!r}"
        print(f"error: {what}", file=sys.stderr)
        return 2


_LANE_GLYPHS = {"0": "0", "1": "1", "UNDEF": "X", "NOINFL": "Z"}


def _lane_cell(bits) -> str:
    """Render one lane's value: an int when fully defined, else a
    MSB-first glyph string (X = UNDEF, Z = NOINFL)."""
    from .core.values import num_of

    value = num_of(bits)
    if value is not None:
        return str(value)
    return "".join(_LANE_GLYPHS[str(b)] for b in reversed(bits))


def _sim_batched(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc sim --batch`` body: one bit-parallel run, one final
    per-lane table of the watched signals."""
    from .core.batched import BatchStimulus

    stim = BatchStimulus.from_json(args.batch) if args.batch else None
    if args.lanes is not None:
        lanes = args.lanes
    elif stim is not None:
        lanes = stim.lanes
    else:
        lanes = 64
    if stim is not None and stim.lanes != lanes:
        print(
            f"error: --lanes {lanes} conflicts with --batch lane count "
            f"{stim.lanes}",
            file=sys.stderr,
        )
        return 2
    engine = "codegen" if args.engine == "codegen" else "batched"
    sim = circuit.simulator(
        seed=args.seed, strict=not args.lenient, metrics=bool(args.metrics),
        engine=engine, lanes=lanes, flight=_flight_capacity(args),
    )
    if stim is not None:
        stim.apply(sim)
    pokes = _parse_pokes(args.poke)
    watch = args.watch or [p.name for p in circuit.netlist.ports]
    t0 = time.perf_counter()
    for t in range(args.cycles):
        for cycle, sig, val in pokes:
            if cycle == t:
                sim.poke(sig, val)
        sim.step()
    elapsed = time.perf_counter() - t0
    mode = "bit-parallel" if sim._batched_fast else "per-lane fallback"
    if sim.codegen_backend is not None:
        mode += f", {sim.codegen_backend} planes"
    print(f"{sim.engine} run: {lanes} lanes x {args.cycles} cycles ({mode})")
    if sim.engine_reason:
        print(f"  ({sim.engine_reason})")
    columns = [(name, sim.peek_lanes(name)) for name in watch]
    cells = [
        [_lane_cell(per_lane[k]) for name, per_lane in columns]
        for k in range(lanes)
    ]
    headers = ["lane"] + [name for name, _ in columns]
    widths = [
        max(len(headers[c]), *(len(row[c - 1]) if c else len(str(k))
                               for k, row in enumerate(cells)))
        for c in range(len(headers))
    ]
    print("  ".join(h.rjust(w) for h, w in zip(headers, widths)))
    for k, row in enumerate(cells):
        print("  ".join(
            v.rjust(w) for v, w in zip([str(k)] + row, widths)
        ))
    if sim.violations:
        print(f"{len(sim.violations)} runtime violation(s):")
        for v in sim.violations:
            print(f"  {v}")
    _write_trace_out(args, circuit, sim)
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, sim, registry, elapsed=elapsed),
        )
        print(f"wrote {args.metrics}")
    return 0


def _flight_capacity(args: argparse.Namespace) -> int | None:
    """The flight-recorder capacity for a ``sim`` run: ``--flight N``,
    or the whole run when ``--trace-out`` is given without it."""
    if args.flight is not None:
        return args.flight
    if args.trace_out:
        return max(args.cycles, 1)
    return None


def _write_trace_out(args: argparse.Namespace, circuit: Circuit, sim) -> None:
    if not args.trace_out:
        return
    from .obs import trace_report, write_trace

    write_trace(args.trace_out, trace_report(circuit, sim))
    print(f"wrote {args.trace_out}")


def _sim(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc sim`` body: run the cycles, print the trace."""
    if args.batch or args.lanes is not None or args.engine in (
        "batched", "codegen"
    ):
        return _sim_batched(args, circuit, registry)
    sim = circuit.simulator(
        seed=args.seed, strict=not args.lenient, metrics=bool(args.metrics),
        engine=args.engine, flight=_flight_capacity(args),
    )
    pokes = _parse_pokes(args.poke)
    watch = args.watch or [p.name for p in circuit.netlist.ports]
    trace = Trace(watch)
    sim.attach_trace(trace)
    t0 = time.perf_counter()
    for t in range(args.cycles):
        for cycle, sig, val in pokes:
            if cycle == t:
                sim.poke(sig, val)
        sim.step()
    elapsed = time.perf_counter() - t0
    print(trace.render_ascii())
    if sim.violations:
        print(f"{len(sim.violations)} runtime violation(s):")
        for v in sim.violations:
            print(f"  {v}")
    if args.vcd:
        trace.write_vcd(args.vcd, circuit.name)
        print(f"wrote {args.vcd}")
    _write_trace_out(args, circuit, sim)
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, sim, registry, elapsed=elapsed),
        )
        print(f"wrote {args.metrics}")
    return 0


def _write_or_print(text: str, output: str | None) -> None:
    if output:
        with open(output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {output}")
    else:
        print(text, end="")


def _emit_verilog(args: argparse.Namespace, circuit: Circuit) -> int:
    """The ``zeusc emit-verilog`` body: walk the elaborated netlist,
    write structural Verilog and the zeus.interchange/1 manifest.  An
    unencodable design shape (see :mod:`repro.interchange.emit`) is an
    error under the exit contract (2)."""
    import json

    from .interchange import emit_verilog

    try:
        text, manifest = emit_verilog(
            circuit.design, module_name=args.module)
    except ZeusError as exc:
        if circuit.design.source is not None:
            exc.source_text = circuit.design.source.text
            exc.source_name = circuit.design.source.name
        return _report_error(args, exc)
    if args.format == "json":
        _write_or_print(
            json.dumps({"verilog": text, "manifest": manifest},
                       indent=2, sort_keys=True) + "\n",
            args.output,
        )
    else:
        _write_or_print(text, args.output)
    if args.manifest:
        with open(args.manifest, "w", encoding="utf-8") as f:
            json.dump(manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.manifest}")
    return 0


def _import_verilog(args: argparse.Namespace) -> int:
    """The ``zeusc import-verilog`` body: parse the structural subset,
    rebuild the semantics graph, report its shape.  Unsupported
    constructs, dangling instance ports and duplicate modules exit 2
    with a ``zeus.error/1`` payload (``--format json``) naming the
    source line."""
    import json

    from .interchange import import_manifest, read_verilog

    with open(args.file, "r", encoding="utf-8") as f:
        text = f.read()
    try:
        design = read_verilog(text, name=args.file, top=args.top)
    except ZeusError as exc:
        exc.source_text = text
        exc.source_name = args.file
        return _report_error(args, exc)
    if args.format == "json":
        _write_or_print(
            json.dumps(import_manifest(design), indent=2, sort_keys=True)
            + "\n",
            args.output,
        )
        return 0
    stats = design.netlist.stats()
    info = design.interchange
    lines = [
        f"{design.name}: imported from {args.file}",
        f"  modules   : {', '.join(info['modules'])} "
        f"(top {info['top']}, {info['flattened_instances']} "
        f"flattened instance(s))",
        f"  intrinsics: {', '.join(info['intrinsics']) or '-'}",
        f"  netlist   : {stats['nets']} nets, {stats['gates']} gates, "
        f"{stats['connections']} connections, "
        f"{stats['registers']} registers",
    ]
    for port in design.netlist.ports:
        lines.append(f"  {port.mode:>5} {port.name} [{len(port.nets)} bits]")
    _write_or_print("\n".join(lines) + "\n", args.output)
    return 0


def _lint(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc lint`` body: build the config from the CLI flags, run
    every enabled pass, render, honor the exit-code contract."""
    from .lint import LintConfig, run_lint

    config = LintConfig(werror=args.werror)
    if args.max_fanout is not None:
        config.max_fanout = args.max_fanout
    if args.max_depth is not None:
        config.max_depth = args.max_depth
    if args.prover_budget is not None:
        config.prover_budget = args.prover_budget
    try:
        for spec in args.warn:
            rule, _, sev = spec.partition("=")
            config.set_severity(rule.strip(), (sev or "warning").strip())
        for rule in args.error:
            config.set_severity(rule.strip(), "error")
        for rule in args.disable:
            config.set_severity(rule.strip(), "off")
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    report = run_lint(circuit, config)
    if args.format == "json":
        text = report.render_json()
    elif args.format == "sarif":
        text = report.render_sarif()
    else:
        text = report.render_text(show_suppressed=args.show_suppressed) + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, registry=registry, lint=report),
        )
        print(f"wrote {args.metrics}")
    return report.exit_code()


def _explain(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc explain`` body: simulate with the flight recorder on,
    then walk the causal cone of ``--net`` at ``--cycle``.

    The run is always lenient (strict mode would abort at the very
    conflict being diagnosed); an unknown net or a cycle outside the
    recorded window is an error under the exit-code contract (2)."""
    import json

    from .obs import causal, export

    cycles = args.cycles if args.cycles is not None else args.cycle + 1
    if cycles < 1:
        print(f"error: --cycle {args.cycle} is before the first cycle (0)",
              file=sys.stderr)
        return 2
    capacity = args.flight if args.flight is not None else cycles
    sim = circuit.simulator(
        seed=args.seed, strict=False, engine=args.engine, flight=capacity,
    )
    pokes = _parse_pokes(args.poke)
    for t in range(cycles):
        for cycle, sig, val in pokes:
            if cycle == t:
                sim.poke(sig, val)
        sim.step()
    explanation = causal.explain(
        sim, args.net, args.cycle, max_nodes=args.max_nodes
    )
    if args.format == "dot":
        text = explanation.render_dot() + "\n"
    elif args.format == "json":
        report = export.trace_report(circuit, sim, explanation=explanation)
        export.validate_trace_report(report)
        text = json.dumps(report, indent=2, sort_keys=True) + "\n"
    else:
        text = explanation.render_text() + "\n"
    if args.output:
        with open(args.output, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _profile(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc profile`` body: phase timings, activity statistics,
    hottest nets/gates, optional JSON export."""
    sim = circuit.simulator(
        seed=args.seed, strict=not args.lenient, metrics=True,
        engine=args.engine,
    )
    pokes = _parse_pokes(args.poke)
    t0 = time.perf_counter()
    for t in range(args.cycles):
        for cycle, sig, val in pokes:
            if cycle == t:
                sim.poke(sig, val)
        sim.step()
    elapsed = time.perf_counter() - t0

    stats = circuit.netlist.stats()
    print(f"== {circuit.name}: {stats['nets']} nets, {stats['gates']} gates, "
          f"{stats['registers']} registers ==")
    engine_line = sim.engine
    if sim.engine_reason:
        engine_line += f" ({sim.engine_reason})"
    print(f"simulation engine : {engine_line}")
    print("\ncompile phases:")
    print(registry.render())
    print("\nsimulation activity:")
    print(sim.metrics.render(top=args.top_n))
    rate = args.cycles / elapsed if elapsed > 0 else float("inf")
    print(f"\nwall clock        : {elapsed * 1e3:.2f} ms "
          f"for {args.cycles} cycles ({rate:,.0f} cycles/sec)")
    if args.chrome:
        from .obs import chrome_trace, write_chrome_trace

        write_chrome_trace(
            args.chrome, chrome_trace(registry, sim, elapsed=elapsed)
        )
        print(f"wrote {args.chrome}")
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, sim, registry,
                           elapsed=elapsed, top=args.top_n),
        )
        print(f"wrote {args.metrics}")
    return 0


def _timing(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc timing`` body: run the STA, render, honor the
    exit-code contract (1 on a violated --clock constraint)."""
    from .timing import analyze_timing, write_timing_report

    report = analyze_timing(
        circuit, model=args.model, clock=args.clock, k=args.paths,
        sat=not args.no_sat, budget=args.budget, max_sat=args.max_sat)
    if args.format == "json":
        text = report.render_json()
    elif args.format == "sarif":
        text = report.render_sarif()
    else:
        text = report.render_text() + "\n"
    if args.output:
        if args.format == "json":
            write_timing_report(args.output, report)
        else:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, registry=registry, timing=report),
        )
        print(f"wrote {args.metrics}")
    return report.exit_code()


def _emit_formal(args: argparse.Namespace, report, circuit,
                 registry) -> int:
    """Render/write a zeus.proof/1 report and apply the exit contract."""
    from .formal import write_proof_report

    if args.format == "json":
        text = report.render_json()
    else:
        text = report.render_text() + "\n"
    if args.output:
        if args.format == "json":
            write_proof_report(args.output, report)
        else:
            with open(args.output, "w", encoding="utf-8") as f:
                f.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    if args.metrics:
        write_metrics(
            args.metrics,
            metrics_report(circuit, registry=registry, formal=report),
        )
        print(f"wrote {args.metrics}")
    return report.exit_code(werror=args.werror)


def _prove(args: argparse.Namespace, circuit: Circuit, registry) -> int:
    """The ``zeusc prove`` body: BMC + k-induction over the properties."""
    from .formal import FormalConfig, prove

    config = FormalConfig(depth=args.depth, budget=args.budget,
                          induction=not args.no_induction)
    try:
        report = prove(circuit, args.prop or None, config)
    except ValueError as exc:  # bad --prop spec
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return _emit_formal(args, report, circuit, registry)


def _equiv(args: argparse.Namespace, registry) -> int:
    """The ``zeusc equiv`` body: load both designs, run the miter, and
    optionally cross-check with random co-simulation."""
    from .formal import FormalConfig, check_equivalence

    try:
        a = _load(args)
        b = _load(argparse.Namespace(
            builtin=args.builtin2, file=args.file2, top=args.top2,
            lenient=args.lenient))
    except ZeusError as exc:
        return _report_error(args, exc)
    config = FormalConfig(depth=args.depth, budget=args.budget,
                          induction=not args.no_induction)
    try:
        report = check_equivalence(a, b, config)
    except ValueError as exc:  # mismatched interfaces
        print(f"error: {exc}", file=sys.stderr)
        return 2
    code = _emit_formal(args, report, a, registry)
    if args.sample:
        from .analysis import random_equivalent

        sampled = random_equivalent(a, b, trials=args.sample,
                                    seed=args.seed)
        verdict = "agree" if sampled.equivalent else "MISMATCH"
        print(f"co-simulation: {sampled.vectors_checked} random "
              f"vector(s) (seed {sampled.seed}): {verdict}")
        if not sampled.equivalent:
            for m in sampled.mismatches[:4]:
                print(f"  {m}")
            code = max(code, 2)
    return code


if __name__ == "__main__":
    raise SystemExit(main())
