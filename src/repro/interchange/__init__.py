"""Structural-Verilog interchange for Zeus designs.

The emitter (:func:`emit_verilog`) walks an elaborated netlist and
produces a self-contained structural Verilog file plus a versioned
``zeus.interchange/1`` manifest; the reader (:func:`read_verilog`)
parses the same subset -- including classic ISCAS85/89-style netlists
-- back into a semantics graph that simulates on every Zeus engine.
``analysis/roundtrip.py`` co-simulates both directions differentially;
``zeusc emit-verilog`` / ``zeusc import-verilog`` expose them on the
command line.
"""

from .emit import ZEUS_DFF_MODULE, ZEUS_RANDOM_MODULE, emit_verilog
from .iscas import C17_VERILOG, c17_oracle, generate as generate_iscas
from .manifest import SCHEMA, name_map, reverse_name_map, validate_manifest
from .names import NameMangler, VERILOG_KEYWORDS, is_verilog_identifier, mangle_base
from .reader import import_manifest, read_verilog
from .vparse import parse_verilog

__all__ = [
    "C17_VERILOG",
    "NameMangler",
    "SCHEMA",
    "VERILOG_KEYWORDS",
    "ZEUS_DFF_MODULE",
    "ZEUS_RANDOM_MODULE",
    "c17_oracle",
    "emit_verilog",
    "generate_iscas",
    "import_manifest",
    "is_verilog_identifier",
    "mangle_base",
    "name_map",
    "parse_verilog",
    "read_verilog",
    "reverse_name_map",
    "validate_manifest",
]
