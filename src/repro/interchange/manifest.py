"""The versioned ``zeus.interchange/1`` manifest.

Every Verilog emit produces one manifest next to the ``.v`` text.  It
is the machine-readable contract of the translation:

* ``nets`` -- the complete display-name -> Verilog-identifier map (the
  "escape map"): every alias class of the source design, with its
  value kind (``boolean`` or ``multiplex``), so observations
  (peeks, violations) can be translated in either direction;
* ``ports`` -- per top-level port: mode and the ordered Verilog bit
  names (index 0 is the low-order bit, matching ``PortInfo.nets``);
* ``extra_inputs`` / ``synthetic_clock`` -- inputs that exist outside
  the declared ports (the CLK/RSET specials; a clock port synthesized
  because the design has registers but never names CLK);
* ``regs`` -- register key (as ``Simulator.registers()`` reports it)
  -> ``zeus_dff`` instance name;
* ``unsupported`` -- the unsupported-construct report (empty when the
  whole design was encoded);
* ``caveats`` -- fixed documented divergences from event-driven
  Verilog simulation semantics.

The CI smoke job and the round-trip harness both validate manifests
with :func:`validate_manifest` before trusting them.
"""

from __future__ import annotations

SCHEMA = "zeus.interchange/1"

_REQUIRED = (
    "schema", "design", "module", "ports", "extra_inputs",
    "synthetic_clock", "nets", "regs", "stats", "unsupported", "caveats",
)

_MODES = ("IN", "OUT", "INOUT")
_KINDS = ("boolean", "multiplex")


def validate_manifest(m: dict) -> None:
    """Raise ``ValueError`` unless *m* is a well-formed
    ``zeus.interchange/1`` manifest."""
    if not isinstance(m, dict):
        raise ValueError(f"manifest must be a dict, got {type(m).__name__}")
    if m.get("schema") != SCHEMA:
        raise ValueError(f"manifest schema is {m.get('schema')!r}, "
                         f"expected {SCHEMA!r}")
    missing = [k for k in _REQUIRED if k not in m]
    if missing:
        raise ValueError(f"manifest is missing keys: {missing}")
    names = set()
    for disp, entry in m["nets"].items():
        if entry.get("kind") not in _KINDS:
            raise ValueError(
                f"net {disp!r} has bad kind {entry.get('kind')!r}")
        vname = entry.get("verilog")
        if not isinstance(vname, str) or not vname:
            raise ValueError(f"net {disp!r} has no verilog name")
        if vname in names:
            raise ValueError(
                f"name mangling is not injective: {vname!r} appears twice")
        names.add(vname)
    for p in m["ports"]:
        if p.get("mode") not in _MODES:
            raise ValueError(f"port {p.get('name')!r} has bad mode "
                             f"{p.get('mode')!r}")
        if not isinstance(p.get("bits"), list) or not p["bits"]:
            raise ValueError(f"port {p.get('name')!r} has no bits")
        for bit in p["bits"]:
            if bit not in names:
                raise ValueError(
                    f"port {p['name']!r} bit {bit!r} is not a mapped net")
    for key, inst in m["regs"].items():
        if not isinstance(inst, str) or not inst:
            raise ValueError(f"register {key!r} has no instance name")
    if not isinstance(m["unsupported"], list):
        raise ValueError("unsupported must be a list")


def name_map(m: dict) -> dict[str, str]:
    """Zeus display name -> Verilog identifier."""
    return {disp: entry["verilog"] for disp, entry in m["nets"].items()}


def reverse_name_map(m: dict) -> dict[str, str]:
    """Verilog identifier -> Zeus display name (injectivity makes this
    well defined; :func:`validate_manifest` checks it)."""
    return {entry["verilog"]: disp for disp, entry in m["nets"].items()}
