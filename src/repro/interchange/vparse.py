"""Parser for the structural-Verilog interchange subset.

The subset is what gate-level netlists -- including the ISCAS85/89
benchmark translations and everything :mod:`repro.interchange.emit`
produces -- are written in:

* ``module NAME (ports); ... endmodule`` (non-ANSI or ANSI headers);
* ``input`` / ``output`` / ``inout`` declarations (scalar only);
* ``wire`` / ``tri`` net declarations (scalar only);
* ``assign NAME = NAME | 1'b{0|1|x|z};`` (simple aliases/constants);
* gate primitives ``and or nand nor xor xnor not buf bufif0 bufif1``,
  with or without instance names, literals allowed as inputs;
* module instances, positional or named (``.pin(net)``), including the
  ``zeus_dff`` / ``zeus_random`` / ``dff`` intrinsics whose *bodies*
  are skipped (they may contain behavioural code).

Anything else -- ``always``/``initial`` blocks, vector ranges,
parameters, delays, expressions -- raises :class:`InterchangeError`
with a span into the source, so ``zeusc import-verilog --format json``
reports the offending line under the standard ``zeus.error/1`` payload.
"""

from __future__ import annotations

import re
from dataclasses import dataclass, field

from ..core.values import Logic
from ..lang.errors import InterchangeError
from ..lang.source import SourceText, Span

#: Module names whose definitions are intrinsic: their bodies are
#: skipped and their instances mapped straight onto semantics-graph
#: nodes by the reader.
INTRINSIC_MODULES = ("zeus_dff", "zeus_random", "dff")

#: Gate primitives of the subset.
PRIMITIVES = (
    "and", "or", "nand", "nor", "xor", "xnor", "not", "buf",
    "bufif0", "bufif1",
)

#: Verilog keywords that unambiguously signal a construct outside the
#: structural subset.
_UNSUPPORTED_ITEMS = frozenset("""
always initial reg integer real realtime time event parameter
localparam defparam specify function task generate genvar case casex
casez if for while repeat forever fork primitive table supply0 supply1
trireg tri0 tri1 wand wor triand trior pullup pulldown nmos pmos cmos
rnmos rpmos rcmos tran tranif0 tranif1 rtran rtranif0 rtranif1 notif0
notif1 force release deassign wait disable attribute signed scalared
vectored
""".split())

_DIRECTIONS = ("input", "output", "inout")
_NET_TYPES = ("wire", "tri")

_LIT_VALUES = {
    "0": Logic.ZERO,
    "1": Logic.ONE,
    "x": Logic.UNDEF,
    "z": Logic.NOINFL,
}


# -- tokens ---------------------------------------------------------------


@dataclass(frozen=True)
class Token:
    kind: str  # "id", "lit", "num", "punct", "eof"
    value: object
    span: Span


_TOKEN_RE = re.compile(
    r"""
      (?P<ws>\s+)
    | (?P<lcom>//[^\n]*)
    | (?P<bcom>/\*.*?\*/)
    | (?P<attr>\(\*.*?\*\))
    | (?P<escid>\\[^\s]+)
    | (?P<sized>\d+\s*'\s*[sS]?[bBoOdDhH][0-9a-fA-FxXzZ_?]+)
    | (?P<id>[A-Za-z_$][A-Za-z0-9_$]*)
    | (?P<num>\d+)
    | (?P<punct>[(),;.=\[\]\#@{}*/+\-?:<>!&|^~%])
    """,
    re.VERBOSE | re.DOTALL,
)

_SIZED_RE = re.compile(r"(\d+)\s*'\s*([sS]?)([bBoOdDhH])([0-9a-fA-FxXzZ_?]+)")


def tokenize(source: SourceText) -> list[Token]:
    text = source.text
    tokens: list[Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise InterchangeError(
                f"unexpected character {text[pos]!r}",
                Span(pos, pos + 1),
            )
        span = Span(m.start(), m.end())
        if m.lastgroup in ("ws", "lcom", "bcom", "attr"):
            pass
        elif m.lastgroup == "escid":
            tokens.append(Token("id", m.group()[1:], span))
        elif m.lastgroup == "id":
            tokens.append(Token("id", m.group(), span))
        elif m.lastgroup == "sized":
            tokens.append(Token("lit", _parse_sized(m.group(), span), span))
        elif m.lastgroup == "num":
            tokens.append(Token("num", m.group(), span))
        else:
            tokens.append(Token("punct", m.group(), span))
        pos = m.end()
    tokens.append(Token("eof", None, Span(len(text), len(text))))
    return tokens


def _parse_sized(text: str, span: Span) -> Logic:
    m = _SIZED_RE.match(text)
    width, _, base, digits = m.groups()
    digits = digits.replace("_", "")
    if width != "1" or base.lower() != "b" or len(digits) != 1 \
            or digits.lower() not in _LIT_VALUES:
        raise InterchangeError(
            f"unsupported literal {text!r} (only 1-bit binary "
            "1'b0/1'b1/1'bx/1'bz literals are supported)",
            span,
        )
    return _LIT_VALUES[digits.lower()]


# -- AST ------------------------------------------------------------------


@dataclass(frozen=True)
class Term:
    """One instance-port / assign operand: a net name, a literal, or an
    explicitly unconnected ``.pin()``."""

    kind: str  # "id", "lit", "empty"
    value: object
    span: Span


@dataclass
class VDecl:
    kind: str  # input/output/inout/wire/tri
    names: list[tuple[str, Span]]
    span: Span


@dataclass
class VAssign:
    dst: str
    dst_span: Span
    rhs: Term
    span: Span


@dataclass
class VInstance:
    mtype: str
    name: str | None
    positional: list[Term] | None
    named: list[tuple[str, Term, Span]] | None
    span: Span


@dataclass
class VModule:
    name: str
    header_ports: list[str]
    decls: list[VDecl] = field(default_factory=list)
    assigns: list[VAssign] = field(default_factory=list)
    instances: list[VInstance] = field(default_factory=list)
    #: declarations + instances + assigns in source order (the reader
    #: wires drivers in file order to keep RANDOM rng draws aligned).
    items: list = field(default_factory=list)
    intrinsic: bool = False
    span: Span = Span(0, 0)


# -- parser ---------------------------------------------------------------


class _Parser:
    def __init__(self, source: SourceText):
        self.source = source
        self.tokens = tokenize(source)
        self.pos = 0

    def peek(self) -> Token:
        return self.tokens[self.pos]

    def next(self) -> Token:
        tok = self.tokens[self.pos]
        if tok.kind != "eof":
            self.pos += 1
        return tok

    def error(self, message: str, span: Span) -> InterchangeError:
        return InterchangeError(message, span)

    def expect_punct(self, ch: str) -> Token:
        tok = self.next()
        if tok.kind != "punct" or tok.value != ch:
            raise self.error(
                f"expected {ch!r}, got {self._show(tok)}", tok.span)
        return tok

    def expect_id(self, what: str = "an identifier") -> Token:
        tok = self.next()
        if tok.kind != "id":
            raise self.error(
                f"expected {what}, got {self._show(tok)}", tok.span)
        return tok

    def at_punct(self, ch: str) -> bool:
        tok = self.peek()
        return tok.kind == "punct" and tok.value == ch

    @staticmethod
    def _show(tok: Token) -> str:
        if tok.kind == "eof":
            return "end of file"
        return repr(tok.value)

    # -- grammar ----------------------------------------------------------

    def parse(self) -> list[VModule]:
        modules: list[VModule] = []
        seen: dict[str, Span] = {}
        while self.peek().kind != "eof":
            tok = self.next()
            if tok.kind != "id" or tok.value not in ("module", "macromodule"):
                raise self.error(
                    f"expected 'module', got {self._show(tok)}", tok.span)
            mod = self.module(tok.span)
            if mod.name in seen:
                first = self.source.position(seen[mod.name].start)
                raise self.error(
                    f"duplicate module name {mod.name!r} "
                    f"(first defined at line {first.line})",
                    mod.span,
                )
            seen[mod.name] = mod.span
            modules.append(mod)
        if not modules:
            raise self.error("no modules found", Span(0, 0))
        return modules

    def module(self, start: Span) -> VModule:
        name_tok = self.expect_id("a module name")
        mod = VModule(name=str(name_tok.value), header_ports=[],
                      span=name_tok.span)
        if mod.name in INTRINSIC_MODULES:
            self._skip_to_endmodule(name_tok)
            mod.intrinsic = True
            return mod
        if self.at_punct("("):
            self.next()
            self._header_ports(mod)
        self.expect_punct(";")
        while True:
            tok = self.peek()
            if tok.kind == "eof":
                raise self.error(
                    f"missing 'endmodule' for module {mod.name!r}",
                    tok.span)
            if tok.kind == "id" and tok.value == "endmodule":
                self.next()
                return mod
            self.item(mod)

    def _skip_to_endmodule(self, name_tok: Token) -> None:
        while True:
            tok = self.next()
            if tok.kind == "eof":
                raise self.error(
                    f"missing 'endmodule' for module {name_tok.value!r}",
                    tok.span)
            if tok.kind == "id" and tok.value == "endmodule":
                return

    def _header_ports(self, mod: VModule) -> None:
        """Port list: plain names, or ANSI ``input a, output b`` style
        (recorded both as header ports and direction declarations)."""
        if self.at_punct(")"):
            self.next()
            return
        direction: str | None = None
        while True:
            tok = self.next()
            if tok.kind == "id" and tok.value in _DIRECTIONS:
                direction = str(tok.value)
                tok = self.next()
                if tok.kind == "id" and tok.value in _NET_TYPES:
                    tok = self.next()
            self._reject_range(tok)
            if tok.kind != "id":
                raise self.error(
                    f"expected a port name, got {self._show(tok)}", tok.span)
            name = str(tok.value)
            mod.header_ports.append(name)
            if direction is not None:
                decl = VDecl(direction, [(name, tok.span)], tok.span)
                mod.decls.append(decl)
                mod.items.append(decl)
            nxt = self.next()
            if nxt.kind == "punct" and nxt.value == ")":
                return
            if not (nxt.kind == "punct" and nxt.value == ","):
                raise self.error(
                    f"expected ',' or ')' in the port list, got "
                    f"{self._show(nxt)}", nxt.span)

    def _reject_range(self, tok: Token) -> None:
        if tok.kind == "punct" and tok.value == "[":
            raise self.error(
                "unsupported construct: vector range (the interchange "
                "subset is scalar; flatten buses to one wire per bit)",
                tok.span,
            )

    def item(self, mod: VModule) -> None:
        tok = self.next()
        if tok.kind != "id":
            raise self.error(
                f"expected a declaration or instance, got "
                f"{self._show(tok)}", tok.span)
        word = str(tok.value)
        if word in _UNSUPPORTED_ITEMS:
            raise self.error(
                f"unsupported construct {word!r} (only structural "
                "declarations, assigns and gate/module instances are "
                "supported)",
                tok.span,
            )
        if word in _DIRECTIONS or word in _NET_TYPES:
            self.declaration(mod, word, tok.span)
        elif word == "assign":
            self.assignment(mod, tok.span)
        else:
            self.instances(mod, word, tok.span)

    def declaration(self, mod: VModule, kind: str, start: Span) -> None:
        if kind in _DIRECTIONS and self.peek().kind == "id" \
                and self.peek().value in _NET_TYPES:
            self.next()  # "inout tri x;" style
        self._reject_range(self.peek())
        names: list[tuple[str, Span]] = []
        while True:
            tok = self.expect_id("a net name")
            self._reject_range(self.peek())
            names.append((str(tok.value), tok.span))
            nxt = self.next()
            if nxt.kind == "punct" and nxt.value == ";":
                break
            if not (nxt.kind == "punct" and nxt.value == ","):
                raise self.error(
                    f"expected ',' or ';' in the declaration, got "
                    f"{self._show(nxt)}", nxt.span)
        decl = VDecl(kind, names, start)
        mod.decls.append(decl)
        mod.items.append(decl)

    def assignment(self, mod: VModule, start: Span) -> None:
        dst = self.expect_id("a net name")
        self.expect_punct("=")
        rhs = self.term()
        tok = self.next()
        if not (tok.kind == "punct" and tok.value == ";"):
            raise self.error(
                "unsupported construct: assign with an expression "
                "right-hand side (only 'assign w = net;' and "
                "'assign w = 1'bV;' are supported)",
                tok.span,
            )
        va = VAssign(str(dst.value), dst.span, rhs, start)
        mod.assigns.append(va)
        mod.items.append(va)

    def term(self) -> Term:
        tok = self.next()
        if tok.kind == "id":
            return Term("id", str(tok.value), tok.span)
        if tok.kind == "lit":
            return Term("lit", tok.value, tok.span)
        raise self.error(
            f"expected a net name or 1-bit literal, got {self._show(tok)}",
            tok.span,
        )

    def instances(self, mod: VModule, mtype: str, start: Span) -> None:
        if self.at_punct("#"):
            raise self.error(
                "unsupported construct: delay/parameter override '#'",
                self.peek().span,
            )
        while True:
            name: str | None = None
            tok = self.peek()
            if tok.kind == "id":
                name = str(self.next().value)
            self.expect_punct("(")
            inst = self._connections(mtype, name, start)
            mod.instances.append(inst)
            mod.items.append(inst)
            nxt = self.next()
            if nxt.kind == "punct" and nxt.value == ";":
                return
            if not (nxt.kind == "punct" and nxt.value == ","):
                raise self.error(
                    f"expected ',' or ';' after the instance, got "
                    f"{self._show(nxt)}", nxt.span)

    def _connections(self, mtype: str, name: str | None,
                     start: Span) -> VInstance:
        positional: list[Term] = []
        named: list[tuple[str, Term, Span]] = []
        if self.at_punct(")"):
            self.next()
        else:
            while True:
                if self.at_punct("."):
                    dot = self.next()
                    pin = self.expect_id("a port name")
                    self.expect_punct("(")
                    if self.at_punct(")"):
                        term = Term("empty", None, pin.span)
                    else:
                        term = self.term()
                    self.expect_punct(")")
                    named.append((str(pin.value), term, dot.span))
                else:
                    positional.append(self.term())
                nxt = self.next()
                if nxt.kind == "punct" and nxt.value == ")":
                    break
                if not (nxt.kind == "punct" and nxt.value == ","):
                    raise self.error(
                        f"expected ',' or ')' in the connection list, "
                        f"got {self._show(nxt)}", nxt.span)
        if positional and named:
            raise self.error(
                f"instance {name or mtype!r} mixes positional and named "
                "connections", start)
        return VInstance(
            mtype=mtype,
            name=name,
            positional=positional if not named else None,
            named=named if named else None,
            span=start,
        )


def parse_verilog(source: SourceText) -> list[VModule]:
    """Parse *source* into :class:`VModule` records; raises
    :class:`InterchangeError` (with a span) on anything outside the
    structural subset."""
    return _Parser(source).parse()
