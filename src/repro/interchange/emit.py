"""Structural-Verilog emitter over the elaborated REG-cut netlist.

The emitter walks the semantics graph the same way the simulator does --
one *alias class* (union-find canonical net) at a time -- and encodes it
in the flat structural subset :mod:`repro.interchange.vparse` reads
back:

===========================  =========================================
Zeus construct               Verilog encoding
===========================  =========================================
boolean alias class          ``wire``
multiplex alias class        ``tri`` (NOINFL-capable)
AND/OR/NAND/NOR/XOR/NOT      the matching gate primitive
EQUAL over 1-bit operands    ``xnor``
EQUAL over n-bit operands    per-position ``xnor`` + one ``and``
                             (bit-exact under 0/1/x/z: a defined
                             differing position forces 0, any x
                             position forces x otherwise)
RANDOM                       ``zeus_random`` intrinsic instance
connection ``dst := src``    ``buf (dst, src);``
guarded ``IF c THEN dst:=s`` ``bufif1 (dst, s, c);``
constant driver              ``assign dst = 1'b{0|1|x|z};`` /
                             guarded: ``bufif1 (dst, 1'bV, c);``
REG                          ``zeus_dff`` intrinsic (posedge ``CLK``
                             DFF that *keeps* its value on a ``z``
                             data input -- the NOINFL-keeps rule)
===========================  =========================================

Value planes map ZERO/ONE/UNDEF/NOINFL to ``0/1/x/z``.  One documented
divergence from event-driven Verilog simulators: a ``buf``/``bufif1``
whose data input is ``z`` outputs ``x`` there, while the Zeus firing
rules pass NOINFL through a connection unchanged (no influence).  The
reader maps these primitives back to Zeus connections, so Zeus-side
round trips are bit-exact; the caveat only matters when third-party
tools *simulate* the emitted file (they still compile it fine).

Every emit returns ``(verilog_text, manifest)`` where the manifest is
the versioned ``zeus.interchange/1`` record: the full display-name ->
identifier map, per-port bit lists, register instance names, and the
unsupported-construct report (see :mod:`repro.interchange.manifest`).
"""

from __future__ import annotations

from ..core.netlist import Netlist
from ..core.types import BOOLEAN
from ..core.values import NETLIST_GATE_FUNCTIONS, Logic
from ..lang.errors import InterchangeError
from .manifest import SCHEMA, validate_manifest
from .names import NameMangler

#: Logic -> Verilog scalar literal.
LITERALS = {
    Logic.ZERO: "1'b0",
    Logic.ONE: "1'b1",
    Logic.UNDEF: "1'bx",
    Logic.NOINFL: "1'bz",
}

_PRIMITIVES = {
    "AND": "and",
    "OR": "or",
    "NAND": "nand",
    "NOR": "nor",
    "XOR": "xor",
    "NOT": "not",
}

_MODES = {"IN": "input", "OUT": "output", "INOUT": "inout"}

#: Special Zeus input nets whose display names must survive verbatim:
#: the simulators default them to ZERO (not UNDEF) *by name*.
SPECIAL_INPUTS = ("RSET", "CLK")

ZEUS_DFF_MODULE = """\
module zeus_dff (q, d, ck);
  output reg q;
  input d, ck;
  initial q = 1'bx;
  always @(posedge ck)
    if (d !== 1'bz) q <= d;
endmodule
"""

ZEUS_RANDOM_MODULE = """\
module zeus_random (y);
  output y;
endmodule
"""


class _Classes:
    """The alias-class view of a netlist (the exact construction the
    simulator uses, so displays and kinds line up observation for
    observation)."""

    def __init__(self, netlist: Netlist):
        find = netlist.find
        nets = netlist.nets
        canon = [find(n).id for n in nets]
        canon_ids = sorted(set(canon))
        self.index = {cid: i for i, cid in enumerate(canon_ids)}
        self.n = len(canon_ids)
        self.members: list[list] = [[] for _ in range(self.n)]
        for net in nets:
            self.members[self.index[canon[net.id]]].append(net)
        self.display = [
            min(
                (m.name for m in ms if not m.name.startswith("$")),
                default=ms[0].name,
            )
            for ms in self.members
        ]
        self.is_boolean = [
            all(m.kind == BOOLEAN for m in ms) for ms in self.members
        ]
        self.is_input = [any(m.is_input for m in ms) for ms in self.members]
        self._find = find

    def idx(self, net) -> int:
        return self.index[self._find(net).id]


def _audit_producers(netlist: Netlist, classes: _Classes) -> None:
    """Reject designs whose value would depend on firing order: an
    alias class may be produced by at most one of {gate output,
    register output, connection drivers} (the schedule enforces the
    same rule, so anything rejected here cannot run on the batched
    engines either)."""
    producers: list[list[str]] = [[] for _ in range(classes.n)]
    for gate in netlist.gates:
        producers[classes.idx(gate.output)].append(f"gate {gate.op}{gate.id}")
    for reg in netlist.regs:
        producers[classes.idx(reg.q)].append(f"register {reg.name or reg.id}")
    driven = set()
    for conn in netlist.unique_conns():
        driven.add(classes.idx(conn.dst))
    for cc in netlist.unique_const_conns():
        driven.add(classes.idx(cc.dst))
    for i, plist in enumerate(producers):
        if len(plist) > 1 or (plist and i in driven):
            kinds = plist + (["connection drivers"] if i in driven else [])
            raise InterchangeError(
                f"cannot emit {classes.display[i]!r}: the net has "
                f"multiple producers ({', '.join(kinds)}); its value "
                "would depend on firing order and no structural "
                "netlist can encode that"
            )


def emit_verilog(design, *, module_name: str | None = None) -> tuple[str, dict]:
    """Render *design* (an elaborated :class:`~repro.core.elaborate.Design`
    or anything with ``.netlist``/``.name``) as flat structural Verilog.

    Returns ``(text, manifest)``; raises :class:`InterchangeError` on
    design shapes the structural subset cannot encode.
    """
    netlist: Netlist = design.netlist
    classes = _Classes(netlist)
    _audit_producers(netlist, classes)

    mangler = NameMangler()
    prefix = f"{netlist.name}."

    def local(display: str) -> str:
        return display[len(prefix):] if display.startswith(prefix) else display

    # 1. Specials first: their exact names are load-bearing.
    for i in range(classes.n):
        if classes.display[i] in SPECIAL_INPUTS:
            mangler.reserve(classes.display[i], classes.display[i])
    # 2. Port bits next, in declaration order, so ports win the nicest
    #    names; then every remaining class in canonical order.
    port_class: dict[int, str] = {}
    ports_out = []
    for p in netlist.ports:
        bits = []
        for net in p.nets:
            i = classes.idx(net)
            if i in port_class:
                raise InterchangeError(
                    f"cannot emit port {p.name!r}: bit "
                    f"{classes.display[i]!r} is aliased into port bit "
                    f"{port_class[i]!r}; one wire cannot be two module "
                    "ports"
                )
            vname = mangler.mangle(
                classes.display[i], base=local(classes.display[i])
            )
            port_class[i] = vname
            bits.append(vname)
        ports_out.append({"name": p.name, "mode": p.mode, "bits": bits})
    for i in range(classes.n):
        mangler.mangle(classes.display[i], base=local(classes.display[i]))
    vname_of = [mangler.mapping[classes.display[i]] for i in range(classes.n)]

    # Inputs outside the declared ports: the CLK/RSET specials, plus any
    # stray top-level input the elaborator marked.
    extra_inputs = [
        vname_of[i]
        for i in range(classes.n)
        if classes.is_input[i] and i not in port_class
    ]

    # A design with registers but no CLK net gets a synthetic clock
    # port so the zeus_dff instances have an edge to latch on.
    synthetic_clock = None
    if netlist.regs and "CLK" not in mangler.mapping:
        synthetic_clock = mangler.fresh("CLK")
    clock = mangler.mapping.get("CLK", synthetic_clock)

    module = module_name or mangler.fresh(f"{netlist.name}_mod")
    header_ports = (
        [b for p in ports_out for b in p["bits"]]
        + extra_inputs
        + ([synthetic_clock] if synthetic_clock else [])
    )

    # The body is rendered first so helper wires (EQUAL expansion
    # positions) can be collected into the declaration block.
    body: list[str] = []
    aux_wires: list[str] = []
    out = body.append

    unsupported: list[dict] = []
    regs_out: dict[str, str] = {}
    uses_dff = bool(netlist.regs)
    uses_random = False

    def wire(net) -> str:
        return vname_of[classes.idx(net)]

    for gate in netlist.gates:
        y = wire(gate.output)
        ins = [wire(n) for n in gate.inputs]
        if gate.op == "RANDOM":
            uses_random = True
            inst = mangler.fresh(f"rnd{gate.id}")
            out(f"  zeus_random {inst} ({y});")
        elif not ins:
            # Input-less gates are constants; fold them the way the
            # schedule does.
            value = NETLIST_GATE_FUNCTIONS[gate.op]([])
            out(f"  assign {y} = {LITERALS[value]};")
        elif gate.op == "EQUAL":
            if len(ins) % 2:
                raise InterchangeError(
                    f"cannot emit EQUAL gate {gate.id}: odd input count "
                    f"{len(ins)} (expected two concatenated operand "
                    "buses)"
                )
            half = len(ins) // 2
            if half == 1:
                out(f"  xnor ({y}, {ins[0]}, {ins[1]});")
            else:
                positions = []
                for j in range(half):
                    pj = mangler.fresh(f"eq{gate.id}_p{j}")
                    aux_wires.append(pj)
                    out(f"  xnor ({pj}, {ins[j]}, {ins[half + j]});")
                    positions.append(pj)
                out(f"  and ({y}, {', '.join(positions)});")
        elif gate.op in _PRIMITIVES:
            if len(ins) == 1:
                prim = "not" if gate.op in ("NAND", "NOR", "NOT") else "buf"
                out(f"  {prim} ({y}, {ins[0]});")
            else:
                out(f"  {_PRIMITIVES[gate.op]} ({y}, {', '.join(ins)});")
        else:  # pragma: no cover - the elaborator only builds these ops
            raise InterchangeError(
                f"cannot emit gate op {gate.op!r} (gate {gate.id})"
            )

    for conn in netlist.unique_conns():
        dst, src = wire(conn.dst), wire(conn.src)
        if conn.cond is None:
            out(f"  buf ({dst}, {src});")
        else:
            out(f"  bufif1 ({dst}, {src}, {wire(conn.cond)});")
    for cc in netlist.unique_const_conns():
        dst = wire(cc.dst)
        if cc.cond is None:
            out(f"  assign {dst} = {LITERALS[cc.value]};")
        else:
            out(f"  bufif1 ({dst}, {LITERALS[cc.value]}, {wire(cc.cond)});")

    for reg in netlist.regs:
        key = reg.name or f"$reg{reg.id}"
        inst = mangler.fresh(local(key) if reg.name else f"reg{reg.id}")
        regs_out[key] = inst
        out(
            f"  zeus_dff {inst} (.q({wire(reg.q)}), .d({wire(reg.d)}), "
            f".ck({clock}));"
        )

    lines: list[str] = []
    lines.append(f"// Structural Verilog emitted by zeus ({SCHEMA})")
    lines.append(f"// design: {netlist.name}")
    lines.append(f"module {module} ({', '.join(header_ports)});")
    for p in ports_out:
        lines.append(f"  {_MODES[p['mode']]} {', '.join(p['bits'])};")
    for vname in extra_inputs:
        lines.append(f"  input {vname};")
    if synthetic_clock:
        lines.append(f"  input {synthetic_clock};")
    lines.append("")
    for i in range(classes.n):
        net_type = "wire" if classes.is_boolean[i] else "tri"
        lines.append(f"  {net_type} {vname_of[i]};")
    for pj in aux_wires:
        lines.append(f"  wire {pj};")
    lines.append("")
    lines.extend(body)
    lines.append("endmodule")
    if uses_dff:
        lines.append("")
        lines.extend(ZEUS_DFF_MODULE.rstrip("\n").split("\n"))
    if uses_random:
        lines.append("")
        lines.extend(ZEUS_RANDOM_MODULE.rstrip("\n").split("\n"))

    manifest = {
        "schema": SCHEMA,
        "design": netlist.name,
        "module": module,
        "ports": ports_out,
        "extra_inputs": extra_inputs,
        "synthetic_clock": synthetic_clock,
        "nets": {
            classes.display[i]: {
                "verilog": vname_of[i],
                "kind": "boolean" if classes.is_boolean[i] else "multiplex",
            }
            for i in range(classes.n)
        },
        "regs": regs_out,
        "stats": netlist.stats(),
        "unsupported": unsupported,
        "caveats": [
            "buf/bufif1 with a z data input yields x in event-driven "
            "Verilog simulators; the Zeus firing rules pass NOINFL "
            "through connections unchanged (round trips through the "
            "zeus reader are exact)",
        ],
    }
    validate_manifest(manifest)
    return "\n".join(lines) + "\n", manifest
