"""Deterministic Zeus -> Verilog name mangling.

Zeus display names are hierarchical paths (``bj.state[1].out``,
``$nummux312``, ``m.$mux41.d[2]``) that are not legal Verilog
identifiers.  The :class:`NameMangler` maps every name to a simple
Verilog identifier deterministically and *injectively*:

* hierarchy separators ``.`` and index brackets ``[k]`` become ``_``;
* any other character outside ``[A-Za-z0-9_]`` (including the ``$`` of
  elaborator-synthesized nets) becomes ``_``;
* a result that is empty, starts with a digit, or collides with a
  Verilog keyword gets an ``n_`` prefix;
* collisions after the above (``m.d[1]`` vs ``m.d_1``) are resolved by
  an ``__2``, ``__3``, ... suffix in first-come order.

Injectivity holds by construction -- every assigned identifier is
recorded in one ``taken`` table covering wires, ports, and instance
names alike -- and is property-tested over the whole stdlib corpus in
``tests/test_interchange.py``.  The full map is published in the
``zeus.interchange/1`` manifest so observations can be translated both
ways.
"""

from __future__ import annotations

import re

#: IEEE 1364-2001 reserved words (all lowercase; Verilog keywords are
#: case-sensitive, so ``Input`` would be a legal identifier -- we still
#: avoid emitting anything that differs from a keyword only by case).
VERILOG_KEYWORDS = frozenset("""
always and assign automatic begin buf bufif0 bufif1 case casex casez
cell cmos config deassign default defparam design disable edge else
end endcase endconfig endfunction endgenerate endmodule endprimitive
endspecify endtable endtask event for force forever fork function
generate genvar highz0 highz1 if ifnone incdir include initial inout
input instance integer join large liblist library localparam
macromodule medium module nand negedge nmos nor noshowcancelled not
notif0 notif1 or output parameter pmos posedge primitive pull0 pull1
pulldown pullup pulsestyle_ondetect pulsestyle_onevent rcmos real
realtime reg release repeat rnmos rpmos rtran rtranif0 rtranif1
scalared showcancelled signed small specify specparam strong0 strong1
supply0 supply1 table task time tran tranif0 tranif1 tri tri0 tri1
triand trior trireg unsigned use vectored wait wand weak0 weak1 while
wire wor xnor xor
""".split())

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*\Z")
_BAD_CHAR_RE = re.compile(r"[^A-Za-z0-9_]")


def mangle_base(name: str) -> str:
    """The keyword-safe base identifier for *name*, before collision
    resolution (the pure, injectivity-free half of the mangling)."""
    out = name.replace("[", "_").replace("]", "")
    out = _BAD_CHAR_RE.sub("_", out)
    if not out or out[0].isdigit():
        out = "n_" + out
    if out.lower() in VERILOG_KEYWORDS:
        out = "n_" + out
    return out


def is_verilog_identifier(name: str) -> bool:
    """True when *name* is a legal simple Verilog identifier that is
    not a reserved word."""
    return bool(_IDENT_RE.match(name)) and name.lower() not in VERILOG_KEYWORDS


class NameMangler:
    """Allocates unique Verilog identifiers for Zeus names.

    One instance covers one emitted module: wires, ports, and instance
    names share Verilog's per-module name space, so they all go through
    the same ``taken`` table.
    """

    def __init__(self) -> None:
        self._taken: set[str] = set()
        self._map: dict[str, str] = {}

    def reserve(self, zeus_name: str, verilog_name: str) -> str:
        """Pin *zeus_name* to an exact identifier (``RSET``/``CLK`` must
        survive verbatim so re-imported designs keep the special-input
        default rule, which keys on the display name)."""
        if verilog_name in self._taken:
            raise ValueError(f"identifier {verilog_name!r} already taken")
        if not is_verilog_identifier(verilog_name):
            raise ValueError(f"{verilog_name!r} is not a legal identifier")
        self._taken.add(verilog_name)
        self._map[zeus_name] = verilog_name
        return verilog_name

    def mangle(self, zeus_name: str, base: str | None = None) -> str:
        """The (stable) identifier for *zeus_name*; allocates on first
        use, returns the same answer afterwards.  *base* overrides the
        text the identifier is derived from (the emitter passes the
        design-prefix-stripped path while keying the map on the full
        display name the simulator reports)."""
        if zeus_name in self._map:
            return self._map[zeus_name]
        out = self._unique(mangle_base(base if base is not None else zeus_name))
        self._map[zeus_name] = out
        return out

    def fresh(self, base: str) -> str:
        """A unique identifier from *base* that is not bound to any
        Zeus name (gate / register instance names)."""
        return self._unique(mangle_base(base))

    def _unique(self, base: str) -> str:
        out = base
        k = 1
        while out in self._taken:
            k += 1
            out = f"{base}__{k}"
        self._taken.add(out)
        return out

    @property
    def mapping(self) -> dict[str, str]:
        """Zeus display name -> Verilog identifier (a copy)."""
        return dict(self._map)
