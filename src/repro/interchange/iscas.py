"""ISCAS-style scenario corpus for the interchange tests.

Two sources of structural netlists that never came out of the Zeus
emitter, exercising the reader as a *front end* rather than a
round-trip decoder:

* :data:`C17_VERILOG` -- the standard ISCAS85 c17 benchmark (6 NAND2
  gates, 5 inputs, 2 outputs) in the plain structural Verilog style
  the classic translations use, plus :func:`c17_oracle`, a pure-Python
  reference evaluation of the same network;
* :func:`generate` -- a deterministic, seeded generator of c17-class
  netlists: random DAGs of NAND/NOR/AND/OR/NOT/buf gates, optionally
  with a register layer in the ISCAS89 style (positional ``dff``
  instances).  Same seed, same text -- the scenarios are reproducible
  in tests and benchmarks without bundling files.
"""

from __future__ import annotations

import random

#: ISCAS85 c17: the smallest of the classic combinational benchmarks.
C17_VERILOG = """\
// ISCAS85 c17 (structural Verilog translation)
module c17 (N1, N2, N3, N6, N7, N22, N23);
  input N1, N2, N3, N6, N7;
  output N22, N23;
  wire N10, N11, N16, N19;

  nand NAND2_1 (N10, N1, N3);
  nand NAND2_2 (N11, N3, N6);
  nand NAND2_3 (N16, N2, N11);
  nand NAND2_4 (N19, N11, N7);
  nand NAND2_5 (N22, N10, N16);
  nand NAND2_6 (N23, N16, N19);
endmodule
"""

C17_INPUTS = ("N1", "N2", "N3", "N6", "N7")
C17_OUTPUTS = ("N22", "N23")


def c17_oracle(n1: int, n2: int, n3: int, n6: int, n7: int) -> tuple[int, int]:
    """Reference two-valued evaluation of c17: ``(N22, N23)``."""
    nand = lambda a, b: 1 - (a & b)  # noqa: E731
    n10 = nand(n1, n3)
    n11 = nand(n3, n6)
    n16 = nand(n2, n11)
    n19 = nand(n11, n7)
    return nand(n10, n16), nand(n16, n19)


_GATES = ("nand", "nor", "and", "or", "not", "buf")


def generate(
    seed: int,
    *,
    n_inputs: int = 5,
    n_gates: int = 12,
    n_regs: int = 0,
    name: str | None = None,
) -> str:
    """A seeded ISCAS-style structural netlist.

    Gates form a DAG over the inputs and earlier gate outputs, so the
    circuit always settles.  With ``n_regs > 0`` a register layer is
    appended in the ISCAS89 translation idiom: positional
    ``dff NAME (CK, Q, D);`` instances fed from gate outputs, with the
    Q wires folded back in as extra gate-input candidates via a second
    gate column.  Every wire that nothing consumes is promoted to an
    output so the whole network is observable.
    """
    rng = random.Random(seed)
    mod = name or f"iscas_s{seed}"
    inputs = [f"G{i}" for i in range(1, n_inputs + 1)]
    avail = list(inputs)
    lines: list[str] = []
    consumed: set[str] = set()
    wires: list[str] = []
    k = n_inputs

    def gate_line(out: str, avail_nets: list[str]) -> str:
        op = rng.choice(_GATES)
        arity = 1 if op in ("not", "buf") else rng.randint(2, 3)
        ins = [rng.choice(avail_nets) for _ in range(arity)]
        consumed.update(ins)
        return f"  {op} {op.upper()}_{out} ({out}, {', '.join(ins)});"

    for _ in range(n_gates):
        k += 1
        out = f"G{k}"
        lines.append(gate_line(out, avail))
        wires.append(out)
        avail.append(out)

    dff_lines: list[str] = []
    for r in range(n_regs):
        k += 1
        q = f"G{k}"
        d = rng.choice(avail)
        consumed.add(d)
        dff_lines.append(f"  dff DFF_{r} (CK, {q}, {d});")
        wires.append(q)
        avail.append(q)
    if n_regs:
        # A second combinational column so register outputs feed logic.
        for _ in range(max(2, n_gates // 3)):
            k += 1
            out = f"G{k}"
            lines.append(gate_line(out, avail))
            wires.append(out)
            avail.append(out)

    outputs = [w for w in wires if w not in consumed]
    if not outputs:  # pragma: no cover - the last gate is never consumed
        outputs = [wires[-1]]
    ports = inputs + (["CK"] if n_regs else []) + outputs
    decl_wires = [w for w in wires if w not in outputs]

    text = [f"// generated ISCAS-style netlist, seed={seed}",
            f"module {mod} ({', '.join(ports)});"]
    text.append(f"  input {', '.join(inputs)};")
    if n_regs:
        text.append("  input CK;")
    text.append(f"  output {', '.join(outputs)};")
    if decl_wires:
        text.append(f"  wire {', '.join(decl_wires)};")
    text.append("")
    text.extend(lines)
    text.extend(dff_lines)
    text.append("endmodule")
    return "\n".join(text) + "\n"
