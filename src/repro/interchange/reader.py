"""Reader: structural Verilog -> the Zeus semantics graph.

:func:`read_verilog` parses the interchange subset
(:mod:`repro.interchange.vparse`) and rebuilds a
:class:`~repro.core.elaborate.Design` the simulator, the formal stack
and the CLI can use like any compiled Zeus circuit:

* every declared net becomes one :class:`~repro.core.netlist.Net`
  (``wire`` -> boolean plane semantics, ``tri`` -> multiplex) and is
  registered under its (hierarchy-qualified) name for ``peek``/``poke``;
* gate primitives become :class:`Gate` nodes with a fresh output net
  plus a connection onto the target wire -- exactly the shape the Zeus
  elaborator produces, so the schedule's single-producer rule holds by
  construction;
* ``buf``/``bufif1``/``bufif0``/``assign`` become (guarded)
  connections; ``bufif0`` inverts its control through a NOT gate;
* ``zeus_dff``/``dff`` instances become :class:`Reg` nodes (the clock
  terminal is checked but otherwise ignored: Zeus registers latch
  implicitly every cycle); ``zeus_random`` becomes a RANDOM gate;
* user-module instances are flattened recursively, child nets named
  ``instance.wire`` and formal/actual pins merged by alias -- the same
  union-find mechanism Zeus ``==`` uses.

Items are wired in file order, which keeps the relative order of
RANDOM gates: at equal seeds an emitted-and-reimported design draws
bit-identical random streams.

Everything outside the subset raises :class:`InterchangeError` with a
source span (dangling instance ports, unknown/duplicate modules,
arity mismatches, behavioural constructs).
"""

from __future__ import annotations

from ..core.elaborate import Design
from ..core.netlist import Net, Netlist, PortInfo
from ..core.types import BOOLEAN, MULTIPLEX
from ..core.values import Logic
from ..lang.errors import DiagnosticSink, InterchangeError
from ..lang.source import NO_SPAN, SourceText, Span
from .manifest import SCHEMA, validate_manifest
from .vparse import (
    PRIMITIVES,
    Term,
    VAssign,
    VDecl,
    VInstance,
    VModule,
    parse_verilog,
)

_GATE_OPS = {
    "and": "AND", "or": "OR", "nand": "NAND", "nor": "NOR", "xor": "XOR",
}

_MODE_OF = {"input": "IN", "output": "OUT", "inout": "INOUT"}

_DFF_PINS = {"q": "q", "d": "d", "ck": "ck", "clk": "ck", "clock": "ck"}


class _Scope:
    """One flattened module instance: its declared nets and modes."""

    def __init__(self, path: str):
        self.path = path  # "" for the top, "a1." below it
        self.nets: dict[str, Net] = {}
        self.modes: dict[str, str] = {}  # name -> input/output/inout
        self.net_kinds: dict[str, str] = {}  # name -> wire/tri


class _Builder:
    def __init__(self, netlist: Netlist, modules: dict[str, VModule],
                 source: SourceText):
        self.netlist = netlist
        self.modules = modules
        self.source = source
        self._const_nets: dict[Logic, Net] = {}
        self._next_dff = 0
        self._stack: list[str] = []
        self.intrinsics_used: set[str] = set()
        self.flattened = 0

    # -- helpers ----------------------------------------------------------

    def error(self, message: str, span: Span) -> InterchangeError:
        return InterchangeError(message, span)

    def const_net(self, value: Logic, span: Span) -> Net:
        if value not in self._const_nets:
            kind = MULTIPLEX if value is Logic.NOINFL else BOOLEAN
            net = self.netlist.new_net(f"$const_{value}", kind, span)
            self.netlist.add_const(value, net, None, span)
            self._const_nets[value] = net
        return self._const_nets[value]

    def lookup(self, scope: _Scope, term: Term) -> Net:
        if term.kind == "lit":
            return self.const_net(term.value, term.span)
        if term.kind != "id":
            raise self.error("missing connection", term.span)
        net = scope.nets.get(term.value)
        if net is None:
            raise self.error(
                f"undeclared net {term.value!r} (the interchange subset "
                "has no implicit nets; declare it with 'wire' or 'tri')",
                term.span,
            )
        return net

    def out_net(self, scope: _Scope, term: Term) -> Net:
        if term.kind != "id":
            raise self.error(
                "a gate output must be a declared net", term.span)
        return self.lookup(scope, term)

    # -- module flattening -------------------------------------------------

    def build(self, mod: VModule, path: str) -> _Scope:
        if mod.name in self._stack:
            chain = " -> ".join(self._stack + [mod.name])
            raise self.error(
                f"recursive module instantiation: {chain}", mod.span)
        self._stack.append(mod.name)
        scope = _Scope(path)
        # Declarations first (an emitted file declares everything up
        # front, but hand-written netlists may interleave).
        for decl in mod.decls:
            self._declare(scope, decl)
        for port in mod.header_ports:
            if port not in scope.modes:
                raise self.error(
                    f"port {port!r} of module {mod.name!r} has no "
                    "input/output/inout declaration",
                    mod.span,
                )
        for item in mod.items:
            if isinstance(item, VAssign):
                self._assign(scope, item)
            elif isinstance(item, VInstance):
                self._instance(scope, item)
        self._stack.pop()
        return scope

    def _declare(self, scope: _Scope, decl: VDecl) -> None:
        for name, span in decl.names:
            if decl.kind in ("wire", "tri"):
                prior = scope.net_kinds.get(name)
                if prior is not None and prior != decl.kind:
                    raise self.error(
                        f"net {name!r} declared both {prior!r} and "
                        f"{decl.kind!r}", span)
                scope.net_kinds[name] = decl.kind
            else:
                if name in scope.modes:
                    raise self.error(
                        f"duplicate direction declaration for {name!r}",
                        span)
                scope.modes[name] = decl.kind
            if name not in scope.nets:
                kind = MULTIPLEX if decl.kind == "tri" else BOOLEAN
                net = self.netlist.new_net(scope.path + name, kind, span)
                self.netlist.register_signal(scope.path + name, [net])
                scope.nets[name] = net
            elif decl.kind == "tri":
                scope.nets[name].kind = MULTIPLEX

    def _assign(self, scope: _Scope, item: VAssign) -> None:
        dst = self.lookup(scope, Term("id", item.dst, item.dst_span))
        if item.rhs.kind == "lit":
            self.netlist.add_const(item.rhs.value, dst, None, item.span)
        else:
            self.netlist.add_conn(
                self.lookup(scope, item.rhs), dst, None, item.span)

    def _instance(self, scope: _Scope, inst: VInstance) -> None:
        if inst.mtype in PRIMITIVES:
            self._primitive(scope, inst)
        elif inst.mtype in ("zeus_dff", "dff"):
            self._dff(scope, inst)
        elif inst.mtype == "zeus_random":
            self._random(scope, inst)
        elif inst.mtype in self.modules:
            self._user_instance(scope, inst)
        else:
            raise self.error(
                f"unknown module {inst.mtype!r} (not defined in this "
                "file, not a gate primitive, not an intrinsic)",
                inst.span,
            )

    # -- gate primitives ---------------------------------------------------

    def _primitive(self, scope: _Scope, inst: VInstance) -> None:
        if inst.named:
            raise self.error(
                f"gate primitive {inst.mtype!r} takes positional "
                "terminals only", inst.span)
        terms = inst.positional or []
        op = inst.mtype

        def need(n: int, what: str) -> None:
            if len(terms) != n:
                raise self.error(
                    f"{op} takes {what} ({n} terminals), got "
                    f"{len(terms)}", inst.span)

        if op in _GATE_OPS:
            if len(terms) < 2:
                raise self.error(
                    f"{op} needs an output and at least one input",
                    inst.span)
            out = self.out_net(scope, terms[0])
            ins = [self.lookup(scope, t) for t in terms[1:]]
            gate_out = self.netlist.add_gate(_GATE_OPS[op], ins, inst.span)
            self.netlist.add_conn(gate_out, out, None, inst.span)
        elif op == "xnor":
            if len(terms) != 3:
                raise self.error(
                    "unsupported construct: n-ary xnor (Verilog reduction "
                    "parity has no Zeus equivalent; only 2-input xnor, "
                    "which maps to EQUAL, is supported)",
                    inst.span,
                )
            out = self.out_net(scope, terms[0])
            ins = [self.lookup(scope, t) for t in terms[1:]]
            gate_out = self.netlist.add_gate("EQUAL", ins, inst.span)
            self.netlist.add_conn(gate_out, out, None, inst.span)
        elif op == "not":
            need(2, "one output and one input")
            out = self.out_net(scope, terms[0])
            gate_out = self.netlist.add_gate(
                "NOT", [self.lookup(scope, terms[1])], inst.span)
            self.netlist.add_conn(gate_out, out, None, inst.span)
        elif op == "buf":
            need(2, "one output and one input")
            out = self.out_net(scope, terms[0])
            if terms[1].kind == "lit":
                self.netlist.add_const(terms[1].value, out, None, inst.span)
            else:
                self.netlist.add_conn(
                    self.lookup(scope, terms[1]), out, None, inst.span)
        elif op in ("bufif1", "bufif0"):
            need(3, "output, data, control")
            out = self.out_net(scope, terms[0])
            cond = self.lookup(scope, terms[2])
            if op == "bufif0":
                cond = self.netlist.add_gate("NOT", [cond], inst.span)
            if terms[1].kind == "lit":
                self.netlist.add_const(terms[1].value, out, cond, inst.span)
            else:
                self.netlist.add_conn(
                    self.lookup(scope, terms[1]), out, cond, inst.span)
        else:  # pragma: no cover - PRIMITIVES and handlers match
            raise self.error(f"unhandled primitive {op!r}", inst.span)

    # -- intrinsics --------------------------------------------------------

    def _dff_terms(self, inst: VInstance) -> dict[str, Term]:
        """Normalize a zeus_dff/dff instance to ``{"q", "d", "ck"}``.

        Positional conventions: ``zeus_dff (q, d, ck)`` as emitted;
        ``dff (ck, q, d)`` as the ISCAS89 Verilog translations use."""
        pins: dict[str, Term] = {}
        if inst.named:
            for pin, term, span in inst.named:
                key = _DFF_PINS.get(pin.lower())
                if key is None:
                    raise self.error(
                        f"unknown {inst.mtype} pin {pin!r} (expected "
                        "q, d, ck)", span)
                if key in pins:
                    raise self.error(
                        f"duplicate {inst.mtype} pin {pin!r}", span)
                pins[key] = term
        else:
            terms = inst.positional or []
            order = ("q", "d", "ck") if inst.mtype == "zeus_dff" \
                else ("ck", "q", "d")
            if len(terms) != 3:
                raise self.error(
                    f"{inst.mtype} takes 3 terminals "
                    f"({', '.join(order)}), got {len(terms)}", inst.span)
            pins = dict(zip(order, terms))
        for pin in ("q", "d"):
            if pin not in pins or pins[pin].kind == "empty":
                raise self.error(
                    f"{inst.mtype} instance {inst.name or ''!r} leaves "
                    f"pin {pin!r} unconnected", inst.span)
        return pins

    def _dff(self, scope: _Scope, inst: VInstance) -> None:
        self.intrinsics_used.add(inst.mtype)
        pins = self._dff_terms(inst)
        if "ck" in pins and pins["ck"].kind == "id":
            self.lookup(scope, pins["ck"])  # declared-ness check only
        k = self._next_dff
        self._next_dff += 1
        name = scope.path + inst.name if inst.name else f"$dff{k}"
        d = self.netlist.new_net(f"$dff{k}.d", BOOLEAN, inst.span,
                                 role="reg_d")
        q = self.netlist.new_net(f"$dff{k}.q", BOOLEAN, inst.span,
                                 role="reg_q")
        self.netlist.add_reg(d, q, name, inst.span)
        qwire = self.out_net(scope, pins["q"])
        self.netlist.add_conn(q, qwire, None, inst.span)
        if pins["d"].kind == "lit":
            self.netlist.add_const(pins["d"].value, d, None, inst.span)
        else:
            self.netlist.add_conn(
                self.lookup(scope, pins["d"]), d, None, inst.span)

    def _random(self, scope: _Scope, inst: VInstance) -> None:
        self.intrinsics_used.add("zeus_random")
        terms = inst.positional or []
        if inst.named:
            if len(inst.named) != 1 or inst.named[0][0].lower() != "y":
                raise self.error(
                    "zeus_random takes a single output pin y", inst.span)
            terms = [inst.named[0][1]]
        if len(terms) != 1:
            raise self.error(
                f"zeus_random takes 1 terminal, got {len(terms)}",
                inst.span)
        out = self.out_net(scope, terms[0])
        gate_out = self.netlist.add_gate("RANDOM", [], inst.span)
        self.netlist.add_conn(gate_out, out, None, inst.span)

    # -- user modules ------------------------------------------------------

    def _user_instance(self, scope: _Scope, inst: VInstance) -> None:
        child_mod = self.modules[inst.mtype]
        if inst.name is None:
            raise self.error(
                f"instance of module {inst.mtype!r} needs a name",
                inst.span)
        self.flattened += 1
        child = self.build(child_mod, f"{scope.path}{inst.name}.")
        bindings: list[tuple[str, Term, Span]] = []
        if inst.named:
            seen: set[str] = set()
            for pin, term, span in inst.named:
                if pin not in child.modes:
                    raise self.error(
                        f"module {inst.mtype!r} has no port {pin!r}",
                        span)
                if pin in seen:
                    raise self.error(f"duplicate connection to port "
                                     f"{pin!r}", span)
                seen.add(pin)
                bindings.append((pin, term, span))
        else:
            terms = inst.positional or []
            if len(terms) != len(child_mod.header_ports):
                raise self.error(
                    f"module {inst.mtype!r} has "
                    f"{len(child_mod.header_ports)} ports, instance "
                    f"{inst.name!r} connects {len(terms)}",
                    inst.span,
                )
            bindings = [
                (port, term, term.span)
                for port, term in zip(child_mod.header_ports, terms)
            ]
        for pin, term, span in bindings:
            if term.kind == "empty":
                continue
            actual = self.lookup(scope, term)
            self.netlist.alias(actual, child.nets[pin])


def read_verilog(
    text: str | SourceText,
    *,
    name: str = "<verilog>",
    top: str | None = None,
) -> Design:
    """Parse structural Verilog and rebuild a semantics graph.

    *top* picks the root module; by default the one module that no
    other module instantiates.  Returns a
    :class:`~repro.core.elaborate.Design` whose netlist simulates on
    every engine; raises :class:`InterchangeError` on anything outside
    the interchange subset.
    """
    source = text if isinstance(text, SourceText) else SourceText(text, name)
    modules = parse_verilog(source)
    user = {m.name: m for m in modules if not m.intrinsic}
    if not user:
        raise InterchangeError(
            "no importable modules (only intrinsic definitions found)",
            NO_SPAN,
        )
    if top is not None:
        if top not in user:
            raise InterchangeError(
                f"unknown top module {top!r}; modules here: "
                f"{', '.join(sorted(user))}",
                NO_SPAN,
            )
        top_mod = user[top]
    else:
        instantiated = {
            inst.mtype
            for m in user.values()
            for inst in m.instances
            if inst.mtype in user
        }
        roots = [m for nm, m in user.items() if nm not in instantiated]
        if len(roots) != 1:
            names = ", ".join(sorted(m.name for m in roots)) or "none"
            raise InterchangeError(
                f"cannot infer the top module (uninstantiated candidates:"
                f" {names}); pass top=",
                NO_SPAN,
            )
        top_mod = roots[0]

    netlist = Netlist(top_mod.name)
    builder = _Builder(netlist, user, source)
    scope = builder.build(top_mod, "")

    header_ports = list(top_mod.header_ports)
    if not header_ports:
        # "module c17; input N1; ..." style: direction declarations
        # are the port list.
        for decl in top_mod.decls:
            if decl.kind in _MODE_OF:
                header_ports.extend(nm for nm, _ in decl.names)
    for pname in header_ports:
        mode = _MODE_OF[scope.modes[pname]]
        net = scope.nets[pname]
        net.is_input = mode in ("IN", "INOUT")
        net.is_output = mode in ("OUT", "INOUT")
        net.role = f"formal_{mode.lower()}"
        netlist.ports.append(PortInfo(pname, mode, [net]))

    design = Design(
        name=top_mod.name,
        netlist=netlist,
        top=None,
        top_type=None,
        instances=[],
        seq_constraints=[],
        sink=DiagnosticSink(source=source),
        program=None,
        source=source,
    )
    design.interchange = {
        "modules": sorted(user),
        "top": top_mod.name,
        "flattened_instances": builder.flattened,
        "intrinsics": sorted(builder.intrinsics_used),
    }
    return design


def import_manifest(design: Design) -> dict:
    """An identity ``zeus.interchange/1`` manifest for an imported
    design: the same record :func:`repro.interchange.emit_verilog`
    returns, with every net mapping to itself.  Lets downstream tools
    treat emitted and imported designs uniformly."""
    netlist = design.netlist
    find = netlist.find
    canon: dict[int, list] = {}
    for net in netlist.nets:
        canon.setdefault(find(net).id, []).append(net)
    nets = {}
    for members in canon.values():
        display = min(
            (m.name for m in members if not m.name.startswith("$")),
            default=members[0].name,
        )
        boolean = all(m.kind == BOOLEAN for m in members)
        nets[display] = {
            "verilog": display,
            "kind": "boolean" if boolean else "multiplex",
        }
    manifest = {
        "schema": SCHEMA,
        "design": design.name,
        "module": design.name,
        "ports": [
            {
                "name": p.name,
                "mode": p.mode,
                "bits": [
                    min(
                        (m.name for m in netlist.alias_class(n)
                         if not m.name.startswith("$")),
                        default=n.name,
                    )
                    for n in p.nets
                ],
            }
            for p in netlist.ports
        ],
        "extra_inputs": [],
        "synthetic_clock": None,
        "nets": nets,
        "regs": {
            (reg.name or f"$reg{reg.id}"): (reg.name or f"$reg{reg.id}")
            for reg in netlist.regs
        },
        "stats": netlist.stats(),
        "unsupported": [],
        "caveats": [],
    }
    validate_manifest(manifest)
    return manifest
