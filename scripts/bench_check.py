"""Benchmark regression check: fresh run vs the committed numbers.

Re-runs the benchmark drivers (``benchmarks/bench_engines.py``,
``bench_batched.py``, ``bench_codegen.py``, ``bench_flight.py``,
``bench_timing.py``, ``bench_interchange.py``, ``bench_service.py``) and
compares the fresh cycles/sec against the committed
``BENCH_simulator.json`` with a
tolerance band: a metric that lands more than ``--tolerance`` (default
30%) *below* the committed number is a regression and the script exits
nonzero.  Improvements never fail.

Raw cycles/sec are machine-dependent, so CI runs this as a
*non-blocking* smoke job (the committed numbers come from a developer
machine); the value is the uploaded comparison artifact
(``--report FILE``) and the signal when a change tanks an engine by a
large factor even on slow CI hardware.  Ratio metrics (engine speedups,
flight-recorder overhead) transfer across machines much better and are
compared with the same band.

Usage::

    PYTHONPATH=src python scripts/bench_check.py \
        --cycles 500 --report bench-check.json
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "benchmarks"))

import bench_batched  # noqa: E402
import bench_codegen  # noqa: E402
import bench_engines  # noqa: E402
import bench_flight  # noqa: E402
import bench_interchange  # noqa: E402
import bench_service  # noqa: E402
import bench_timing  # noqa: E402


def committed_metrics(summary: dict) -> dict[str, float]:
    """Flatten the comparable metrics of a ``zeus.bench.simulator/1``
    summary to ``dotted.path -> number``."""
    out: dict[str, float] = {}
    for name, res in summary.get("workloads", {}).items():
        for engine, rate in res.get("cycles_per_s", {}).items():
            out[f"workloads.{name}.cycles_per_s.{engine}"] = rate
        if "speedup" in res:
            out[f"workloads.{name}.speedup"] = res["speedup"]
    batched = summary.get("batched")
    if batched:
        for key, rate in batched.get("lane_cycles_per_s", {}).items():
            out[f"batched.lane_cycles_per_s.{key}"] = rate
        out["batched.speedup"] = batched["speedup"]
    codegen = summary.get("codegen")
    if codegen:
        for key, rate in codegen.get("lane_cycles_per_s", {}).items():
            out[f"codegen.lane_cycles_per_s.{key}"] = rate
        out["codegen.speedup_vs_batched"] = codegen["speedup_vs_batched"]
    flight = summary.get("flight")
    if flight:
        for engine in bench_flight.ENGINES:
            rates = flight.get(engine, {}).get("cycles_per_s", {})
            for mode, rate in rates.items():
                out[f"flight.{engine}.cycles_per_s.{mode}"] = rate
    interchange = summary.get("interchange")
    if interchange:
        for label, entry in interchange.get("workloads", {}).items():
            out[f"interchange.{label}.emit_per_s"] = entry["emit_per_s"]
            out[f"interchange.{label}.import_per_s"] = entry["import_per_s"]
        for label, entry in interchange.get("iscas", {}).items():
            out[f"interchange.{label}.import_gates_per_s"] = (
                entry["import_gates_per_s"])
    timing = summary.get("timing")
    if timing:
        for label, entry in timing.get("workloads", {}).items():
            out[f"timing.{label}.analyses_per_s"] = entry["analyses_per_s"]
    service = summary.get("service")
    if service:
        for n, entry in service["compile"]["clients"].items():
            out[f"service.compile.{n}_clients.cold_rps"] = entry["cold_rps"]
            out[f"service.compile.{n}_clients.warm_rps"] = entry["warm_rps"]
        out["service.compile.warm_speedup"] = (
            bench_service.best_warm_speedup(service)
        )
        out["service.mux.cycles_per_s"] = (
            service["mux"]["mux_cycles_per_s"]
        )
        out["service.mux.speedup"] = service["mux"]["speedup"]
    return out


def fresh_summary(cycles: int, seed: int = 0) -> dict:
    """One fresh pass of every benchmark driver, merged the same way
    the committed file is built."""
    summary = bench_engines.run_benchmarks(cycles, metrics_dir=None,
                                           seed=seed)
    summary["batched"] = bench_batched.run_benchmark(
        max(cycles // 20, 3), seed=seed
    )
    summary["codegen"] = bench_codegen.run_benchmark(
        max(cycles // 20, 3), seed=seed
    )
    summary["flight"] = bench_flight.run_benchmark(cycles, seed=seed)
    summary["timing"] = bench_timing.run_benchmark(repeat=1)
    summary["interchange"] = bench_interchange.run_benchmark(repeat=1)
    summary["service"] = bench_service.run_benchmark(
        requests=4, cycles=max(cycles // 20, 5)
    )
    return summary


def compare(committed: dict, fresh: dict, tolerance: float) -> dict:
    """Per-metric comparison; a metric regresses when the fresh value
    falls below ``committed * (1 - tolerance)``."""
    base = committed_metrics(committed)
    now = committed_metrics(fresh)
    rows = []
    regressions = 0
    for key in sorted(base):
        if key not in now:
            continue
        was, got = base[key], now[key]
        ratio = got / was if was else float("inf")
        regressed = ratio < 1.0 - tolerance
        regressions += regressed
        rows.append({
            "metric": key,
            "committed": was,
            "fresh": got,
            "ratio": ratio,
            "regressed": regressed,
        })
    return {
        "schema": "zeus.bench.check/1",
        "tolerance": tolerance,
        "regressions": regressions,
        "metrics": rows,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--baseline",
                    default=os.path.join(REPO, "BENCH_simulator.json"),
                    help="committed summary to compare against")
    ap.add_argument("--cycles", type=int, default=500,
                    help="cycles per fresh measurement (default 500)")
    ap.add_argument("--tolerance", type=float, default=0.30,
                    help="allowed fractional slowdown (default 0.30)")
    ap.add_argument("--report", metavar="FILE",
                    help="write the comparison as JSON (the CI artifact)")
    ap.add_argument("--seed", type=int, default=0)
    args = ap.parse_args(argv)

    with open(args.baseline, encoding="utf-8") as f:
        committed = json.load(f)
    fresh = fresh_summary(args.cycles, seed=args.seed)
    result = compare(committed, fresh, args.tolerance)

    for row in result["metrics"]:
        flag = "REGRESSED" if row["regressed"] else "ok"
        print(f"{row['metric']:<48} {row['committed']:>14,.1f} -> "
              f"{row['fresh']:>14,.1f}  ({row['ratio']:.2f}x)  {flag}")
    print(f"{result['regressions']} regression(s) beyond "
          f"{args.tolerance:.0%} tolerance")
    if args.report:
        with open(args.report, "w", encoding="utf-8") as f:
            json.dump(result, f, indent=2, sort_keys=True)
            f.write("\n")
        print(f"wrote {args.report}")
    return 1 if result["regressions"] else 0


if __name__ == "__main__":
    raise SystemExit(main())
