#!/usr/bin/env python
"""Lint the whole shipped corpus and enforce the prover's coverage bar.

Targets: every bundled paper program (``repro.stdlib.programs``), every
extra program (``repro.stdlib.extras``), every ``examples/zeus/*.zeus``
file, and a deterministic fuzz corpus (the conflicting-driver shape from
``tests/test_fuzz.py`` plus provably-exclusive variants).

For each target a ``zeus.lint/1`` JSON report is written into ``--out``
(the CI artifact), and the run **fails** when

* a target outside ``KNOWN_CONFLICTING`` has a PROVED-CONFLICTING net
  (a new way to burn transistors crept in),
* a ``KNOWN_CONFLICTING`` target is *not* flagged anymore (the prover
  lost a proof it used to have), or
* the prover leaves any multi-driver net UNKNOWN anywhere in the corpus
  (the acceptance bar: the corpus is fully classified).

The known conflicts are real: each ships a witness assignment that
reproduces the runtime multi-assignment violation (see
``tests/test_lint.py::TestProverDifferential::test_stdlib_witnesses_replay``).
They model environments that must not assert contradictory controls
(``push`` and ``pop`` together, ``load`` and ``del`` together).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

import repro  # noqa: E402
from repro.lint import run_lint, write_lint_report  # noqa: E402
from repro.stdlib import extras, programs  # noqa: E402

#: Targets whose PROVED-CONFLICTING verdicts are expected and witnessed.
KNOWN_CONFLICTING = {
    "builtin-htree",       # both leaf halves drive a.out when a.in = 1
    "builtin-section8",    # the paper's own section-8 conflict figure
    "extra-dictionary",    # load + del asserted together
    "extra-stack",         # push + pop asserted together
    "example-htree",
}
KNOWN_CONFLICTING |= {f"fuzz-conflict-{n}" for n in range(2, 5)}


def fuzz_corpus() -> dict[str, str]:
    """Deterministic fuzz shapes: conflicting independent guards and
    provably exclusive complementary/one-hot guards."""
    out: dict[str, str] = {}
    for n in range(2, 5):
        ins = ", ".join(f"g{k}" for k in range(n))
        stmts = "\n".join(
            f"    IF g{k} THEN z := {k % 2} END;" for k in range(n))
        out[f"fuzz-conflict-{n}"] = f"""
TYPE t = COMPONENT (IN {ins}: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
{stmts}
    y := g0
END;
SIGNAL u: t;
"""
    out["fuzz-exclusive-not"] = """
TYPE t = COMPONENT (IN s: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF s THEN z := 1 END;
    IF NOT s THEN z := 0 END;
    y := s
END;
SIGNAL u: t;
"""
    out["fuzz-exclusive-chain"] = """
TYPE t = COMPONENT (IN a, b: boolean; OUT y: boolean; z: multiplex) IS
BEGIN
    IF AND(a, b) THEN z := 1 END;
    IF AND(a, NOT b) THEN z := 0 END;
    IF NOT a THEN z := 0 END;
    y := a
END;
SIGNAL u: t;
"""
    return out


def collect_targets(repo_root: str) -> dict[str, str]:
    targets: dict[str, str] = {}
    for name, text in sorted(programs.ALL_PROGRAMS.items()):
        targets[f"builtin-{name}"] = text
    for name, text in sorted(extras.EXTRA_PROGRAMS.items()):
        targets[f"extra-{name}"] = text
    for path in sorted(glob.glob(os.path.join(repo_root, "examples", "zeus",
                                              "*.zeus"))):
        stem = os.path.splitext(os.path.basename(path))[0]
        with open(path, "r", encoding="utf-8") as f:
            targets[f"example-{stem}"] = f.read()
    targets.update(fuzz_corpus())
    return targets


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--out", default="lint-out",
                        help="directory for the per-target JSON reports")
    args = parser.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    repo_root = os.path.join(os.path.dirname(__file__), "..")
    failures: list[str] = []
    summary: dict[str, dict] = {}

    for label, text in collect_targets(repo_root).items():
        circuit = repro.compile_text(text, name=label, strict=False)
        report = run_lint(circuit)
        write_lint_report(os.path.join(args.out, f"{label}.lint.json"),
                          report)
        prover = report.prover
        summary[label] = {
            "errors": report.errors,
            "warnings": report.warnings,
            "nets_analyzed": len(prover.nets),
            "proved_exclusive": prover.proved_exclusive,
            "proved_conflicting": prover.proved_conflicting,
            "unknown": prover.unknown,
        }
        conflicting = prover.proved_conflicting > 0
        if conflicting and label not in KNOWN_CONFLICTING:
            failures.append(
                f"{label}: {prover.proved_conflicting} PROVED-CONFLICTING "
                "net(s) outside the known-conflict set")
        if not conflicting and label in KNOWN_CONFLICTING:
            failures.append(
                f"{label}: expected a PROVED-CONFLICTING verdict but the "
                "prover no longer finds one")
        if prover.unknown:
            failures.append(
                f"{label}: {prover.unknown} multi-driver net(s) left "
                "UNKNOWN; the corpus must be fully classified")

    with open(os.path.join(args.out, "summary.json"), "w",
              encoding="utf-8") as f:
        json.dump(summary, f, indent=2, sort_keys=True)
        f.write("\n")

    total = len(summary)
    nets = sum(s["nets_analyzed"] for s in summary.values())
    exclusive = sum(s["proved_exclusive"] for s in summary.values())
    conflicting = sum(s["proved_conflicting"] for s in summary.values())
    unknown = sum(s["unknown"] for s in summary.values())
    print(f"linted {total} targets: {nets} multi-driver nets, "
          f"{exclusive} exclusive, {conflicting} conflicting, "
          f"{unknown} unknown")
    for line in failures:
        print(f"FAIL: {line}", file=sys.stderr)
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
