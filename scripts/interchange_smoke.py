"""CI smoke for the Verilog interchange.

Round-trips the whole stdlib corpus -- emit structural Verilog, write
the ``zeus.interchange/1`` artifacts (``<name>.v`` +
``<name>.manifest.json``), import the text back, and co-simulate the
round-tripped circuit against the original lane by lane.  Also imports
the bundled c17 netlist and a few generated ISCAS-style scenarios.

When ``iverilog`` is on PATH, every emitted file is additionally
compile-checked with it (a skipped step, not a failure, when absent --
CI images differ).

Usage::

    PYTHONPATH=src python scripts/interchange_smoke.py --out interchange-out
"""

from __future__ import annotations

import argparse
import json
import os
import shutil
import subprocess
import sys

sys.path.insert(
    0,
    os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
                 "src"),
)

import repro  # noqa: E402
from repro.analysis.roundtrip import cosimulate, round_trip, stdlib_corpus  # noqa: E402
from repro.interchange import (  # noqa: E402
    C17_VERILOG,
    generate_iscas,
    read_verilog,
    validate_manifest,
)


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="interchange-out",
                    help="artifact directory (default interchange-out)")
    ap.add_argument("--cycles", type=int, default=3)
    ap.add_argument("--vectors", type=int, default=4)
    args = ap.parse_args(argv)

    os.makedirs(args.out, exist_ok=True)
    failures = 0
    emitted = []
    for name, text in stdlib_corpus():
        circuit = repro.compile_text(text, name=name, strict=False)
        rt = round_trip(circuit.design)
        validate_manifest(rt.manifest)
        vpath = os.path.join(args.out, f"{name}.v")
        with open(vpath, "w", encoding="utf-8") as f:
            f.write(rt.verilog)
        with open(os.path.join(args.out, f"{name}.manifest.json"),
                  "w", encoding="utf-8") as f:
            json.dump(rt.manifest, f, indent=2, sort_keys=True)
            f.write("\n")
        emitted.append(vpath)
        res = cosimulate(rt, cycles=args.cycles, n_vectors=args.vectors)
        status = "ok" if res.ok else f"FAIL: {res.detail}"
        failures += not res.ok
        stats = rt.imported.netlist.stats()
        print(f"{name:14s} {stats['gates']:>5d} gates  "
              f"{stats['registers']:>3d} regs  round-trip {status}")

    for label, text in [("c17", C17_VERILOG)] + [
        (f"iscas-s{seed}", generate_iscas(seed, n_regs=seed % 3))
        for seed in range(4)
    ]:
        design = read_verilog(text, name=f"{label}.v")
        sim = repro.Simulator(design, strict=False)
        sim.step(2)
        print(f"{label:14s} imported and simulated "
              f"({design.netlist.stats()['gates']} gates)")

    iverilog = shutil.which("iverilog")
    if iverilog is None:
        print("iverilog not found: compile-check skipped (not a failure)")
    else:
        for vpath in emitted:
            proc = subprocess.run(
                [iverilog, "-o", os.devnull, vpath],
                capture_output=True, text=True)
            if proc.returncode != 0:
                print(f"iverilog FAILED on {vpath}:\n{proc.stderr}")
                failures += 1
        print(f"iverilog compile-checked {len(emitted)} file(s)")

    print(f"{failures} failure(s)")
    return 1 if failures else 0


if __name__ == "__main__":
    raise SystemExit(main())
