#!/usr/bin/env python
"""Nightly long-budget differential fuzzing.

Generates a large seeded batch of random Zeus programs (multiplex nets
with guarded drivers, REG pipelines, FOR/WHEN meta-programmed
replication -- see :mod:`repro.analysis.fuzzgen`) and runs the
four-engine differential check on each: dataflow is the oracle;
levelized, batched and codegen must agree observation for
observation (the bit-parallel engines lane by lane).

Reproducibility: the base seed defaults to the UTC date (YYYYMMDD), so
re-running the same nightly locally replays the same programs; pass
``--seed`` to pin it explicitly.  Every failure is shrunk with
statement-level delta debugging and written into ``--out`` as

* ``fail-<seed>.zeus``      -- the minimal reproducing program,
* ``fail-<seed>.orig.zeus`` -- the unshrunk original,
* ``fail-<seed>.txt``       -- the mismatch detail and replay command,

which CI uploads as artifacts.  Exit status 1 when anything failed.

Usage::

    PYTHONPATH=src python scripts/fuzz_nightly.py \
        --budget 2000 --out fuzz-artifacts
"""

from __future__ import annotations

import argparse
import os
import sys
import time
from datetime import datetime, timezone

sys.path.insert(0, os.path.join(os.path.dirname(__file__), "..", "src"))

from repro.analysis.fuzzgen import (  # noqa: E402
    default_failure_predicate,
    differential_check,
    generate_program,
    shrink,
)

CYCLES = 4
VECTORS = 8


def run(base_seed: int, budget: int, out_dir: str) -> int:
    os.makedirs(out_dir, exist_ok=True)
    failures = 0
    t0 = time.time()
    for i in range(budget):
        seed = base_seed * 1_000_000 + i
        prog = generate_program(seed)
        res = differential_check(
            prog.text, cycles=CYCLES, n_vectors=VECTORS, seed=seed
        )
        if res.ok:
            continue
        failures += 1
        print(f"FAIL seed {seed}: {res.detail}")
        failing = default_failure_predicate(
            cycles=CYCLES, n_vectors=VECTORS, seed=seed
        )
        small = shrink(prog, failing)
        with open(os.path.join(out_dir, f"fail-{seed}.zeus"), "w") as f:
            f.write(small.text)
        with open(os.path.join(out_dir, f"fail-{seed}.orig.zeus"), "w") as f:
            f.write(prog.text)
        with open(os.path.join(out_dir, f"fail-{seed}.txt"), "w") as f:
            f.write(
                f"seed: {seed}\ndetail: {res.detail}\n"
                f"replay: PYTHONPATH=src python scripts/fuzz_nightly.py "
                f"--seed {base_seed} --budget {i + 1}\n"
            )
    elapsed = time.time() - t0
    print(
        f"fuzzed {budget} programs in {elapsed:.0f}s "
        f"(base seed {base_seed}): {failures} failure(s)"
    )
    return 1 if failures else 0


def main(argv=None):
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument(
        "--seed", type=int, default=None,
        help="base seed (default: UTC date as YYYYMMDD)",
    )
    ap.add_argument(
        "--budget", type=int, default=2000,
        help="number of programs to generate and check (default 2000)",
    )
    ap.add_argument(
        "--out", default="fuzz-artifacts",
        help="directory for shrunken failing programs (default fuzz-artifacts)",
    )
    args = ap.parse_args(argv)
    base_seed = args.seed
    if base_seed is None:
        base_seed = int(datetime.now(timezone.utc).strftime("%Y%m%d"))
    return run(base_seed, args.budget, args.out)


if __name__ == "__main__":
    raise SystemExit(main())
