"""CI smoke for zeusd: boot on an ephemeral port, round-trip every
major endpoint, assert the content-hash cache actually hits, and write
the daemon's ``zeus.metrics/1`` report as the CI artifact.

Usage::

    PYTHONPATH=src python scripts/service_smoke.py --out service-out
"""

from __future__ import annotations

import argparse
import json
import os
import sys

REPO = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
sys.path.insert(0, os.path.join(REPO, "src"))

from repro.obs import validate_report  # noqa: E402
from repro.service import ZeusClient, serve_in_thread  # noqa: E402
from repro.stdlib.programs import ALL_PROGRAMS  # noqa: E402

HALF = """
TYPE halfadder = COMPONENT (IN a,b: boolean; OUT cout,s: boolean) IS
BEGIN
    s := XOR(a,b);
    cout := AND(a,b)
END;
SIGNAL h: halfadder;
"""


def check(ok: bool, what: str) -> None:
    status = "ok" if ok else "FAIL"
    print(f"{what:<44} {status}")
    if not ok:
        raise SystemExit(f"service smoke failed: {what}")


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--out", default="service-out",
                    help="artifact directory (default service-out)")
    args = ap.parse_args(argv)
    os.makedirs(args.out, exist_ok=True)

    with serve_in_thread(lanes=8, workers=2) as runner:
        print(f"zeusd on ephemeral port {runner.port}")
        client = ZeusClient(runner.port)
        try:
            status, body = client.health()
            check(status == 200 and body["status"] == "ok", "GET /v1/health")

            status, cold = client.compile(HALF)
            check(status == 200 and cold["cached"] is False,
                  "POST /v1/compile (cold miss)")
            status, warm = client.compile(HALF)
            check(status == 200 and warm["cached"] is True
                  and warm["key"] == cold["key"],
                  "POST /v1/compile (warm hit)")

            status, body = client.lint(HALF)
            check(status == 200 and body["exit_code"] == 0, "POST /v1/lint")

            status, body = client.sim(
                HALF, cycles=2, pokes=[[0, "a", 1], [0, "b", 1]]
            )
            check(status == 200 and body["signals"]["cout"] == ["1"],
                  "POST /v1/sim")

            status, body = client.prove(HALF, depth=2, budget=20_000)
            check(status == 200 and body["report"]["verdict"] == "proved",
                  "POST /v1/prove")

            status, body = client.open_session(
                ALL_PROGRAMS["blackjack"], top="bj", strict=False, seed=7
            )
            check(status == 200, "POST /v1/session/open")
            sid = body["session"]
            status, body = client.session(sid, "step", {"cycles": 8})
            check(status == 200 and body["cycle"] == 8,
                  "POST /v1/session/<id>/step")
            status, _ = client.close_session(sid)
            check(status == 200, "DELETE /v1/session/<id>")

            status, report = client.metrics()
            check(status == 200, "GET /v1/metrics")
            validate_report(report)
            service = report["service"]
            check(service["cache"]["hits"] >= 1
                  and service["cache"]["hit_rate"] > 0,
                  "compile cache hit recorded")
            check(service["requests"]["errors"] == 0, "no request errors")
        finally:
            client.close()

    path = os.path.join(args.out, "service.metrics.json")
    with open(path, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2, sort_keys=True)
        f.write("\n")
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
