#!/usr/bin/env python3
"""A complete computer described in Zeus: the TINYCPU.

Zeus's ambition ("describing VLSI algorithms from the architecture to
the logical level") deserves an architecture-level demo: an 8-bit
accumulator machine — program counter, instruction/data memories built
from the section-5 NUM-addressed REG RAM, ripple arithmetic, and an
8-instruction ISA — entirely as one Zeus component.

The script assembles a small program (triangular numbers), loads it
through the instruction port, and single-steps the machine while
disassembling what executes.

Run:  python examples/tiny_computer.py [n]
"""

import sys

import repro
from repro.stdlib import extras
from repro.testbench import Testbench

MNEMONIC = {v: k for k, v in extras._CPU_OPCODES.items()}


def disassemble(word: int) -> str:
    op, arg = word >> 4, word & 15
    name = MNEMONIC.get(op, "???")
    return name if name in ("NOP", "HLT") else f"{name} {arg}"


def main() -> None:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 6
    if not 1 <= n <= 9:
        raise SystemExit("n must be 1..9 (the sum must fit in 8 bits)")

    program = f"""
    LDI 1
    STA 15     ; constant one
    LDI {n}
    STA 0      ; counter = n
    LDI 0
    STA 1      ; total = 0
    LDA 1      ; 6: loop
    ADD 0
    STA 1      ; total += counter
    LDA 0
    SUB 15
    STA 0      ; counter -= 1
    JNZ 6
    LDA 1
    HLT
    """
    words = extras.assemble(program)

    print("compiling the CPU ...")
    circuit = repro.compile_text(extras.TINYCPU)
    print(f"   {circuit.netlist.describe()}")

    tb = Testbench(circuit)
    tb.reset(cycles=1, iload=0, iaddr=0, idata=0)
    print(f"\nloading {len(words)} instruction words:")
    for addr, word in enumerate(words):
        print(f"   {addr:2d}: {word:02x}   {disassemble(word)}")
        tb.drive(iload=1, iaddr=addr, idata=word).clock()
    tb.drive(iload=0)

    print(f"\nrunning (summing 1..{n}):")
    for _ in range(250):
        with tb.preview() as now:
            pc = now.int("pcout")
            acc = now.int("accout")
        tb.clock()
        if pc is not None and pc < len(words):
            print(f"   pc={pc:2d}  acc={acc:3}   {disassemble(words[pc])}")
        if str(tb.sim.peek_bit("halted")) == "1":
            break
    else:
        raise SystemExit("did not halt!")

    result = tb.peek_int("accout")
    expected = n * (n + 1) // 2
    print(f"\nhalted after {tb.sim.cycle} cycles; acc = {result} "
          f"(expected {expected})")
    assert result == expected


if __name__ == "__main__":
    main()
