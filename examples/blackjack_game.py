#!/usr/bin/env python3
"""Play Blackjack against the paper's finite state machine.

The dealer machine of section 10 draws cards while its score is below
17, counts a first ace as 11, takes the 10 back when it would bust, and
finally signals `stand` or `broke`.  This example deals random shoes and
shows the machine's internal state per cycle -- a template for driving
any synchronous Zeus design with a reactive testbench.

Run:  python examples/blackjack_game.py [seed]
"""

import random
import sys

import repro
from repro.stdlib import programs

STATES = {0: "start", 4: "read", 2: "sum", 6: "firstace", 1: "test", 5: "end"}


def deal_game(sim, shoe, verbose=True):
    """Drive the machine through one game; returns (outcome, score)."""
    sim.reset_state()
    sim.poke("RSET", 1)
    sim.poke("ycard", 0)
    sim.poke("value", 0)
    sim.step()
    sim.poke("RSET", 0)

    dealt = []
    for _ in range(200):
        sim.poke("ycard", 0)
        sim.evaluate()  # preview this cycle's outputs before committing
        state = STATES.get(sim.peek_int("bj.state.out") or 0, "?")
        score = sim.peek_int("bj.score.out")
        if verbose:
            print(f"   cycle {sim.cycle:3d}  state={state:8s} "
                  f"score={score if score is not None else '?':>2}")
        if str(sim.peek_bit("stand")) == "1":
            return "stand", score, dealt
        if str(sim.peek_bit("broke")) == "1":
            return "broke", score, dealt
        if str(sim.peek_bit("hit")) == "1" and shoe:
            card = shoe.pop(0)
            dealt.append(card)
            sim.poke("ycard", 1)
            sim.poke("value", card)
            if verbose:
                print(f"        -> dealing {card}")
        sim.step()
    return "hung", None, dealt


def main() -> None:
    seed = int(sys.argv[1]) if len(sys.argv) > 1 else 42
    rng = random.Random(seed)

    print("compiling the Blackjack machine ...")
    circuit = repro.compile_text(programs.BLACKJACK)
    print(f"   {circuit.netlist.describe()}")
    sim = circuit.simulator()

    results = {"stand": 0, "broke": 0}
    for game in range(5):
        shoe = [min(rng.randint(1, 13), 10) for _ in range(12)]
        print(f"\ngame {game + 1}: shoe = {shoe}")
        outcome, score, dealt = deal_game(sim, shoe)
        print(f"   dealer {outcome} with {score} (cards taken: {dealt})")
        results[outcome] = results.get(outcome, 0) + 1

    print(f"\nsession: {results}")


if __name__ == "__main__":
    main()
