#!/usr/bin/env python3
"""A small CPU datapath: the AM2901-style ALU slice plus RAM.

The paper's abstract says Zeus was "tested on ... AM2901".  This example
drives the reproduction's AM2901-style slice (register file, Q register,
operand selection, eight ALU functions) through a little microprogram --
computing Fibonacci numbers in the register file -- and then uses the
NUM-addressed REG memory of section 5 as a scratchpad.

Run:  python examples/cpu_datapath.py
"""

import repro
from repro.stdlib import extras, programs

SRC = {"AQ": 0, "AB": 1, "ZQ": 2, "ZB": 3, "ZA": 4, "DA": 5, "DQ": 6, "DZ": 7}
FUNC = {"ADD": 0, "SUBR": 1, "SUBS": 2, "OR": 3, "AND": 4,
        "NOTRS": 5, "EXOR": 6, "EXNOR": 7}
DEST = {"NONE": 0, "Q": 1, "RAM": 2, "BOTH": 3}


class Alu:
    def __init__(self):
        circuit = repro.compile_text(extras.AM2901)
        print(f"ALU slice: {circuit.netlist.describe()}")
        self.sim = circuit.simulator()

    def micro(self, src, func, dest, d=0, a=0, b=0):
        s = self.sim
        s.poke("d", d); s.poke("aaddr", a); s.poke("baddr", b)
        s.poke("src", SRC[src]); s.poke("func", FUNC[func])
        s.poke("dest", DEST[dest])
        s.step()
        return s.peek_int("y")


def fibonacci(alu: Alu, n: int) -> list[int]:
    """r0, r1 hold the rolling pair; r2 gets each Fibonacci number
    (mod 16 -- it is a 4-bit slice)."""
    alu.micro("DZ", "ADD", "RAM", d=0, b=0)   # r0 := 0
    alu.micro("DZ", "ADD", "RAM", d=1, b=1)   # r1 := 1
    out = []
    for _ in range(n):
        # r2 := r0 + r1 ; then roll: r0 := r1, r1 := r2.
        f = alu.micro("AB", "ADD", "NONE", a=0, b=1)
        out.append(f)
        alu.micro("ZA", "ADD", "RAM", a=1, b=0)   # r0 := 0 + r1
        alu.micro("DZ", "ADD", "RAM", d=f, b=1)   # r1 := f
    return out


def main() -> None:
    alu = Alu()
    fib = fibonacci(alu, 7)
    print(f"fibonacci (4-bit slice): {fib}")
    model, x, y = [], 0, 1
    for _ in range(7):
        f = (x + y) & 15
        model.append(f)
        x, y = y, f
    assert fib == model, (fib, model)
    print("matches the software model.")

    # Scratchpad: the section-5 RAM.
    ram = repro.compile_text(programs.memory(16, 8, 4))
    print(f"\nscratchpad: {ram.netlist.describe()}")
    sim = ram.simulator()
    for addr, value in enumerate(fib):
        sim.poke("we", 1); sim.poke("addr", addr); sim.poke("data", value)
        sim.step()
    sim.poke("we", 0)
    stored = []
    for addr in range(len(fib)):
        sim.poke("addr", addr)
        sim.step()
        stored.append(sim.peek_int("q"))
    print(f"read back from RAM: {stored}")
    assert stored == fib


if __name__ == "__main__":
    main()
