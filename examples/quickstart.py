#!/usr/bin/env python3
"""Quickstart: compile and simulate your first Zeus circuit.

Zeus (Lieberherr & Knudsen, 1983) describes hardware as *component
types* instantiated by *signal declarations*.  This script walks the
full API surface on the paper's own full adder:

1. compile a program text (parse -> elaborate -> static checks);
2. inspect the elaborated netlist;
3. simulate with poke/step/peek;
4. capture a waveform and export a VCD;
5. compute the floorplan of the layout annotations.

Run:  python examples/quickstart.py
"""

import repro
from repro.core.trace import Trace

PROGRAM = """
TYPE halfadder = COMPONENT (IN a, b: boolean; OUT cout, s: boolean) IS
BEGIN
    s := XOR(a, b);
    cout := AND(a, b)
END;

fulladder = COMPONENT (IN a, b, cin: boolean; OUT cout, s: boolean) IS
SIGNAL h1, h2: halfadder;
{ ORDER lefttoright h1; h2 END }
BEGIN
    h1(a, b, *, h2.a);
    h2(h1.s, cin, *, s);   <* the * indicates that no connection is made *>
    cout := OR(h1.cout, h2.cout)
END;

SIGNAL fa: fulladder;
"""


def main() -> None:
    # -- 1. compile ---------------------------------------------------------
    circuit = repro.compile_text(PROGRAM)
    print(f"compiled {circuit.name!r}: {circuit.netlist.describe()}")
    for port in circuit.netlist.ports:
        print(f"   {port.mode:>5}  {port.name}  ({len(port.nets)} bit)")

    # -- 2. netlist inspection ----------------------------------------------
    stats = circuit.stats()
    print(f"\nsemantics graph: {stats['nets']} signal nodes, "
          f"{stats['gates']} predefined component nodes")

    # -- 3. simulate the full truth table ------------------------------------
    sim = circuit.simulator()
    trace = Trace(["a", "b", "cin", "s", "cout"])
    sim.attach_trace(trace)
    print("\n a b cin | s cout")
    for a in (0, 1):
        for b in (0, 1):
            for cin in (0, 1):
                sim.poke("a", a)
                sim.poke("b", b)
                sim.poke("cin", cin)
                sim.step()
                s = sim.peek_bit("s")
                cout = sim.peek_bit("cout")
                print(f" {a} {b}  {cin}  | {s}   {cout}")
                assert int(str(s)) + 2 * int(str(cout)) == a + b + cin

    # -- 4. waveforms ---------------------------------------------------------
    print("\nwaveform:")
    print(trace.render_ascii())
    trace.write_vcd("/tmp/fulladder.vcd", "fulladder")
    print("VCD written to /tmp/fulladder.vcd")

    # -- 5. layout -------------------------------------------------------------
    plan = circuit.layout()
    print(f"\nfloorplan {plan.width} x {plan.height} "
          f"(the two half adders side by side):")
    print(plan.render_text())


if __name__ == "__main__":
    main()
