#!/usr/bin/env python3
"""Bit-pattern search on the Foster/Kung systolic matcher.

The paper's flagship systolic example (section 10): an array of
comparator/accumulator cells through which the pattern flows rightward
and the text flows leftward, each at half speed, so that every pattern
position meets every text position.  The end-of-pattern marker travels
with the pattern and flushes each cell's accumulated result onto the
leftward result stream.

This example searches a text for a pattern (with optional ? wildcards)
and prints the match positions, then shows the cell-by-cell snapshot
table corresponding to the paper's closing figure.

Run:  python examples/systolic_search.py 1?1 101101011
"""

import sys

import repro
from repro.stdlib import programs


def search(pattern_text: str, text: str, show_table: bool = False):
    pattern = [1 if c == "1" else 0 for c in pattern_text]
    wild = [1 if c == "?" else 0 for c in pattern_text]
    string = [int(c) for c in text]
    L = len(pattern)
    if L % 2 == 0:
        raise SystemExit("pattern length must be odd (the paper's constraint)")

    circuit = repro.compile_text(programs.patternmatch(L))
    sim = circuit.simulator()

    # Reset long enough to flush the marker pipelines.
    for p in ("pattern", "string", "endofpattern", "wild", "resultin"):
        sim.poke(p, 0)
    sim.poke("RSET", 1)
    sim.step(L + 2)
    sim.poke("RSET", 0)

    padded = [0] * L + string  # pipeline-fill lead-in
    n_align = len(string) - L + 1
    out = []
    snapshots = []
    for t in range(2 * (L + max(n_align, 1)) + 3 * L + 4):
        if t % 2 == 0:
            j = (t // 2) % L
            sim.poke("pattern", pattern[j])
            sim.poke("endofpattern", 1 if j == L - 1 else 0)
            sim.poke("wild", wild[j])
            k = t // 2
            sim.poke("string", padded[k] if k < len(padded) else 0)
        else:
            for p in ("pattern", "endofpattern", "wild", "string"):
                sim.poke(p, 0)
        sim.step()
        out.append(str(sim.peek_bit("result")))
        if show_table and t < 14:
            row = []
            for i in range(1, L + 1):
                p = sim.peek_bit(f"match.pe[{i}].comp.p.out")
                s = sim.peek_bit(f"match.pe[{i}].comp.s.out")
                r = sim.peek_bit(f"match.pe[{i}].acc.r.out")
                row.append(f"p={p} s={s} r={r}")
            snapshots.append((t, row))

    matches = [
        m for m in range(n_align)
        if out[2 * (m + L) + 3 * L - 1] == "1"
    ]
    return matches, snapshots


def main() -> None:
    pattern = sys.argv[1] if len(sys.argv) > 1 else "1?1"
    text = sys.argv[2] if len(sys.argv) > 2 else "101101011"
    print(f"searching for {pattern!r} in {text!r} "
          f"({len(pattern)} systolic cells) ...")
    matches, snapshots = search(pattern, text, show_table=True)
    print(f"matches at offsets: {matches}")

    # Software cross-check.
    golden = [
        k for k in range(len(text) - len(pattern) + 1)
        if all(pc == "?" or pc == tc
               for pc, tc in zip(pattern, text[k:k + len(pattern)]))
    ]
    print(f"golden matcher    : {golden}")
    assert matches == golden, "systolic and software matcher disagree!"

    print("\ncomputation sequence (cells 1..%d, first cycles):" % len(pattern))
    for t, row in snapshots:
        print(f"  t={t:2d}  " + "   ".join(row))


if __name__ == "__main__":
    main()
