#!/usr/bin/env python3
"""Layout gallery: the section-6 layout language on the paper's figures.

Renders the floorplans of the adder row, the recursive binary tree, the
H-tree (the linear-area result), and the chessboard of virtual-signal
replacements -- as ASCII and as SVG files under /tmp/zeus_layouts/.

Run:  python examples/layout_gallery.py
"""

import math
import os

import repro
from repro.stdlib import programs

OUT_DIR = "/tmp/zeus_layouts"


def show(title: str, circuit: repro.Circuit, svg_name: str) -> None:
    plan = circuit.layout()
    print(f"\n=== {title} ===")
    print(f"bounding box {plan.width} x {plan.height}  "
          f"(area {plan.area}, {plan.leaf_count()} cells)")
    print(plan.render_text())
    path = os.path.join(OUT_DIR, svg_name)
    with open(path, "w", encoding="utf-8") as f:
        f.write(plan.render_svg())
    print(f"svg: {path}")


def main() -> None:
    os.makedirs(OUT_DIR, exist_ok=True)

    show("rippleCarry(8): a row of full adders (Fig. Adder)",
         repro.compile_text(programs.ripple_carry(8), top="adder"),
         "adder.svg")

    show("rtree(16): recursive binary tree, root on top",
         repro.compile_text(programs.trees(16), top="b"),
         "rtree.svg")

    show("htree(64): the H-tree -- linear area",
         repro.compile_text(programs.htree(64)),
         "htree.svg")

    show("chessboard(6): virtual signals replaced by black/white cells",
         repro.compile_text(programs.chessboard(6)),
         "chessboard.svg")

    show("patternmatch(7): comparator over accumulator per column",
         repro.compile_text(programs.patternmatch(7)),
         "patternmatch.svg")

    # The headline numbers: H-tree area is linear, naive tree is n log n.
    print("\n=== area comparison (the paper's H-tree claim) ===")
    print(f"{'n':>6} {'htree':>8} {'naive tree':>11} {'ratio':>7}")
    for n in (4, 16, 64, 256):
        h = repro.compile_text(programs.htree(n)).layout().area
        t = repro.compile_text(programs.trees(n), top="b").layout().area
        print(f"{n:>6} {h:>8} {t:>11} {t / h:>7.2f}")
    print("(ratio = log2(n)/2, growing without bound)")


if __name__ == "__main__":
    main()
